//! The §4 scalability conditions, verified against running systems.
//!
//! "A necessary but insufficient condition for scalability is that
//! participants' views be limited to a size that does not grow as a
//! function of the scale of the system. Fault tolerance requires that
//! every part of the hallucination is contained in more than one view, or
//! can be reconstructed using only data from views available after a
//! failure."

use tiger::core::{TigerConfig, TigerSystem};
use tiger::layout::StripeConfig;
use tiger::sim::{Bandwidth, SimDuration, SimTime};
use tiger::workload::{populate_catalog, CatalogSpec};
use tiger_sim::RngTree;

/// Runs a system of `cubs` cubs at ~70% of its capacity and samples the
/// peak schedule information any cub holds.
fn peak_schedule_information(cubs: u32) -> usize {
    let mut cfg = TigerConfig::sosp97();
    cfg.stripe = StripeConfig::new(cubs, 4, 4);
    cfg.num_clients = (cubs * 3).max(8);
    cfg.disk = cfg.disk.without_blips();
    let mut sys = TigerSystem::new(cfg);
    let files = populate_catalog(
        &mut sys,
        &CatalogSpec::sized_for(SimDuration::from_secs(200), 8),
    );
    let capacity = sys.shared().params.capacity();
    let target = capacity * 7 / 10;
    let mut chooser = RngTree::new(3).fork("files", 0);
    for i in 0..u64::from(target) {
        let client = sys.add_client();
        let file = files[chooser.gen_range(0..files.len())];
        sys.request_start(SimTime::from_millis(100 + i * 45), client, file);
    }
    // Sample held schedule information while everything plays.
    let mut peak = 0usize;
    let mut t = SimTime::from_secs(60);
    while t < SimTime::from_secs(120) {
        sys.run_until(t);
        for cub in sys.cubs() {
            peak = peak.max(cub.schedule_information_held());
        }
        t = t + SimDuration::from_secs(5);
    }
    peak
}

#[test]
fn per_cub_view_size_does_not_grow_with_system_scale() {
    // Doubling the system (cubs AND streams) must not grow any single
    // cub's held schedule information: views are bounded by maxVStateLead,
    // not by system size.
    let small = peak_schedule_information(7);
    let big = peak_schedule_information(14);
    assert!(small > 0 && big > 0);
    let ratio = big as f64 / small as f64;
    assert!(
        ratio < 1.5,
        "per-cub schedule information grew with system size: {small} -> {big}"
    );
}

#[test]
fn every_committed_entry_is_known_twice() {
    // Fault tolerance condition: after any single failure, every viewer's
    // schedule information survives somewhere — demonstrated by killing
    // each cub in turn (fresh run each time) and checking no stream
    // starves.
    for victim in [0u32, 2, 3] {
        let mut cfg = TigerConfig::small_test();
        cfg.disk = cfg.disk.without_blips();
        cfg.deadman_timeout = SimDuration::from_millis(1_500);
        let mut sys = TigerSystem::new(cfg);
        let file = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(60));
        for i in 0..8u64 {
            let client = sys.add_client();
            sys.request_start(SimTime::from_millis(100 + i * 300), client, file);
        }
        sys.fail_cub_at(SimTime::from_secs(20), tiger::layout::CubId(victim));
        sys.run_until(SimTime::from_secs(80));
        for c in sys.clients() {
            for (_, v) in c.viewers() {
                assert_eq!(
                    v.tail_missing(),
                    0,
                    "stream starved when cub {victim} died: some schedule \
                     information existed in only one view"
                );
            }
        }
    }
}

#[test]
fn restripe_preserves_content_and_service() {
    // Load a 4-cub system, restripe to 5 cubs, verify the moved layout
    // still serves every block.
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    let mut sys = TigerSystem::new(cfg);
    let file = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(20));
    // Serve one viewer on the old geometry first.
    let c0 = sys.add_client();
    sys.request_start(SimTime::from_millis(50), c0, file);
    sys.run_until(SimTime::from_secs(30));
    assert_eq!(sys.client_report(c0).completed_viewers, 1);

    let (mut new_sys, plan) = sys.restripe_into(StripeConfig::new(5, 1, 2));
    let stats = plan.stats();
    assert_eq!(
        stats.moved_blocks + stats.stationary_blocks,
        plan.total_blocks()
    );
    assert!(stats.moved_blocks > 0, "a geometry change moves blocks");

    // The same file plays end-to-end on the new geometry.
    let c1 = new_sys.add_client();
    new_sys.request_start(SimTime::from_millis(50), c1, file);
    new_sys.run_until(SimTime::from_secs(30));
    let report = new_sys.client_report(c1);
    assert_eq!(report.completed_viewers, 1, "{report:?}");
    assert_eq!(report.blocks_missing, 0);
}
