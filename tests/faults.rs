//! Fault-subsystem integration tests: the deadman/stall boundary golden-
//! tested with and without a concurrent partition, empty-plan
//! transparency (a plan-free run is byte-identical to one with an empty
//! plan applied), and the §5 power-cut experiment expressed as a fault
//! plan reproducing the direct `fail_cub_at` results exactly.

use tiger::core::{Message, TigerConfig, TigerSystem};
use tiger::faults::{FaultPlan, NodeSel};
use tiger::layout::CubId;
use tiger::sim::{Bandwidth, SimDuration, SimTime};
use tiger::trace::TraceEvent;
use tiger::workload::{run_reconfig, run_reconfig_with_plan, CatalogSpec, ReconfigConfig};

fn small() -> TigerConfig {
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    cfg
}

// --- Deadman/stall boundary (§2.3) ------------------------------------------

/// Drives the monitor cub through a stall of exactly `stall` observed
/// silence and returns the deadman declarations it recorded. When
/// `partitioned`, a network partition separating the monitor's half of
/// the ring is live for the whole window — the declaration boundary must
/// not move, because the deadman decision is local (the partition can
/// only affect how the resulting notice propagates, never whether the
/// silence is judged fatal).
fn stall_declares(stall: SimDuration, partitioned: bool) -> Vec<(u32, u64)> {
    let mut sys = TigerSystem::new(small());
    sys.enable_trace(16_384);
    if partitioned {
        let plan = FaultPlan::new().partition(
            vec![NodeSel::Cub(0), NodeSel::Cub(1)],
            vec![NodeSel::Cub(2), NodeSel::Cub(3)],
            SimTime::ZERO,
            SimTime::from_secs(60),
        );
        sys.apply_fault_plan(&plan);
    }
    // Cub1 hears its predecessor at t0; the predecessor then stalls for
    // `stall`, so the deadman check that ends the stall sees silence of
    // exactly that length.
    let t0 = SimTime::from_secs(1);
    sys.with_cub_mut(CubId(1), |cub, sh| {
        cub.on_message(sh, t0, Message::DeadmanPing { from: CubId(0) });
        cub.on_deadman_check(sh, t0 + stall);
    });
    sys.tracer()
        .records()
        .iter()
        .filter_map(|r| match r.ev {
            TraceEvent::DeadmanDeclare { failed, silence_ns } => Some((failed, silence_ns)),
            _ => None,
        })
        .collect()
}

/// A cub silent for exactly the deadman timeout is still alive (the
/// threshold is strictly `silence > timeout`); one nanosecond longer is
/// dead. Golden on the declared silence, with and without a concurrent
/// partition.
#[test]
fn stall_of_exactly_the_deadman_timeout_is_the_boundary() {
    let timeout = small().deadman_timeout;
    let tick = SimDuration::from_nanos(1);
    for partitioned in [false, true] {
        assert_eq!(
            stall_declares(timeout, partitioned),
            vec![],
            "silence == timeout must not declare (partitioned: {partitioned})"
        );
        assert_eq!(
            stall_declares(timeout + tick, partitioned),
            vec![(0, timeout.as_nanos() + 1)],
            "one tick past the timeout must declare the predecessor \
             with silence timeout+1ns (partitioned: {partitioned})"
        );
    }
}

/// The same boundary through the event loop and the fault plan: a freeze
/// short enough that worst-case observed silence (stall + ping interval +
/// delivery latency) stays under the timeout produces no declaration; a
/// freeze well past the timeout is declared. Run with and without a
/// concurrent partition on the far side of the ring.
#[test]
fn plan_driven_freeze_respects_the_deadman_boundary() {
    let run = |freeze: SimDuration, partitioned: bool| {
        let mut sys = TigerSystem::new(small());
        sys.enable_trace(32_768);
        let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(30));
        let c = sys.add_client();
        sys.request_start(SimTime::from_millis(50), c, film);
        let mut plan =
            FaultPlan::new().freeze(1, SimTime::from_secs(5), SimTime::from_secs(5) + freeze);
        if partitioned {
            // A partition that never separates cub1 from its monitor:
            // clients on one side, the whole ring on the other.
            plan = plan.partition(
                vec![NodeSel::Client(2), NodeSel::Client(3)],
                vec![
                    NodeSel::Cub(0),
                    NodeSel::Cub(1),
                    NodeSel::Cub(2),
                    NodeSel::Cub(3),
                ],
                SimTime::from_secs(4),
                SimTime::from_secs(12),
            );
        }
        sys.apply_fault_plan(&plan);
        sys.run_until(SimTime::from_secs(15));
        sys.tracer()
            .records()
            .iter()
            .filter(|r| matches!(r.ev, TraceEvent::DeadmanDeclare { .. }))
            .count()
    };
    let cfg = small();
    let blip = cfg
        .deadman_timeout
        .saturating_sub(cfg.deadman_interval + cfg.latency.worst_case() * 4);
    for partitioned in [false, true] {
        assert_eq!(
            run(blip, partitioned),
            0,
            "a sub-timeout blip must pass unnoticed (partitioned: {partitioned})"
        );
        assert!(
            run(cfg.deadman_timeout * 3, partitioned) >= 1,
            "a stall of 3x the timeout must be declared (partitioned: {partitioned})"
        );
    }
}

// --- Empty-plan transparency -------------------------------------------------

/// Applying an empty fault plan is free: metrics and the full protocol
/// trace are byte-identical to a run that never touched the fault layer.
/// This is the integration-level face of the acceptance criterion that
/// the no-faults hot path stays a single null-pointer test.
#[test]
fn empty_plan_leaves_the_run_byte_identical() {
    let scripted = |with_empty_plan: bool| {
        let mut sys = TigerSystem::new(small());
        sys.enable_trace(32_768);
        let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(15));
        let a = sys.add_client();
        let b = sys.add_client();
        let va = sys.request_start(SimTime::from_millis(50), a, film);
        let _vb = sys.request_start(SimTime::from_millis(450), b, film);
        if with_empty_plan {
            let plan = FaultPlan::new();
            assert!(plan.is_empty());
            sys.apply_fault_plan(&plan);
        }
        sys.request_stop(SimTime::from_secs(5), va);
        sys.fail_cub_at(SimTime::from_secs(7), CubId(2));
        sys.run_until(SimTime::from_secs(12));
        (sys.metrics().clone(), sys.tracer().dump().expect("traced"))
    };
    let (plain_metrics, plain_trace) = scripted(false);
    let (planned_metrics, planned_trace) = scripted(true);
    assert_eq!(plain_metrics, planned_metrics, "metrics must not move");
    assert_eq!(plain_trace, planned_trace, "trace must be byte-identical");
}

// --- §5 equivalence ----------------------------------------------------------

/// The paper's power-cut experiment re-expressed as a declarative fault
/// plan (`crash c<victim> at=<cut>`) reproduces the direct
/// `fail_cub_at` run exactly — same loss window, same detection time,
/// same blocks lost. This pins the fault subsystem to the existing §5
/// reconfiguration measurement.
#[test]
fn crash_plan_reproduces_the_power_cut_experiment() {
    let mut tiger = small();
    tiger.deadman_timeout = SimDuration::from_millis(2_000);
    let cfg = ReconfigConfig {
        catalog: CatalogSpec::sized_for(SimDuration::from_secs(200), 4),
        load: 0.5,
        victim: CubId(1),
        cut_at: SimTime::from_secs(30),
        observe: SimDuration::from_secs(60),
        tiger,
    };
    let direct = run_reconfig(&cfg);
    let text = format!("crash c{} at={}s", cfg.victim.raw(), 30);
    let plan = FaultPlan::parse(&text).expect("crash plan parses");
    let planned = run_reconfig_with_plan(&cfg, &plan);
    assert_eq!(
        direct, planned,
        "the two failure paths must be one experiment"
    );
    assert!(direct.blocks_lost > 0, "the cut must cost blocks");
    assert!(
        direct.loss_window_secs < 10.0,
        "loss window {} out of the §5 ballpark",
        direct.loss_window_secs
    );
}
