//! Chaos-campaign integration tests: the property-harness hookup (a
//! failing chaos invariant auto-dumps its fault-annotated trace, and the
//! case seed reproduces the identical fault sequence), and fleet-level
//! bit-identity of chaos digests and traces across thread counts.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tiger::bench::fleet::run_indexed;
use tiger::faults::FaultPlan;
use tiger::sim::SimTime;
use tiger::trace::{parse_dump, TraceEvent};
use tiger::workload::{chaos_digest, run_chaos, ChaosConfig};

/// A plan the invariants deterministically reject on the small test
/// system: a power-domain cut taking two cubs at once. On 4 cubs with
/// decluster 2 every cub pair shares a mirror group, so the double
/// failure is beyond the design tolerance and the checker flags it.
fn violating_plan() -> FaultPlan {
    FaultPlan::new().power_domain(vec![1, 2], SimTime::from_secs(30))
}

/// A failing chaos invariant rides the existing `tiger_sim::check`
/// failure hook: the campaign's ring-buffer trace — fault injections
/// inline with the protocol's reactions — is dumped to a file named in
/// the failure report, next to the `TIGER_PROP_REPLAY` seed that
/// reproduces the identical fault sequence.
#[test]
fn failing_chaos_invariant_dumps_its_fault_trace() {
    tiger::trace::install_property_dump();
    let result = catch_unwind(AssertUnwindSafe(|| {
        tiger::sim::check::check_cases("chaos-invariant-vehicle", 1, |rng| {
            let mut cfg = ChaosConfig::quick(violating_plan());
            cfg.tiger.seed = rng.gen_range(1u64..1 << 20);
            let out = run_chaos(&cfg);
            assert!(
                out.violations.is_empty(),
                "beyond-tolerance plan must violate: {:?}",
                out.violations
            );
        });
    }));
    let payload = result.expect_err("the double failure always violates");
    let report = payload
        .downcast_ref::<String>()
        .expect("string panic payload");
    assert!(report.contains("TIGER_PROP_REPLAY"), "{report}");
    let path = report
        .lines()
        .find_map(|l| l.trim().strip_prefix("trace dumped to: "))
        .unwrap_or_else(|| panic!("report must name the dump file:\n{report}"));
    let text = std::fs::read_to_string(path).expect("dump file exists");
    let records = parse_dump(&text).expect("dump file parses");
    let cut: Vec<u32> = records
        .iter()
        .filter_map(|r| match r.ev {
            TraceEvent::PowerCut { cub } => Some(cub),
            _ => None,
        })
        .collect();
    assert_eq!(
        cut,
        vec![1, 2],
        "both correlated power cuts are in the dump, in order"
    );
    std::fs::remove_file(path).ok();
}

/// The case seed is the whole story: re-running a chaos campaign with
/// the same plan and seed reproduces the injection sequence, metrics,
/// and trace bit for bit — which is what makes a `TIGER_PROP_REPLAY`
/// run show the investigator the exact failing timeline.
#[test]
fn same_seed_reproduces_the_identical_fault_sequence() {
    let cfg = || {
        let plan = FaultPlan::parse(
            "drop c1>* prob=0.3 from=10s until=25s\n\
             disk-transient c2:0 prob=0.5 from=15s until=30s\n\
             crash c3 at=35s",
        )
        .expect("plan parses");
        let mut cfg = ChaosConfig::quick(plan);
        cfg.tiger.seed = 0xC0FFEE;
        cfg.run_to = SimTime::from_secs(60);
        cfg
    };
    let a = run_chaos(&cfg());
    let b = run_chaos(&cfg());
    assert_eq!(chaos_digest(&a), chaos_digest(&b));
    assert_eq!(
        a.trace, b.trace,
        "fault sequence must replay bit-identically"
    );
    assert!(a.trace.contains("net-drop"), "probabilistic drops fired");
    assert!(a.trace.contains("disk-transient"), "disk faults fired");
}

/// Chaos campaigns shard through the fleet like any other job: the same
/// sweep at 1 and 2 threads yields byte-identical digests and traces.
#[test]
fn chaos_digests_are_fleet_thread_invariant() {
    let plans = ["crash c1 at=30s", "freeze c2 from=30s until=31s"];
    let sweep = |threads: usize| {
        run_indexed(plans.len(), threads, |i| {
            let mut cfg = ChaosConfig::quick(FaultPlan::parse(plans[i]).expect("plan parses"));
            cfg.run_to = SimTime::from_secs(50);
            let out = run_chaos(&cfg);
            (chaos_digest(&out), out.trace)
        })
    };
    assert_eq!(sweep(1), sweep(2), "thread count must be invisible");
}

/// The plan-free fast path: a chaos run with an empty plan is just a
/// traced workload — no injections, no declarations, no violations.
#[test]
fn empty_plan_chaos_run_is_clean() {
    let mut cfg = ChaosConfig::quick(FaultPlan::new());
    cfg.run_to = SimTime::from_secs(40);
    let out = run_chaos(&cfg);
    assert!(out.declares.is_empty(), "{:?}", out.declares);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert_eq!(out.dup_blocks, 0);
    assert_eq!(out.transient_errors, 0);
    assert_eq!(out.loss_window_secs, 0.0);
}
