//! The golden determinism test: a run is a pure function of
//! `(TigerConfig, workload, seed)`.
//!
//! This is the repo's foundational contract (see `crates/core/src/lib.rs`
//! and DESIGN.md), now enforced end-to-end: the event queue breaks ties by
//! sequence number, maps iterate deterministically, and — as of the
//! dependency-free substrate — the PRNG (`tiger_sim::SimRng`) is in-tree,
//! so no registry crate can change a stream between builds.

use tiger::core::{TigerConfig, TigerSystem};
use tiger::sim::{SimDuration, SimTime};
use tiger::workload::{populate_catalog, CatalogSpec};
use tiger_sim::RngTree;

/// Drives a moderately busy system — blips on, failures, churn — and
/// returns everything observable about the run.
fn run_once(seed: u64) -> (tiger::core::Metrics, tiger::core::LossReport, u64, u64) {
    let mut cfg = TigerConfig::small_test();
    cfg.seed = seed;
    cfg.deadman_timeout = SimDuration::from_millis(1_500);
    let mut sys = TigerSystem::new(cfg);
    sys.enable_omniscient();
    let files = populate_catalog(
        &mut sys,
        &CatalogSpec::sized_for(SimDuration::from_secs(120), 6),
    );
    let mut rng = RngTree::new(seed).fork("workload", 0);
    let mut live = Vec::new();
    let mut t = SimTime::from_millis(100);
    // Random starts and stops, plus one cub failure mid-run: every
    // stochastic subsystem (disk blips, net jitter, arrivals) is exercised.
    sys.fail_cub_at(SimTime::from_secs(35), tiger::layout::CubId(1));
    for _ in 0..60 {
        t = t + SimDuration::from_millis(rng.gen_range(100u64..700));
        if live.len() < 10 && rng.gen_bool(0.7) {
            let client = sys.add_client();
            let file = files[rng.gen_range(0..files.len())];
            live.push(sys.request_start(t, client, file));
        } else if !live.is_empty() {
            let idx = rng.gen_range(0..live.len());
            sys.request_stop(t, live.swap_remove(idx));
        }
    }
    sys.run_until(t + SimDuration::from_secs(90));
    sys.sample_window(sys.now(), tiger::layout::CubId(0), None);

    let mut received = 0u64;
    let mut missing = 0u64;
    for c in sys.clients() {
        for (_, v) in c.viewers() {
            received += u64::from(v.blocks_received());
            missing += u64::from(v.blocks_missing());
        }
    }
    let loss = sys.metrics().loss.clone();
    (sys.metrics().clone(), loss, received, missing)
}

#[test]
fn identical_seeds_give_identical_runs() {
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a.0, b.0, "Metrics diverged between identical runs");
    assert_eq!(a.1, b.1, "LossReport diverged between identical runs");
    assert_eq!(a.2, b.2, "client block receipt diverged");
    assert_eq!(a.3, b.3, "client block loss diverged");
    // The run must have actually done something for the equality above to
    // mean anything.
    assert!(a.2 > 0, "golden run delivered no blocks");
    assert!(!a.0.windows.is_empty(), "golden run sampled no windows");
}

#[test]
fn different_seeds_give_different_runs() {
    // The converse sanity check: the seed actually reaches the streams.
    let a = run_once(42);
    let b = run_once(1997);
    assert!(
        a.0 != b.0 || a.2 != b.2,
        "changing the seed changed nothing — the RNG tree is disconnected"
    );
}
