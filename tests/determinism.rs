//! The golden determinism test: a run is a pure function of
//! `(TigerConfig, workload, seed)`.
//!
//! This is the repo's foundational contract (see `crates/core/src/lib.rs`
//! and DESIGN.md), now enforced end-to-end: the event queue breaks ties by
//! sequence number, maps iterate deterministically, and — as of the
//! dependency-free substrate — the PRNG (`tiger_sim::SimRng`) is in-tree,
//! so no registry crate can change a stream between builds.

use tiger::core::{TigerConfig, TigerSystem};
use tiger::sim::{SimDuration, SimTime};
use tiger::workload::{populate_catalog, CatalogSpec};
use tiger_sim::RngTree;

/// Drives a moderately busy system — blips on, failures, churn — and
/// returns everything observable about the run.
fn run_once(seed: u64) -> (tiger::core::Metrics, tiger::core::LossReport, u64, u64) {
    let mut cfg = TigerConfig::small_test();
    cfg.seed = seed;
    cfg.deadman_timeout = SimDuration::from_millis(1_500);
    let mut sys = TigerSystem::new(cfg);
    sys.enable_omniscient();
    let files = populate_catalog(
        &mut sys,
        &CatalogSpec::sized_for(SimDuration::from_secs(120), 6),
    );
    let mut rng = RngTree::new(seed).fork("workload", 0);
    let mut live = Vec::new();
    let mut t = SimTime::from_millis(100);
    // Random starts and stops, plus one cub failure mid-run: every
    // stochastic subsystem (disk blips, net jitter, arrivals) is exercised.
    sys.fail_cub_at(SimTime::from_secs(35), tiger::layout::CubId(1));
    for _ in 0..60 {
        t = t + SimDuration::from_millis(rng.gen_range(100u64..700));
        if live.len() < 10 && rng.gen_bool(0.7) {
            let client = sys.add_client();
            let file = files[rng.gen_range(0..files.len())];
            live.push(sys.request_start(t, client, file));
        } else if !live.is_empty() {
            let idx = rng.gen_range(0..live.len());
            sys.request_stop(t, live.swap_remove(idx));
        }
    }
    sys.run_until(t + SimDuration::from_secs(90));
    sys.sample_window(sys.now(), tiger::layout::CubId(0), None);

    let mut received = 0u64;
    let mut missing = 0u64;
    for c in sys.clients() {
        for (_, v) in c.viewers() {
            received += u64::from(v.blocks_received());
            missing += u64::from(v.blocks_missing());
        }
    }
    let loss = sys.metrics().loss.clone();
    (sys.metrics().clone(), loss, received, missing)
}

#[test]
fn identical_seeds_give_identical_runs() {
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a.0, b.0, "Metrics diverged between identical runs");
    assert_eq!(a.1, b.1, "LossReport diverged between identical runs");
    assert_eq!(a.2, b.2, "client block receipt diverged");
    assert_eq!(a.3, b.3, "client block loss diverged");
    // The run must have actually done something for the equality above to
    // mean anything.
    assert!(a.2 > 0, "golden run delivered no blocks");
    assert!(!a.0.windows.is_empty(), "golden run sampled no windows");
}

/// The fleet extends the contract to parallel execution: sharding
/// independent experiments across worker threads must not change one bit
/// of the merged output, because results merge in shard order, not
/// completion order.
#[test]
fn fleet_output_is_identical_at_any_thread_count() {
    use tiger::bench::fleet::{metrics_digest, run_fleet, standard_jobs, Scale};

    // A cross-section of the catalogue: two full-system ramps (fig8 and
    // the multi-seed capacity sweep, which carry merged Metrics), one
    // data-structure churn sweep, and one analytic sweep. Quick scale
    // keeps the three runs to seconds.
    let pick = [
        "fig8",
        "capacity_seeds",
        "ablation_fragmentation",
        "ablation_decluster",
    ];
    let runs: Vec<_> = [1usize, 2, 3]
        .into_iter()
        .map(|threads| {
            let jobs: Vec<_> = standard_jobs()
                .into_iter()
                .filter(|j| pick.contains(&j.name))
                .collect();
            run_fleet(&jobs, Scale::Quick, threads)
        })
        .collect();

    let [one, two, three] = runs.try_into().ok().expect("three runs");
    assert_eq!(
        one.merged, two.merged,
        "merged Metrics diverged at 2 threads"
    );
    assert_eq!(
        one.merged, three.merged,
        "merged Metrics diverged at 3 threads"
    );
    for (a, b) in one.reports.iter().zip(&two.reports) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.output, b.output,
            "report '{}' diverged at 2 threads",
            a.name
        );
    }
    for (a, b) in one.reports.iter().zip(&three.reports) {
        assert_eq!(
            a.output, b.output,
            "report '{}' diverged at 3 threads",
            a.name
        );
    }
    // The runs must have measured something for equality to mean anything.
    assert!(!one.merged.windows.is_empty(), "fleet sampled no windows");
    assert!(one.merged.loss.blocks_sent > 0, "fleet sent no blocks");
    assert_eq!(metrics_digest(&one.merged), metrics_digest(&three.merged));
}

#[test]
fn different_seeds_give_different_runs() {
    // The converse sanity check: the seed actually reaches the streams.
    let a = run_once(42);
    let b = run_once(1997);
    assert!(
        a.0 != b.0 || a.2 != b.2,
        "changing the seed changed nothing — the RNG tree is disconnected"
    );
}
