//! Cross-crate integration tests: the full-scale system exercised through
//! the facade crate, with the omniscient hallucination checker on.

use tiger::core::{TigerConfig, TigerSystem};
use tiger::layout::CubId;
use tiger::sim::{Bandwidth, SimDuration, SimTime};
use tiger::workload::{run_ramp, run_reconfig, CatalogSpec, RampConfig, ReconfigConfig};

fn rate() -> Bandwidth {
    Bandwidth::from_mbit_per_sec(2)
}

#[test]
fn sosp_scale_run_respects_the_hallucination() {
    // Full 14-cub system, 120 streams, omniscient checker on: every send
    // and insert must be consistent with the never-materialized global
    // schedule.
    let mut cfg = TigerConfig::sosp97();
    cfg.disk = cfg.disk.without_blips();
    let mut sys = TigerSystem::new(cfg);
    sys.enable_omniscient();
    let films: Vec<_> = (0..8)
        .map(|_| sys.add_file(rate(), SimDuration::from_secs(90)))
        .collect();
    for i in 0..120u64 {
        let client = sys.add_client();
        sys.request_start(
            SimTime::from_millis(100 + i * 150),
            client,
            films[(i % 8) as usize],
        );
    }
    sys.run_until(SimTime::from_secs(130));
    let report = sys.all_clients_report();
    assert_eq!(report.completed_viewers, 120, "{report:?}");
    assert_eq!(report.blocks_missing, 0);
    assert!(
        sys.take_violations().is_empty(),
        "{:?}",
        sys.take_violations()
    );
}

#[test]
fn sosp_scale_capacity_is_602() {
    let cfg = TigerConfig::sosp97();
    let sys = TigerSystem::new(cfg);
    assert_eq!(sys.shared().params.capacity(), 602);
    assert_eq!(
        sys.shared().params.schedule_len(),
        SimDuration::from_secs(56)
    );
}

#[test]
fn full_ramp_is_deterministic() {
    let run = || {
        let cfg = RampConfig {
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(120), 8),
            settle: SimDuration::from_secs(20),
            target: Some(120),
            ..RampConfig::fig8(TigerConfig::sosp97(), SimDuration::from_secs(20))
        };
        let r = run_ramp(&cfg);
        (
            r.loss.blocks_sent,
            r.loss.server_missed,
            r.windows
                .iter()
                .map(|w| (w.streams, (w.cub_cpu * 1e12) as u64))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn ramp_loads_are_linear_in_streams() {
    let cfg = RampConfig {
        catalog: CatalogSpec::sized_for(SimDuration::from_secs(200), 64),
        settle: SimDuration::from_secs(20),
        target: Some(240),
        ..RampConfig::fig8(TigerConfig::sosp97(), SimDuration::from_secs(20))
    };
    let r = run_ramp(&cfg);
    assert_eq!(r.windows.len(), 8);
    // cub CPU and disk load scale with streams: the ratio of
    // (load - base) between window 8 and window 2 matches the stream
    // ratio within 20%.
    let w2 = &r.windows[1];
    let w8 = &r.windows[7];
    let stream_ratio = f64::from(w8.streams) / f64::from(w2.streams);
    for (name, a, b) in [
        ("cub_cpu", w2.cub_cpu, w8.cub_cpu),
        ("disk_load", w2.disk_load, w8.disk_load),
    ] {
        let load_ratio = b / a;
        assert!(
            (load_ratio / stream_ratio - 1.0).abs() < 0.25,
            "{name} not linear: loads {a:.3}->{b:.3}, streams x{stream_ratio:.2}"
        );
    }
    // The controller's load does not grow with streams.
    assert!(
        (w8.controller_cpu - w2.controller_cpu).abs() < 0.02,
        "controller load must stay flat: {} -> {}",
        w2.controller_cpu,
        w8.controller_cpu
    );
}

#[test]
fn failed_mode_mirror_cub_outworks_unfailed() {
    let base = RampConfig {
        catalog: CatalogSpec::sized_for(SimDuration::from_secs(150), 8),
        settle: SimDuration::from_secs(15),
        target: Some(240),
        ..RampConfig::fig8(TigerConfig::sosp97(), SimDuration::from_secs(15))
    };
    let unfailed = run_ramp(&base);
    let failed = run_ramp(&RampConfig {
        failed_cub: Some(CubId(5)),
        disk_report_cub: Some(CubId(6)),
        report_cub: CubId(6),
        ..base
    });
    let u = unfailed.windows.last().expect("windows");
    let f = failed.windows.last().expect("windows");
    assert!(
        f.disk_load > u.disk_load * 1.15,
        "mirror disks must work harder"
    );
    assert!(f.control_bytes_per_sec > u.control_bytes_per_sec * 1.5);
    assert!(
        f.nic_utilization > u.nic_utilization,
        "mirror cub sends more"
    );
}

#[test]
fn reconfiguration_window_is_seconds_not_minutes() {
    let mut tiger = TigerConfig::sosp97();
    tiger.disk = tiger.disk.without_blips();
    let cfg = ReconfigConfig {
        catalog: CatalogSpec::sized_for(SimDuration::from_secs(220), 8),
        load: 0.3,
        victim: CubId(5),
        cut_at: SimTime::from_secs(60),
        observe: SimDuration::from_secs(90),
        tiger,
    };
    let r = run_reconfig(&cfg);
    assert!(r.blocks_lost > 0, "the detection window loses some blocks");
    assert!(
        r.loss_window_secs > 1.0 && r.loss_window_secs < 12.0,
        "loss window {}s (paper: ~8 s)",
        r.loss_window_secs
    );
    let det = r.detection_secs.expect("failure detected");
    assert!(det < 6.5, "detection {det}s with a 5 s deadman timeout");
}

#[test]
fn facade_reexports_compose() {
    // Spot-check that the facade's modules interoperate: derive schedule
    // params from a disk profile and stripe config via the facade paths.
    let profile = tiger::disk::DiskProfile::sosp97();
    let stripe = tiger::layout::StripeConfig::new(14, 4, 4);
    let params = tiger::sched::ScheduleParams::derive(
        stripe,
        SimDuration::from_secs(1),
        tiger::sim::ByteSize::from_bytes(250_000),
        profile.worst_case_read(tiger::sim::ByteSize::from_bytes(250_000), 4, true),
        Bandwidth::from_mbit_per_sec(135),
    );
    assert_eq!(params.capacity(), 602);
}
