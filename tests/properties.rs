//! Property-based tests on cross-crate invariants.
//!
//! These hold for *arbitrary* system geometries, not just the SOSP testbed:
//! striping is a bijection per lap, mirror pieces always avoid their
//! primary, the exact slot partition tiles the ring, ownership is unique,
//! and the restriper conserves blocks.

use proptest::prelude::*;

use tiger::layout::{BlockNum, DiskId, MirrorPlacement, StripeConfig};
use tiger::sched::{ScheduleParams, SlotId};
use tiger::sim::{Bandwidth, ByteSize, SimDuration, SimTime};

fn arb_stripe() -> impl Strategy<Value = StripeConfig> {
    (2u32..20, 1u32..5, 1u32..5).prop_filter_map("decluster must fit the ring", |(cubs, dpc, d)| {
        (d < cubs * dpc).then(|| StripeConfig::new(cubs, dpc, d))
    })
}

fn params_for(stripe: StripeConfig, disk_ms: u64) -> ScheduleParams {
    ScheduleParams::derive(
        stripe,
        SimDuration::from_secs(1),
        ByteSize::from_bytes(250_000),
        SimDuration::from_millis(disk_ms),
        Bandwidth::from_mbit_per_sec(622), // fast NIC: disk-bound
    )
}

proptest! {
    #[test]
    fn striping_visits_every_disk_once_per_lap(
        stripe in arb_stripe(),
        start in 0u32..1000,
    ) {
        let n = stripe.num_disks();
        let start = DiskId(start % n);
        let mut seen = vec![false; n as usize];
        for b in 0..n {
            let loc = stripe.block_location(start, BlockNum(b));
            prop_assert!(!seen[loc.disk.index()], "disk visited twice in one lap");
            seen[loc.disk.index()] = true;
            prop_assert_eq!(stripe.cub_of(loc.disk), loc.cub);
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mirror_pieces_never_touch_their_primary(
        stripe in arb_stripe(),
        disk in 0u32..1000,
        size in 1u64..2_000_000,
    ) {
        let placement = MirrorPlacement::new(stripe);
        let primary = DiskId(disk % stripe.num_disks());
        let pieces = placement.pieces_for(primary, ByteSize::from_bytes(size));
        prop_assert_eq!(pieces.len() as u32, stripe.decluster);
        let total: u64 = pieces.iter().map(|p| p.size.as_bytes()).sum();
        prop_assert_eq!(total, size, "pieces must cover the block exactly");
        for p in &pieces {
            prop_assert_ne!(p.disk, primary, "a piece on its primary defeats mirroring");
        }
        // Pieces land on consecutive distinct disks.
        let mut disks: Vec<u32> = pieces.iter().map(|p| p.disk.raw()).collect();
        disks.dedup();
        prop_assert_eq!(disks.len() as u32, stripe.decluster);
    }

    #[test]
    fn exposure_set_matches_survival_oracle(
        stripe in arb_stripe(),
        failed in 0u32..1000,
        other in 0u32..1000,
    ) {
        let placement = MirrorPlacement::new(stripe);
        let n = stripe.num_disks();
        let a = DiskId(failed % n);
        let b = DiskId(other % n);
        prop_assume!(a != b);
        let exposed = placement.second_failure_exposure(a);
        prop_assert_eq!(
            placement.survives(&[a, b]),
            !exposed.contains(&b),
            "exposure set and survival oracle disagree for {:?},{:?}", a, b
        );
    }

    #[test]
    fn slots_tile_the_ring_for_any_geometry(
        stripe in arb_stripe(),
        disk_ms in 40u64..400,
        probe in 0u64..1_000_000,
    ) {
        let params = params_for(stripe, disk_ms);
        let len = params.schedule_len().as_nanos();
        let pos = SimDuration::from_nanos(probe.wrapping_mul(0x9e37_79b9) % len);
        let slot = params.slot_at(pos);
        prop_assert!(slot.raw() < params.capacity());
        // slot_start(slot) <= pos < slot_start(slot+1).
        prop_assert!(params.slot_start(slot) <= pos);
        if slot.raw() + 1 < params.capacity() {
            prop_assert!(pos < params.slot_start(SlotId(slot.raw() + 1)));
        }
    }

    #[test]
    fn at_most_one_owner_per_slot_any_geometry(
        stripe in arb_stripe(),
        disk_ms in 40u64..400,
        t_ms in 0u64..500_000,
        slot_seed in 0u32..1000,
    ) {
        let params = params_for(stripe, disk_ms);
        let slot = SlotId(slot_seed % params.capacity());
        let t = SimTime::from_millis(t_ms);
        // The closed-form owner matches a brute-force scan of all disks.
        let owner = params.owner_of_slot(slot, t);
        let brute: Vec<DiskId> = (0..stripe.num_disks())
            .map(DiskId)
            .filter(|&d| params.owned_slot_range(d, t).contains(&slot))
            .collect();
        prop_assert!(brute.len() <= 1, "two disks own {:?} at {:?}", slot, t);
        prop_assert_eq!(owner, brute.first().copied());
    }

    #[test]
    fn send_times_advance_one_bpt_per_disk(
        stripe in arb_stripe(),
        disk_ms in 40u64..400,
        slot_seed in 0u32..1000,
        d in 0u32..1000,
    ) {
        let params = params_for(stripe, disk_ms);
        let slot = SlotId(slot_seed % params.capacity());
        let n = stripe.num_disks();
        let disk = DiskId(d % n);
        let next = stripe.disk_after(disk, 1);
        let t0 = params.slot_send_time(disk, slot, SimTime::from_secs(100));
        let t1 = params.slot_send_time(next, slot, t0);
        prop_assert_eq!(t1 - t0, params.block_play_time());
    }

    #[test]
    fn restripe_conserves_blocks(
        cubs_before in 2u32..10,
        cubs_after in 2u32..10,
        files in 1u32..6,
    ) {
        use tiger::layout::catalog::BitrateMode;
        use tiger::layout::{FileCatalog, RestripePlan};
        let old = StripeConfig::new(cubs_before, 2, 1);
        let new = StripeConfig::new(cubs_after, 2, 1);
        let mut catalog = FileCatalog::new(
            old,
            SimDuration::from_secs(1),
            Bandwidth::from_mbit_per_sec(2),
            BitrateMode::Single,
        );
        for _ in 0..files {
            catalog.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(60));
        }
        let plan = RestripePlan::plan(&catalog, old, new);
        let stats = plan.stats();
        prop_assert_eq!(
            stats.moved_blocks + stats.stationary_blocks,
            plan.total_blocks()
        );
        // Every move's endpoints match the two configurations' layouts.
        for m in plan.moves() {
            let meta = catalog.get(m.file).expect("file exists");
            prop_assert_eq!(old.block_location(meta.start_disk, m.block).disk, m.from);
            prop_assert_eq!(
                new.block_location(new.starting_disk(m.file), m.block).disk,
                m.to
            );
            prop_assert_ne!(m.from, m.to, "no-op moves must be filtered");
        }
    }
}
