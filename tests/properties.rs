//! Property-based tests on cross-crate invariants.
//!
//! These hold for *arbitrary* system geometries, not just the SOSP testbed:
//! striping is a bijection per lap, mirror pieces always avoid their
//! primary, the exact slot partition tiles the ring, ownership is unique,
//! and the restriper conserves blocks.
//!
//! Ported from `proptest` to the in-tree `tiger_sim::check` harness: each
//! property runs over many deterministically seeded cases, and failures
//! report a replayable case seed.

use tiger::layout::{BlockNum, DiskId, MirrorPlacement, StripeConfig};
use tiger::sched::{ScheduleParams, SlotId};
use tiger::sim::check::check;
use tiger::sim::{Bandwidth, ByteSize, SimDuration, SimRng, SimTime};

/// An arbitrary geometry where the decluster factor fits the ring
/// (rejection-samples the rare `d >= cubs * dpc` draw).
fn arb_stripe(rng: &mut SimRng) -> StripeConfig {
    loop {
        let cubs = rng.gen_range(2u32..20);
        let dpc = rng.gen_range(1u32..5);
        let d = rng.gen_range(1u32..5);
        if d < cubs * dpc {
            return StripeConfig::new(cubs, dpc, d);
        }
    }
}

fn params_for(stripe: StripeConfig, disk_ms: u64) -> ScheduleParams {
    ScheduleParams::derive(
        stripe,
        SimDuration::from_secs(1),
        ByteSize::from_bytes(250_000),
        SimDuration::from_millis(disk_ms),
        Bandwidth::from_mbit_per_sec(622), // fast NIC: disk-bound
    )
}

#[test]
fn striping_visits_every_disk_once_per_lap() {
    check("striping_visits_every_disk_once_per_lap", |rng| {
        let stripe = arb_stripe(rng);
        let start = rng.gen_range(0u32..1000);
        let n = stripe.num_disks();
        let start = DiskId(start % n);
        let mut seen = vec![false; n as usize];
        for b in 0..n {
            let loc = stripe.block_location(start, BlockNum(b));
            assert!(!seen[loc.disk.index()], "disk visited twice in one lap");
            seen[loc.disk.index()] = true;
            assert_eq!(stripe.cub_of(loc.disk), loc.cub);
        }
        assert!(seen.iter().all(|&s| s));
    });
}

#[test]
fn mirror_pieces_never_touch_their_primary() {
    check("mirror_pieces_never_touch_their_primary", |rng| {
        let stripe = arb_stripe(rng);
        let disk = rng.gen_range(0u32..1000);
        let size = rng.gen_range(1u64..2_000_000);
        let placement = MirrorPlacement::new(stripe);
        let primary = DiskId(disk % stripe.num_disks());
        let pieces = placement.pieces_for(primary, ByteSize::from_bytes(size));
        assert_eq!(pieces.len() as u32, stripe.decluster);
        let total: u64 = pieces.iter().map(|p| p.size.as_bytes()).sum();
        assert_eq!(total, size, "pieces must cover the block exactly");
        for p in &pieces {
            assert_ne!(p.disk, primary, "a piece on its primary defeats mirroring");
        }
        // Pieces land on consecutive distinct disks.
        let mut disks: Vec<u32> = pieces.iter().map(|p| p.disk.raw()).collect();
        disks.dedup();
        assert_eq!(disks.len() as u32, stripe.decluster);
    });
}

#[test]
fn exposure_set_matches_survival_oracle() {
    check("exposure_set_matches_survival_oracle", |rng| {
        let stripe = arb_stripe(rng);
        let failed = rng.gen_range(0u32..1000);
        let other = rng.gen_range(0u32..1000);
        let placement = MirrorPlacement::new(stripe);
        let n = stripe.num_disks();
        let a = DiskId(failed % n);
        let b = DiskId(other % n);
        if a == b {
            return; // assume a != b (proptest's prop_assume)
        }
        let exposed = placement.second_failure_exposure(a);
        assert_eq!(
            placement.survives(&[a, b]),
            !exposed.contains(&b),
            "exposure set and survival oracle disagree for {:?},{:?}",
            a,
            b
        );
    });
}

#[test]
fn slots_tile_the_ring_for_any_geometry() {
    check("slots_tile_the_ring_for_any_geometry", |rng| {
        let stripe = arb_stripe(rng);
        let disk_ms = rng.gen_range(40u64..400);
        let probe = rng.gen_range(0u64..1_000_000);
        let params = params_for(stripe, disk_ms);
        let len = params.schedule_len().as_nanos();
        let pos = SimDuration::from_nanos(probe.wrapping_mul(0x9e37_79b9) % len);
        let slot = params.slot_at(pos);
        assert!(slot.raw() < params.capacity());
        // slot_start(slot) <= pos < slot_start(slot+1).
        assert!(params.slot_start(slot) <= pos);
        if slot.raw() + 1 < params.capacity() {
            assert!(pos < params.slot_start(SlotId(slot.raw() + 1)));
        }
    });
}

#[test]
fn at_most_one_owner_per_slot_any_geometry() {
    check("at_most_one_owner_per_slot_any_geometry", |rng| {
        let stripe = arb_stripe(rng);
        let disk_ms = rng.gen_range(40u64..400);
        let t_ms = rng.gen_range(0u64..500_000);
        let slot_seed = rng.gen_range(0u32..1000);
        let params = params_for(stripe, disk_ms);
        let slot = SlotId(slot_seed % params.capacity());
        let t = SimTime::from_millis(t_ms);
        // The closed-form owner matches a brute-force scan of all disks.
        let owner = params.owner_of_slot(slot, t);
        let brute: Vec<DiskId> = (0..stripe.num_disks())
            .map(DiskId)
            .filter(|&d| params.owned_slot_range(d, t).contains(&slot))
            .collect();
        assert!(brute.len() <= 1, "two disks own {:?} at {:?}", slot, t);
        assert_eq!(owner, brute.first().copied());
    });
}

#[test]
fn send_times_advance_one_bpt_per_disk() {
    check("send_times_advance_one_bpt_per_disk", |rng| {
        let stripe = arb_stripe(rng);
        let disk_ms = rng.gen_range(40u64..400);
        let slot_seed = rng.gen_range(0u32..1000);
        let d = rng.gen_range(0u32..1000);
        let params = params_for(stripe, disk_ms);
        let slot = SlotId(slot_seed % params.capacity());
        let n = stripe.num_disks();
        let disk = DiskId(d % n);
        let next = stripe.disk_after(disk, 1);
        let t0 = params.slot_send_time(disk, slot, SimTime::from_secs(100));
        let t1 = params.slot_send_time(next, slot, t0);
        assert_eq!(t1 - t0, params.block_play_time());
    });
}

#[test]
fn restripe_conserves_blocks() {
    check("restripe_conserves_blocks", |rng| {
        let cubs_before = rng.gen_range(2u32..10);
        let cubs_after = rng.gen_range(2u32..10);
        let files = rng.gen_range(1u32..6);
        use tiger::layout::catalog::BitrateMode;
        use tiger::layout::{FileCatalog, RestripePlan};
        let old = StripeConfig::new(cubs_before, 2, 1);
        let new = StripeConfig::new(cubs_after, 2, 1);
        let mut catalog = FileCatalog::new(
            old,
            SimDuration::from_secs(1),
            Bandwidth::from_mbit_per_sec(2),
            BitrateMode::Single,
        );
        for _ in 0..files {
            catalog.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(60));
        }
        let plan = RestripePlan::plan(&catalog, old, new);
        let stats = plan.stats();
        assert_eq!(
            stats.moved_blocks + stats.stationary_blocks,
            plan.total_blocks()
        );
        // Every move's endpoints match the two configurations' layouts.
        for m in plan.moves() {
            let meta = catalog.get(m.file).expect("file exists");
            assert_eq!(old.block_location(meta.start_disk, m.block).disk, m.from);
            assert_eq!(
                new.block_location(new.starting_disk(m.file), m.block).disk,
                m.to
            );
            assert_ne!(m.from, m.to, "no-op moves must be filtered");
        }
    });
}
