//! Protocol-trace integration tests: deadman edge cases golden-tested
//! through the ring-buffer trace, trace transparency (a traced run is the
//! same run), and the property-failure auto-dump pipeline.
//!
//! Nothing here sets process environment variables — the suite runs
//! multithreaded, so tracing is switched on per-system with
//! [`TigerSystem::enable_trace`].

use std::panic::{catch_unwind, AssertUnwindSafe};

use tiger::core::{Message, TigerConfig, TigerSystem};
use tiger::layout::ids::ViewerInstance;
use tiger::layout::{BlockNum, CubId, ViewerId};
use tiger::sched::{Deschedule, SlotId, StreamKind, ViewerState};
use tiger::sim::{Bandwidth, SimDuration, SimTime};
use tiger::trace::{parse_dump, TraceEvent};

fn small() -> TigerConfig {
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    cfg
}

fn traced_system() -> TigerSystem {
    let mut sys = TigerSystem::new(small());
    sys.enable_trace(16_384);
    sys
}

/// Event names recorded on `cub`, in order.
fn names_on(sys: &TigerSystem, cub: CubId) -> Vec<&'static str> {
    sys.tracer()
        .records()
        .iter()
        .filter(|r| r.cub == cub.raw())
        .map(|r| r.ev.name())
        .collect()
}

// --- Deadman edge cases (§2.3) ---------------------------------------------

/// A ping arriving exactly `deadman_timeout` ago is still alive: the
/// declaration threshold is strictly `silence > deadman_timeout`, so the
/// boundary instant must NOT declare a failure.
#[test]
fn ping_at_exactly_deadman_timeout_is_not_a_failure() {
    let mut sys = traced_system();
    let timeout = sys.shared().cfg.deadman_timeout;
    let t0 = SimTime::from_secs(1);
    sys.with_cub_mut(CubId(1), |cub, sh| {
        cub.on_message(sh, t0, Message::DeadmanPing { from: CubId(0) });
        cub.on_deadman_check(sh, t0 + timeout);
    });
    assert_eq!(
        names_on(&sys, CubId(1)),
        Vec::<&str>::new(),
        "silence == timeout must stay silent in the trace"
    );

    // One nanosecond later the same check crosses the strict threshold.
    sys.with_cub_mut(CubId(1), |cub, sh| {
        cub.on_deadman_check(sh, t0 + timeout + SimDuration::from_nanos(1));
    });
    let records = sys.tracer().records();
    let declare = records
        .iter()
        .find_map(|r| match r.ev {
            TraceEvent::DeadmanDeclare { failed, silence_ns } => Some((failed, silence_ns)),
            _ => None,
        })
        .expect("one nanosecond past the timeout must declare");
    assert_eq!(declare.0, 0, "the silent predecessor is cub0");
    assert_eq!(
        declare.1,
        timeout.as_nanos() + 1,
        "declared silence is exactly timeout + 1ns"
    );
}

/// A failure notice racing a deschedule hold: whichever arrives first, the
/// hold survives and a late viewer state for the descheduled instance is
/// still blocked. Golden-tested as the exact per-cub trace sequence.
#[test]
fn failure_notice_racing_deschedule_hold() {
    let run = |notice_first: bool| {
        let mut sys = traced_system();
        let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(10));
        let loc = sys
            .shared()
            .catalog
            .locate(film, BlockNum(0))
            .expect("block 0 exists");
        let target = loc.cub;
        // A cub whose failure target is *not* acting-successor-covered by
        // `target`, so the notice itself adds no takeover events.
        let far = CubId((target.raw() + 2) % sys.shared().cfg.stripe.num_cubs);
        let instance = ViewerInstance {
            viewer: ViewerId(7),
            incarnation: 0,
        };
        let slot = SlotId(5);
        let vs = ViewerState {
            instance,
            client: 0,
            file: film,
            position: BlockNum(0),
            slot,
            play_seq: 0,
            bitrate: Bandwidth::from_mbit_per_sec(2),
            kind: StreamKind::Primary,
        };
        let d = Deschedule { instance, slot };
        let t = SimTime::from_secs(1);
        sys.with_cub_mut(target, |cub, sh| {
            let desched = Message::Deschedule {
                request: d,
                hops_left: 2,
            };
            let notice = Message::FailureNotice { failed: far };
            if notice_first {
                cub.on_message(sh, t, notice);
                cub.on_message(sh, t + SimDuration::from_millis(1), desched);
            } else {
                cub.on_message(sh, t, desched);
                cub.on_message(sh, t + SimDuration::from_millis(1), notice);
            }
            cub.on_message(
                sh,
                t + SimDuration::from_millis(2),
                Message::ViewerState(vs),
            );
        });
        (names_on(&sys, target), sys)
    };

    let (desched_first, sys_a) = run(false);
    let (notice_first, _sys_b) = run(true);
    assert_eq!(
        desched_first,
        vec!["desched-apply", "failure-notice", "vs-blocked"],
        "hold taken, then notice, then the late state bounces"
    );
    assert_eq!(
        notice_first,
        vec!["failure-notice", "desched-apply", "vs-blocked"],
        "notice first changes nothing: the hold still blocks the state"
    );

    // The golden detail: the hold was a first sighting that killed nothing,
    // and the block happened regardless of notice order.
    let apply = sys_a
        .tracer()
        .records()
        .into_iter()
        .find_map(|r| match r.ev {
            TraceEvent::DeschedApply {
                first,
                killed,
                hops_left,
                ..
            } => Some((first, killed, hops_left)),
            _ => None,
        })
        .expect("deschedule was applied");
    assert_eq!(apply, (true, 0, 2));
}

// --- Trace transparency -----------------------------------------------------

/// The tracer is a pure observer: the same scripted run with tracing on
/// and off produces identical metrics (the whole-run measurement state).
#[test]
fn tracing_does_not_change_the_run() {
    let scripted = |trace: bool| {
        let mut sys = TigerSystem::new(small());
        if trace {
            sys.enable_trace(8_192);
        }
        let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(15));
        let a = sys.add_client();
        let b = sys.add_client();
        let va = sys.request_start(SimTime::from_millis(50), a, film);
        let _vb = sys.request_start(SimTime::from_millis(450), b, film);
        sys.request_stop(SimTime::from_secs(5), va);
        sys.fail_cub_at(SimTime::from_secs(7), CubId(2));
        sys.run_until(SimTime::from_secs(12));
        sys
    };
    let plain = scripted(false);
    let traced = scripted(true);
    assert_eq!(
        plain.metrics(),
        traced.metrics(),
        "tracing must not perturb the simulation"
    );
    assert_eq!(plain.tracer().recorded(), 0);
    assert!(
        traced.tracer().recorded() > 100,
        "the scripted run covers a rich slice of the protocol: {}",
        traced.tracer().recorded()
    );
}

/// A dump is a lossless wire format: parsing it back yields the same
/// records the ring held.
#[test]
fn dump_round_trips_through_the_parser() {
    let mut sys = traced_system();
    let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(10));
    let c = sys.add_client();
    sys.request_start(SimTime::from_millis(50), c, film);
    sys.run_until(SimTime::from_secs(3));
    let records = sys.tracer().records();
    assert!(!records.is_empty());
    let dump = sys.tracer().dump().expect("tracer is on");
    let parsed = parse_dump(&dump).expect("own dump must parse");
    assert_eq!(parsed, records);
}

// --- Property-failure auto-dump (TIGER_PROP_REPLAY pipeline) ----------------

/// A failing property case dumps its ring-buffer trace to a file and names
/// the path in the failure report — the same pipeline a
/// `TIGER_PROP_REPLAY` run uses to hand the investigator a timeline.
#[test]
fn failing_property_dumps_its_trace() {
    tiger::trace::install_property_dump();
    let result = catch_unwind(AssertUnwindSafe(|| {
        tiger::sim::check::check_cases("trace-dump-vehicle", 1, |rng| {
            let mut sys = traced_system();
            let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(10));
            let c = sys.add_client();
            sys.request_start(SimTime::from_millis(rng.gen_range(10u64..100)), c, film);
            sys.run_until(SimTime::from_secs(2));
            assert!(
                sys.tracer().recorded() == 0,
                "deliberate failure to exercise the dump path"
            );
        });
    }));
    let payload = result.expect_err("the vehicle property always fails");
    let report = payload
        .downcast_ref::<String>()
        .expect("string panic payload");
    assert!(report.contains("TIGER_PROP_REPLAY"), "{report}");
    let path = report
        .lines()
        .find_map(|l| l.trim().strip_prefix("trace dumped to: "))
        .unwrap_or_else(|| panic!("report must name the dump file:\n{report}"));
    let text = std::fs::read_to_string(path).expect("dump file exists");
    let records = parse_dump(&text).expect("dump file parses");
    assert!(
        records
            .iter()
            .any(|r| matches!(r.ev, TraceEvent::InsertCommit { .. })),
        "the failing run's insert is in the dump"
    );
    std::fs::remove_file(path).ok();
}
