//! A movie service under load: ramp a full-scale (14-cub, 56-disk, SOSP
//! testbed) Tiger toward its 602-stream capacity and print the load report
//! the paper's Figure 8 plots.
//!
//! Run with: `cargo run --release --example movie_service`

use tiger::sim::SimDuration;
use tiger::workload::{format_ramp_table, run_ramp, CatalogSpec, RampConfig};
use tiger_core::TigerConfig;

fn main() {
    let tiger = TigerConfig::sosp97();
    println!(
        "system: {} cubs x {} disks, capacity derivation gives 602 streams",
        tiger.stripe.num_cubs, tiger.stripe.disks_per_cub
    );

    // A catalog of 16 movies (full-scale uses 64 x 1 hour; this keeps the
    // example quick) and a ramp of +30 streams per 20 s step.
    let cfg = RampConfig {
        catalog: CatalogSpec::sized_for(SimDuration::from_secs(600), 16),
        settle: SimDuration::from_secs(20),
        target: Some(480), // ~80% of capacity: the recommended operating point
        ..RampConfig::fig8(tiger, SimDuration::from_secs(20))
    };
    let result = run_ramp(&cfg);

    print!(
        "{}",
        format_ramp_table("movie service ramp to 480 streams", &result.windows)
    );
    println!();
    println!(
        "delivered {} blocks; server missed {}; clients report {} missing",
        result.loss.blocks_sent, result.loss.server_missed, result.client_missing
    );
    let last = result.windows.last().expect("windows");
    println!(
        "at {} streams: cub CPU {:.0}%, disk load {:.0}%, control traffic {:.1} KB/s per cub",
        last.streams,
        last.cub_cpu * 100.0,
        last.disk_load * 100.0,
        last.control_bytes_per_sec / 1e3,
    );
}
