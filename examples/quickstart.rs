//! Quickstart: build a small Tiger, play one movie, watch it arrive.
//!
//! Run with: `cargo run --release --example quickstart`

use tiger::core::{TigerConfig, TigerSystem};
use tiger::sim::{Bandwidth, SimDuration, SimTime};

fn main() {
    // A 4-cub test system with deterministic disks.
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    let mut sys = TigerSystem::new(cfg);
    sys.enable_omniscient();

    // Load a 30-second, 2 Mbit/s "movie": its blocks are striped across
    // every disk of every cub, with declustered mirror pieces on the disks
    // that follow each primary.
    let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(30));
    println!(
        "loaded {film:?}: {} blocks",
        sys.shared().catalog.get(film).unwrap().num_blocks
    );

    // A client asks the controller to start playing.
    let client = sys.add_client();
    let viewer = sys.request_start(SimTime::from_millis(50), client, film);
    println!("viewer {viewer} requested start at t=0.05s");

    // Run the distributed machinery: ownership-window insertion, ring
    // forwarding of viewer states, paced block transmission.
    sys.run_until(SimTime::from_secs(45));

    let (latency, received, missing, complete) = {
        let p = sys.clients()[client as usize]
            .viewer(&viewer)
            .expect("viewer exists");
        (
            p.start_latency_secs().expect("started"),
            p.blocks_received(),
            p.blocks_missing(),
            p.complete(),
        )
    };
    println!("startup latency: {latency:.2}s (block transmission alone is 1s)");
    println!(
        "received {received}/{} blocks, {missing} missing",
        received + missing
    );
    let violations = sys.take_violations();
    println!(
        "omniscient hallucination checker: {} violations",
        violations.len()
    );
    assert!(violations.is_empty());
    assert!(complete);
    println!("done: the movie played to completion.");
}
