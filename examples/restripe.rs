//! Restriping (§2.2): add a cub to a loaded system and plan the data
//! movement. The paper's claim: restripe time depends on per-cub content
//! and disk speed, not on system size.
//!
//! Run with: `cargo run --release --example restripe`

use tiger::layout::catalog::BitrateMode;
use tiger::layout::{FileCatalog, RestripePlan, StripeConfig};
use tiger::sim::{Bandwidth, SimDuration};

fn plan_for(cubs_before: u32, cubs_after: u32, files: u32) -> RestripePlan {
    let old = StripeConfig::new(cubs_before, 4, 4);
    let new = StripeConfig::new(cubs_after, 4, 4);
    let mut catalog = FileCatalog::new(
        old,
        SimDuration::from_secs(1),
        Bandwidth::from_mbit_per_sec(2),
        BitrateMode::Single,
    );
    for _ in 0..files {
        catalog.add_file(
            Bandwidth::from_mbit_per_sec(2),
            SimDuration::from_secs(3600),
        );
    }
    RestripePlan::plan(&catalog, old, new)
}

fn main() {
    let disk_bw = Bandwidth::from_bytes_per_sec(4_000_000);
    let nic_bw = Bandwidth::from_mbit_per_sec(135);

    // First, a *live* restripe: build a 4-cub system, play a file, add a
    // cub, and play the same file on the new geometry.
    {
        use tiger::core::{TigerConfig, TigerSystem};
        use tiger::sim::SimTime;
        let mut cfg = TigerConfig::small_test();
        cfg.disk = cfg.disk.without_blips();
        let mut sys = TigerSystem::new(cfg);
        let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(12));
        let c = sys.add_client();
        sys.request_start(SimTime::from_millis(50), c, film);
        sys.run_until(SimTime::from_secs(20));
        println!(
            "before restripe: viewer completed = {}",
            sys.client_report(c).completed_viewers == 1
        );
        let (mut bigger, plan) = sys.restripe_into(StripeConfig::new(5, 1, 2));
        println!(
            "restriped 4 -> 5 cubs: {} blocks moved, estimated offline time {}",
            plan.stats().moved_blocks,
            plan.estimate_duration(disk_bw, nic_bw),
        );
        let c2 = bigger.add_client();
        bigger.request_start(SimTime::from_millis(50), c2, film);
        bigger.run_until(SimTime::from_secs(20));
        println!(
            "after restripe:  viewer completed = {}\n",
            bigger.client_report(c2).completed_viewers == 1
        );
    }

    println!("scenario: add one cub to a system with one hour of content per 16 disks");
    println!();
    println!("cubs      blocks_moved  stationary  max_disk_MB  max_nic_MB  est_time");
    for (before, files) in [(4u32, 16u32), (8, 32), (14, 56), (28, 112)] {
        let plan = plan_for(before, before + 1, files);
        let stats = plan.stats();
        let t = plan.estimate_duration(disk_bw, nic_bw);
        println!(
            "{before:>2}->{:<4} {:>12} {:>11} {:>12.0} {:>11.0}  {t}",
            before + 1,
            stats.moved_blocks,
            stats.stationary_blocks,
            stats.max_disk_bytes.as_bytes() as f64 / 1e6,
            stats.max_cub_nic_bytes.as_bytes() as f64 / 1e6,
        );
    }
    println!();
    println!(
        "the total moved volume grows with the system, but the per-disk and \
         per-NIC maxima — and hence the estimated restripe time — stay flat: \
         \"the time to restripe a system does not depend on the size of the \
         system\" (§2.2)."
    );
}
