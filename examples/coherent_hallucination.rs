//! The coherent hallucination made visible (paper Figure 7).
//!
//! "Figure 7 shows an example of views of the schedule for the first three
//! cubs … None of these inconsistencies causes a problem, because by the
//! time a cub takes action based on the contents of a slot, the slot is
//! up-to-date."
//!
//! This example snapshots several cubs' views of the same slot range at
//! one instant: each cub knows only the part of the schedule near its own
//! disks, the parts they share may disagree in position, and yet the
//! viewers all receive every block.
//!
//! Run with: `cargo run --release --example coherent_hallucination`

use tiger::core::{TigerConfig, TigerSystem};
use tiger::sched::SlotId;
use tiger::sim::{Bandwidth, SimDuration, SimTime};

fn main() {
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    let mut sys = TigerSystem::new(cfg);
    sys.enable_omniscient();
    let file = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(60));

    // Ten viewers fill ten slots.
    let mut viewers = Vec::new();
    for i in 0..10u64 {
        let client = sys.add_client();
        viewers.push(sys.request_start(SimTime::from_millis(100 + i * 450), client, file));
    }
    sys.run_until(SimTime::from_secs(20));

    // Snapshot: what does each cub believe about slots 0..capacity?
    let capacity = sys.shared().params.capacity();
    println!(
        "t = {}  —  {} slots, one column per cub's view",
        sys.now(),
        capacity
    );
    println!("('7' = cub believes slot holds viewer 7; '.' = believes free)\n");
    print!("slot:  ");
    for slot in 0..capacity {
        print!("{:>3}", slot);
    }
    println!();
    for cub in sys.cubs() {
        print!("cub {}: ", cub.id.raw());
        for slot in 0..capacity {
            match cub.view().primary_entry(SlotId(slot)) {
                Some(e) => print!("{:>3}", e.instance.viewer.raw()),
                None => print!("  ."),
            }
        }
        println!();
    }
    println!();

    // Count disagreements: slots where two cubs hold different beliefs.
    let mut slots_somewhere_known = 0;
    let mut slots_disputed = 0;
    for slot in 0..capacity {
        let beliefs: Vec<Option<u64>> = sys
            .cubs()
            .iter()
            .map(|c| {
                c.view()
                    .primary_entry(SlotId(slot))
                    .map(|e| e.instance.viewer.raw())
            })
            .collect();
        let known: Vec<u64> = beliefs.iter().flatten().copied().collect();
        if !known.is_empty() {
            slots_somewhere_known += 1;
            if beliefs.iter().any(|b| b.is_none()) || known.windows(2).any(|w| w[0] != w[1]) {
                slots_disputed += 1;
            }
        }
    }
    println!(
        "{slots_somewhere_known} slots are known to some cub; {slots_disputed} of them look \
         different from different cubs — the views are inconsistent,"
    );
    println!("yet the hallucination is coherent: let the run finish ...\n");

    sys.run_until(SimTime::from_secs(90));
    let report = sys.all_clients_report();
    let violations = sys.take_violations();
    println!(
        "all {} viewers completed, {} blocks missing, {} checker violations",
        report.completed_viewers,
        report.blocks_missing,
        violations.len()
    );
    assert_eq!(report.completed_viewers, 10);
    assert!(violations.is_empty());
}
