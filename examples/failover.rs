//! Failover: power-cut a cub mid-stream and watch the declustered mirrors
//! take over.
//!
//! Run with: `cargo run --release --example failover`

use tiger::core::{TigerConfig, TigerSystem};
use tiger::layout::CubId;
use tiger::sim::{Bandwidth, SimDuration, SimTime};

fn main() {
    let mut cfg = TigerConfig::sosp97();
    cfg.disk = cfg.disk.without_blips();
    let mut sys = TigerSystem::new(cfg);
    let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(120));

    // 60 viewers, staggered starts.
    let mut viewers = Vec::new();
    for i in 0..60u64 {
        let client = sys.add_client();
        let v = sys.request_start(SimTime::from_millis(100 + i * 300), client, film);
        viewers.push((client, v));
    }

    // Power-cut cub 5 at t=40 s. Its four disks die with it; the deadman
    // protocol detects the silence and the succeeding cub starts
    // manufacturing mirror viewer states.
    println!("cutting power to cub 5 at t=40s ...");
    sys.fail_cub_at(SimTime::from_secs(40), CubId(5));
    sys.run_until(SimTime::from_secs(140));

    let (detected_at, failed) = sys.metrics().failure_detections[0];
    println!(
        "deadman: cub {failed} declared dead at t={detected_at} \
         ({:.1}s after the cut)",
        detected_at
            .saturating_since(SimTime::from_secs(40))
            .as_secs_f64()
    );

    let mut total_missing = 0u64;
    let mut total_received = 0u64;
    for (client, v) in &viewers {
        let p = sys.clients()[*client as usize]
            .viewer(v)
            .expect("viewer exists");
        total_missing += u64::from(p.blocks_missing()) + u64::from(p.tail_missing());
        total_received += u64::from(p.blocks_received());
    }
    println!(
        "clients received {total_received} blocks; {total_missing} lost \
         (confined to the detection window)"
    );
    println!(
        "loss accounting: {} blocks unrecoverable during failover, {} reads missed",
        sys.metrics().loss.failover_lost,
        sys.metrics().loss.server_missed,
    );
    assert!(
        total_missing < 60 * 8,
        "losses must be bounded by the detection window"
    );
    println!("done: streams survived the failure via declustered mirrors.");
}
