//! The multiple-bitrate network schedule (§3.2, §4.2): mixed-rate streams,
//! two-phase insertion with speculative disk reads, and the fragmentation
//! fix.
//!
//! Run with: `cargo run --release --example multi_bitrate`

use tiger::core::{MbrConfig, MbrCoordinator, MbrOutcome, MbrSystem};
use tiger::sim::{Bandwidth, SimDuration, SimTime};

fn main() {
    // A 14-cub ring: the network schedule is 14 s long (one block play
    // time per cub) and 135 Mbit/s tall (the NIC capacity). Starts are
    // quantized to bpt/decluster = 250 ms, the paper's fragmentation fix.
    let coordinator_cfg = MbrConfig::default_ring();
    let mut ring = MbrCoordinator::new(coordinator_cfg);

    // Insert a mix of 1-6 Mbit/s streams from different originating cubs.
    let mix = [1u64, 2, 3, 2, 6, 4, 2, 1, 3, 2, 2, 5, 1, 2, 4, 2];
    let mut committed = 0;
    let mut hidden = 0;
    for (i, &mbit) in mix.iter().cycle().take(200).enumerate() {
        let origin = (i % 14) as u32;
        let outcome = ring.try_insert(
            SimTime::from_millis(i as u64 * 120),
            origin,
            Bandwidth::from_mbit_per_sec(mbit),
            SimDuration::from_millis(700), // the scheduling-lead budget
        );
        match outcome {
            MbrOutcome::Committed {
                start,
                confirm_hidden,
                ..
            } => {
                committed += 1;
                if confirm_hidden {
                    hidden += 1;
                }
                if i < 5 {
                    println!(
                        "viewer {i}: {mbit} Mbit/s committed at ring position {start} \
                         (confirm hidden behind disk read: {confirm_hidden})"
                    );
                }
            }
            MbrOutcome::RejectedLocal => {
                println!("viewer {i}: rejected locally — the ring is full");
                break;
            }
            MbrOutcome::Aborted => println!("viewer {i}: aborted (successor refused)"),
        }
    }

    println!();
    println!(
        "committed {} mixed-bitrate streams",
        ring.committed_streams()
    );
    println!(
        "confirmation round trips hidden behind the speculative disk read: \
         {hidden}/{committed} (the §4.2 latency-hiding claim)"
    );
    // Every cub's view agrees on the committed entries.
    for cub in 0..14 {
        assert_eq!(ring.view(cub).len(), ring.committed_streams());
    }
    println!("all 14 per-cub views agree on the committed schedule.");

    // The same protocol at the message level: reserve requests, replies,
    // and commit floods travelling over the simulated switched network.
    println!();
    let mut dist = MbrSystem::new(MbrConfig::default_ring(), SimDuration::from_millis(700));
    for i in 0..100u64 {
        dist.request_insert(
            SimTime::from_millis(i * 150),
            (i % 14) as u32,
            Bandwidth::from_mbit_per_sec(2),
        );
    }
    dist.run_until(SimTime::from_secs(30));
    let stats = dist.stats();
    println!(
        "message-level protocol: {} committed, {} aborted, 0 capacity \
         violations (checked: {}), views converged on every cub",
        stats.committed, stats.aborted, stats.violations
    );
    assert_eq!(stats.violations, 0);
}
