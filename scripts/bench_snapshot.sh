#!/usr/bin/env bash
# Regenerates the checked-in BENCH_micro.json as the per-benchmark
# max-median over several spaced runs.
#
#   scripts/bench_snapshot.sh [runs] [spacing_secs]
#
# Defaults: 6 runs, 10 s apart. A single-run snapshot taken during a
# fast phase of a shared host makes scripts/bench_compare.sh false-fire
# whenever CI lands in a slow phase (1-vCPU VMs routinely stretch
# 1.5-2x); spacing the runs out and keeping each benchmark's worst
# median bakes that jitter into the baseline. Never snapshot with fewer
# than 6 runs.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${1:-6}"
SPACING="${2:-10}"
if [ "$RUNS" -lt 6 ]; then
    echo "bench_snapshot: refusing fewer than 6 runs (got $RUNS);" \
         "a thin sample under-estimates host jitter" >&2
    exit 2
fi

export CARGO_NET_OFFLINE=1

# Build first so compile time doesn't eat the spacing between runs.
cargo build --release -q -p tiger-bench --benches --bin bench_merge

TMPDIR_RUNS="$(mktemp -d /tmp/bench_snapshot.XXXXXX)"
trap 'rm -rf "$TMPDIR_RUNS"' EXIT

FILES=()
for i in $(seq 1 "$RUNS"); do
    OUT="$TMPDIR_RUNS/run$i.json"
    echo "bench_snapshot: run $i/$RUNS" >&2
    TIGER_BENCH_OUT="$OUT" cargo bench -q -p tiger-bench --bench micro >/dev/null
    FILES+=("$OUT")
    if [ "$i" -lt "$RUNS" ]; then
        sleep "$SPACING"
    fi
done

cargo run --release -q -p tiger-bench --bin bench_merge -- "${FILES[@]}" \
    > BENCH_micro.json
echo "bench_snapshot: wrote BENCH_micro.json (max-median of $RUNS runs)" >&2
