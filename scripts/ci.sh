#!/usr/bin/env bash
# Tier-1 gate, run fully offline to prove the workspace has no external
# dependencies (see DESIGN.md "Dependencies" and README "The
# dependency-free substrate").
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=1

echo "== tier-1: cargo build --release" >&2
cargo build --release

echo "== tier-1: cargo test -q" >&2
cargo test -q

echo "== full workspace tests" >&2
cargo test -q --workspace

# Formatting is checked when a rustfmt is available; its absence must not
# fail the gate on minimal toolchains.
if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check" >&2
    cargo fmt --check
else
    echo "== cargo fmt unavailable; skipping format check" >&2
fi

# No registry crates may creep back into any manifest.
if grep -rn --include=Cargo.toml -E '^\s*(rand|proptest|criterion|serde)\b' .; then
    echo "ERROR: external registry dependency found in a Cargo.toml" >&2
    exit 1
fi

echo "ci: all gates passed" >&2
