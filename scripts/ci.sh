#!/usr/bin/env bash
# Tier-1 gate, run fully offline to prove the workspace has no external
# dependencies (see DESIGN.md "Dependencies" and README "The
# dependency-free substrate").
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=1

echo "== tier-1: cargo build --release" >&2
cargo build --release

echo "== tier-1: cargo test -q" >&2
cargo test -q

echo "== full workspace tests" >&2
cargo test -q --workspace

# Formatting is checked when a rustfmt is available; its absence must not
# fail the gate on minimal toolchains.
if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check" >&2
    cargo fmt --check
else
    echo "== cargo fmt unavailable; skipping format check" >&2
fi

echo "== cargo clippy --workspace -- -D warnings" >&2
cargo clippy --workspace -- -D warnings

# Fleet smoke: the parallel experiment fleet must produce bit-identical
# stdout at 1 and 2 worker threads (the determinism-under-parallelism
# contract; see EXPERIMENTS.md "The experiment fleet").
echo "== fleet smoke: quick fig8 ramp at 1 vs 2 threads" >&2
FLEET_T1="$(mktemp)" FLEET_T2="$(mktemp)" FLEET_TRACED="$(mktemp)" DEMO_OUT="$(mktemp)"
CHAOS_T1="$(mktemp)" CHAOS_T2="$(mktemp)"
WORK_T1="$(mktemp)" WORK_T2="$(mktemp)" HOTSPOT_PLAN="$(mktemp)"
CODED_T1="$(mktemp)" CODED_T2="$(mktemp)"
trap 'rm -f "$FLEET_T1" "$FLEET_T2" "$FLEET_TRACED" "$DEMO_OUT" "$CHAOS_T1" "$CHAOS_T2" "$WORK_T1" "$WORK_T2" "$HOTSPOT_PLAN" "$CODED_T1" "$CODED_T2"' EXIT
cargo run --release -q -p tiger-bench --bin fleet -- \
    --scale quick --filter fig8 --threads 1 > "$FLEET_T1" 2>/dev/null
cargo run --release -q -p tiger-bench --bin fleet -- \
    --scale quick --filter fig8 --threads 2 > "$FLEET_T2" 2>/dev/null
cmp "$FLEET_T1" "$FLEET_T2"

# Chaos smoke: the fault-injection sweep must pass every Tiger invariant
# (the bin exits non-zero on any violation) and, like the fleet, produce
# bit-identical stdout at 1, 2, and 3 worker threads (see docs/FAULTS.md).
# The sweep includes the online-recovery scenarios — crash-rejoin,
# double-fail-catchup (partner dies mid-handback), restripe-quiet,
# restripe-rejoin (crash + restart mid-restripe), and the Recovery v2
# trio: fast-rejoin (sub-interval retired replay), shrink-load (live
# remove=1 under streaming), and spare-shield (double failure with a
# spare serving shadow spans) — so this smoke gates the rejoin,
# live-restripe/shrink, and spare-shield protocols too (see
# docs/RECOVERY.md). Fatal — a divergence means fault randomness leaked
# out of its RNG subtree or an invariant broke.
echo "== chaos smoke: quick sweep (incl. rejoin/shrink/shield) at 1 vs 2 vs 3 threads" >&2
cargo run --release -q -p tiger-bench --bin chaos -- \
    --scale quick --threads 1 > "$CHAOS_T1"
cargo run --release -q -p tiger-bench --bin chaos -- \
    --scale quick --threads 2 > "$CHAOS_T2"
cmp "$CHAOS_T1" "$CHAOS_T2"
cargo run --release -q -p tiger-bench --bin chaos -- \
    --scale quick --threads 3 > "$CHAOS_T2"
cmp "$CHAOS_T1" "$CHAOS_T2"

# Workload smoke: the canonical tiger-workgen plan sweep (Zipf hotspot,
# flash crowd, VCR churn, diurnal swing, flashcrowd+crash under the chaos
# invariants) must pass — the bin exits non-zero on any violation — and
# produce bit-identical stdout at 1 and 2 worker threads (see
# docs/WORKLOADS.md). Fatal — a divergence means workload randomness
# leaked out of the "workgen" RNG subtree.
echo "== workload smoke: quick plan sweep at 1 vs 2 threads" >&2
cargo run --release -q -p tiger-bench --bin workloads -- \
    --scale quick --threads 1 > "$WORK_T1"
cargo run --release -q -p tiger-bench --bin workloads -- \
    --scale quick --threads 2 > "$WORK_T2"
cmp "$WORK_T1" "$WORK_T2"

# Redundancy-ablation smoke: coded vs mirrored on the flash-crowd plans
# must pass its own checks (coded blocking <= mirrored at equal storage;
# chaos invariants 1-6 on both backends — the bin exits non-zero on any
# failure), be bit-identical at 1 and 2 worker threads, and match the
# checked-in curve golden exactly. Fatal — a golden drift means the coded
# service path (fan-out, degraded reads, load-index choice) changed
# behaviour (see docs/CODED.md).
echo "== coded smoke: ablation_coded at 1 vs 2 threads + golden" >&2
cargo run --release -q -p tiger-bench --bin ablation_coded -- \
    --scale quick --threads 1 > "$CODED_T1"
cargo run --release -q -p tiger-bench --bin ablation_coded -- \
    --scale quick --threads 2 > "$CODED_T2"
cmp "$CODED_T1" "$CODED_T2"
cmp results/ablation_coded_quick.txt "$CODED_T1"

# Golden plan-driven hotspot: the hotspot bench driven by the checked-in
# example plan must render exactly the checked-in table. Fatal — it pins
# the plan grammar, the compiled-generator draw order, and the demand →
# schedule coupling on a fixed seed all at once.
echo "== workload smoke: hotspot --plan vs results/hotspot_plan.txt" >&2
cargo run --release -q -p tiger-bench --bin hotspot -- \
    --plan examples/workloads/zipf-hotspot.plan --scale quick > "$HOTSPOT_PLAN"
cmp results/hotspot_plan.txt "$HOTSPOT_PLAN"

# Traced smoke: the tracer is a pure observer, so the same fleet run with
# tracing switched on must produce bit-identical stdout (see
# docs/TRACING.md). Fatal — any divergence means a trace hook leaked into
# simulation behaviour.
echo "== traced smoke: fleet stdout with TIGER_TRACE=1 vs off" >&2
TIGER_TRACE=1 cargo run --release -q -p tiger-bench --bin fleet -- \
    --scale quick --filter fig8 --threads 1 > "$FLEET_TRACED" 2>/dev/null
cmp "$FLEET_T1" "$FLEET_TRACED"

# Golden timeline: the deterministic demo scenario must render exactly the
# checked-in timeline. Fatal — it pins the event schema, the wire format,
# and the protocol's event order on a fixed seed all at once.
echo "== traced smoke: trace_timeline --demo vs results/trace_timeline_demo.txt" >&2
cargo run --release -q -p tiger-bench --bin trace_timeline -- --demo > "$DEMO_OUT"
cmp results/trace_timeline_demo.txt "$DEMO_OUT"

# Golden rejoin timeline: the deterministic crash-then-restart scenario
# must render exactly the checked-in recovery arc (power-cut, deadman
# declaration, mirror takeover, cub-restart, hand-back grant,
# rejoin-done). Fatal — it pins the rejoin protocol's event order.
echo "== recovery smoke: trace_timeline --rejoin-demo vs results/trace_rejoin_timeline.txt" >&2
cargo run --release -q -p tiger-bench --bin trace_timeline -- --rejoin-demo > "$DEMO_OUT"
cmp results/trace_rejoin_timeline.txt "$DEMO_OUT"

# Golden shrink timeline: the deterministic live remove=1 restripe must
# render exactly the checked-in shrink arc (restripe-start, the leaving
# cub's shrink-drain, shrink-fence, restripe-cutover). Fatal — it pins
# the queued shrink executor's event order under streaming load.
echo "== recovery smoke: trace_timeline --shrink-demo vs results/trace_shrink_timeline.txt" >&2
cargo run --release -q -p tiger-bench --bin trace_timeline -- --shrink-demo > "$DEMO_OUT"
cmp results/trace_shrink_timeline.txt "$DEMO_OUT"

# Driver conformance: the crash-rejoin scenario run under the DES oracle
# and under the thread/socket driver (real OS threads, loopback UDP,
# wall clocks) must make the same protocol decisions — the sans-io
# machines in crates/proto are shared code, so a divergence means a
# driver broke the contract (docs/PROTOCOL.md, "The driver contract").
# Fatal. Takes ~10.5 s of wall time (the socket driver runs in real time).
echo "== driver conformance: DES oracle vs thread/socket driver (rt_conformance)" >&2
cargo run --release -q -p tiger-rt --bin rt_conformance

# Bench trajectory: compare fresh micro-bench medians (the full family,
# not just the event queue) against the checked-in snapshot. Fatal — a
# >10% median regression on a hot-path primitive fails the gate. On
# hardware where timing is genuinely noisier, loosen the tolerance with
# e.g. TIGER_BENCH_TOL=25 (percent) rather than skipping the gate.
echo "== bench compare vs BENCH_micro.json (fatal; TIGER_BENCH_TOL to loosen)" >&2
scripts/bench_compare.sh

# No registry crates may creep back into any manifest.
if grep -rn --include=Cargo.toml -E '^\s*(rand|proptest|criterion|serde)\b' .; then
    echo "ERROR: external registry dependency found in a Cargo.toml" >&2
    exit 1
fi

echo "ci: all gates passed" >&2
