#!/usr/bin/env bash
# Re-runs the micro-benches and compares them against the checked-in
# BENCH_micro.json snapshot, flagging >10% median regressions.
#
#   scripts/bench_compare.sh [filter]
#
# The optional filter substring restricts which benches run (and are
# compared). Tolerance is TIGER_BENCH_TOL (percent, default 10). Exits
# with bench_compare's status: 1 if any shared benchmark regressed.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-}"
SNAPSHOT="BENCH_micro.json"
FRESH="$(mktemp /tmp/bench_fresh.XXXXXX.json)"
trap 'rm -f "$FRESH"' EXIT

export CARGO_NET_OFFLINE=1
TIGER_BENCH_OUT="$FRESH" cargo bench -p tiger-bench --bench micro -- $FILTER >/dev/null

cargo run --release -q -p tiger-bench --bin bench_compare -- "$SNAPSHOT" "$FRESH"
