//! Property tests for the Zipf sampler: across many seeded cases, the
//! empirical rank-frequency histogram must track the analytic law
//! `p_i = (1/(i+1)^s) / H_{n,s}` within a tolerance band, and the
//! degenerate corners (s = 0 → uniform, one title → constant) must hold
//! exactly.

use tiger_sim::check::check_cases;
use tiger_sim::SimTime;
use tiger_workgen::{Popularity, PopularitySpec, WorkloadPlan};

/// Analytic Zipf pmf over `titles` ranks.
fn analytic(s: f64, titles: u32) -> Vec<f64> {
    let w: Vec<f64> = (0..titles)
        .map(|i| 1.0 / ((i + 1) as f64).powf(s))
        .collect();
    let h: f64 = w.iter().sum();
    w.into_iter().map(|x| x / h).collect()
}

#[test]
fn empirical_rank_frequency_tracks_the_analytic_law() {
    check_cases("zipf-rank-frequency", 48, |rng| {
        // Case-random skew and catalog size; the sampler's own stream is
        // the case rng, so every case exercises a different draw sequence.
        let s = rng.gen_range(0.0..2.0);
        let titles = rng.gen_range(2u32..64);
        let pop = Popularity::new(&PopularitySpec::Zipf { s, titles }, &[]);
        let p = analytic(s, titles);

        let n = 60_000u64;
        let mut counts = vec![0u64; titles as usize];
        for _ in 0..n {
            counts[pop.sample(SimTime::ZERO, rng) as usize] += 1;
        }

        for (i, (&k, &want)) in counts.iter().zip(&p).enumerate() {
            let got = k as f64 / n as f64;
            // Binomial 5σ band plus a small absolute floor for rare tails.
            let sigma = (want * (1.0 - want) / n as f64).sqrt();
            let tol = 5.0 * sigma + 2e-3;
            assert!(
                (got - want).abs() < tol,
                "s={s:.3} titles={titles} rank {i}: want {want:.5} got {got:.5} (tol {tol:.5})"
            );
        }
    });
}

#[test]
fn zipf_head_dominates_in_rank_order() {
    // Monotonicity: with real skew, empirical frequency must be
    // non-increasing in rank (up to noise) — the head strictly beats the
    // tail.
    check_cases("zipf-head-dominates", 32, |rng| {
        let s = rng.gen_range(0.8..1.6);
        let titles = rng.gen_range(8u32..40);
        let pop = Popularity::new(&PopularitySpec::Zipf { s, titles }, &[]);
        let n = 40_000u64;
        let mut counts = vec![0u64; titles as usize];
        for _ in 0..n {
            counts[pop.sample(SimTime::ZERO, rng) as usize] += 1;
        }
        assert!(
            counts[0] > counts[(titles - 1) as usize] * 2,
            "head {} should dominate tail {} at s={s:.2}",
            counts[0],
            counts[(titles - 1) as usize]
        );
    });
}

#[test]
fn s_zero_degenerates_to_uniform_exactly() {
    // Not just statistically uniform: the s=0 table must produce the
    // bit-identical draw sequence to the uniform table.
    check_cases("zipf-s0-uniform", 16, |rng| {
        let titles = rng.gen_range(1u32..32);
        let z = Popularity::new(&PopularitySpec::Zipf { s: 0.0, titles }, &[]);
        let u = Popularity::new(&PopularitySpec::Uniform { titles }, &[]);
        let mut mirror = rng.clone();
        for _ in 0..500 {
            assert_eq!(
                z.sample(SimTime::ZERO, rng),
                u.sample(SimTime::ZERO, &mut mirror)
            );
        }
    });
}

#[test]
fn one_title_is_constant_for_any_skew() {
    check_cases("zipf-one-title", 16, |rng| {
        let s = rng.gen_range(0.0..3.0);
        let pop = Popularity::new(&PopularitySpec::Zipf { s, titles: 1 }, &[]);
        for _ in 0..200 {
            assert_eq!(pop.sample(SimTime::ZERO, rng), 0);
        }
    });
}

#[test]
fn compiled_plan_zipf_matches_direct_sampler() {
    // The plan path (parse → compile) must agree with constructing the
    // popularity model directly — same table, same law.
    let plan = WorkloadPlan::parse("zipf s=1.1 titles=24").unwrap();
    let tree = tiger_sim::RngTree::new(99).subtree("workgen", 0);
    let mut w = plan.compile(&tree);
    let p = analytic(1.1, 24);
    let n = 60_000u64;
    let mut counts = vec![0u64; 24];
    for _ in 0..n {
        counts[w.popularity.sample(SimTime::ZERO, &mut w.chooser) as usize] += 1;
    }
    for (i, (&k, &want)) in counts.iter().zip(&p).enumerate() {
        let got = k as f64 / n as f64;
        let sigma = (want * (1.0 - want) / n as f64).sqrt();
        assert!(
            (got - want).abs() < 5.0 * sigma + 2e-3,
            "rank {i}: want {want:.5} got {got:.5}"
        );
    }
}
