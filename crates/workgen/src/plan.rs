//! Declarative workload plans.
//!
//! A [`WorkloadPlan`] is the demand-side twin of
//! [`tiger_faults::FaultPlan`]: a list of clauses describing *who asks for
//! what, when* — a title-popularity model (Zipf or uniform, with
//! flash-crowd overlays), an arrival process (Poisson, MMPP-style bursts,
//! diurnal modulation), and a per-viewer session machine (pause / resume /
//! seek / abandon with hazard-rate dwell times). Plans are built in code
//! or parsed from a line-oriented text format ([`WorkloadPlan::parse`]);
//! either way they are pure data — nothing is sampled until the plan is
//! compiled against an RNG tree ([`WorkloadPlan::compile`]).
//!
//! Determinism contract: a plan plus the system seed fully determines
//! every arrival instant, title choice, and session transition. All
//! workload randomness draws from streams forked under the `"workgen"`
//! subtree, disjoint from the disks', the network's, and the fault
//! injectors' streams, so a plan perturbs only the demand it declares and
//! a fixed `(plan, seed)` reproduces bit-identical runs at any fleet
//! thread count.

use tiger_faults::{parse_duration, FaultPlan};
use tiger_sim::{RngTree, SimDuration, SimTime};

use crate::arrival::Arrivals;
use crate::popularity::Popularity;
use crate::session::SessionSampler;

/// The base per-title choice distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PopularitySpec {
    /// Zipf with exponent `s` over `titles` ranks: title `i` gets weight
    /// `1/(i+1)^s`. `s = 0` degenerates to uniform.
    Zipf {
        /// The skew exponent (0 = uniform, ~1 = classic Zipf).
        s: f64,
        /// Catalog size.
        titles: u32,
    },
    /// Every title equally likely.
    Uniform {
        /// Catalog size.
        titles: u32,
    },
}

impl PopularitySpec {
    /// The catalog size the spec draws over.
    pub fn titles(&self) -> u32 {
        match *self {
            PopularitySpec::Zipf { titles, .. } | PopularitySpec::Uniform { titles } => titles,
        }
    }
}

/// A correlated flash crowd: at `at`, demand on `title` jumps to `peak`
/// times its base rate and decays back exponentially with time constant
/// `decay`. The surge is *additive* population — extra arrivals all
/// asking for the hot title — so it raises both the title's share and the
/// total arrival rate (the worst case for declustered mirroring: §2.2's
/// hotspot, but time-correlated instead of equitemporally spaced).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlashCrowd {
    /// The hot title's rank.
    pub title: u32,
    /// Onset instant.
    pub at: SimTime,
    /// Peak demand multiplier on the hot title (≥ 1).
    pub peak: f64,
    /// Exponential decay time constant back to base demand.
    pub decay: SimDuration,
}

/// An MMPP-style burst overlay on the arrival process: arrivals run at
/// `mult` × the base rate during burst states whose lengths are
/// exponential with mean `mean_len`, separated by quiet gaps with mean
/// `mean_gap` (a two-state Markov-modulated Poisson process).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Burst {
    /// Rate multiplier while bursting (≥ 1).
    pub mult: f64,
    /// Mean burst duration.
    pub mean_len: SimDuration,
    /// Mean quiet-gap duration.
    pub mean_gap: SimDuration,
}

/// Diurnal modulation: the base rate is multiplied by a raised cosine
/// with the given `period`, peaking at 1 at t = 0 and bottoming out at
/// `trough`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Diurnal {
    /// One full day (or compressed day) of the curve.
    pub period: SimDuration,
    /// The off-peak rate floor, as a fraction of peak (0 < trough ≤ 1).
    pub trough: f64,
}

/// The arrival process: a base Poisson rate with optional burst and
/// diurnal overlays (flash crowds add their surge on top; see
/// [`FlashCrowd`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArrivalSpec {
    /// Base arrival rate in viewers per second.
    pub rate_per_sec: f64,
    /// Optional MMPP burst overlay.
    pub burst: Option<Burst>,
    /// Optional diurnal modulation.
    pub diurnal: Option<Diurnal>,
}

/// The per-viewer session machine: competing hazard rates out of the
/// Playing state (pause / seek / abandon), an exponential dwell in
/// Paused, and an interactive fraction — the rest of the population plays
/// straight through. Rates are per second of play; a rate of 0 disables
/// that transition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionSpec {
    /// Fraction of viewers that behave interactively (the rest are
    /// passive and never transition).
    pub interactive: f64,
    /// Hazard rate of pausing, per second of play.
    pub pause_rate: f64,
    /// Mean dwell in Paused before resuming.
    pub dwell_mean: SimDuration,
    /// Hazard rate of seeking to a uniform random block, per second.
    pub seek_rate: f64,
    /// Hazard rate of abandoning the session for good, per second.
    pub abandon_rate: f64,
}

impl SessionSpec {
    /// Everyone plays straight through (the default).
    pub fn passive() -> Self {
        SessionSpec {
            interactive: 0.0,
            pause_rate: 0.0,
            dwell_mean: SimDuration::from_secs(10),
            seek_rate: 0.0,
            abandon_rate: 0.0,
        }
    }
}

/// A whole workload scenario: who asks for what, when, for how long —
/// plus an embedded [`FaultPlan`] so a single plan file can compose
/// demand with failures (`fault <clause>` lines).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadPlan {
    /// Base per-title popularity.
    pub popularity: PopularitySpec,
    /// Flash-crowd overlays.
    pub crowds: Vec<FlashCrowd>,
    /// The arrival process.
    pub arrivals: ArrivalSpec,
    /// The per-viewer session machine.
    pub session: SessionSpec,
    /// Hard cap on total arrivals (bounds work on open-ended processes).
    pub max_viewers: u32,
    /// Arrivals stop at this horizon (the run may continue past it to
    /// let started streams play out).
    pub horizon: SimDuration,
    /// Faults to inject alongside the demand (empty by default).
    pub faults: FaultPlan,
}

impl Default for WorkloadPlan {
    fn default() -> Self {
        WorkloadPlan {
            popularity: PopularitySpec::Uniform { titles: 16 },
            crowds: Vec::new(),
            arrivals: ArrivalSpec {
                rate_per_sec: 1.0,
                burst: None,
                diurnal: None,
            },
            session: SessionSpec::passive(),
            max_viewers: 10_000,
            horizon: SimDuration::from_secs(60),
            faults: FaultPlan::new(),
        }
    }
}

/// The three seeded generators a plan compiles to, plus the title-choice
/// stream. Everything is derived from the `"workgen"` subtree the caller
/// passes in, so two compilations from the same tree are bit-identical.
#[derive(Clone, Debug)]
pub struct CompiledWorkload {
    /// Per-title choice (base distribution + flash-crowd overlays).
    pub popularity: Popularity,
    /// The arrival process (owns its own RNG stream).
    pub arrivals: Arrivals,
    /// Per-viewer session scripts (forks one stream per viewer index).
    pub sessions: SessionSampler,
    /// The title-choice stream (fed to [`Popularity::sample`]).
    pub chooser: tiger_sim::SimRng,
}

impl WorkloadPlan {
    /// An empty-overlay plan with the defaults (uniform 16 titles,
    /// 1 arrival/s Poisson, passive sessions, 60 s horizon).
    pub fn new() -> Self {
        Self::default()
    }

    /// The catalog size the plan draws over.
    pub fn titles(&self) -> u32 {
        self.popularity.titles()
    }

    /// Sets Zipf popularity with exponent `s` over `titles` ranks.
    pub fn zipf(mut self, s: f64, titles: u32) -> Self {
        self.popularity = PopularitySpec::Zipf { s, titles };
        self
    }

    /// Sets uniform popularity over `titles` ranks.
    pub fn uniform(mut self, titles: u32) -> Self {
        self.popularity = PopularitySpec::Uniform { titles };
        self
    }

    /// Adds a flash crowd on `title` at `at`, peaking at `peak`× base
    /// demand and decaying with time constant `decay`.
    pub fn flashcrowd(mut self, title: u32, at: SimTime, peak: f64, decay: SimDuration) -> Self {
        self.crowds.push(FlashCrowd {
            title,
            at,
            peak,
            decay,
        });
        self
    }

    /// Sets the base Poisson arrival rate (viewers per second).
    pub fn arrival_rate(mut self, per_sec: f64) -> Self {
        self.arrivals.rate_per_sec = per_sec;
        self
    }

    /// Adds an MMPP burst overlay (`mult`× rate for exp(`mean_len`)
    /// bursts separated by exp(`mean_gap`) gaps).
    pub fn burst(mut self, mult: f64, mean_len: SimDuration, mean_gap: SimDuration) -> Self {
        self.arrivals.burst = Some(Burst {
            mult,
            mean_len,
            mean_gap,
        });
        self
    }

    /// Adds diurnal modulation (raised cosine of the given period,
    /// bottoming out at `trough`× the base rate).
    pub fn diurnal(mut self, period: SimDuration, trough: f64) -> Self {
        self.arrivals.diurnal = Some(Diurnal { period, trough });
        self
    }

    /// Sets the session machine.
    pub fn session(mut self, spec: SessionSpec) -> Self {
        self.session = spec;
        self
    }

    /// Caps total arrivals.
    pub fn viewers(mut self, max: u32) -> Self {
        self.max_viewers = max;
        self
    }

    /// Sets the arrival horizon.
    pub fn horizon(mut self, d: SimDuration) -> Self {
        self.horizon = d;
        self
    }

    /// Replaces the embedded fault plan (composition with tiger-faults).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Compiles the plan into its seeded generators. `tree` must be the
    /// `"workgen"` subtree of the system seed so workload randomness
    /// stays disjoint from every other stream:
    ///
    /// ```
    /// # use tiger_sim::RngTree;
    /// # use tiger_workgen::WorkloadPlan;
    /// let plan = WorkloadPlan::new().zipf(1.1, 64);
    /// let tree = RngTree::new(1997).subtree("workgen", 0);
    /// let mut w = plan.compile(&tree);
    /// let title = w.popularity.sample(tiger_sim::SimTime::ZERO, &mut w.chooser);
    /// assert!(title < 64);
    /// ```
    pub fn compile(&self, tree: &RngTree) -> CompiledWorkload {
        let popularity = Popularity::new(&self.popularity, &self.crowds);
        let arrivals = Arrivals::new(
            &self.arrivals,
            popularity.crowd_rates(),
            tree.fork("arrivals", 0),
        );
        let sessions = SessionSampler::new(self.session, tree.subtree("session", 0));
        CompiledWorkload {
            popularity,
            arrivals,
            sessions,
            chooser: tree.fork("choose", 0),
        }
    }

    /// Parses the line-oriented plan format. One clause per line; blank
    /// lines and `#` comments are skipped:
    ///
    /// ```text
    /// # popularity: ranks are tN tokens; s=0 degenerates to uniform
    /// zipf s=1.1 titles=256
    /// flashcrowd title=t7 at=120s peak=40x decay=60s
    /// # arrivals: rates carry a /s, /min, or /h unit
    /// arrivals rate=2/s
    /// burst rate=8x mean=20s gap=60s
    /// diurnal period=24h trough=0.15
    /// # sessions: hazard rates per unit of play time
    /// session interactive=0.4 pause=3/min dwell=15s seek=2/min abandon=0.5/min
    /// # driver shape
    /// viewers max=200
    /// horizon t=300s
    /// # compose any tiger-faults clause
    /// fault crash c1 at=130s
    /// ```
    pub fn parse(text: &str) -> Result<WorkloadPlan, String> {
        let mut plan = WorkloadPlan::new();
        let mut fault_lines = String::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(fault) = line.strip_prefix("fault ") {
                // Collected and handed to FaultPlan::parse in one batch so
                // its clause numbering matches a standalone fault file.
                fault_lines.push_str(fault.trim());
                fault_lines.push('\n');
                continue;
            }
            parse_clause(line, &mut plan).map_err(|e| format!("line {}: {e}", i + 1))?;
        }
        if !fault_lines.is_empty() {
            plan.faults = FaultPlan::parse(&fault_lines).map_err(|e| format!("fault {e}"))?;
        }
        validate(&plan)?;
        Ok(plan)
    }
}

/// Loads and parses a plan file, prefixing every error with the path —
/// and, for clause errors, the line — in the conventional
/// `path:line: message` shape editors and CI logs hyperlink.
///
/// This is the one place plan-file diagnostics are formatted; every bin
/// that takes `--plan FILE` (or `TIGER_WORKLOAD_PLAN`) should call it
/// rather than hand-rolling `read_to_string` + [`WorkloadPlan::parse`].
pub fn load_plan_file(path: impl AsRef<std::path::Path>) -> Result<WorkloadPlan, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read plan: {e}", path.display()))?;
    WorkloadPlan::parse(&text).map_err(|e| {
        // Clause errors arrive as "line N: msg"; fold the line number
        // into the path prefix. Cross-clause validation errors have no
        // line and keep the bare path.
        if let Some((n, msg)) = e
            .strip_prefix("line ")
            .and_then(|rest| rest.split_once(": "))
        {
            if n.chars().all(|c| c.is_ascii_digit()) {
                return format!("{}:{n}: {msg}", path.display());
            }
        }
        format!("{}: {e}", path.display())
    })
}

fn validate(plan: &WorkloadPlan) -> Result<(), String> {
    if plan.titles() == 0 {
        return Err("titles= must be at least 1".into());
    }
    for c in &plan.crowds {
        if c.title >= plan.titles() {
            return Err(format!(
                "flashcrowd title=t{} is outside the {}-title catalog",
                c.title,
                plan.titles()
            ));
        }
    }
    Ok(())
}

// --- Text format -------------------------------------------------------------

/// Parses a rate token with a time unit: `2/s`, `40/min`, `0.5/h` — into
/// events per second.
pub fn parse_rate(tok: &str) -> Result<f64, String> {
    let (num, per) = tok
        .split_once('/')
        .ok_or_else(|| format!("rate {tok:?} needs a /s, /min, or /h unit"))?;
    let v: f64 = num
        .parse()
        .map_err(|_| format!("bad number in rate {tok:?}"))?;
    let div = match per {
        "s" => 1.0,
        "min" => 60.0,
        "h" => 3_600.0,
        _ => return Err(format!("unknown rate unit in {tok:?} (want /s, /min, /h)")),
    };
    if !(v.is_finite() && v >= 0.0) {
        return Err(format!("rate {tok:?} must be finite and non-negative"));
    }
    Ok(v / div)
}

/// Parses a multiplier token: `40x` → 40.0.
fn parse_mult(tok: &str) -> Result<f64, String> {
    let n = tok
        .strip_suffix('x')
        .ok_or_else(|| format!("multiplier {tok:?} needs an x suffix (e.g. 40x)"))?;
    let v: f64 = n
        .parse()
        .map_err(|_| format!("bad number in multiplier {tok:?}"))?;
    if !(v.is_finite() && v >= 1.0) {
        return Err(format!("multiplier {tok:?} must be ≥ 1"));
    }
    Ok(v)
}

/// Parses a title token: `t7` → 7.
fn parse_title(tok: &str) -> Result<u32, String> {
    tok.strip_prefix('t')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("bad title token {tok:?} (want tN)"))
}

fn parse_fraction(tok: &str, what: &str) -> Result<f64, String> {
    let v: f64 = tok.parse().map_err(|_| format!("bad {what} {tok:?}"))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("{what} {tok:?} must be in [0, 1]"));
    }
    Ok(v)
}

/// Key/value arguments after the clause verb, e.g. `s=1.1 titles=256`.
struct Args<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Args<'a> {
    fn new(toks: &[&'a str]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        for t in toks {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {t:?}"))?;
            pairs.push((k, v));
        }
        Ok(Args { pairs })
    }

    fn get(&self, key: &str) -> Result<&'a str, String> {
        self.opt(key)
            .ok_or_else(|| format!("missing required argument {key}="))
    }

    fn opt(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
    }
}

fn parse_clause(line: &str, plan: &mut WorkloadPlan) -> Result<(), String> {
    let toks: Vec<&str> = line.split_ascii_whitespace().collect();
    let (&verb, rest) = toks.split_first().ok_or("empty clause")?;
    let args = Args::new(rest)?;
    match verb {
        "zipf" => {
            let s: f64 = args
                .get("s")?
                .parse()
                .map_err(|_| "bad s= (expected a number)".to_string())?;
            if !(s.is_finite() && s >= 0.0) {
                return Err("s= must be finite and non-negative".into());
            }
            let titles: u32 = args
                .get("titles")?
                .parse()
                .map_err(|_| "bad titles=".to_string())?;
            plan.popularity = PopularitySpec::Zipf { s, titles };
        }
        "uniform" => {
            let titles: u32 = args
                .get("titles")?
                .parse()
                .map_err(|_| "bad titles=".to_string())?;
            plan.popularity = PopularitySpec::Uniform { titles };
        }
        "flashcrowd" => {
            let decay = parse_duration(args.get("decay")?)?;
            if decay == SimDuration::ZERO {
                return Err("decay= must be positive".into());
            }
            plan.crowds.push(FlashCrowd {
                title: parse_title(args.get("title")?)?,
                at: SimTime::ZERO + parse_duration(args.get("at")?)?,
                peak: parse_mult(args.get("peak")?)?,
                decay,
            });
        }
        "arrivals" => {
            let rate = parse_rate(args.get("rate")?)?;
            if rate <= 0.0 {
                return Err("rate= must be positive".into());
            }
            plan.arrivals.rate_per_sec = rate;
        }
        "burst" => {
            plan.arrivals.burst = Some(Burst {
                mult: parse_mult(args.get("rate")?)?,
                mean_len: parse_duration(args.get("mean")?)?,
                mean_gap: parse_duration(args.get("gap")?)?,
            });
        }
        "diurnal" => {
            let period = parse_duration(args.get("period")?)?;
            if period == SimDuration::ZERO {
                return Err("period= must be positive".into());
            }
            let trough = parse_fraction(args.get("trough")?, "trough")?;
            if trough == 0.0 {
                return Err("trough= must be positive (0 would silence arrivals)".into());
            }
            plan.arrivals.diurnal = Some(Diurnal { period, trough });
        }
        "session" => {
            let mut spec = SessionSpec::passive();
            spec.interactive = parse_fraction(args.get("interactive")?, "interactive")?;
            if let Some(p) = args.opt("pause") {
                spec.pause_rate = parse_rate(p)?;
            }
            if let Some(d) = args.opt("dwell") {
                spec.dwell_mean = parse_duration(d)?;
            }
            if let Some(s) = args.opt("seek") {
                spec.seek_rate = parse_rate(s)?;
            }
            if let Some(a) = args.opt("abandon") {
                spec.abandon_rate = parse_rate(a)?;
            }
            if spec.pause_rate > 0.0 && spec.dwell_mean == SimDuration::ZERO {
                return Err("dwell= must be positive when pause= is set".into());
            }
            plan.session = spec;
        }
        "viewers" => {
            let max: u32 = args
                .get("max")?
                .parse()
                .map_err(|_| "bad max=".to_string())?;
            if max == 0 {
                return Err("max= must be at least 1".into());
            }
            plan.max_viewers = max;
        }
        "horizon" => {
            let t = parse_duration(args.get("t")?)?;
            if t == SimDuration::ZERO {
                return Err("t= must be positive".into());
            }
            plan.horizon = t;
        }
        other => return Err(format!("unknown clause verb {other:?}")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "
# the doc example
zipf s=1.1 titles=256
flashcrowd title=t7 at=120s peak=40x decay=60s
arrivals rate=2/s
burst rate=8x mean=20s gap=60s
diurnal period=24h trough=0.15
session interactive=0.4 pause=3/min dwell=15s seek=2/min abandon=0.5/min
viewers max=200
horizon t=300s
fault crash c1 at=130s
fault restart c1 at=200s
";

    #[test]
    fn example_plan_parses() {
        let plan = WorkloadPlan::parse(EXAMPLE).expect("parses");
        assert_eq!(
            plan.popularity,
            PopularitySpec::Zipf {
                s: 1.1,
                titles: 256
            }
        );
        assert_eq!(plan.crowds.len(), 1);
        assert_eq!(plan.crowds[0].title, 7);
        assert_eq!(plan.crowds[0].peak, 40.0);
        assert_eq!(plan.crowds[0].decay, SimDuration::from_secs(60));
        assert_eq!(plan.arrivals.rate_per_sec, 2.0);
        let b = plan.arrivals.burst.expect("burst");
        assert_eq!(b.mult, 8.0);
        assert_eq!(b.mean_gap, SimDuration::from_secs(60));
        let d = plan.arrivals.diurnal.expect("diurnal");
        assert_eq!(d.period, SimDuration::from_secs(86_400));
        assert_eq!(d.trough, 0.15);
        assert_eq!(plan.session.interactive, 0.4);
        assert!((plan.session.pause_rate - 3.0 / 60.0).abs() < 1e-12);
        assert_eq!(plan.session.dwell_mean, SimDuration::from_secs(15));
        assert_eq!(plan.max_viewers, 200);
        assert_eq!(plan.horizon, SimDuration::from_secs(300));
        assert_eq!(plan.faults.process.len(), 2, "composed fault clauses");
    }

    #[test]
    fn parse_matches_builder() {
        let parsed = WorkloadPlan::parse(
            "zipf s=1.1 titles=32\nflashcrowd title=t0 at=40s peak=30x decay=20s\n\
             arrivals rate=0.5/s\nviewers max=60\nhorizon t=90s\n",
        )
        .unwrap();
        let built = WorkloadPlan::new()
            .zipf(1.1, 32)
            .flashcrowd(0, SimTime::from_secs(40), 30.0, SimDuration::from_secs(20))
            .arrival_rate(0.5)
            .viewers(60)
            .horizon(SimDuration::from_secs(90));
        assert_eq!(parsed, built);
    }

    #[test]
    fn load_plan_file_reports_path_and_line() {
        let dir = std::env::temp_dir();
        let good = dir.join(format!("tiger_workgen_good_{}.plan", std::process::id()));
        let bad = dir.join(format!("tiger_workgen_bad_{}.plan", std::process::id()));

        std::fs::write(
            &good,
            "uniform titles=4\narrivals rate=1/s\nhorizon t=30s\n",
        )
        .unwrap();
        let plan = load_plan_file(&good).expect("good plan loads");
        assert_eq!(plan.titles(), 4);

        // The clause error lands on line 2 and the message leads with
        // "path:2:" so editors and CI logs hyperlink it.
        std::fs::write(&bad, "uniform titles=4\nwarp factor=9\nhorizon t=30s\n").unwrap();
        let err = load_plan_file(&bad).unwrap_err();
        assert!(
            err.starts_with(&format!("{}:2: ", bad.display())),
            "want path:2: prefix, got {err}"
        );
        assert!(err.contains("unknown clause verb"), "{err}");

        // Cross-clause validation has no line; the bare path prefixes it.
        std::fs::write(&bad, "flashcrowd title=t99 at=1s peak=2x decay=5s\n").unwrap();
        let err = load_plan_file(&bad).unwrap_err();
        assert!(err.starts_with(&format!("{}: ", bad.display())), "{err}");
        assert!(err.contains("outside"), "{err}");

        // A missing file names the path too.
        let missing = dir.join("tiger_workgen_definitely_missing.plan");
        let _ = std::fs::remove_file(&missing);
        let err = load_plan_file(&missing).unwrap_err();
        assert!(err.contains("cannot read plan"), "{err}");
        assert!(err.contains("tiger_workgen_definitely_missing"), "{err}");

        let _ = std::fs::remove_file(&good);
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn rates_parse_with_units() {
        assert_eq!(parse_rate("2/s").unwrap(), 2.0);
        assert!((parse_rate("30/min").unwrap() - 0.5).abs() < 1e-12);
        assert!((parse_rate("7200/h").unwrap() - 2.0).abs() < 1e-12);
        assert!(parse_rate("2").is_err(), "unit required");
        assert!(parse_rate("2/fortnight").is_err());
        assert!(parse_rate("-1/s").is_err());
    }

    #[test]
    fn malformed_clauses_name_the_line() {
        for (bad, needle) in [
            ("warp factor=9", "unknown clause verb"),
            ("zipf s=1.1", "titles="),
            ("zipf s=-1 titles=8", "non-negative"),
            ("flashcrowd title=7 at=1s peak=2x decay=5s", "tN"),
            ("flashcrowd title=t0 at=1s peak=2 decay=5s", "x suffix"),
            ("flashcrowd title=t0 at=1s peak=0.5x decay=5s", "≥ 1"),
            ("arrivals rate=2", "unit"),
            ("diurnal period=24h trough=1.5", "[0, 1]"),
            ("session interactive=0.4 pause=3/min dwell=0s", "dwell="),
            ("viewers max=0", "at least 1"),
            ("horizon t=10", "unit"),
        ] {
            let err = WorkloadPlan::parse(bad).expect_err(bad);
            assert!(err.contains("line 1"), "{bad} -> {err}");
            assert!(err.contains(needle), "{bad} -> {err}");
        }
        // Cross-clause validation happens after all lines parse.
        let err =
            WorkloadPlan::parse("uniform titles=4\nflashcrowd title=t9 at=1s peak=2x decay=5s")
                .expect_err("crowd outside catalog");
        assert!(err.contains("outside"), "{err}");
        // Malformed composed fault clauses surface with the fault prefix.
        let err = WorkloadPlan::parse("fault warp c1 at=2s").expect_err("bad fault");
        assert!(err.contains("fault"), "{err}");
        assert!(err.contains("unknown clause verb"), "{err}");
    }

    #[test]
    fn compile_is_deterministic() {
        let plan = WorkloadPlan::parse(EXAMPLE).unwrap();
        let tree = RngTree::new(7).subtree("workgen", 0);
        let mut a = plan.compile(&tree);
        let mut b = plan.compile(&tree);
        for _ in 0..100 {
            assert_eq!(a.arrivals.next_arrival(), b.arrivals.next_arrival());
            let t = SimTime::from_secs(125);
            assert_eq!(
                a.popularity.sample(t, &mut a.chooser),
                b.popularity.sample(t, &mut b.chooser)
            );
        }
        let sa = a
            .sessions
            .script(3, SimTime::from_secs(1), 400, SimTime::from_secs(300));
        let sb = b
            .sessions
            .script(3, SimTime::from_secs(1), 400, SimTime::from_secs(300));
        assert_eq!(sa, sb);
    }
}
