//! The arrival process: a base Poisson rate shaped by diurnal modulation,
//! an MMPP-style two-state burst overlay, and the additive population
//! surge of any flash crowds.
//!
//! The instantaneous rate is
//!
//! ```text
//! λ(t) = base · diurnal(t) · burst(t)  +  base · Σ_c e_c(t)
//! ```
//!
//! where `e_c(t)` is the crowd's excess weight (see
//! [`crate::popularity`]) — a flash crowd is *extra viewers* asking for
//! the hot title, not a reshuffle of the same arrivals. Sampling uses
//! Ogata thinning against the static majorant
//! `λ_max = base · max_burst_mult + base · Σ_c excess0_c`: candidate
//! gaps are exponential at `λ_max` and accepted with probability
//! `λ(t)/λ_max`. Thinning keeps the sampler exact for any bounded
//! modulation and — because every candidate burns exactly two draws from
//! the arrivals stream — deterministic and replayable.
//!
//! A homogeneous plan (no burst, no diurnal, no crowds) takes the
//! `simple` fast path: one exponential gap per arrival, no thinning.

use tiger_sim::rng::sample_exponential;
use tiger_sim::{SimDuration, SimRng, SimTime};

use crate::plan::ArrivalSpec;
use crate::popularity::CompiledCrowd;

/// Two-state burst modulator (quiet = 1×, bursting = `mult`×). State
/// flips on its own exponential clock, advanced lazily as time is
/// queried; the flip clock draws from a dedicated stream so querying
/// never perturbs the arrival draws.
#[derive(Clone, Debug)]
struct BurstState {
    mult: f64,
    mean_len_s: f64,
    mean_gap_s: f64,
    /// Time the current state ends.
    next_flip: SimTime,
    bursting: bool,
    rng: SimRng,
}

impl BurstState {
    fn new(mult: f64, mean_len: SimDuration, mean_gap: SimDuration, mut rng: SimRng) -> Self {
        let mean_gap_s = mean_gap.as_secs_f64();
        // Start quiet; the first burst begins after one exponential gap.
        let first =
            SimTime::ZERO + SimDuration::from_secs_f64(sample_exponential(&mut rng, mean_gap_s));
        BurstState {
            mult,
            mean_len_s: mean_len.as_secs_f64(),
            mean_gap_s,
            next_flip: first,
            bursting: false,
            rng,
        }
    }

    /// Advances the flip clock to `t` and returns the multiplier there.
    fn factor_at(&mut self, t: SimTime) -> f64 {
        while self.next_flip <= t {
            self.bursting = !self.bursting;
            let mean = if self.bursting {
                self.mean_len_s
            } else {
                self.mean_gap_s
            };
            let dwell = sample_exponential(&mut self.rng, mean);
            self.next_flip += SimDuration::from_secs_f64(dwell.max(1e-9));
        }
        if self.bursting {
            self.mult
        } else {
            1.0
        }
    }
}

/// The compiled arrival process. [`Arrivals::next_arrival`] yields the
/// strictly increasing sequence of arrival instants.
#[derive(Clone, Debug)]
pub struct Arrivals {
    base: f64,
    diurnal: Option<(f64, f64)>, // (period_s, trough)
    burst: Option<BurstState>,
    crowds: Vec<CompiledCrowd>,
    /// Thinning majorant (events/s); equals `base` on the simple path.
    lambda_max: f64,
    now: SimTime,
    rng: SimRng,
}

impl Arrivals {
    pub(crate) fn new(spec: &ArrivalSpec, crowds: Vec<CompiledCrowd>, rng: SimRng) -> Self {
        let base = spec.rate_per_sec;
        let mut rng = rng;
        let burst = spec.burst.map(|b| {
            // The flip clock gets its own derived stream: splitting here
            // (rather than forking from the tree) keeps the constructor
            // signature simple while staying deterministic.
            let seed = rng.next_u64();
            BurstState::new(b.mult, b.mean_len, b.mean_gap, SimRng::from_seed(seed))
        });
        let max_mult = spec.burst.map_or(1.0, |b| b.mult);
        let crowd_peak: f64 = crowds.iter().map(|c| c.excess0).sum();
        let lambda_max = base * max_mult + base * crowd_peak;
        Arrivals {
            base,
            diurnal: spec.diurnal.map(|d| (d.period.as_secs_f64(), d.trough)),
            burst,
            crowds,
            lambda_max,
            now: SimTime::ZERO,
            rng,
        }
    }

    /// Whether the plain-Poisson fast path applies.
    #[inline]
    fn is_simple(&self) -> bool {
        self.diurnal.is_none() && self.burst.is_none() && self.crowds.is_empty()
    }

    /// Instantaneous rate at `t` (advances the burst flip clock).
    fn rate_at(&mut self, t: SimTime) -> f64 {
        let mut f = 1.0;
        if let Some((period, trough)) = self.diurnal {
            let phase = (t.as_secs_f64() / period) * std::f64::consts::TAU;
            f *= trough + (1.0 - trough) * 0.5 * (1.0 + phase.cos());
        }
        if let Some(b) = &mut self.burst {
            f *= b.factor_at(t);
        }
        let surge: f64 = self.crowds.iter().map(|c| c.excess(t)).sum();
        self.base * f + self.base * surge
    }

    /// The next arrival instant (strictly after the previous one).
    pub fn next_arrival(&mut self) -> SimTime {
        if self.is_simple() {
            let gap = sample_exponential(&mut self.rng, 1.0 / self.base);
            self.now += SimDuration::from_secs_f64(gap.max(1e-9));
            return self.now;
        }
        loop {
            let gap = sample_exponential(&mut self.rng, 1.0 / self.lambda_max);
            let cand = self.now + SimDuration::from_secs_f64(gap.max(1e-9));
            self.now = cand;
            let accept = self.rate_at(cand) / self.lambda_max;
            if self.rng.gen_f64() < accept {
                return cand;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Burst, Diurnal};
    use tiger_sim::RngTree;

    fn spec(rate: f64) -> ArrivalSpec {
        ArrivalSpec {
            rate_per_sec: rate,
            burst: None,
            diurnal: None,
        }
    }

    fn count_in(arr: &mut Arrivals, from: SimTime, to: SimTime) -> usize {
        let mut n = 0;
        loop {
            let t = arr.next_arrival();
            if t >= to {
                return n;
            }
            if t >= from {
                n += 1;
            }
        }
    }

    #[test]
    fn poisson_rate_is_respected() {
        let tree = RngTree::new(9).subtree("arr", 0);
        let mut arr = Arrivals::new(&spec(5.0), Vec::new(), tree.fork("a", 0));
        let n = count_in(&mut arr, SimTime::ZERO, SimTime::from_secs(400));
        // 2000 expected; 3σ ≈ 134.
        assert!((1_850..=2_150).contains(&n), "poisson count {n}");
    }

    #[test]
    fn arrivals_strictly_increase() {
        let tree = RngTree::new(4).subtree("arr", 0);
        let s = ArrivalSpec {
            rate_per_sec: 3.0,
            burst: Some(Burst {
                mult: 10.0,
                mean_len: SimDuration::from_secs(5),
                mean_gap: SimDuration::from_secs(10),
            }),
            diurnal: Some(Diurnal {
                period: SimDuration::from_secs(120),
                trough: 0.2,
            }),
        };
        let mut arr = Arrivals::new(&s, Vec::new(), tree.fork("a", 0));
        let mut prev = SimTime::ZERO;
        for _ in 0..2_000 {
            let t = arr.next_arrival();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn diurnal_trough_thins_arrivals() {
        let tree = RngTree::new(21).subtree("arr", 0);
        let s = ArrivalSpec {
            rate_per_sec: 10.0,
            burst: None,
            diurnal: Some(Diurnal {
                period: SimDuration::from_secs(200),
                trough: 0.1,
            }),
        };
        // Peak window is [0, 50) (cos ≈ 1), trough window [75, 125).
        let mut arr = Arrivals::new(&s, Vec::new(), tree.fork("a", 0));
        let peak = count_in(&mut arr, SimTime::ZERO, SimTime::from_secs(50));
        let mut arr2 = Arrivals::new(&s, Vec::new(), tree.fork("a", 0));
        let trough = count_in(&mut arr2, SimTime::from_secs(75), SimTime::from_secs(125));
        assert!(
            peak as f64 > 3.0 * trough as f64,
            "peak {peak} should dwarf trough {trough}"
        );
    }

    #[test]
    fn flash_crowd_surges_total_rate() {
        let tree = RngTree::new(33).subtree("arr", 0);
        let crowd = CompiledCrowd {
            title: 0,
            at: SimTime::from_secs(100),
            excess0: 5.0, // 5× extra population at onset
            decay_secs: 20.0,
        };
        let s = spec(2.0);
        let mut arr = Arrivals::new(&s, vec![crowd], tree.fork("a", 0));
        let before = count_in(&mut arr, SimTime::from_secs(40), SimTime::from_secs(100));
        let mut arr2 = Arrivals::new(&s, vec![crowd], tree.fork("a", 0));
        let during = count_in(&mut arr2, SimTime::from_secs(100), SimTime::from_secs(160));
        // Same-width windows: the surge adds ~5·20 = 100 extra arrivals on
        // top of ~120 base.
        assert!(
            during as f64 > 1.5 * before as f64,
            "surge {during} vs base {before}"
        );
    }

    #[test]
    fn simple_path_matches_rate_and_is_deterministic() {
        let tree = RngTree::new(12).subtree("arr", 0);
        let mut a = Arrivals::new(&spec(1.0), Vec::new(), tree.fork("a", 0));
        let mut b = Arrivals::new(&spec(1.0), Vec::new(), tree.fork("a", 0));
        for _ in 0..100 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }
}
