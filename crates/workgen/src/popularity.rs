//! Per-title popularity: Zipf/uniform base distribution sampled through a
//! Vose alias table, with time-varying flash-crowd overlays.
//!
//! The alias table makes the base sample O(1) — one `gen_range` for the
//! column and one `gen_f64` against the column's cutoff — regardless of
//! catalog size, which is what lets the popularity micro-bench sit in the
//! nanoseconds. Flash crowds are an *additive* overlay: crowd `c`
//! contributes excess weight `e_c(t) = share_c · (peak_c − 1) ·
//! exp(−(t − at_c)/decay_c)` for `t ≥ at_c`, where `share_c` is the hot
//! title's base share — i.e. at onset the hot title's demand is `peak_c`
//! times its base demand, relaxing back exponentially. The sampler draws
//! `u ∈ [0, 1 + Σ e_c(t))`: the `[0, 1)` slice lands in the base alias
//! table, the rest walks the (tiny) crowd list.

use tiger_sim::{SimRng, SimTime};

use crate::plan::{FlashCrowd, PopularitySpec};

/// Walker/Vose alias table over `n` weights: O(n) build, O(1) sample.
#[derive(Clone, Debug)]
struct AliasTable {
    /// Probability of staying in column `i` (scaled to [0, 1]).
    prob: Vec<f64>,
    /// Where a rejected draw in column `i` lands instead.
    alias: Vec<u32>,
}

impl AliasTable {
    fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        // Scale so the average column holds exactly 1.0.
        let scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        // Stacks are filled in index order and drained LIFO: deterministic.
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut scaled = scaled;
        while !small.is_empty() && !large.is_empty() {
            let (s, l) = (small.pop().unwrap(), large.pop().unwrap());
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Float residue: whatever is left fills its own column.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        AliasTable { prob, alias }
    }

    #[inline]
    fn sample(&self, rng: &mut SimRng) -> u32 {
        let col = rng.gen_range(0..self.prob.len() as u32);
        if rng.gen_f64() < self.prob[col as usize] {
            col
        } else {
            self.alias[col as usize]
        }
    }
}

/// A compiled flash crowd: the hot title plus its precomputed excess-weight
/// parameters (relative to a base distribution summing to 1).
#[derive(Clone, Copy, Debug)]
pub struct CompiledCrowd {
    /// The hot title's rank.
    pub title: u32,
    /// Onset instant.
    pub at: SimTime,
    /// Excess weight at onset: `share · (peak − 1)`.
    pub excess0: f64,
    /// Decay time constant, seconds.
    pub decay_secs: f64,
}

impl CompiledCrowd {
    /// Excess weight at time `t` (0 before onset).
    #[inline]
    pub fn excess(&self, t: SimTime) -> f64 {
        if t < self.at {
            return 0.0;
        }
        let dt = (t - self.at).as_secs_f64();
        self.excess0 * (-dt / self.decay_secs).exp()
    }
}

/// The compiled popularity model: base alias table + flash-crowd overlays.
#[derive(Clone, Debug)]
pub struct Popularity {
    base: AliasTable,
    crowds: Vec<CompiledCrowd>,
    titles: u32,
}

impl Popularity {
    /// Builds the model from a base spec plus flash-crowd overlays.
    pub fn new(spec: &PopularitySpec, crowds: &[FlashCrowd]) -> Self {
        let titles = spec.titles();
        let weights: Vec<f64> = match *spec {
            PopularitySpec::Uniform { titles } => vec![1.0; titles as usize],
            PopularitySpec::Zipf { s, titles } => (0..titles)
                .map(|i| 1.0 / ((i + 1) as f64).powf(s))
                .collect(),
        };
        let total: f64 = weights.iter().sum();
        let compiled = crowds
            .iter()
            .map(|c| {
                let share = weights[c.title as usize] / total;
                CompiledCrowd {
                    title: c.title,
                    at: c.at,
                    excess0: share * (c.peak - 1.0),
                    decay_secs: c.decay.as_secs_f64(),
                }
            })
            .collect();
        Popularity {
            base: AliasTable::new(&weights),
            crowds: compiled,
            titles,
        }
    }

    /// Number of titles in the catalog.
    pub fn titles(&self) -> u32 {
        self.titles
    }

    /// The compiled crowd overlays (the arrival process shares them so the
    /// surge population and the surge title choice stay consistent).
    pub fn crowd_rates(&self) -> Vec<CompiledCrowd> {
        self.crowds.clone()
    }

    /// Total excess weight from active crowds at `t`.
    #[inline]
    pub fn excess(&self, t: SimTime) -> f64 {
        self.crowds.iter().map(|c| c.excess(t)).sum()
    }

    /// Samples a title at time `t`. With no active crowds this is exactly
    /// one alias-table draw.
    #[inline]
    pub fn sample(&self, t: SimTime, rng: &mut SimRng) -> u32 {
        if self.crowds.is_empty() {
            return self.base.sample(rng);
        }
        let extra = self.excess(t);
        // u < 1 lands in the base distribution; the tail picks a crowd in
        // proportion to its current excess. One uniform decides which —
        // the base path still burns the same two draws as the no-crowd
        // case only when it falls through to the alias table, keeping the
        // draw count per call time-dependent but replay-deterministic
        // (the same t always consumes the same number of draws).
        let u = rng.gen_f64() * (1.0 + extra);
        if u < 1.0 {
            return self.base.sample(rng);
        }
        let mut rest = u - 1.0;
        for c in &self.crowds {
            let e = c.excess(t);
            if rest < e {
                return c.title;
            }
            rest -= e;
        }
        // Float residue at the very top of the range: fall back to base.
        self.base.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_sim::{RngTree, SimDuration};

    fn counts(pop: &Popularity, t: SimTime, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = RngTree::new(seed).fork("pop-test", 0);
        let mut c = vec![0u64; pop.titles() as usize];
        for _ in 0..n {
            c[pop.sample(t, &mut rng) as usize] += 1;
        }
        c
    }

    #[test]
    fn uniform_is_flat() {
        let pop = Popularity::new(&PopularitySpec::Uniform { titles: 8 }, &[]);
        let c = counts(&pop, SimTime::ZERO, 80_000, 11);
        for &k in &c {
            let dev = (k as f64 - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.05, "uniform deviates: {c:?}");
        }
    }

    #[test]
    fn zipf_zero_equals_uniform() {
        // s = 0 must produce the identical draw sequence to uniform.
        let z = Popularity::new(&PopularitySpec::Zipf { s: 0.0, titles: 8 }, &[]);
        let u = Popularity::new(&PopularitySpec::Uniform { titles: 8 }, &[]);
        let mut ra = RngTree::new(3).fork("z", 0);
        let mut rb = RngTree::new(3).fork("z", 0);
        for _ in 0..1_000 {
            assert_eq!(
                z.sample(SimTime::ZERO, &mut ra),
                u.sample(SimTime::ZERO, &mut rb)
            );
        }
    }

    #[test]
    fn single_title_is_constant() {
        let pop = Popularity::new(&PopularitySpec::Zipf { s: 1.2, titles: 1 }, &[]);
        let mut rng = RngTree::new(5).fork("one", 0);
        for _ in 0..100 {
            assert_eq!(pop.sample(SimTime::ZERO, &mut rng), 0);
        }
    }

    #[test]
    fn flash_crowd_boosts_then_decays() {
        let crowd = FlashCrowd {
            title: 3,
            at: SimTime::from_secs(100),
            peak: 40.0,
            decay: SimDuration::from_secs(20),
        };
        let pop = Popularity::new(&PopularitySpec::Uniform { titles: 8 }, &[crowd]);
        // Before onset: flat.
        let before = counts(&pop, SimTime::from_secs(50), 40_000, 17);
        let share_before = before[3] as f64 / 40_000.0;
        assert!((share_before - 0.125).abs() < 0.02, "{before:?}");
        // At onset: hot title at ~peak× its base share.
        // share' = (1/8 · 40) / (1 + 1/8 · 39) ≈ 0.85.
        let at = counts(&pop, SimTime::from_secs(100), 40_000, 17);
        let share_at = at[3] as f64 / 40_000.0;
        assert!((share_at - 0.845).abs() < 0.03, "{at:?}");
        // Ten decay constants later: back to flat.
        let after = counts(&pop, SimTime::from_secs(300), 40_000, 17);
        let share_after = after[3] as f64 / 40_000.0;
        assert!((share_after - 0.125).abs() < 0.02, "{after:?}");
    }

    #[test]
    fn alias_table_matches_exact_weights() {
        // A deliberately lopsided 3-weight table: shares must converge to
        // the normalized weights.
        let pop = Popularity::new(&PopularitySpec::Zipf { s: 2.0, titles: 3 }, &[]);
        let c = counts(&pop, SimTime::ZERO, 120_000, 23);
        let total: f64 = (0..3).map(|i| 1.0 / ((i + 1) as f64).powi(2)).sum();
        for (i, &k) in c.iter().enumerate() {
            let want = (1.0 / ((i + 1) as f64).powi(2)) / total;
            let got = k as f64 / 120_000.0;
            assert!(
                (got - want).abs() < 0.01,
                "title {i}: want {want:.3} got {got:.3}"
            );
        }
    }
}
