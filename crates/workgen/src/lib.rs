//! tiger-workgen: declarative, deterministic workload generation for the
//! Tiger simulator.
//!
//! A [`WorkloadPlan`] declares *who asks for what, when* — the demand-side
//! twin of `tiger-faults`' `FaultPlan`. Plans are built in code or parsed
//! from a line-oriented text format and compile against the system seed's
//! `"workgen"` RNG subtree into three composable seeded generators:
//!
//! - [`Popularity`] — per-title choice: Zipf or uniform base distribution
//!   (O(1) alias-table sampling) with additive, exponentially-decaying
//!   flash-crowd overlays;
//! - [`Arrivals`] — the arrival process: base Poisson rate with optional
//!   MMPP-style burst and diurnal raised-cosine modulation, sampled
//!   exactly by Ogata thinning; flash crowds add surge population;
//! - [`SessionSampler`] — per-viewer VCR behavior: competing pause /
//!   seek / abandon hazards with exponential dwells, forked per arrival
//!   ordinal so scripts are independent of viewer count and thread count.
//!
//! Everything is pure data until [`WorkloadPlan::compile`], and every
//! sample is a deterministic function of `(plan, seed)` — the same
//! contract the rest of the simulator keeps, so workload sweeps stay
//! bit-identical across fleet thread counts. Plans can embed
//! `fault <clause>` lines to compose demand with a `tiger-faults` plan in
//! one file. See `docs/WORKLOADS.md` for the grammar.

pub mod arrival;
pub mod plan;
pub mod popularity;
pub mod session;

pub use arrival::Arrivals;
pub use plan::{
    load_plan_file, parse_rate, ArrivalSpec, Burst, CompiledWorkload, Diurnal, FlashCrowd,
    PopularitySpec, SessionSpec, WorkloadPlan,
};
pub use popularity::{CompiledCrowd, Popularity};
pub use session::{SessionEvent, SessionMachine, SessionOp, SessionSampler, MAX_OPS_PER_VIEWER};
