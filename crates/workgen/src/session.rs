//! The per-viewer session machine: play / pause / resume / seek / abandon
//! with hazard-rate dwell times.
//!
//! A viewer is either **passive** (plays straight through; the common
//! case) or **interactive**, decided by one Bernoulli draw at session
//! start. An interactive viewer in the Playing state faces three
//! competing exponential hazards — pause, seek, abandon — so the dwell
//! until the next operation is `Exp(1/(λ_p + λ_s + λ_a))` and the
//! operation is chosen in proportion to its rate (the standard
//! competing-risks decomposition; this is what lets one `step` stay at
//! two-to-three RNG draws). Paused viewers resume after an
//! `Exp(dwell_mean)` think time; seeks land on a uniformly random block;
//! abandon ends the session for good.
//!
//! Each viewer's draws come from its own stream, forked by arrival
//! ordinal — so viewer k's script never depends on how many other
//! viewers exist or on scheduling order, which is what keeps fleet runs
//! bit-identical at any thread count.

use tiger_sim::rng::sample_exponential;
use tiger_sim::{RngTree, SimDuration, SimRng, SimTime};

use crate::plan::SessionSpec;

/// One VCR operation the driver should apply to the viewer's stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionOp {
    /// Stop delivering; the viewer intends to come back.
    Pause,
    /// Restart from the high-water mark.
    Resume,
    /// Jump to `to_block` (uniform over the file).
    Seek {
        /// Target block index within the file.
        to_block: u32,
    },
    /// Abandon the session; no further ops.
    Stop,
}

/// A scheduled operation in a viewer's script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionEvent {
    /// When the viewer performs the op.
    pub at: SimTime,
    /// What they do.
    pub op: SessionOp,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Playing,
    Paused,
    Done,
}

/// The stepping core: one viewer's state plus its RNG stream. Exposed so
/// the micro-bench can time a single transition; drivers normally use
/// [`SessionSampler::script`].
#[derive(Clone, Debug)]
pub struct SessionMachine {
    spec: SessionSpec,
    state: State,
    now: SimTime,
    file_blocks: u32,
    rng: SimRng,
}

impl SessionMachine {
    /// A machine for one interactive viewer starting at `t0` on a file of
    /// `file_blocks` blocks.
    pub fn new(spec: SessionSpec, t0: SimTime, file_blocks: u32, rng: SimRng) -> Self {
        SessionMachine {
            spec,
            state: State::Playing,
            now: t0,
            file_blocks: file_blocks.max(1),
            rng,
        }
    }

    /// Advances to the next transition and returns it, or `None` once the
    /// viewer is done (abandoned, or no hazards are enabled).
    #[inline]
    pub fn step(&mut self) -> Option<SessionEvent> {
        match self.state {
            State::Done => None,
            State::Paused => {
                let dwell = sample_exponential(&mut self.rng, self.spec.dwell_mean.as_secs_f64());
                self.now += SimDuration::from_secs_f64(dwell.max(1e-3));
                self.state = State::Playing;
                Some(SessionEvent {
                    at: self.now,
                    op: SessionOp::Resume,
                })
            }
            State::Playing => {
                let total = self.spec.pause_rate + self.spec.seek_rate + self.spec.abandon_rate;
                if total <= 0.0 {
                    self.state = State::Done;
                    return None;
                }
                let dwell = sample_exponential(&mut self.rng, 1.0 / total);
                self.now += SimDuration::from_secs_f64(dwell.max(1e-3));
                // Competing risks: pick the hazard that fired.
                let u = self.rng.gen_f64() * total;
                let op = if u < self.spec.pause_rate {
                    self.state = State::Paused;
                    SessionOp::Pause
                } else if u < self.spec.pause_rate + self.spec.seek_rate {
                    SessionOp::Seek {
                        to_block: self.rng.gen_range(0..self.file_blocks),
                    }
                } else {
                    self.state = State::Done;
                    SessionOp::Stop
                };
                Some(SessionEvent { at: self.now, op })
            }
        }
    }
}

/// Hard cap on ops per viewer script: a pathological spec (huge hazard
/// rates, long horizon) degrades to a truncated script instead of an
/// unbounded event flood.
pub const MAX_OPS_PER_VIEWER: usize = 64;

/// Compiles per-viewer scripts from a [`SessionSpec`] and the `"session"`
/// RNG subtree.
#[derive(Clone, Debug)]
pub struct SessionSampler {
    spec: SessionSpec,
    tree: RngTree,
}

impl SessionSampler {
    pub(crate) fn new(spec: SessionSpec, tree: RngTree) -> Self {
        SessionSampler { spec, tree }
    }

    /// The session spec this sampler compiles.
    pub fn spec(&self) -> SessionSpec {
        self.spec
    }

    /// The full op script for the viewer with arrival ordinal `viewer`,
    /// starting at `t0` on a `file_blocks`-block file. Ops past `horizon`
    /// are dropped (the driver's run window ends there anyway). Returns
    /// an empty script for passive viewers — the interactive/passive coin
    /// is flipped here, on the viewer's own stream.
    pub fn script(
        &self,
        viewer: u64,
        t0: SimTime,
        file_blocks: u32,
        horizon: SimTime,
    ) -> Vec<SessionEvent> {
        let mut rng = self.tree.fork("viewer", viewer);
        if self.spec.interactive <= 0.0 || !rng.gen_bool(self.spec.interactive) {
            return Vec::new();
        }
        let mut m = SessionMachine::new(self.spec, t0, file_blocks, rng);
        let mut out = Vec::new();
        while out.len() < MAX_OPS_PER_VIEWER {
            match m.step() {
                Some(ev) if ev.at <= horizon => out.push(ev),
                _ => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SessionSpec {
        SessionSpec {
            interactive: 1.0,
            pause_rate: 3.0 / 60.0,
            dwell_mean: SimDuration::from_secs(10),
            seek_rate: 2.0 / 60.0,
            abandon_rate: 0.5 / 60.0,
        }
    }

    fn sampler(seed: u64, s: SessionSpec) -> SessionSampler {
        SessionSampler::new(s, RngTree::new(seed).subtree("session", 0))
    }

    #[test]
    fn scripts_are_well_formed() {
        let s = sampler(1, spec());
        let horizon = SimTime::from_secs(600);
        let mut saw_ops = 0;
        for v in 0..200u64 {
            let script = s.script(v, SimTime::from_secs(1), 400, horizon);
            saw_ops += script.len();
            let mut prev = SimTime::ZERO;
            let mut paused = false;
            for ev in &script {
                assert!(ev.at > prev, "ops strictly ordered: {script:?}");
                assert!(ev.at <= horizon);
                prev = ev.at;
                match ev.op {
                    SessionOp::Pause => {
                        assert!(!paused, "pause while paused: {script:?}");
                        paused = true;
                    }
                    SessionOp::Resume => {
                        assert!(paused, "resume while playing: {script:?}");
                        paused = false;
                    }
                    SessionOp::Seek { to_block } => {
                        assert!(!paused, "seek while paused: {script:?}");
                        assert!(to_block < 400);
                    }
                    SessionOp::Stop => {
                        assert!(!paused);
                        assert_eq!(ev, script.last().unwrap(), "stop ends the script");
                    }
                }
            }
        }
        assert!(saw_ops > 200, "interactive viewers should generate ops");
    }

    #[test]
    fn passive_spec_yields_empty_scripts() {
        let s = sampler(2, SessionSpec::passive());
        for v in 0..50u64 {
            assert!(s
                .script(v, SimTime::from_secs(1), 400, SimTime::from_secs(600))
                .is_empty());
        }
    }

    #[test]
    fn interactive_fraction_is_respected() {
        let mut s = spec();
        s.interactive = 0.4;
        let sam = sampler(3, s);
        let n = 2_000u64;
        let interactive = (0..n)
            .filter(|&v| {
                !sam.script(v, SimTime::from_secs(1), 400, SimTime::from_secs(600))
                    .is_empty()
            })
            .count();
        let frac = interactive as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.05, "interactive fraction {frac}");
    }

    #[test]
    fn scripts_depend_only_on_viewer_ordinal() {
        let a = sampler(7, spec());
        let b = sampler(7, spec());
        for v in [0u64, 1, 9, 1_000] {
            assert_eq!(
                a.script(v, SimTime::from_secs(2), 300, SimTime::from_secs(500)),
                b.script(v, SimTime::from_secs(2), 300, SimTime::from_secs(500)),
            );
        }
    }

    #[test]
    fn pathological_rates_hit_the_op_cap() {
        let s = SessionSpec {
            interactive: 1.0,
            pause_rate: 50.0,
            dwell_mean: SimDuration::from_millis(10),
            seek_rate: 50.0,
            abandon_rate: 0.0,
        };
        let script = sampler(4, s).script(0, SimTime::from_secs(1), 100, SimTime::from_secs(600));
        assert_eq!(script.len(), MAX_OPS_PER_VIEWER);
    }
}
