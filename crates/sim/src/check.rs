//! A small in-tree property-testing harness.
//!
//! Replaces the registry `proptest` dependency with the subset this
//! codebase actually needs: run a property closure over many
//! deterministically seeded random cases, and on failure report the exact
//! case seed so the run can be replayed in isolation.
//!
//! Each case gets its own [`SimRng`] forked from `(root seed, property
//! name, case index)` — the same stream-independence discipline the
//! simulation itself uses — so adding cases to one property never perturbs
//! another, and a failing seed is stable across the whole suite.
//!
//! There is deliberately no shrinking: case generation here is simple
//! enough (bounded ints, small vecs) that replaying the one failing seed
//! is a fine debugging workflow. Knobs, via environment variables:
//!
//! * `TIGER_PROP_CASES` — cases per property (default 256).
//! * `TIGER_PROP_SEED` — root seed for the whole suite (default 0).
//! * `TIGER_PROP_REPLAY` — run only the one case with this case seed,
//!   as printed by a failure report.
//! * `TIGER_PROP_THREADS` — shard cases across this many worker threads
//!   (default 1). Because every case's seed is a pure function of
//!   `(root seed, property name, case index)`, sharding cannot change any
//!   case's inputs, and the harness reports the *lowest-index* failure no
//!   matter which worker hits one first — the failure report is identical
//!   at every thread count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::rng::{RngTree, SimRng};

/// Default number of cases per property.
pub const DEFAULT_CASES: u64 = 256;

/// Extra diagnostics appended to a failure report: called with the
/// failing case seed *after* the case's panic has been caught (i.e. after
/// everything the case built has been dropped), on the thread that ran
/// the case. Returns `None` to add nothing.
type FailureHook = Box<dyn Fn(u64) -> Option<String> + Send + Sync>;

static FAILURE_HOOK: Mutex<Option<FailureHook>> = Mutex::new(None);

/// Installs a process-wide failure hook (replacing any previous one).
///
/// The harness calls it once per failing case and appends the returned
/// line to that case's report. The canonical user is `tiger-trace`, which
/// dumps the failing run's ring-buffer trace to a file and reports the
/// path; the hook indirection keeps this crate free of any dependency on
/// (or knowledge of) the tracer. Hooks must be deterministic functions of
/// the case seed for failure reports to stay identical at every
/// `TIGER_PROP_THREADS` setting.
pub fn set_failure_hook(hook: impl Fn(u64) -> Option<String> + Send + Sync + 'static) {
    *FAILURE_HOOK.lock().expect("failure hook lock") = Some(Box::new(hook));
}

fn failure_hook_output(case_seed: u64) -> Option<String> {
    FAILURE_HOOK
        .lock()
        .expect("failure hook lock")
        .as_ref()
        .and_then(|hook| hook(case_seed))
}

fn env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    match parse_u64(&v) {
        Some(x) => Some(x),
        None => panic!("{name} must be an integer (decimal or 0x-hex), got {v:?}"),
    }
}

fn parse_u64(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// Runs `property` over [`DEFAULT_CASES`] seeded cases (see module docs
/// for environment overrides). The closure receives a fresh, case-specific
/// [`SimRng`] and should `assert!`/`panic!` on violation; returning
/// normally passes the case.
///
/// Panics with the property name, case index, and replayable case seed on
/// the first failure (lowest case index, independent of thread count).
pub fn check(name: &str, property: impl Fn(&mut SimRng) + Sync) {
    check_cases(
        name,
        env_u64("TIGER_PROP_CASES").unwrap_or(DEFAULT_CASES),
        property,
    );
}

/// [`check`] with an explicit case count (`TIGER_PROP_CASES` still wins if
/// set, so one environment knob scales the whole suite).
pub fn check_cases(name: &str, cases: u64, property: impl Fn(&mut SimRng) + Sync) {
    let cases = env_u64("TIGER_PROP_CASES").unwrap_or(cases);
    let root = env_u64("TIGER_PROP_SEED").unwrap_or(0);
    let threads = env_u64("TIGER_PROP_THREADS").unwrap_or(1).max(1);
    let tree = RngTree::new(root).subtree(name, 0);

    if let Some(replay) = env_u64("TIGER_PROP_REPLAY") {
        let mut rng = SimRng::from_seed(replay);
        // Catch the failure so the hook (e.g. the trace dumper) still
        // runs on a replay, then re-raise the original panic.
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = outcome {
            if let Some(extra) = failure_hook_output(replay) {
                eprintln!("replay of case seed {replay:#018x}:\n  {extra}");
            }
            std::panic::resume_unwind(payload);
        }
        return;
    }

    // Runs one case; returns its failure message, if any.
    let run_case = |case: u64| -> Option<String> {
        // The case seed is what failure reports print; reconstruct the
        // same SimRng the tree-fork would produce.
        let case_seed = tree.subtree("case", case).seed();
        let mut rng = SimRng::from_seed(case_seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        let payload = outcome.err()?;
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic payload>");
        let mut report = format!(
            "property '{name}' failed at case {case}/{cases} \
             (case seed {case_seed:#018x}):\n  {msg}\n\
             replay with: TIGER_PROP_REPLAY={case_seed:#x} cargo test {name}"
        );
        if let Some(extra) = failure_hook_output(case_seed) {
            report.push_str("\n  ");
            report.push_str(&extra);
        }
        Some(report)
    };

    if threads == 1 || cases < 2 {
        for case in 0..cases {
            if let Some(report) = run_case(case) {
                panic!("{report}");
            }
        }
        return;
    }

    // Parallel shard: workers claim case indices from a shared counter.
    // Each case is seed-independent, so execution order is irrelevant; the
    // harness keeps only the lowest-index failure so the report matches the
    // sequential run. Workers stop claiming once a failure below their next
    // case is known (later-index failures can't win).
    let next = AtomicU64::new(0);
    let failure: Mutex<Option<(u64, String)>> = Mutex::new(None);
    let workers = threads.min(cases) as usize;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let case = next.fetch_add(1, Ordering::Relaxed);
                if case >= cases {
                    return;
                }
                if failure
                    .lock()
                    .expect("harness lock")
                    .as_ref()
                    .is_some_and(|&(c, _)| c < case)
                {
                    return; // A strictly earlier failure already won.
                }
                if let Some(report) = run_case(case) {
                    let mut best = failure.lock().expect("harness lock");
                    if best.as_ref().is_none_or(|&(c, _)| case < c) {
                        *best = Some((case, report));
                    }
                }
            });
        }
    });
    if let Some((_, report)) = failure.into_inner().expect("harness lock") {
        panic!("{report}");
    }
}

/// Generates a vector whose length is drawn from `len` and whose elements
/// come from `item` — the `proptest::collection::vec` workhorse.
pub fn vec_of<T>(
    rng: &mut SimRng,
    len: std::ops::Range<usize>,
    mut item: impl FnMut(&mut SimRng) -> T,
) -> Vec<T> {
    let n = rng.gen_range(len);
    (0..n).map(|_| item(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        // Atomics, not Cell: the property closure must be Sync so the
        // harness may shard it across worker threads.
        let count = AtomicU64::new(0);
        check_cases("always-true", 64, |_rng| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn failing_property_reports_case_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_cases("fails-eventually", 64, |rng| {
                let x = rng.gen_range(0u64..100);
                assert!(x < 2, "x was {x}");
            });
        }));
        let payload = result.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("string panic payload");
        assert!(msg.contains("fails-eventually"), "{msg}");
        assert!(msg.contains("TIGER_PROP_REPLAY"), "{msg}");
        assert!(msg.contains("case seed"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            // Interior mutability: the property closure is `Fn + Sync`, so
            // record each case's first draw through a Mutex.
            let seen = Mutex::new(Vec::new());
            check_cases("determinism", 16, |rng| {
                seen.lock().unwrap().push(rng.next_u64());
            });
            let mut draws = seen.into_inner().unwrap();
            draws.sort_unstable();
            draws
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn distinct_properties_get_distinct_streams() {
        let first_draw = |name: &str| {
            let v = AtomicU64::new(0);
            check_cases(name, 1, |rng| v.store(rng.next_u64(), Ordering::Relaxed));
            v.load(Ordering::Relaxed)
        };
        assert_ne!(first_draw("prop-a"), first_draw("prop-b"));
    }

    #[test]
    fn sharded_failure_report_matches_sequential() {
        // The same failing property must produce a byte-identical report
        // whether cases run on one thread or several: the harness keeps the
        // lowest-index failure regardless of which worker finds one first.
        let report_with_threads = |threads: &str| {
            std::env::set_var("TIGER_PROP_THREADS", threads);
            let result = catch_unwind(AssertUnwindSafe(|| {
                check_cases("shard-equivalence", 64, |rng| {
                    let x = rng.gen_range(0u64..100);
                    assert!(x < 5, "x was {x}");
                });
            }));
            std::env::remove_var("TIGER_PROP_THREADS");
            let payload = result.expect_err("property must fail");
            payload
                .downcast_ref::<String>()
                .expect("string panic payload")
                .clone()
        };
        let sequential = report_with_threads("1");
        let sharded = report_with_threads("3");
        assert_eq!(sequential, sharded);
        assert!(sequential.contains("shard-equivalence"), "{sequential}");
    }

    #[test]
    fn sharded_run_executes_every_case() {
        let count = AtomicU64::new(0);
        std::env::set_var("TIGER_PROP_THREADS", "4");
        check_cases("shard-coverage", 64, |_rng| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        std::env::remove_var("TIGER_PROP_THREADS");
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..200 {
            let v = vec_of(&mut rng, 1..7, |r| r.gen_range(0u32..10));
            assert!((1..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
