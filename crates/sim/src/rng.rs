//! A deterministic tree of random-number streams.
//!
//! Every stochastic element of the simulation (disk blips, network jitter,
//! client file selection, arrival processes) draws from its own stream,
//! derived from a single root seed and a label. This keeps experiments
//! replayable and — just as important — keeps streams independent: adding a
//! draw in one component cannot perturb the sequence seen by another.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled fork point in the deterministic RNG tree.
///
/// `RngTree::fork("disk", 7)` always yields the same stream for the same
/// root seed, regardless of what any other component has drawn.
#[derive(Debug, Clone)]
pub struct RngTree {
    seed: u64,
}

impl RngTree {
    /// Creates a tree rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        RngTree { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent RNG stream for component `label` instance
    /// `index`.
    pub fn fork(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(derive(self.seed, label, index))
    }

    /// Derives a child tree, for components that themselves own several
    /// streams.
    pub fn subtree(&self, label: &str, index: u64) -> RngTree {
        RngTree {
            seed: derive(self.seed, label, index),
        }
    }
}

/// Mixes `(seed, label, index)` into a 64-bit stream seed using FNV-1a over
/// the label followed by a splitmix64 finalizer. Not cryptographic; just a
/// stable, well-spread derivation.
fn derive(seed: u64, label: &str, index: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ seed;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= index;
    h = h.wrapping_mul(FNV_PRIME);
    splitmix64(h)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Draws from an exponential distribution with the given mean, via inverse
/// CDF. Returns the sample in the same (float) units as the mean.
///
/// Provided here so all components use one well-tested implementation.
pub fn sample_exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    // Map the open interval (0, 1]; `gen::<f64>()` yields [0, 1), so invert.
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// Draws from a bounded Pareto-like heavy tail on `[1, cap]` with shape
/// `alpha`. Used for disk service-time "blips": most draws are near 1, rare
/// draws are large multipliers.
pub fn sample_bounded_pareto<R: Rng>(rng: &mut R, alpha: f64, cap: f64) -> f64 {
    debug_assert!(alpha > 0.0 && cap > 1.0);
    let u: f64 = rng
        .gen::<f64>()
        .clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
    // Inverse CDF of a Pareto truncated at `cap`.
    let l = 1.0f64;
    let h = cap;
    let la = l.powf(alpha);
    let ha = h.powf(alpha);
    (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let tree = RngTree::new(42);
        let a: Vec<u32> = {
            let mut r = tree.fork("disk", 3);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = tree.fork("disk", 3);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let tree = RngTree::new(42);
        let a: u64 = tree.fork("disk", 0).gen();
        let b: u64 = tree.fork("net", 0).gen();
        let c: u64 = tree.fork("disk", 1).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn subtree_is_stable() {
        let t1 = RngTree::new(7).subtree("cub", 2);
        let t2 = RngTree::new(7).subtree("cub", 2);
        assert_eq!(t1.fork("x", 0).gen::<u64>(), t2.fork("x", 0).gen::<u64>());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = RngTree::new(1).fork("exp", 0);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| sample_exponential(&mut r, mean)).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.2,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn bounded_pareto_within_bounds() {
        let mut r = RngTree::new(1).fork("pareto", 0);
        for _ in 0..10_000 {
            let x = sample_bounded_pareto(&mut r, 1.5, 50.0);
            assert!((1.0..=50.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn bounded_pareto_is_mostly_small() {
        let mut r = RngTree::new(2).fork("pareto", 0);
        let n = 10_000;
        let big = (0..n)
            .filter(|_| sample_bounded_pareto(&mut r, 1.5, 50.0) > 10.0)
            .count();
        // Heavy tail, but the bulk of mass stays near 1.
        assert!(big < n / 20, "{big} of {n} samples exceeded 10x");
    }
}
