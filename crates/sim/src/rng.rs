//! A deterministic tree of random-number streams, with an in-tree PRNG.
//!
//! Every stochastic element of the simulation (disk blips, network jitter,
//! client file selection, arrival processes) draws from its own stream,
//! derived from a single root seed and a label. This keeps experiments
//! replayable and — just as important — keeps streams independent: adding a
//! draw in one component cannot perturb the sequence seen by another.
//!
//! The generator itself is [`SimRng`], a splitmix64-seeded xoshiro256++
//! implemented here so the workspace builds with zero external
//! dependencies. The determinism contract — a run is a pure function of
//! `(TigerConfig, workload, seed)` — therefore extends all the way down:
//! no registry crate can change a stream out from under us.

/// A labelled fork point in the deterministic RNG tree.
///
/// `RngTree::fork("disk", 7)` always yields the same stream for the same
/// root seed, regardless of what any other component has drawn.
#[derive(Debug, Clone)]
pub struct RngTree {
    seed: u64,
}

impl RngTree {
    /// Creates a tree rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        RngTree { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent RNG stream for component `label` instance
    /// `index`.
    pub fn fork(&self, label: &str, index: u64) -> SimRng {
        SimRng::from_seed(derive(self.seed, label, index))
    }

    /// Derives a child tree, for components that themselves own several
    /// streams.
    pub fn subtree(&self, label: &str, index: u64) -> RngTree {
        RngTree {
            seed: derive(self.seed, label, index),
        }
    }
}

/// Mixes `(seed, label, index)` into a 64-bit stream seed using FNV-1a over
/// the label followed by a splitmix64 finalizer. Not cryptographic; just a
/// stable, well-spread derivation.
fn derive(seed: u64, label: &str, index: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ seed;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= index;
    h = h.wrapping_mul(FNV_PRIME);
    splitmix64(&mut h);
    h
}

/// Advances `x` by one splitmix64 step and returns the mixed output.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The simulation PRNG: xoshiro256++ (Blackman & Vigna), state expanded
/// from a 64-bit seed via splitmix64 — the seeding procedure the xoshiro
/// authors recommend, which guarantees a nonzero state for every seed.
///
/// Deliberately not cryptographic. It is fast, has a 2^256 − 1 period, and
/// passes BigCrush; what the simulation needs from it is *replayability*
/// and *stream independence* (see [`RngTree`]), both of which are covered
/// by tests below.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose state is expanded from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let s = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        SimRng { s }
    }

    /// The next 64 uniformly random bits (one xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits (the upper half of a 64-bit draw,
    /// which xoshiro's authors rate as the stronger half).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw from `range`, which may be a half-open (`a..b`) or
    /// inclusive (`a..=b`) integer range, or a half-open `f64` range.
    ///
    /// Panics if the range is empty, matching the contract callers relied
    /// on from `rand`.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform integer in `[0, n)`, unbiased via Lemire's multiply-shift
    /// rejection method.
    #[inline]
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(n);
            let lo = m as u64;
            if lo < n {
                // Reject the biased low fringe: threshold = 2^64 mod n.
                let t = n.wrapping_neg() % n;
                if lo < t {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }
}

/// Ranges [`SimRng::gen_range`] can sample from.
pub trait UniformRange {
    /// The sampled value's type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut SimRng) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SimRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl UniformRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut SimRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// Draws from an exponential distribution with the given mean, via inverse
/// CDF. Returns the sample in the same (float) units as the mean.
///
/// Provided here so all components use one well-tested implementation.
pub fn sample_exponential(rng: &mut SimRng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    // Map the open interval (0, 1]; `gen_f64()` yields [0, 1), so invert.
    let u: f64 = 1.0 - rng.gen_f64();
    -mean * u.ln()
}

/// Draws from a bounded Pareto-like heavy tail on `[1, cap]` with shape
/// `alpha`. Used for disk service-time "blips": most draws are near 1, rare
/// draws are large multipliers.
pub fn sample_bounded_pareto(rng: &mut SimRng, alpha: f64, cap: f64) -> f64 {
    debug_assert!(alpha > 0.0 && cap > 1.0);
    let u: f64 = rng.gen_f64().clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
    // Inverse CDF of a Pareto truncated at `cap`.
    let l = 1.0f64;
    let h = cap;
    let la = l.powf(alpha);
    let ha = h.powf(alpha);
    (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let tree = RngTree::new(42);
        let a: Vec<u64> = {
            let mut r = tree.fork("disk", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = tree.fork("disk", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let tree = RngTree::new(42);
        let a = tree.fork("disk", 0).next_u64();
        let b = tree.fork("net", 0).next_u64();
        let c = tree.fork("disk", 1).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn subtree_is_stable() {
        let t1 = RngTree::new(7).subtree("cub", 2);
        let t2 = RngTree::new(7).subtree("cub", 2);
        assert_eq!(t1.fork("x", 0).next_u64(), t2.fork("x", 0).next_u64());
    }

    #[test]
    fn forked_streams_are_independent() {
        // The RngTree contract: forking "disk" vs "net" yields streams
        // that never correlate. Checked two ways: no positionwise u64
        // collision over a long prefix, and a Pearson correlation of the
        // uniform draws statistically indistinguishable from zero.
        let tree = RngTree::new(1997);
        let mut a = tree.fork("disk", 0);
        let mut b = tree.fork("net", 0);
        let n = 8192;
        let xs: Vec<f64> = (0..n).map(|_| a.gen_f64()).collect();
        let ys: Vec<f64> = (0..n).map(|_| b.gen_f64()).collect();
        let collisions = xs.iter().zip(&ys).filter(|(x, y)| x == y).count();
        assert_eq!(collisions, 0, "positionwise collisions between streams");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mx, my) = (mean(&xs), mean(&ys));
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        let r = cov / (vx.sqrt() * vy.sqrt());
        // For n = 8192 independent pairs, |r| < 4/sqrt(n) ≈ 0.044 with
        // overwhelming probability.
        assert!(r.abs() < 0.05, "streams correlate: r = {r}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = RngTree::new(5).fork("range", 0);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..30);
            assert!((10..30).contains(&x));
            let y = r.gen_range(0u64..=7);
            assert!(y <= 7);
            let z = r.gen_range(0.7..1.3);
            assert!((0.7..1.3).contains(&z));
            let w = r.gen_range(0usize..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut r = RngTree::new(6).fork("uniform", 0);
        let n = 40_000;
        let mut counts = [0u32; 8];
        for _ in 0..n {
            counts[r.gen_range(0usize..8)] += 1;
        }
        let expected = n / 8;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expected as f64).abs() / expected as f64;
            assert!(dev < 0.1, "bucket {i} off by {dev:.3}: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = RngTree::new(8).fork("bool", 0);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "gen_bool(0.3) hit rate {frac}");
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut r = RngTree::new(9).fork("f64", 0);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = RngTree::new(1).fork("exp", 0);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| sample_exponential(&mut r, mean)).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.2,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn bounded_pareto_within_bounds() {
        let mut r = RngTree::new(1).fork("pareto", 0);
        for _ in 0..10_000 {
            let x = sample_bounded_pareto(&mut r, 1.5, 50.0);
            assert!((1.0..=50.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn bounded_pareto_is_mostly_small() {
        let mut r = RngTree::new(2).fork("pareto", 0);
        let n = 10_000;
        let big = (0..n)
            .filter(|_| sample_bounded_pareto(&mut r, 1.5, 50.0) > 10.0)
            .count();
        // Heavy tail, but the bulk of mass stays near 1.
        assert!(big < n / 20, "{big} of {n} samples exceeded 10x");
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the all-distinct small state
        // [1, 2, 3, 4], cross-checked against the reference C
        // implementation's algebra: result = rotl(s0 + s3, 23) + s0.
        let mut r = SimRng { s: [1, 2, 3, 4] };
        let first = r.next_u64();
        assert_eq!(first, (1u64 + 4).rotate_left(23).wrapping_add(1));
        // The state must have advanced (not a fixed point).
        assert_ne!(r.s, [1, 2, 3, 4]);
    }

    #[test]
    fn seeding_never_yields_all_zero_state() {
        for seed in [0u64, 1, u64::MAX, 0xdead_beef] {
            let r = SimRng::from_seed(seed);
            assert_ne!(r.s, [0, 0, 0, 0], "zero state for seed {seed}");
        }
    }
}
