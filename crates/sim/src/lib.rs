//! Deterministic discrete-event simulation kernel for the Tiger reproduction.
//!
//! The Tiger paper's evaluation ran on a 14-machine ATM testbed. This crate
//! provides the substrate that replaces that testbed: a nanosecond-resolution
//! simulated clock, a deterministic event queue, a seedable RNG tree so that
//! every component draws from an independent but reproducible stream, and the
//! metrics primitives (busy trackers, time series, histograms) used to report
//! the quantities the paper measures (disk duty cycle, CPU load, control
//! traffic, startup latency).
//!
//! Determinism contract: a simulation driven by [`EventQueue`] is a pure
//! function of its inputs. Ties in event time are broken by insertion
//! sequence number, so iteration order never depends on heap internals.
//!
//! The whole substrate is dependency-free: the PRNG ([`SimRng`], a
//! splitmix64-seeded xoshiro256++) and the property-test harness
//! ([`check`]) live in this crate, so builds are replayable with an empty
//! cargo registry (`CARGO_NET_OFFLINE=1`).

pub mod check;
pub mod event;
pub mod metrics;
pub mod rng;
pub mod time;

pub use event::EventQueue;
pub use metrics::{BusyTracker, Counter, Histogram, Series, TimeWeightedMean};
pub use rng::{RngTree, SimRng};
pub use time::{Bandwidth, ByteSize, SimDuration, SimTime};

/// A `HashMap` with a fixed-key hasher: iteration order is a pure function
/// of the insertion history, so simulations that iterate maps (batching,
/// re-drives) stay deterministic *across processes*, not just within one.
pub type DetHashMap<K, V> = std::collections::HashMap<
    K,
    V,
    std::hash::BuildHasherDefault<std::collections::hash_map::DefaultHasher>,
>;

/// A `HashSet` with a fixed-key hasher (see [`DetHashMap`]).
pub type DetHashSet<K> = std::collections::HashSet<
    K,
    std::hash::BuildHasherDefault<std::collections::hash_map::DefaultHasher>,
>;
