//! Simulated time, durations, byte sizes, and bandwidths.
//!
//! All schedule math in the Tiger reproduction is exact integer arithmetic on
//! nanoseconds. The paper's block-service-time rounding rule (§3.1: "If not,
//! the block service time is lengthened enough to make it so") only works if
//! time values divide exactly, which floating point cannot guarantee.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Nanoseconds per second, as a `u64`.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds per millisecond, as a `u64`.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds per microsecond, as a `u64`.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from whole milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration since an earlier instant.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is in the future, which
    /// makes lead-time computations robust against slight reordering.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The exact duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier > self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "since() given a later instant");
        SimDuration(self.0 - earlier.0)
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating subtraction of a duration (clamps at the epoch).
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Rounds this instant *up* to the next multiple of `quantum`
    /// (an instant already on a boundary is returned unchanged).
    ///
    /// Used for the §3.2 fragmentation fix: viewers are "forced to start at
    /// times that are integral multiples of the block play time divided by
    /// the decluster factor".
    pub fn round_up_to(self, quantum: SimDuration) -> SimTime {
        assert!(quantum.0 > 0, "quantum must be nonzero");
        let rem = self.0 % quantum.0;
        if rem == 0 {
            self
        } else {
            SimTime(self.0 + (quantum.0 - rem))
        }
    }

    /// Rounds this instant *down* to the previous multiple of `quantum`.
    pub fn round_down_to(self, quantum: SimDuration) -> SimTime {
        assert!(quantum.0 > 0, "quantum must be nonzero");
        SimTime(self.0 - self.0 % quantum.0)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span; useful as an "infinite timeout".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large for a `u64`
    /// nanosecond count.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative"
        );
        let nanos = secs * NANOS_PER_SEC as f64;
        assert!(
            nanos <= u64::MAX as f64,
            "duration overflows u64 nanoseconds"
        );
        SimDuration(nanos.round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by an integer with `u128` intermediate precision.
    ///
    /// # Panics
    ///
    /// Panics if the result overflows a `u64` nanosecond count.
    pub fn mul_u64(self, k: u64) -> SimDuration {
        let wide = self.0 as u128 * k as u128;
        assert!(wide <= u64::MAX as u128, "duration overflow");
        SimDuration(wide as u64)
    }

    /// Divides by an integer, truncating toward zero.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn div_u64(self, k: u64) -> SimDuration {
        assert!(k != 0, "division by zero");
        SimDuration(self.0 / k)
    }

    /// Divides by an integer, rounding the quotient *up*.
    ///
    /// This implements the §3.1 lengthening rule: when a schedule must hold
    /// an integral number of slots, the block service time is rounded up so
    /// that `slots * service_time >= schedule_length`.
    pub fn div_u64_ceil(self, k: u64) -> SimDuration {
        assert!(k != 0, "division by zero");
        SimDuration(self.0.div_ceil(k))
    }

    /// How many whole `other` spans fit in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(other.0 != 0, "division by zero duration");
        self.0 / other.0
    }

    /// The ratio `self / other` as a float (for reporting only).
    pub fn ratio(self, other: SimDuration) -> f64 {
        self.0 as f64 / other.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("negative SimDuration"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        self.mul_u64(k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        self.div_u64(k)
    }
}

impl Rem for SimDuration {
    type Output = SimDuration;
    fn rem(self, other: SimDuration) -> SimDuration {
        assert!(other.0 != 0, "modulo by zero duration");
        SimDuration(self.0 % other.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A count of bytes, used for block sizes and message sizes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from a raw byte count.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size from binary kilobytes (1 KiB = 1024 B).
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Creates a size from binary megabytes (1 MiB = 1024 KiB).
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Size in MiB, as a float (for reporting only).
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Integer division, truncating.
    pub fn div_u64(self, k: u64) -> ByteSize {
        assert!(k != 0, "division by zero");
        ByteSize(self.0 / k)
    }

    /// Integer division, rounding up. Used to split a block into
    /// `decluster` mirror pieces without losing the remainder.
    pub fn div_u64_ceil(self, k: u64) -> ByteSize {
        assert!(k != 0, "division by zero");
        ByteSize(self.0.div_ceil(k))
    }

    /// Multiplies by an integer.
    pub fn mul_u64(self, k: u64) -> ByteSize {
        ByteSize(self.0.checked_mul(k).expect("ByteSize overflow"))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_add(other.0).expect("ByteSize overflow"))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, other: ByteSize) {
        *self = *self + other;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_sub(other.0).expect("negative ByteSize"))
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.2}MiB", self.as_mib_f64())
        } else if self.0 >= 1024 {
            write!(f, "{:.1}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A data rate in bits per second.
///
/// Stream bitrates (2 Mbit/s in the SOSP configuration), NIC capacities
/// (OC-3 ≈ 155 Mbit/s), and disk media rates are all expressed as
/// `Bandwidth`. Conversions to transmit times use `u128` intermediates so
/// that no precision is lost for realistic sizes and rates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Creates a bandwidth from bits per second.
    pub const fn from_bits_per_sec(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Creates a bandwidth from megabits per second (10^6 bits).
    pub const fn from_mbit_per_sec(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }

    /// Creates a bandwidth from kilobits per second (10^3 bits).
    pub const fn from_kbit_per_sec(kbps: u64) -> Self {
        Bandwidth(kbps * 1_000)
    }

    /// Creates a bandwidth from bytes per second.
    pub const fn from_bytes_per_sec(byps: u64) -> Self {
        Bandwidth(byps * 8)
    }

    /// Raw bits per second.
    pub const fn bits_per_sec(self) -> u64 {
        self.0
    }

    /// Megabits per second, as a float (for reporting only).
    pub fn as_mbit_per_sec_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Bytes per second, truncating.
    pub const fn bytes_per_sec(self) -> u64 {
        self.0 / 8
    }

    /// True if the bandwidth is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The time required to move `size` at this rate, rounded up to the
    /// next nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn time_to_move(self, size: ByteSize) -> SimDuration {
        assert!(self.0 != 0, "cannot move data at zero bandwidth");
        let bits = size.as_bytes() as u128 * 8;
        let nanos = (bits * NANOS_PER_SEC as u128).div_ceil(self.0 as u128);
        assert!(nanos <= u64::MAX as u128, "transmit time overflow");
        SimDuration::from_nanos(nanos as u64)
    }

    /// The number of bytes moved in `d` at this rate, truncating.
    pub fn bytes_in(self, d: SimDuration) -> ByteSize {
        let bits = self.0 as u128 * d.as_nanos() as u128 / NANOS_PER_SEC as u128;
        ByteSize::from_bytes((bits / 8) as u64)
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_add(other.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: Bandwidth) -> Option<Bandwidth> {
        self.0.checked_sub(other.0).map(Bandwidth)
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.checked_add(other.0).expect("Bandwidth overflow"))
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, other: Bandwidth) {
        *self = *self + other;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.checked_sub(other.0).expect("negative Bandwidth"))
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Mbit/s", self.as_mbit_per_sec_f64())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 3_250_000_000);
        assert_eq!(t - SimTime::from_secs(3), SimDuration::from_millis(250));
        assert_eq!(
            t.saturating_since(SimTime::from_secs(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn round_up_and_down() {
        let q = SimDuration::from_millis(250);
        assert_eq!(
            SimTime::from_millis(0).round_up_to(q),
            SimTime::from_millis(0)
        );
        assert_eq!(
            SimTime::from_millis(1).round_up_to(q),
            SimTime::from_millis(250)
        );
        assert_eq!(
            SimTime::from_millis(250).round_up_to(q),
            SimTime::from_millis(250)
        );
        assert_eq!(
            SimTime::from_millis(501).round_down_to(q),
            SimTime::from_millis(500)
        );
    }

    #[test]
    fn duration_div_ceil_implements_lengthening_rule() {
        // A 10-second schedule divided into 3 slots lengthens each slot so
        // that 3 slots cover at least the whole schedule.
        let sched = SimDuration::from_secs(10);
        let slot = sched.div_u64_ceil(3);
        assert!(slot.mul_u64(3) >= sched);
        assert!(slot.mul_u64(3) - sched < slot);
    }

    #[test]
    fn bandwidth_transmit_times() {
        // 0.25 MB at 2 Mbit/s is exactly 1.048576 s (binary MB, decimal Mbit):
        // 262144 bytes * 8 bits = 2097152 bits / 2e6 bits/s.
        let bw = Bandwidth::from_mbit_per_sec(2);
        let block = ByteSize::from_mib(1).div_u64(4);
        let t = bw.time_to_move(block);
        assert_eq!(t.as_nanos(), 1_048_576_000);
        // Inverse direction loses at most a byte to truncation.
        let back = bw.bytes_in(t);
        assert!(block.as_bytes() - back.as_bytes() <= 1);
    }

    #[test]
    fn bandwidth_zero_move_panics() {
        let r = std::panic::catch_unwind(|| Bandwidth::ZERO.time_to_move(ByteSize::from_bytes(1)));
        assert!(r.is_err());
    }

    #[test]
    fn bytesize_ceil_split_covers_block() {
        // Splitting a block into `d` mirror pieces of ceil size never loses
        // bytes: d * ceil(size/d) >= size.
        for d in 1..10 {
            let block = ByteSize::from_bytes(262_144 + 7);
            let piece = block.div_u64_ceil(d);
            assert!(piece.mul_u64(d).as_bytes() >= block.as_bytes());
        }
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(format!("{}", SimDuration::from_millis(93)), "93.000ms");
        assert_eq!(format!("{}", ByteSize::from_mib(1).div_u64(4)), "256.0KiB");
        assert_eq!(
            format!("{}", Bandwidth::from_mbit_per_sec(2)),
            "2.000Mbit/s"
        );
    }
}
