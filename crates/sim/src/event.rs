//! A deterministic time-ordered event queue.
//!
//! Events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO among ties). This matters for protocol fidelity:
//! the Tiger insertion-ordering argument of §4.1.3 assumes that a cub that
//! sends a deschedule before an insertion has those messages *processed* in
//! that order, and the simulation must not reorder them through heap
//! internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue keyed by simulated time with FIFO tie-breaking.
///
/// The queue also owns the simulated clock: popping an event advances
/// [`EventQueue::now`] to that event's timestamp. Scheduling an event in the
/// past is a logic error and panics, because it would mean the simulation
/// produced an effect before its cause.
#[derive(Debug)]
pub struct EventQueue<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Entry<E>>,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at the epoch.
    pub fn new() -> Self {
        EventQueue {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current simulated time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled an event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the next event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Removes and returns the next event only if it is at or before
    /// `horizon`; the clock does not advance past `horizon` otherwise.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Discards all pending events and advances the clock to `at`.
    ///
    /// Used by experiment drivers to fast-forward between phases.
    pub fn jump_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot jump backwards in time");
        self.heap.clear();
        self.now = at;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "second");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(10), "b");
        assert_eq!(
            q.pop_until(SimTime::from_secs(5)).map(|(_, e)| e),
            Some("a")
        );
        assert_eq!(q.pop_until(SimTime::from_secs(5)), None);
        // The clock did not advance to the unpopped event.
        assert_eq!(q.now(), SimTime::from_secs(1));
    }

    #[test]
    fn jump_to_discards_and_advances() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.jump_to(SimTime::from_secs(42));
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_secs(42));
    }
}
