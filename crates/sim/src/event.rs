//! A deterministic time-ordered event queue.
//!
//! Events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO among ties). This matters for protocol fidelity:
//! the Tiger insertion-ordering argument of §4.1.3 assumes that a cub that
//! sends a deschedule before an insertion has those messages *processed* in
//! that order, and the simulation must not reorder them through heap
//! internals.
//!
//! Two hot-path optimizations (this is the innermost loop of every
//! experiment run):
//!
//! * Each entry's `(time, seq)` ordering pair is packed into a single
//!   `u128` key, so heap sift comparisons are one integer compare instead
//!   of a lexicographic tuple compare.
//! * A one-entry *front slot* short-circuits the common dispatch pattern
//!   where a handler pops the head event and immediately schedules a
//!   follow-up that precedes everything else pending (immediate retries,
//!   `now + 1ns` insert attempts, near-future deliveries into a far-future
//!   backlog). Such an entry never touches the heap: scheduling it and
//!   popping it are both O(1) instead of two O(log n) sifts.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue keyed by simulated time with FIFO tie-breaking.
///
/// The queue also owns the simulated clock: popping an event advances
/// [`EventQueue::now`] to that event's timestamp. Scheduling an event in the
/// past is a logic error and panics, because it would mean the simulation
/// produced an effect before its cause.
#[derive(Debug)]
pub struct EventQueue<E> {
    now: SimTime,
    seq: u64,
    /// An entry that sorts strictly before everything in `heap`, if any.
    front: Option<Entry<E>>,
    heap: BinaryHeap<Entry<E>>,
}

#[derive(Debug)]
struct Entry<E> {
    /// `(time, seq)` packed as `time << 64 | seq`: one compare orders by
    /// time first and insertion sequence second (the FIFO tie-break).
    key: u128,
    event: E,
}

impl<E> Entry<E> {
    fn new(at: SimTime, seq: u64, event: E) -> Self {
        Entry {
            key: (u128::from(at.as_nanos()) << 64) | u128::from(seq),
            event,
        }
    }

    fn at(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.key.cmp(&self.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at the epoch.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue pre-sized for `capacity` pending events, so
    /// long runs do not regrow the heap mid-simulation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            now: SimTime::ZERO,
            seq: 0,
            front: None,
            heap: BinaryHeap::with_capacity(capacity),
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// The number of pending events the queue can hold without regrowing.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + usize::from(self.front.is_some())
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.front.is_none() && self.heap.is_empty()
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current simulated time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled an event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let mut entry = Entry::new(at, seq, event);
        // Keys are unique (seq increments), so strict compares suffice.
        // Maintain the invariant: `front` sorts before every heap entry.
        match &mut self.front {
            Some(f) => {
                if entry.key < f.key {
                    std::mem::swap(f, &mut entry);
                }
                self.heap.push(entry);
            }
            None => {
                if self.heap.peek().is_none_or(|h| entry.key < h.key) {
                    self.front = Some(entry);
                } else {
                    self.heap.push(entry);
                }
            }
        }
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.front {
            Some(f) => Some(f.at()),
            None => self.heap.peek().map(Entry::at),
        }
    }

    /// Removes and returns the next event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = match self.front.take() {
            Some(f) => f,
            None => self.heap.pop()?,
        };
        let at = entry.at();
        debug_assert!(at >= self.now, "event queue time went backwards");
        self.now = at;
        Some((at, entry.event))
    }

    /// Removes and returns the next event only if it is at or before
    /// `horizon`; the clock does not advance past `horizon` otherwise.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Discards all pending events and advances the clock to `at`.
    ///
    /// Used by experiment drivers to fast-forward between phases.
    pub fn jump_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot jump backwards in time");
        self.front = None;
        self.heap.clear();
        self.now = at;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "second");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(10), "b");
        assert_eq!(
            q.pop_until(SimTime::from_secs(5)).map(|(_, e)| e),
            Some("a")
        );
        assert_eq!(q.pop_until(SimTime::from_secs(5)), None);
        // The clock did not advance to the unpopped event.
        assert_eq!(q.now(), SimTime::from_secs(1));
    }

    #[test]
    fn jump_to_discards_and_advances() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(100), ()); // one in the front slot, one in the heap
        q.jump_to(SimTime::from_secs(142));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.now(), SimTime::from_secs(142));
    }

    #[test]
    fn with_capacity_presizes_and_reserve_grows() {
        let mut q = EventQueue::<u32>::with_capacity(1024);
        assert!(q.capacity() >= 1024);
        let before = q.capacity();
        for i in 0..1024 {
            q.schedule(SimTime::from_nanos(u64::from(i)), i);
        }
        // Filling to the pre-sized capacity must not regrow the heap. The
        // front-slot holds one entry, so at most `capacity` reach the heap.
        assert_eq!(q.capacity(), before);
        q.reserve(4096);
        // `reserve` sizes the heap; the front slot holds one entry outside it.
        let in_heap = q.len() - 1;
        assert!(q.capacity() >= in_heap + 4096);
    }

    /// The front-slot fast path must be invisible: any interleaving of
    /// schedules and pops yields the same order as a plain sorted-by
    /// `(time, seq)` queue.
    #[test]
    fn fast_path_preserves_order_across_interleavings() {
        // Pop-then-schedule-at-head: the follow-up lands in the front slot,
        // then a later schedule at the same instant must NOT overtake older
        // same-instant heap entries.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        q.schedule(t, "heap-old");
        q.schedule(SimTime::from_secs(1), "first");
        assert_eq!(q.pop().map(|(_, e)| e), Some("first")); // now = 1s
        q.schedule(SimTime::from_secs(2), "front"); // beats heap min -> front slot
        q.schedule(t, "heap-new"); // same instant as heap-old, younger seq
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["front", "heap-old", "heap-new"]);
    }

    #[test]
    fn scheduling_below_front_demotes_it_to_the_heap() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.schedule(SimTime::from_secs(5), "mid"); // front slot
        q.schedule(SimTime::from_secs(2), "early"); // displaces mid
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["early", "mid", "late"]);
    }

    /// Randomized differential check: the queue agrees with a reference
    /// stable sort by `(time, seq)` over arbitrary schedule/pop traces.
    #[test]
    fn differential_against_reference_sort() {
        use crate::rng::RngTree;
        let mut rng = RngTree::new(77).fork("event-queue-diff", 0);
        for _ in 0..50 {
            let mut q = EventQueue::new();
            let mut reference: Vec<(u64, u64)> = Vec::new(); // (at_nanos, id)
            let mut popped: Vec<u64> = Vec::new();
            let mut id = 0u64;
            let mut floor = 0u64;
            for _ in 0..200 {
                if rng.gen_bool(0.6) || q.is_empty() {
                    let at = floor + rng.gen_range(0u64..5);
                    q.schedule(SimTime::from_nanos(at), id);
                    reference.push((at, id));
                    id += 1;
                } else {
                    let (at, e) = q.pop().expect("non-empty");
                    floor = at.as_nanos();
                    popped.push(e);
                }
            }
            while let Some((_, e)) = q.pop() {
                popped.push(e);
            }
            // Reference: stable sort by time (stability = FIFO tie-break)…
            // except pops interleave with schedules; since every schedule is
            // >= the clock floor, the final pop order is still the stable
            // time-sorted order of all entries.
            reference.sort_by_key(|&(at, _)| at);
            let expect: Vec<u64> = reference.into_iter().map(|(_, i)| i).collect();
            assert_eq!(popped, expect);
        }
    }
}
