//! Measurement primitives for the quantities the paper reports.
//!
//! §5 measures disk duty cycle ("percentage of time during which the disk
//! was waiting for an I/O completion"), mean CPU load over 50-second
//! windows, control traffic in bytes per second, and startup latency
//! distributions. These types compute exactly those quantities from event
//! timestamps, with no sampling noise.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Tracks the fraction of time a resource is busy.
///
/// Supports overlapping busy intervals (e.g. a NIC carrying several stream
/// sends at once) by reference counting: the resource is "busy" while at
/// least one interval is open.
#[derive(Debug, Clone, Default)]
pub struct BusyTracker {
    depth: u32,
    busy_since: Option<SimTime>,
    accumulated: SimDuration,
    window_start: SimTime,
    window_accumulated: SimDuration,
}

impl BusyTracker {
    /// Creates an idle tracker with its window origin at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the start of a busy interval at `now`.
    pub fn begin(&mut self, now: SimTime) {
        if self.depth == 0 {
            self.busy_since = Some(now);
        }
        self.depth += 1;
    }

    /// Marks the end of a busy interval at `now`.
    ///
    /// # Panics
    ///
    /// Panics if no interval is open.
    pub fn end(&mut self, now: SimTime) {
        assert!(self.depth > 0, "BusyTracker::end without matching begin");
        self.depth -= 1;
        if self.depth == 0 {
            let since = self.busy_since.take().expect("busy_since set while busy");
            let span = now.saturating_since(since);
            self.accumulated += span;
            self.window_accumulated += span;
        }
    }

    /// True if at least one busy interval is open.
    pub fn is_busy(&self) -> bool {
        self.depth > 0
    }

    /// Total busy time since creation, counting any open interval up to
    /// `now`.
    pub fn total_busy(&self, now: SimTime) -> SimDuration {
        let open = match self.busy_since {
            Some(since) if self.depth > 0 => now.saturating_since(since),
            _ => SimDuration::ZERO,
        };
        self.accumulated + open
    }

    /// Busy fraction over the current measurement window ending at `now`,
    /// in `[0, 1]`. Returns 0 for an empty window.
    pub fn window_utilization(&self, now: SimTime) -> f64 {
        let window = now.saturating_since(self.window_start);
        if window.is_zero() {
            return 0.0;
        }
        let open = match self.busy_since {
            Some(since) if self.depth > 0 => now.saturating_since(since.max(self.window_start)),
            _ => SimDuration::ZERO,
        };
        (self.window_accumulated + open).ratio(window).min(1.0)
    }

    /// Starts a fresh measurement window at `now` (e.g. after each 50-second
    /// settle period in the ramp experiments).
    pub fn reset_window(&mut self, now: SimTime) {
        self.window_start = now;
        self.window_accumulated = SimDuration::ZERO;
        // An interval that straddles the boundary only counts its part
        // inside the new window; fold the old part into the lifetime total
        // by re-basing `busy_since`.
        if self.depth > 0 {
            if let Some(since) = self.busy_since {
                self.accumulated += now.saturating_since(since);
                self.busy_since = Some(now);
            }
        }
    }
}

/// A monotonically increasing event/byte counter with windowed rates.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    total: u64,
    window_start: SimTime,
    window_total: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.total += n;
        self.window_total += n;
    }

    /// Increments the counter by one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// The lifetime total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The count accumulated in the current window.
    pub fn window_total(&self) -> u64 {
        self.window_total
    }

    /// The rate (count per second) over the current window ending at `now`.
    pub fn window_rate(&self, now: SimTime) -> f64 {
        let window = now.saturating_since(self.window_start);
        if window.is_zero() {
            return 0.0;
        }
        self.window_total as f64 / window.as_secs_f64()
    }

    /// Starts a fresh measurement window at `now`.
    pub fn reset_window(&mut self, now: SimTime) {
        self.window_start = now;
        self.window_total = 0;
    }
}

/// The time-weighted mean of a piecewise-constant quantity (e.g. a modelled
/// CPU load that changes when streams are added).
#[derive(Debug, Clone)]
pub struct TimeWeightedMean {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    window_start: SimTime,
}

impl TimeWeightedMean {
    /// Creates a tracker with initial value `value` at the epoch.
    pub fn new(value: f64) -> Self {
        TimeWeightedMean {
            value,
            last_change: SimTime::ZERO,
            weighted_sum: 0.0,
            window_start: SimTime::ZERO,
        }
    }

    /// Records that the quantity changed to `value` at `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.accumulate(now);
        self.value = value;
    }

    /// The current instantaneous value.
    pub fn current(&self) -> f64 {
        self.value
    }

    fn accumulate(&mut self, now: SimTime) {
        let span = now.saturating_since(self.last_change);
        self.weighted_sum += self.value * span.as_secs_f64();
        self.last_change = now;
    }

    /// The time-weighted mean over the current window ending at `now`.
    pub fn window_mean(&mut self, now: SimTime) -> f64 {
        self.accumulate(now);
        let window = now.saturating_since(self.window_start);
        if window.is_zero() {
            return self.value;
        }
        self.weighted_sum / window.as_secs_f64()
    }

    /// Starts a fresh window at `now`.
    pub fn reset_window(&mut self, now: SimTime) {
        self.accumulate(now);
        self.weighted_sum = 0.0;
        self.window_start = now;
        self.last_change = now;
    }
}

/// A latency/size histogram that retains raw samples.
///
/// The paper's Figure 10 is a scatter of 4050 individual start latencies
/// plus their per-load mean; retaining samples lets the bench reproduce the
/// scatter exactly.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "histogram sample must be finite");
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// The smallest sample, or 0 for an empty histogram.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite()
    }

    /// The largest sample, or 0 for an empty histogram.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank, or 0 if empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let idx = ((self.samples.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        self.samples[idx]
    }

    /// The count of samples strictly greater than `threshold`.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.samples.iter().filter(|&&v| v > threshold).count()
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// A `(time, value)` series, one point per measurement window; the rows of
/// Figures 8 and 9.
#[derive(Debug, Clone, Default)]
pub struct Series {
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point. Times must be non-decreasing.
    pub fn push(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(at >= last, "series time went backwards");
        }
        self.points.push((at, value));
    }

    /// All points in order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The maximum value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, v) in &self.points {
            writeln!(f, "{:>12.3} {v:>14.6}", t.as_secs_f64())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_tracker_simple_interval() {
        let mut b = BusyTracker::new();
        b.begin(SimTime::from_secs(1));
        b.end(SimTime::from_secs(3));
        assert_eq!(
            b.total_busy(SimTime::from_secs(4)),
            SimDuration::from_secs(2)
        );
        assert!((b.window_utilization(SimTime::from_secs(4)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn busy_tracker_overlapping_intervals_count_once() {
        let mut b = BusyTracker::new();
        b.begin(SimTime::from_secs(0));
        b.begin(SimTime::from_secs(1));
        b.end(SimTime::from_secs(2));
        b.end(SimTime::from_secs(4));
        assert_eq!(
            b.total_busy(SimTime::from_secs(4)),
            SimDuration::from_secs(4)
        );
    }

    #[test]
    fn busy_tracker_window_reset_straddles_open_interval() {
        let mut b = BusyTracker::new();
        b.begin(SimTime::from_secs(0));
        b.reset_window(SimTime::from_secs(10));
        b.end(SimTime::from_secs(15));
        // Window [10, 20): busy 10..15 = 50%.
        assert!((b.window_utilization(SimTime::from_secs(20)) - 0.5).abs() < 1e-9);
        // Lifetime total is the full 15 seconds.
        assert_eq!(
            b.total_busy(SimTime::from_secs(20)),
            SimDuration::from_secs(15)
        );
    }

    #[test]
    fn busy_tracker_open_interval_counts_to_now() {
        let mut b = BusyTracker::new();
        b.begin(SimTime::from_secs(2));
        assert_eq!(
            b.total_busy(SimTime::from_secs(5)),
            SimDuration::from_secs(3)
        );
        assert!(b.is_busy());
    }

    #[test]
    fn counter_window_rate() {
        let mut c = Counter::new();
        c.add(100);
        c.reset_window(SimTime::from_secs(10));
        c.add(50);
        assert_eq!(c.total(), 150);
        assert!((c.window_rate(SimTime::from_secs(15)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_integrates() {
        let mut m = TimeWeightedMean::new(0.0);
        m.set(SimTime::from_secs(5), 1.0);
        // Window [0, 10): value 0 for 5 s, 1 for 5 s => mean 0.5.
        assert!((m.window_mean(SimTime::from_secs(10)) - 0.5).abs() < 1e-9);
        m.reset_window(SimTime::from_secs(10));
        assert!((m.window_mean(SimTime::from_secs(20)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert!((h.mean() - 3.0).abs() < 1e-9);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.count_above(3.5), 2);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.9), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn series_tracks_points() {
        let mut s = Series::new();
        s.push(SimTime::from_secs(1), 10.0);
        s.push(SimTime::from_secs(2), 30.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some(30.0));
        assert_eq!(s.max(), Some(30.0));
    }
}
