//! Property tests for the network model: FIFO per channel under arbitrary
//! interleavings, NIC begin/end balance, and failure semantics.
//!
//! Ported from `proptest` to the in-tree `tiger_sim::check` harness: each
//! property runs over many deterministically seeded cases, and failures
//! report a replayable case seed.

use tiger_net::{LatencyModel, NetNode, Network};
use tiger_sim::check::{check, vec_of};
use tiger_sim::{Bandwidth, RngTree, SimDuration, SimTime};

fn net(nodes: u32, seed: u64) -> Network {
    Network::new(
        nodes,
        Bandwidth::from_mbit_per_sec(135),
        LatencyModel::lan_default(),
        RngTree::new(seed).fork("net", 0),
    )
}

/// Deliveries on each (src, dst) channel are strictly increasing in
/// time, no matter how sends across channels interleave.
#[test]
fn fifo_per_channel_under_interleaving() {
    check("fifo_per_channel_under_interleaving", |rng| {
        let mut sends = vec_of(rng, 1..200, |r| {
            (
                r.gen_range(0u32..4),
                r.gen_range(0u32..4),
                r.gen_range(0u64..500),
            )
        });
        let seed = rng.gen_range(0u64..1000);
        let mut n = net(4, seed);
        let mut now = SimTime::ZERO;
        let mut last: std::collections::HashMap<(u32, u32), SimTime> =
            std::collections::HashMap::new();
        // Sends happen in nondecreasing time order.
        sends.sort_by_key(|&(_, _, t)| t);
        for (src, dst, t_ms) in sends {
            if src == dst {
                continue;
            }
            now = now.max(SimTime::from_millis(t_ms));
            if let Some(at) = n.send_control(now, NetNode(src), NetNode(dst), 100) {
                assert!(at > now, "delivery not after send");
                if let Some(&prev) = last.get(&(src, dst)) {
                    assert!(at > prev, "channel ({src},{dst}) reordered");
                }
                last.insert((src, dst), at);
            }
        }
    });
}

/// Control-byte accounting equals the sum of successful sends.
#[test]
fn control_bytes_accounting() {
    check("control_bytes_accounting", |rng| {
        let sizes = vec_of(rng, 1..100, |r| r.gen_range(1u64..5_000));
        let seed = rng.gen_range(0u64..1000);
        let mut n = net(2, seed);
        let mut expected = 0u64;
        for (i, &size) in sizes.iter().enumerate() {
            let now = SimTime::from_millis(i as u64);
            if n.send_control(now, NetNode(0), NetNode(1), size).is_some() {
                expected += size;
            }
        }
        assert_eq!(n.total_control_bytes(NetNode(0)), expected);
        assert_eq!(n.total_control_msgs(NetNode(0)), sizes.len() as u64);
    });
}

/// Balanced begin/end stream pairs always return the NIC to zero load,
/// and the active rate never goes negative.
#[test]
fn nic_begin_end_balance() {
    check("nic_begin_end_balance", |rng| {
        let rates = vec_of(rng, 1..40, |r| r.gen_range(1u64..20));
        let seed = rng.gen_range(0u64..1000);
        let mut n = net(2, seed);
        let node = NetNode(0);
        let mut t = SimTime::ZERO;
        for &r in &rates {
            n.begin_stream(t, node, Bandwidth::from_mbit_per_sec(r));
            t = t + SimDuration::from_millis(10);
        }
        // End in reverse order (any order would do).
        for &r in rates.iter().rev() {
            n.end_stream(t, node, Bandwidth::from_mbit_per_sec(r), 1000);
            t = t + SimDuration::from_millis(10);
        }
        assert_eq!(n.nic(node).active_rate(), Bandwidth::ZERO);
        assert_eq!(n.nic(node).active_sends(), 0);
    });
}

/// A failed node never sends, never receives, and is never metered.
#[test]
fn failed_nodes_are_inert() {
    check("failed_nodes_are_inert", |rng| {
        let ops = vec_of(rng, 1..60, |r| (r.gen_range(0u32..3), r.gen_range(0u32..3)));
        let seed = rng.gen_range(0u64..1000);
        let mut n = net(3, seed);
        n.fail_node(NetNode(1));
        for (i, &(src, dst)) in ops.iter().enumerate() {
            if src == dst {
                continue;
            }
            let now = SimTime::from_millis(i as u64);
            let delivered = n.send_control(now, NetNode(src), NetNode(dst), 10);
            if src == 1 || dst == 1 {
                assert!(delivered.is_none());
            } else {
                assert!(delivered.is_some());
            }
        }
        assert_eq!(n.total_control_bytes(NetNode(1)), 0);
    });
}
