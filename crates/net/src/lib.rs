//! Switched-network model for the Tiger reproduction (paper §2.1).
//!
//! A Tiger system's machines hang off a switched (ATM in the testbed)
//! network. The properties the schedule-management protocol actually relies
//! on, and which this model provides, are:
//!
//! * **In-order reliable control channels** between any two machines
//!   ("Tiger uses TCP to control the communication links between cubs, so
//!   messages sent directly from one cub to another arrive in order",
//!   §4.1.3) — modelled as per-`(src, dst)` FIFO delivery with sampled
//!   latency, monotonized so a later send never arrives earlier.
//! * **Bounded, jittery latency** — the single-bitrate ownership protocol
//!   requires "the block play time must be bigger than the largest expected
//!   inter-cub communication latency" (§4.1.3).
//! * **Per-NIC output bandwidth** — stream blocks are transmitted *paced at
//!   the stream bitrate over one block play time* (Figure 4; also §5's
//!   startup-latency accounting, where 1 s of the 1.8 s minimum is block
//!   transmission). The NIC tracks the sum of active stream rates and flags
//!   overcommit.
//! * **Control-traffic accounting** — Figures 8/9 plot control bytes/s from
//!   one cub to all others; every control send is metered at the sender.

pub mod latency;
pub mod network;
pub mod nic;

pub use latency::LatencyModel;
pub use network::{NetError, NetNode, Network};
pub use nic::Nic;
