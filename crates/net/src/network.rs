//! The switched network: nodes, ordered control channels, and NICs.

use std::collections::HashMap;

use tiger_faults::{NetFaults, NetInjection, NetInjectionKind, NetPerturb};
use tiger_sim::{Bandwidth, Counter, SimDuration, SimRng, SimTime};

use crate::latency::LatencyModel;
use crate::nic::Nic;

/// A node attached to the switched network (controller, cub, or client);
/// ids are assigned by the system builder.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NetNode(pub u32);

impl NetNode {
    /// The raw id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a usize for indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NetNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Errors from network operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The referenced node id was never registered.
    UnknownNode(NetNode),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown network node {n}"),
        }
    }
}

impl std::error::Error for NetError {}

/// The switched network connecting all machines.
///
/// Control messages get per-pair FIFO (TCP-like) delivery with sampled
/// latency; stream data occupies the sender's NIC at the stream rate. A
/// failed node neither sends nor receives ("cub 3 is failed, and neither
/// sends nor receives any messages", Figure 5).
#[derive(Debug)]
pub struct Network {
    latency: LatencyModel,
    rng: SimRng,
    nics: Vec<Nic>,
    failed: Vec<bool>,
    /// Last delivery time per ordered (src, dst) pair, enforcing FIFO.
    last_delivery: HashMap<(NetNode, NetNode), SimTime>,
    /// Per-sender control-message bytes (the Figures 8/9 right-axis metric).
    control_bytes: Vec<Counter>,
    control_msgs: Vec<Counter>,
    /// Fault injector; disabled (one pointer test per send) by default.
    faults: NetFaults,
}

impl Network {
    /// Creates a network with `nodes` nodes, each with a NIC of
    /// `nic_capacity`, a shared latency model, and a dedicated RNG stream.
    pub fn new(nodes: u32, nic_capacity: Bandwidth, latency: LatencyModel, rng: SimRng) -> Self {
        Network {
            latency,
            rng,
            nics: (0..nodes).map(|_| Nic::new(nic_capacity)).collect(),
            failed: vec![false; nodes as usize],
            last_delivery: HashMap::new(),
            control_bytes: (0..nodes).map(|_| Counter::new()).collect(),
            control_msgs: (0..nodes).map(|_| Counter::new()).collect(),
            faults: NetFaults::disabled(),
        }
    }

    /// Installs a compiled fault injector (replacing the disabled
    /// default). The injector draws from its own RNG stream, so
    /// installing a disabled one is exactly the no-faults network.
    pub fn set_faults(&mut self, faults: NetFaults) {
        self.faults = faults;
    }

    /// Whether [`take_fault_injections`](Self::take_fault_injections)
    /// would return anything — the cheap post-send check.
    pub fn has_fault_injections(&self) -> bool {
        self.faults.has_injections()
    }

    /// Drains the log of fault injections carried out since the last
    /// drain, in the order they happened. The caller turns these into
    /// trace events and (for duplicates) extra deliveries.
    pub fn take_fault_injections(&mut self) -> Vec<NetInjection> {
        self.faults.take_injections()
    }

    /// Number of registered nodes.
    pub fn num_nodes(&self) -> u32 {
        self.nics.len() as u32
    }

    /// The configured latency model.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// Marks a node failed: it will neither send nor receive from now on.
    pub fn fail_node(&mut self, node: NetNode) {
        self.failed[node.index()] = true;
    }

    /// Whether a node is failed.
    pub fn is_failed(&self, node: NetNode) -> bool {
        self.failed[node.index()]
    }

    /// Revives a failed node: it may send and receive again. Any paced
    /// stream sends that were in flight at the failure never ended, so
    /// the node's NIC reservation state is cleared too.
    pub fn revive_node(&mut self, now: SimTime, node: NetNode) {
        self.failed[node.index()] = false;
        self.nics[node.index()].reset_active(now);
    }

    /// Sends a control message of `bytes` from `src` to `dst` at `now`.
    ///
    /// Returns the delivery time, or `None` if either endpoint is failed
    /// (the message silently vanishes, as with a crashed machine). Delivery
    /// is FIFO per (src, dst): a message never overtakes an earlier one on
    /// the same channel.
    pub fn send_control(
        &mut self,
        now: SimTime,
        src: NetNode,
        dst: NetNode,
        bytes: u64,
    ) -> Option<SimTime> {
        debug_assert!(src.index() < self.nics.len() && dst.index() < self.nics.len());
        if self.failed[src.index()] || self.failed[dst.index()] {
            return None;
        }
        // Metering happens before injection: a dropped message was still
        // sent and paid for at the sender.
        self.control_bytes[src.index()].add(bytes);
        self.control_msgs[src.index()].incr();
        let mut extra = SimDuration::ZERO;
        let mut duplicate = false;
        if self.faults.active() {
            match self.faults.verdict(now, src.raw(), dst.raw()) {
                Some(NetPerturb::Drop { partition }) => {
                    self.faults.note(NetInjection {
                        src: src.raw(),
                        dst: dst.raw(),
                        kind: NetInjectionKind::Dropped { partition },
                    });
                    return None;
                }
                Some(NetPerturb::Tweak {
                    extra: e,
                    duplicate: d,
                }) => {
                    extra = e;
                    duplicate = d;
                }
                None => {}
            }
        }
        let model = self.latency.skewed(extra);
        let sampled = now + model.sample(&mut self.rng);
        let delivery = self.fifo_clamp(src, dst, sampled);
        if !extra.is_zero() {
            self.faults.note(NetInjection {
                src: src.raw(),
                dst: dst.raw(),
                kind: NetInjectionKind::Delayed { extra },
            });
        }
        if duplicate {
            // The copy is a fresh send on the same channel: own latency
            // sample, FIFO-clamped behind the original.
            let sampled = now + model.sample(&mut self.rng);
            let second_delivery = self.fifo_clamp(src, dst, sampled);
            self.faults.note(NetInjection {
                src: src.raw(),
                dst: dst.raw(),
                kind: NetInjectionKind::Duplicated { second_delivery },
            });
        }
        Some(delivery)
    }

    /// FIFO per (src, dst): never deliver before (or at the same instant
    /// as) the previous message on this channel.
    fn fifo_clamp(&mut self, src: NetNode, dst: NetNode, sampled: SimTime) -> SimTime {
        let entry = self
            .last_delivery
            .entry((src, dst))
            .or_insert(SimTime::ZERO);
        let delivery = if sampled > *entry {
            sampled
        } else {
            *entry + SimDuration::from_nanos(1)
        };
        *entry = delivery;
        delivery
    }

    /// Computes a delivery time for a data-plane payload (stream data) from
    /// `src` to `dst`: latency is sampled but the message is *not* counted
    /// as control traffic and needs no FIFO guarantee. Returns `None` if
    /// either endpoint is failed.
    pub fn send_data(&mut self, now: SimTime, src: NetNode, dst: NetNode) -> Option<SimTime> {
        if self.failed[src.index()] || self.failed[dst.index()] {
            return None;
        }
        // Fault injection applies drops and delays to the data plane but
        // never duplication: a double-delivered block must stay provably
        // a protocol bug, not an injected one.
        let mut extra = SimDuration::ZERO;
        if self.faults.active() {
            match self.faults.verdict(now, src.raw(), dst.raw()) {
                Some(NetPerturb::Drop { partition }) => {
                    self.faults.note(NetInjection {
                        src: src.raw(),
                        dst: dst.raw(),
                        kind: NetInjectionKind::Dropped { partition },
                    });
                    return None;
                }
                Some(NetPerturb::Tweak { extra: e, .. }) => extra = e,
                None => {}
            }
        }
        if !extra.is_zero() {
            self.faults.note(NetInjection {
                src: src.raw(),
                dst: dst.raw(),
                kind: NetInjectionKind::Delayed { extra },
            });
        }
        Some(now + self.latency.skewed(extra).sample(&mut self.rng))
    }

    /// Begins a paced stream send from `src`; returns `false` on overcommit
    /// or if the sender is failed.
    pub fn begin_stream(&mut self, now: SimTime, src: NetNode, rate: Bandwidth) -> bool {
        if self.failed[src.index()] {
            return false;
        }
        self.nics[src.index()].begin_send(now, rate)
    }

    /// Ends a paced stream send from `src`.
    pub fn end_stream(&mut self, now: SimTime, src: NetNode, rate: Bandwidth, bytes: u64) {
        if self.failed[src.index()] {
            return;
        }
        self.nics[src.index()].end_send(now, rate, bytes);
    }

    /// The NIC of `node` (for load reporting).
    pub fn nic(&self, node: NetNode) -> &Nic {
        &self.nics[node.index()]
    }

    /// Mutable NIC access (window resets).
    pub fn nic_mut(&mut self, node: NetNode) -> &mut Nic {
        &mut self.nics[node.index()]
    }

    /// Control bytes/s sent by `node` over the current window.
    pub fn control_rate(&self, now: SimTime, node: NetNode) -> f64 {
        self.control_bytes[node.index()].window_rate(now)
    }

    /// Control messages/s sent by `node` over the current window.
    pub fn control_msg_rate(&self, now: SimTime, node: NetNode) -> f64 {
        self.control_msgs[node.index()].window_rate(now)
    }

    /// Lifetime control bytes sent by `node`.
    pub fn total_control_bytes(&self, node: NetNode) -> u64 {
        self.control_bytes[node.index()].total()
    }

    /// Lifetime control messages sent by `node`.
    pub fn total_control_msgs(&self, node: NetNode) -> u64 {
        self.control_msgs[node.index()].total()
    }

    /// Starts a fresh measurement window on every per-node counter.
    pub fn reset_windows(&mut self, now: SimTime) {
        for nic in &mut self.nics {
            nic.reset_window(now);
        }
        for c in &mut self.control_bytes {
            c.reset_window(now);
        }
        for c in &mut self.control_msgs {
            c.reset_window(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_sim::RngTree;

    fn net(nodes: u32) -> Network {
        Network::new(
            nodes,
            Bandwidth::from_mbit_per_sec(135),
            LatencyModel::lan_default(),
            RngTree::new(5).fork("net", 0),
        )
    }

    #[test]
    fn control_messages_are_fifo_per_pair() {
        let mut n = net(3);
        let a = NetNode(0);
        let b = NetNode(1);
        let mut prev = SimTime::ZERO;
        for _ in 0..1000 {
            let d = n.send_control(prev, a, b, 100).expect("delivers");
            assert!(d > prev, "FIFO violated");
            prev = d;
        }
    }

    #[test]
    fn fifo_applies_even_for_sends_at_the_same_instant() {
        let mut n = net(2);
        let a = NetNode(0);
        let b = NetNode(1);
        let mut deliveries = Vec::new();
        for _ in 0..100 {
            deliveries.push(n.send_control(SimTime::ZERO, a, b, 10).expect("delivers"));
        }
        for w in deliveries.windows(2) {
            assert!(w[1] > w[0], "same-instant sends must preserve order");
        }
    }

    #[test]
    fn different_pairs_are_independent() {
        let mut n = net(3);
        // Flood a->b, then check a->c is not delayed behind it.
        let mut last_ab = SimTime::ZERO;
        for _ in 0..100 {
            last_ab = n
                .send_control(SimTime::ZERO, NetNode(0), NetNode(1), 10)
                .expect("delivers");
        }
        let ac = n
            .send_control(SimTime::ZERO, NetNode(0), NetNode(2), 10)
            .expect("delivers");
        // The a->c channel saw one message; it must arrive within one
        // worst-case latency of its send, unaffected by the a->b backlog.
        assert!(ac <= SimTime::ZERO + n.latency_model().worst_case());
        assert!(last_ab > ac, "backlogged channel is far behind");
    }

    #[test]
    fn failed_nodes_drop_messages() {
        let mut n = net(3);
        n.fail_node(NetNode(1));
        assert!(n
            .send_control(SimTime::ZERO, NetNode(0), NetNode(1), 10)
            .is_none());
        assert!(n
            .send_control(SimTime::ZERO, NetNode(1), NetNode(2), 10)
            .is_none());
        assert!(n
            .send_control(SimTime::ZERO, NetNode(0), NetNode(2), 10)
            .is_some());
        // Failed-sender attempts are not metered.
        assert_eq!(n.total_control_bytes(NetNode(1)), 0);
    }

    #[test]
    fn control_traffic_is_metered_at_sender() {
        let mut n = net(2);
        for _ in 0..5 {
            n.send_control(SimTime::ZERO, NetNode(0), NetNode(1), 100)
                .expect("delivers");
        }
        assert_eq!(n.total_control_bytes(NetNode(0)), 500);
        assert_eq!(n.total_control_msgs(NetNode(0)), 5);
        assert_eq!(n.total_control_bytes(NetNode(1)), 0);
        let rate = n.control_rate(SimTime::from_secs(10), NetNode(0));
        assert!((rate - 50.0).abs() < 1e-9);
    }

    #[test]
    fn stream_sends_route_to_nic() {
        let mut n = net(2);
        let rate = Bandwidth::from_mbit_per_sec(2);
        assert!(n.begin_stream(SimTime::ZERO, NetNode(0), rate));
        n.end_stream(SimTime::from_secs(1), NetNode(0), rate, 250_000);
        assert_eq!(n.nic(NetNode(0)).total_bytes(), 250_000);
    }

    #[test]
    fn failed_sender_cannot_stream() {
        let mut n = net(2);
        n.fail_node(NetNode(0));
        assert!(!n.begin_stream(SimTime::ZERO, NetNode(0), Bandwidth::from_mbit_per_sec(2)));
    }

    // --- Fault injection -----------------------------------------------------

    use tiger_faults::{FaultPlan, NetInjectionKind, NodeSel, Topology};

    /// A 2-cub/0-client topology whose nodes line up with `net(3)`:
    /// ctrl=0, cub0=1, cub1=2.
    fn topo3() -> Topology {
        Topology {
            num_cubs: 2,
            num_clients: 0,
            backup_controller: false,
        }
    }

    fn with_plan(nodes: u32, topo: Topology, plan: &FaultPlan) -> Network {
        let mut n = net(nodes);
        n.set_faults(NetFaults::compile(
            plan,
            topo,
            RngTree::new(5).subtree("faults", 0).fork("net", 0),
        ));
        n
    }

    #[test]
    fn injected_drop_vanishes_but_meters_and_logs() {
        let plan = FaultPlan::new().drop_msgs(
            NodeSel::Cub(0),
            NodeSel::Cub(1),
            1.0,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let mut n = with_plan(3, topo3(), &plan);
        assert!(n
            .send_control(SimTime::from_secs(1), NetNode(1), NetNode(2), 100)
            .is_none());
        // The sender still paid for the send.
        assert_eq!(n.total_control_bytes(NetNode(1)), 100);
        assert!(n.has_fault_injections());
        let inj = n.take_fault_injections();
        assert_eq!(inj.len(), 1);
        assert_eq!(inj[0].kind, NetInjectionKind::Dropped { partition: false });
        assert!(!n.has_fault_injections());
        // The untouched reverse link still delivers, logging nothing.
        assert!(n
            .send_control(SimTime::from_secs(1), NetNode(2), NetNode(1), 100)
            .is_some());
        assert!(!n.has_fault_injections());
    }

    #[test]
    fn injected_delay_shifts_delivery_past_the_clean_worst_case() {
        let extra = SimDuration::from_millis(50);
        let plan = FaultPlan::new().delay_msgs(
            NodeSel::Cub(0),
            NodeSel::Cub(1),
            extra,
            SimDuration::ZERO,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let mut n = with_plan(3, topo3(), &plan);
        let now = SimTime::from_secs(1);
        let d = n
            .send_control(now, NetNode(1), NetNode(2), 100)
            .expect("delayed, not dropped");
        assert!(d >= now + extra, "delivery {d} must include the extra");
        assert!(d <= now + n.latency_model().worst_case() + extra);
        let inj = n.take_fault_injections();
        assert_eq!(inj.len(), 1);
        assert_eq!(inj[0].kind, NetInjectionKind::Delayed { extra });
    }

    #[test]
    fn injected_duplicate_delivers_twice_in_fifo_order() {
        let plan = FaultPlan::new().duplicate_msgs(
            NodeSel::Cub(0),
            NodeSel::Cub(1),
            1.0,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let mut n = with_plan(3, topo3(), &plan);
        let first = n
            .send_control(SimTime::from_secs(1), NetNode(1), NetNode(2), 100)
            .expect("delivers");
        let inj = n.take_fault_injections();
        assert_eq!(inj.len(), 1);
        let NetInjectionKind::Duplicated { second_delivery } = inj[0].kind else {
            panic!("expected a duplicate, got {:?}", inj[0].kind);
        };
        assert!(
            second_delivery > first,
            "the copy is FIFO-ordered behind the original"
        );
        // Only the one message was metered.
        assert_eq!(n.total_control_msgs(NetNode(1)), 1);
    }

    #[test]
    fn data_plane_gets_drops_but_never_duplicates() {
        let plan = FaultPlan::new()
            .drop_msgs(
                NodeSel::Cub(0),
                NodeSel::Cub(1),
                1.0,
                SimTime::ZERO,
                SimTime::from_secs(10),
            )
            .duplicate_msgs(
                NodeSel::Cub(1),
                NodeSel::Cub(0),
                1.0,
                SimTime::ZERO,
                SimTime::from_secs(10),
            );
        let mut n = with_plan(3, topo3(), &plan);
        assert!(n
            .send_data(SimTime::from_secs(1), NetNode(1), NetNode(2))
            .is_none());
        // The dup-flagged direction delivers exactly once on the data
        // plane: duplication is control-plane only.
        assert!(n
            .send_data(SimTime::from_secs(1), NetNode(2), NetNode(1))
            .is_some());
        let kinds: Vec<_> = n.take_fault_injections().iter().map(|i| i.kind).collect();
        assert_eq!(kinds, vec![NetInjectionKind::Dropped { partition: false }]);
    }
}
