//! A network interface card carrying paced stream sends.
//!
//! Tiger transmits each block paced at the stream's bitrate over one block
//! play time (Figure 4). A NIC therefore carries a *set of concurrent
//! rates*; its instantaneous load is their sum, and it overcommits when
//! that sum exceeds its capacity — exactly the condition the network
//! schedule exists to prevent.

use tiger_sim::{Bandwidth, Counter, SimTime, TimeWeightedMean};

/// One node's network interface.
#[derive(Debug)]
pub struct Nic {
    capacity: Bandwidth,
    active: Bandwidth,
    active_sends: u32,
    utilization: TimeWeightedMean,
    bytes_sent: Counter,
    overcommit_events: Counter,
}

impl Nic {
    /// Creates an idle NIC with the given send capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: Bandwidth) -> Self {
        assert!(!capacity.is_zero(), "NIC capacity must be nonzero");
        Nic {
            capacity,
            active: Bandwidth::ZERO,
            active_sends: 0,
            utilization: TimeWeightedMean::new(0.0),
            bytes_sent: Counter::new(),
            overcommit_events: Counter::new(),
        }
    }

    /// The configured send capacity.
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// Begins a paced send at `rate`. Returns `false` if this send pushed
    /// the NIC into overcommit (the send still proceeds; quality degrades,
    /// which the caller reports as a late/lost block).
    pub fn begin_send(&mut self, now: SimTime, rate: Bandwidth) -> bool {
        self.active = self.active.saturating_add(rate);
        self.active_sends += 1;
        self.utilization.set(now, self.load_fraction());
        let ok = self.active <= self.capacity;
        if !ok {
            self.overcommit_events.incr();
        }
        ok
    }

    /// Ends a paced send begun with [`Nic::begin_send`], crediting the
    /// bytes that were moved.
    ///
    /// # Panics
    ///
    /// Panics if no send is active.
    pub fn end_send(&mut self, now: SimTime, rate: Bandwidth, bytes: u64) {
        assert!(self.active_sends > 0, "end_send without begin_send");
        self.active_sends -= 1;
        self.active = self
            .active
            .checked_sub(rate)
            .expect("ending a send at a higher rate than was started");
        self.utilization.set(now, self.load_fraction());
        self.bytes_sent.add(bytes);
    }

    /// The instantaneous load as a fraction of capacity (may exceed 1 when
    /// overcommitted).
    pub fn load_fraction(&self) -> f64 {
        self.active.bits_per_sec() as f64 / self.capacity.bits_per_sec() as f64
    }

    /// The sum of active send rates.
    pub fn active_rate(&self) -> Bandwidth {
        self.active
    }

    /// Number of sends currently in progress.
    pub fn active_sends(&self) -> u32 {
        self.active_sends
    }

    /// Time-weighted mean load over the current measurement window.
    pub fn window_utilization(&mut self, now: SimTime) -> f64 {
        self.utilization.window_mean(now)
    }

    /// Bytes sent per second over the current window.
    pub fn window_bytes_per_sec(&self, now: SimTime) -> f64 {
        self.bytes_sent.window_rate(now)
    }

    /// Forgets all in-progress sends (a machine revive after a power cut:
    /// the paced sends that were active at the cut never reach their
    /// `end_send`, so their reserved bandwidth must be reclaimed here).
    /// Lifetime counters survive.
    pub fn reset_active(&mut self, now: SimTime) {
        self.active = Bandwidth::ZERO;
        self.active_sends = 0;
        self.utilization.set(now, 0.0);
    }

    /// Starts a fresh measurement window.
    pub fn reset_window(&mut self, now: SimTime) {
        self.utilization.reset_window(now);
        self.bytes_sent.reset_window(now);
    }

    /// Lifetime bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.total()
    }

    /// Lifetime count of sends that began while overcommitted.
    pub fn total_overcommits(&self) -> u64 {
        self.overcommit_events.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_sim::SimDuration;

    fn oc3() -> Nic {
        // OC-3 payload capacity, roughly.
        Nic::new(Bandwidth::from_mbit_per_sec(135))
    }

    #[test]
    fn capacity_enforced() {
        let mut nic = oc3();
        let rate = Bandwidth::from_mbit_per_sec(2);
        for i in 0..67 {
            assert!(nic.begin_send(SimTime::ZERO, rate), "send {i} fits");
        }
        // 68th stream exceeds 135 Mbit/s.
        assert!(!nic.begin_send(SimTime::ZERO, rate));
        assert_eq!(nic.total_overcommits(), 1);
        assert!(nic.load_fraction() > 1.0);
    }

    #[test]
    fn utilization_integrates_over_time() {
        let mut nic = Nic::new(Bandwidth::from_mbit_per_sec(100));
        let rate = Bandwidth::from_mbit_per_sec(50);
        nic.begin_send(SimTime::ZERO, rate);
        nic.end_send(SimTime::from_secs(1), rate, 6_250_000);
        // Load was 0.5 for 1 s then 0 for 1 s: mean 0.25 over 2 s.
        assert!((nic.window_utilization(SimTime::from_secs(2)) - 0.25).abs() < 1e-9);
        assert_eq!(nic.total_bytes(), 6_250_000);
    }

    #[test]
    fn window_rate_resets() {
        let mut nic = oc3();
        let rate = Bandwidth::from_mbit_per_sec(2);
        nic.begin_send(SimTime::ZERO, rate);
        nic.end_send(SimTime::from_secs(1), rate, 250_000);
        nic.reset_window(SimTime::from_secs(10));
        assert_eq!(nic.window_bytes_per_sec(SimTime::from_secs(11)), 0.0);
        assert_eq!(nic.total_bytes(), 250_000);
        let _ = SimDuration::ZERO;
    }

    #[test]
    #[should_panic(expected = "end_send without begin_send")]
    fn unbalanced_end_panics() {
        let mut nic = oc3();
        nic.end_send(SimTime::ZERO, Bandwidth::from_mbit_per_sec(2), 0);
    }
}
