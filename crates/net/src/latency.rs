//! Control-message latency model.

use tiger_sim::{SimDuration, SimRng};

/// One-way latency for control messages: a fixed base plus uniform jitter.
///
/// The defaults model a lightly loaded local ATM switch path through two
/// protocol stacks on 1997-era machines: a few milliseconds, occasionally
/// more. The jitter bound matters: the single-bitrate insertion protocol is
/// only correct if worst-case latency stays below one block play time, and
/// [`LatencyModel::worst_case`] is what the schedule code checks against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Minimum one-way latency.
    pub base: SimDuration,
    /// Maximum additional uniform jitter.
    pub jitter: SimDuration,
}

impl LatencyModel {
    /// The default testbed-like model: 2 ms base, up to 8 ms jitter.
    pub fn lan_default() -> Self {
        LatencyModel {
            base: SimDuration::from_millis(2),
            jitter: SimDuration::from_millis(8),
        }
    }

    /// A model with zero jitter, for deterministic protocol tests.
    pub fn fixed(latency: SimDuration) -> Self {
        LatencyModel {
            base: latency,
            jitter: SimDuration::ZERO,
        }
    }

    /// The same jitter distribution shifted out by a fixed `extra` —
    /// how fault injection models a slow link: the perturbed message is
    /// sampled from the skewed model instead of the configured one.
    pub fn skewed(self, extra: SimDuration) -> Self {
        LatencyModel {
            base: self.base + extra,
            jitter: self.jitter,
        }
    }

    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        if self.jitter.is_zero() {
            return self.base;
        }
        self.base + SimDuration::from_nanos(rng.gen_range(0..=self.jitter.as_nanos()))
    }

    /// The largest latency the model can produce.
    pub fn worst_case(&self) -> SimDuration {
        self.base + self.jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_sim::RngTree;

    #[test]
    fn samples_stay_in_bounds() {
        let m = LatencyModel::lan_default();
        let mut rng = RngTree::new(9).fork("lat", 0);
        for _ in 0..10_000 {
            let s = m.sample(&mut rng);
            assert!(s >= m.base && s <= m.worst_case());
        }
    }

    #[test]
    fn fixed_model_is_deterministic() {
        let m = LatencyModel::fixed(SimDuration::from_millis(5));
        let mut rng = RngTree::new(9).fork("lat", 1);
        assert_eq!(m.sample(&mut rng), SimDuration::from_millis(5));
        assert_eq!(m.worst_case(), SimDuration::from_millis(5));
    }

    #[test]
    fn skewed_model_shifts_base_but_not_jitter() {
        let m = LatencyModel::lan_default().skewed(SimDuration::from_millis(20));
        assert_eq!(m.base, SimDuration::from_millis(22));
        assert_eq!(m.jitter, SimDuration::from_millis(8));
        let mut rng = RngTree::new(9).fork("lat", 3);
        for _ in 0..1_000 {
            let s = m.sample(&mut rng);
            assert!(s >= m.base && s <= m.worst_case());
        }
    }

    #[test]
    fn jitter_actually_varies() {
        let m = LatencyModel::lan_default();
        let mut rng = RngTree::new(9).fork("lat", 2);
        let first = m.sample(&mut rng);
        let varied = (0..100).any(|_| m.sample(&mut rng) != first);
        assert!(varied);
    }
}
