//! Control-plane messages.
//!
//! Wire sizes are estimates used for the control-traffic metric of
//! Figures 8/9 (the paper cites ~100 bytes for a viewer-state message and
//! measured < 21 KB/s per cub at full load).

use std::sync::Arc;

use tiger_layout::ids::ViewerInstance;
use tiger_layout::{CubId, FileId};
use tiger_sched::{Deschedule, SlotId, ViewerState};
use tiger_sim::SimTime;

/// Fixed per-message framing overhead (headers), in bytes.
pub const FRAME_BYTES: u64 = 40;

/// A control-plane message between machines.
///
/// Messages travel the simulated network by value: every delivery event
/// owns its `Message`, and double-forwarding (§4.1.1) sends the same
/// payload to two receivers. The two viewer-state carriers are therefore
/// shaped for cheap cloning on the event-loop hot path: a single record
/// rides inline ([`Message::ViewerState`], no allocation at all) and a
/// batch rides behind an [`Arc`] (cloning the message for the second
/// forward is a refcount bump, not a `Vec` copy).
///
/// On a real transport the same messages travel as text lines; see
/// [`crate::wire`] for the lossless encoding.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// A single viewer-state record (the mirror-chain and redundant-start
    /// paths forward one record at a time).
    ViewerState(ViewerState),
    /// A batch of viewer-state records, grouped per §4.1.1 to reduce
    /// communications overhead.
    ViewerStates(Arc<[ViewerState]>),
    /// A deschedule request with its remaining propagation hops.
    Deschedule {
        /// The request itself.
        request: Deschedule,
        /// Ring hops left before the request is "more than maxVStateLead in
        /// front of the slot" and stops propagating.
        hops_left: u32,
    },
    /// A client asks the controller to start playing `file`.
    StartRequest {
        /// The requesting client's network node id.
        client: u32,
        /// The viewer instance (allocated by the client).
        instance: ViewerInstance,
        /// The file to play.
        file: FileId,
        /// First block to play (0 for the beginning; a seek or resume
        /// starts mid-file).
        from_block: u32,
        /// When the client issued the request (for latency measurement).
        requested_at: SimTime,
    },
    /// The controller routes a start to the cub holding the first block
    /// (`redundant = false`) and its successor (`redundant = true`).
    RoutedStart {
        /// The requesting client's network node id.
        client: u32,
        /// The viewer instance.
        instance: ViewerInstance,
        /// The file to play.
        file: FileId,
        /// First block to play.
        from_block: u32,
        /// When the client issued the request.
        requested_at: SimTime,
        /// Whether the receiver is the redundant (successor) holder.
        redundant: bool,
    },
    /// A cub tells the controller a viewer was committed into a slot
    /// (the controller needs the slot to route a later deschedule).
    InsertCommitted {
        /// The committed viewer instance.
        instance: ViewerInstance,
        /// The slot it occupies.
        slot: SlotId,
        /// The file being played.
        file: FileId,
        /// The send time of the viewer's first block.
        first_send: SimTime,
    },
    /// A client asks the controller to stop a viewer.
    StopRequest {
        /// The viewer instance to stop.
        instance: ViewerInstance,
    },
    /// A cub tells the controller a viewer reached end-of-file and left the
    /// schedule (§4.1.2: "Handling end-of-file is straightforward").
    ViewerFinished {
        /// The finished viewer instance.
        instance: ViewerInstance,
    },
    /// Deadman heartbeat from a cub to its successor.
    DeadmanPing {
        /// The sender.
        from: CubId,
    },
    /// A restarted cub announces it is back: receivers clear their failure
    /// belief about it and re-baseline their deadman clocks; its ring
    /// neighbours answer with [`Message::RejoinAck`], and the mirror
    /// partner covering its disks opens a bounded hand-back window.
    RejoinRequest {
        /// The rejoining cub.
        from: CubId,
    },
    /// A ring neighbour's reply to [`Message::RejoinRequest`]: the
    /// neighbour's current failure beliefs, so the rejoiner (which restarts
    /// with an empty belief table) learns which cubs are down without
    /// waiting a full deadman timeout per failure.
    RejoinAck {
        /// The replying neighbour.
        from: CubId,
        /// Raw ids of cubs the neighbour currently believes failed.
        failed: Arc<[u32]>,
    },
    /// A ring predecessor's retired-log tail, replayed to a rejoining cub
    /// alongside [`Message::RejoinAck`]: each record is already advanced
    /// to its next due position on the rejoiner's disks, so the rejoiner
    /// reconstructs its in-flight viewer state immediately instead of
    /// waiting up to a full forward interval for natural circulation
    /// (§2.3 gap bridging applied to rejoin).
    RetiredReplay {
        /// The replaying predecessor.
        from: CubId,
        /// Advanced viewer-state records owned by the rejoiner.
        states: Arc<[ViewerState]>,
    },
    /// A cub announces that it has declared `failed` dead.
    FailureNotice {
        /// The failed cub.
        failed: CubId,
    },
    /// One block (or mirror piece) of stream data arriving at a client.
    /// Carried outside the control-byte accounting (it is data plane).
    StreamData {
        /// The viewer instance the data belongs to.
        instance: ViewerInstance,
        /// Block number within the file.
        block: u32,
        /// Mirror piece number, or `None` for a whole primary block.
        piece: Option<u32>,
        /// Total pieces the block was split into (1 for primary).
        total_pieces: u32,
        /// Payload bytes in this delivery.
        bytes: u64,
    },
    /// Multiple-bitrate two-phase insertion: ask the successor to reserve
    /// network-schedule space (§4.2).
    MbrReserve {
        /// Reservation id (sender-local).
        reservation: u64,
        /// The viewer instance being inserted.
        instance: ViewerInstance,
        /// Proposed ring start position, nanoseconds.
        start_nanos: u64,
        /// Stream rate, bits per second.
        rate_bps: u64,
    },
    /// Reply to [`Message::MbrReserve`].
    MbrReserveReply {
        /// The reservation id being answered.
        reservation: u64,
        /// Whether the successor's view had room.
        ok: bool,
    },
}

impl Message {
    /// Estimated wire size, for the control-traffic metric. Stream data is
    /// *not* control traffic and returns 0 here (it is accounted on the
    /// NIC as data bytes).
    pub fn control_bytes(&self) -> u64 {
        match self {
            Message::ViewerState(_) => FRAME_BYTES + ViewerState::WIRE_BYTES,
            Message::ViewerStates(v) => FRAME_BYTES + ViewerState::WIRE_BYTES * v.len() as u64,
            Message::Deschedule { .. } => FRAME_BYTES + Deschedule::WIRE_BYTES,
            Message::StartRequest { .. } | Message::RoutedStart { .. } => FRAME_BYTES + 60,
            Message::InsertCommitted { .. } => FRAME_BYTES + 30,
            Message::StopRequest { .. } => FRAME_BYTES + 20,
            Message::ViewerFinished { .. } => FRAME_BYTES + 20,
            Message::DeadmanPing { .. } => FRAME_BYTES + 8,
            Message::RejoinRequest { .. } => FRAME_BYTES + 8,
            Message::RejoinAck { failed, .. } => FRAME_BYTES + 8 + 4 * failed.len() as u64,
            Message::RetiredReplay { states, .. } => {
                FRAME_BYTES + 8 + ViewerState::WIRE_BYTES * states.len() as u64
            }
            Message::FailureNotice { .. } => FRAME_BYTES + 8,
            Message::StreamData { .. } => 0,
            Message::MbrReserve { .. } => FRAME_BYTES + 40,
            Message::MbrReserveReply { .. } => FRAME_BYTES + 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_viewer_states_amortize_framing() {
        let vs = dummy_vs();
        let one = Message::ViewerStates(vec![vs].into()).control_bytes();
        let ten = Message::ViewerStates(vec![vs; 10].into()).control_bytes();
        assert!(ten < 10 * one, "batching must beat individual sends");
        assert_eq!(ten, FRAME_BYTES + 10 * ViewerState::WIRE_BYTES);
    }

    #[test]
    fn singleton_viewer_state_matches_batch_of_one() {
        // The allocation-free singleton must be indistinguishable on the
        // wire from a one-element batch, so switching send paths cannot
        // perturb the control-traffic metric.
        let vs = dummy_vs();
        assert_eq!(
            Message::ViewerState(vs).control_bytes(),
            Message::ViewerStates(vec![vs].into()).control_bytes(),
        );
    }

    #[test]
    fn stream_data_is_not_control_traffic() {
        let m = Message::StreamData {
            instance: ViewerInstance::default(),
            block: 0,
            piece: None,
            total_pieces: 1,
            bytes: 250_000,
        };
        assert_eq!(m.control_bytes(), 0);
    }

    fn dummy_vs() -> ViewerState {
        use tiger_layout::BlockNum;
        use tiger_sched::StreamKind;
        use tiger_sim::Bandwidth;
        ViewerState {
            instance: ViewerInstance::default(),
            client: 0,
            file: FileId(0),
            position: BlockNum(0),
            slot: SlotId(0),
            play_seq: 0,
            bitrate: Bandwidth::from_mbit_per_sec(2),
            kind: StreamKind::Primary,
        }
    }
}
