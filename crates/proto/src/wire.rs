//! The lossless text wire format for [`Message`].
//!
//! One message is one line of space-separated ASCII tokens, tag first:
//!
//! ```text
//! VS <vs>                                  single viewer state
//! VSB <vs> <vs> ...                        viewer-state batch (may be empty)
//! DESCH <viewer>,<inc> <slot> <hops>       deschedule + hops left
//! START <client> <viewer>,<inc> <file> <from> <req-ns>
//! ROUTED <client> <viewer>,<inc> <file> <from> <req-ns> <0|1>
//! COMMIT <viewer>,<inc> <slot> <file> <first-send-ns>
//! STOP <viewer>,<inc>
//! FIN <viewer>,<inc>
//! PING <from>
//! REJOIN <from>
//! RACK <from> <c,c,...|->                  failure beliefs ('-' = none)
//! RPLY <from> <vs> <vs> ...                retired-log replay (may be empty)
//! NOTICE <failed>
//! DATA <viewer>,<inc> <block> <piece|-> <total> <bytes>
//! MBRRSV <reservation> <viewer>,<inc> <start-ns> <rate-bps>
//! MBRRPL <reservation> <0|1>
//! ```
//!
//! where `<vs>` is one comma-joined token
//! `viewer,inc,client,file,position,slot,play_seq,bitrate_bps,kind` and
//! `kind` is `P` (primary) or `M:<failed-disk>:<piece>` (mirror).
//!
//! The format is *lossless*: [`decode`] inverts [`encode`] exactly, and
//! re-encoding a decoded message reproduces the original bytes. The
//! exhaustive per-variant round-trip tests below are the gate a message
//! must pass before it is allowed to cross a real socket (`tiger-rt`).

use std::sync::Arc;

use tiger_layout::ids::ViewerInstance;
use tiger_layout::{BlockNum, CubId, DiskId, FileId, ViewerId};
use tiger_sched::{Deschedule, SlotId, StreamKind, ViewerState};
use tiger_sim::{Bandwidth, SimTime};

use crate::msg::Message;

/// Encodes a message as one wire line (no trailing newline).
pub fn encode(msg: &Message) -> String {
    let mut s = String::new();
    match msg {
        Message::ViewerState(vs) => {
            s.push_str("VS ");
            push_vs(&mut s, vs);
        }
        Message::ViewerStates(batch) => {
            s.push_str("VSB");
            for vs in batch.iter() {
                s.push(' ');
                push_vs(&mut s, vs);
            }
        }
        Message::Deschedule { request, hops_left } => {
            s.push_str("DESCH ");
            push_instance(&mut s, &request.instance);
            s.push_str(&format!(" {} {hops_left}", request.slot.raw()));
        }
        Message::StartRequest {
            client,
            instance,
            file,
            from_block,
            requested_at,
        } => {
            s.push_str(&format!("START {client} "));
            push_instance(&mut s, instance);
            s.push_str(&format!(
                " {} {from_block} {}",
                file.raw(),
                requested_at.as_nanos()
            ));
        }
        Message::RoutedStart {
            client,
            instance,
            file,
            from_block,
            requested_at,
            redundant,
        } => {
            s.push_str(&format!("ROUTED {client} "));
            push_instance(&mut s, instance);
            s.push_str(&format!(
                " {} {from_block} {} {}",
                file.raw(),
                requested_at.as_nanos(),
                u32::from(*redundant)
            ));
        }
        Message::InsertCommitted {
            instance,
            slot,
            file,
            first_send,
        } => {
            s.push_str("COMMIT ");
            push_instance(&mut s, instance);
            s.push_str(&format!(
                " {} {} {}",
                slot.raw(),
                file.raw(),
                first_send.as_nanos()
            ));
        }
        Message::StopRequest { instance } => {
            s.push_str("STOP ");
            push_instance(&mut s, instance);
        }
        Message::ViewerFinished { instance } => {
            s.push_str("FIN ");
            push_instance(&mut s, instance);
        }
        Message::DeadmanPing { from } => s.push_str(&format!("PING {}", from.raw())),
        Message::RejoinRequest { from } => s.push_str(&format!("REJOIN {}", from.raw())),
        Message::RejoinAck { from, failed } => {
            s.push_str(&format!("RACK {} ", from.raw()));
            if failed.is_empty() {
                s.push('-');
            } else {
                for (i, c) in failed.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&c.to_string());
                }
            }
        }
        Message::RetiredReplay { from, states } => {
            s.push_str(&format!("RPLY {}", from.raw()));
            for vs in states.iter() {
                s.push(' ');
                push_vs(&mut s, vs);
            }
        }
        Message::FailureNotice { failed } => s.push_str(&format!("NOTICE {}", failed.raw())),
        Message::StreamData {
            instance,
            block,
            piece,
            total_pieces,
            bytes,
        } => {
            s.push_str("DATA ");
            push_instance(&mut s, instance);
            match piece {
                Some(p) => s.push_str(&format!(" {block} {p} {total_pieces} {bytes}")),
                None => s.push_str(&format!(" {block} - {total_pieces} {bytes}")),
            }
        }
        Message::MbrReserve {
            reservation,
            instance,
            start_nanos,
            rate_bps,
        } => {
            s.push_str(&format!("MBRRSV {reservation} "));
            push_instance(&mut s, instance);
            s.push_str(&format!(" {start_nanos} {rate_bps}"));
        }
        Message::MbrReserveReply { reservation, ok } => {
            s.push_str(&format!("MBRRPL {reservation} {}", u32::from(*ok)));
        }
    }
    s
}

/// Decodes one wire line; `None` on any malformation.
pub fn decode(line: &str) -> Option<Message> {
    let mut it = line.split_ascii_whitespace();
    let tag = it.next()?;
    let msg = match tag {
        "VS" => {
            let vs = parse_vs(it.next()?)?;
            end(it)?;
            Message::ViewerState(vs)
        }
        "VSB" => {
            let mut batch = Vec::new();
            for tok in it {
                batch.push(parse_vs(tok)?);
            }
            Message::ViewerStates(Arc::from(batch))
        }
        "DESCH" => {
            let instance = parse_instance(it.next()?)?;
            let slot = SlotId(it.next()?.parse().ok()?);
            let hops_left = it.next()?.parse().ok()?;
            end(it)?;
            Message::Deschedule {
                request: Deschedule { instance, slot },
                hops_left,
            }
        }
        "START" => {
            let client = it.next()?.parse().ok()?;
            let instance = parse_instance(it.next()?)?;
            let file = FileId(it.next()?.parse().ok()?);
            let from_block = it.next()?.parse().ok()?;
            let requested_at = SimTime::from_nanos(it.next()?.parse().ok()?);
            end(it)?;
            Message::StartRequest {
                client,
                instance,
                file,
                from_block,
                requested_at,
            }
        }
        "ROUTED" => {
            let client = it.next()?.parse().ok()?;
            let instance = parse_instance(it.next()?)?;
            let file = FileId(it.next()?.parse().ok()?);
            let from_block = it.next()?.parse().ok()?;
            let requested_at = SimTime::from_nanos(it.next()?.parse().ok()?);
            let redundant = parse_bool(it.next()?)?;
            end(it)?;
            Message::RoutedStart {
                client,
                instance,
                file,
                from_block,
                requested_at,
                redundant,
            }
        }
        "COMMIT" => {
            let instance = parse_instance(it.next()?)?;
            let slot = SlotId(it.next()?.parse().ok()?);
            let file = FileId(it.next()?.parse().ok()?);
            let first_send = SimTime::from_nanos(it.next()?.parse().ok()?);
            end(it)?;
            Message::InsertCommitted {
                instance,
                slot,
                file,
                first_send,
            }
        }
        "STOP" => {
            let instance = parse_instance(it.next()?)?;
            end(it)?;
            Message::StopRequest { instance }
        }
        "FIN" => {
            let instance = parse_instance(it.next()?)?;
            end(it)?;
            Message::ViewerFinished { instance }
        }
        "PING" => {
            let from = CubId(it.next()?.parse().ok()?);
            end(it)?;
            Message::DeadmanPing { from }
        }
        "REJOIN" => {
            let from = CubId(it.next()?.parse().ok()?);
            end(it)?;
            Message::RejoinRequest { from }
        }
        "RACK" => {
            let from = CubId(it.next()?.parse().ok()?);
            let list = it.next()?;
            let failed: Vec<u32> = if list == "-" {
                Vec::new()
            } else {
                let mut v = Vec::new();
                for tok in list.split(',') {
                    v.push(tok.parse().ok()?);
                }
                v
            };
            end(it)?;
            Message::RejoinAck {
                from,
                failed: Arc::from(failed),
            }
        }
        "RPLY" => {
            let from = CubId(it.next()?.parse().ok()?);
            let mut states = Vec::new();
            for tok in it {
                states.push(parse_vs(tok)?);
            }
            Message::RetiredReplay {
                from,
                states: Arc::from(states),
            }
        }
        "NOTICE" => {
            let failed = CubId(it.next()?.parse().ok()?);
            end(it)?;
            Message::FailureNotice { failed }
        }
        "DATA" => {
            let instance = parse_instance(it.next()?)?;
            let block = it.next()?.parse().ok()?;
            let piece_tok = it.next()?;
            let piece = if piece_tok == "-" {
                None
            } else {
                Some(piece_tok.parse().ok()?)
            };
            let total_pieces = it.next()?.parse().ok()?;
            let bytes = it.next()?.parse().ok()?;
            end(it)?;
            Message::StreamData {
                instance,
                block,
                piece,
                total_pieces,
                bytes,
            }
        }
        "MBRRSV" => {
            let reservation = it.next()?.parse().ok()?;
            let instance = parse_instance(it.next()?)?;
            let start_nanos = it.next()?.parse().ok()?;
            let rate_bps = it.next()?.parse().ok()?;
            end(it)?;
            Message::MbrReserve {
                reservation,
                instance,
                start_nanos,
                rate_bps,
            }
        }
        "MBRRPL" => {
            let reservation = it.next()?.parse().ok()?;
            let ok = parse_bool(it.next()?)?;
            end(it)?;
            Message::MbrReserveReply { reservation, ok }
        }
        _ => return None,
    };
    Some(msg)
}

/// Rejects trailing garbage: decoding must consume the whole line.
fn end<'a>(mut it: impl Iterator<Item = &'a str>) -> Option<()> {
    match it.next() {
        None => Some(()),
        Some(_) => None,
    }
}

fn parse_bool(tok: &str) -> Option<bool> {
    match tok {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

fn push_instance(s: &mut String, i: &ViewerInstance) {
    s.push_str(&format!("{},{}", i.viewer.raw(), i.incarnation));
}

fn parse_instance(tok: &str) -> Option<ViewerInstance> {
    let (v, inc) = tok.split_once(',')?;
    Some(ViewerInstance {
        viewer: ViewerId(v.parse().ok()?),
        incarnation: inc.parse().ok()?,
    })
}

fn push_vs(s: &mut String, vs: &ViewerState) {
    s.push_str(&format!(
        "{},{},{},{},{},{},{},{},",
        vs.instance.viewer.raw(),
        vs.instance.incarnation,
        vs.client,
        vs.file.raw(),
        vs.position.raw(),
        vs.slot.raw(),
        vs.play_seq,
        vs.bitrate.bits_per_sec(),
    ));
    match vs.kind {
        StreamKind::Primary => s.push('P'),
        StreamKind::Mirror { failed_disk, piece } => {
            s.push_str(&format!("M:{}:{piece}", failed_disk.raw()));
        }
        StreamKind::Coded { home_disk, shard } => {
            s.push_str(&format!("C:{}:{shard}", home_disk.raw()));
        }
    }
}

fn parse_vs(tok: &str) -> Option<ViewerState> {
    let mut parts = tok.split(',');
    let viewer = ViewerId(parts.next()?.parse().ok()?);
    let incarnation = parts.next()?.parse().ok()?;
    let client = parts.next()?.parse().ok()?;
    let file = FileId(parts.next()?.parse().ok()?);
    let position = BlockNum(parts.next()?.parse().ok()?);
    let slot = SlotId(parts.next()?.parse().ok()?);
    let play_seq = parts.next()?.parse().ok()?;
    let bitrate = Bandwidth::from_bits_per_sec(parts.next()?.parse().ok()?);
    let kind_tok = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    let kind = if kind_tok == "P" {
        StreamKind::Primary
    } else if let Some(rest) = kind_tok.strip_prefix("C:") {
        let (disk, shard) = rest.split_once(':')?;
        StreamKind::Coded {
            home_disk: DiskId(disk.parse().ok()?),
            shard: shard.parse().ok()?,
        }
    } else {
        let rest = kind_tok.strip_prefix("M:")?;
        let (disk, piece) = rest.split_once(':')?;
        StreamKind::Mirror {
            failed_disk: DiskId(disk.parse().ok()?),
            piece: piece.parse().ok()?,
        }
    };
    Some(ViewerState {
        instance: ViewerInstance {
            viewer,
            incarnation,
        },
        client,
        file,
        position,
        slot,
        play_seq,
        bitrate,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(viewer: u64, slot: u32, kind: StreamKind) -> ViewerState {
        ViewerState {
            instance: ViewerInstance {
                viewer: ViewerId(viewer),
                incarnation: 3,
            },
            client: 11,
            file: FileId(2),
            position: BlockNum(417),
            slot: SlotId(slot),
            play_seq: 42,
            bitrate: Bandwidth::from_mbit_per_sec(2),
            kind,
        }
    }

    fn inst(v: u64, inc: u32) -> ViewerInstance {
        ViewerInstance {
            viewer: ViewerId(v),
            incarnation: inc,
        }
    }

    /// One exemplar per [`Message`] variant, plus the interesting interior
    /// shapes (empty batch, mirror kind, empty failed list, `None` piece).
    fn exemplars() -> Vec<Message> {
        vec![
            Message::ViewerState(vs(7, 19, StreamKind::Primary)),
            Message::ViewerState(vs(
                7,
                19,
                StreamKind::Mirror {
                    failed_disk: DiskId(5),
                    piece: 1,
                },
            )),
            Message::ViewerState(vs(
                7,
                19,
                StreamKind::Coded {
                    home_disk: DiskId(3),
                    shard: 2,
                },
            )),
            Message::ViewerStates(Arc::from(Vec::<ViewerState>::new())),
            Message::ViewerStates(
                vec![
                    vs(1, 4, StreamKind::Primary),
                    vs(
                        2,
                        9,
                        StreamKind::Mirror {
                            failed_disk: DiskId(0),
                            piece: 0,
                        },
                    ),
                ]
                .into(),
            ),
            Message::Deschedule {
                request: Deschedule {
                    instance: inst(9, 1),
                    slot: SlotId(23),
                },
                hops_left: 5,
            },
            Message::StartRequest {
                client: 6,
                instance: inst(12, 0),
                file: FileId(3),
                from_block: 120,
                requested_at: SimTime::from_millis(1_250),
            },
            Message::RoutedStart {
                client: 6,
                instance: inst(12, 0),
                file: FileId(3),
                from_block: 120,
                requested_at: SimTime::from_millis(1_250),
                redundant: true,
            },
            Message::RoutedStart {
                client: 6,
                instance: inst(12, 0),
                file: FileId(3),
                from_block: 0,
                requested_at: SimTime::ZERO,
                redundant: false,
            },
            Message::InsertCommitted {
                instance: inst(12, 0),
                slot: SlotId(40),
                file: FileId(3),
                first_send: SimTime::from_secs(2),
            },
            Message::StopRequest {
                instance: inst(12, 0),
            },
            Message::ViewerFinished {
                instance: inst(12, 0),
            },
            Message::DeadmanPing { from: CubId(2) },
            Message::RejoinRequest { from: CubId(1) },
            Message::RejoinAck {
                from: CubId(0),
                failed: Arc::from(Vec::<u32>::new()),
            },
            Message::RejoinAck {
                from: CubId(0),
                failed: vec![1u32, 3].into(),
            },
            Message::RetiredReplay {
                from: CubId(2),
                states: Arc::from(Vec::<ViewerState>::new()),
            },
            Message::RetiredReplay {
                from: CubId(2),
                states: vec![
                    vs(3, 8, StreamKind::Primary),
                    vs(4, 14, StreamKind::Primary),
                ]
                .into(),
            },
            Message::FailureNotice { failed: CubId(3) },
            Message::StreamData {
                instance: inst(12, 0),
                block: 88,
                piece: None,
                total_pieces: 1,
                bytes: 250_000,
            },
            Message::StreamData {
                instance: inst(12, 0),
                block: 88,
                piece: Some(1),
                total_pieces: 2,
                bytes: 125_000,
            },
            Message::MbrReserve {
                reservation: 77,
                instance: inst(15, 2),
                start_nanos: 123_456_789,
                rate_bps: 6_000_000,
            },
            Message::MbrReserveReply {
                reservation: 77,
                ok: true,
            },
            Message::MbrReserveReply {
                reservation: 78,
                ok: false,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_byte_equal() {
        for msg in exemplars() {
            let line = encode(&msg);
            let back = decode(&line).unwrap_or_else(|| panic!("line failed to decode: {line}"));
            assert_eq!(msg, back, "decode diverged for {line}");
            assert_eq!(encode(&back), line, "re-encode not byte-equal for {line}");
        }
    }

    #[test]
    fn exemplars_cover_every_variant() {
        // Compile-time-ish completeness check: the match below fails to
        // build if a variant is added, and the assert fails if an exemplar
        // for it is missing above.
        let tag = |m: &Message| match m {
            Message::ViewerState(_) => 0usize,
            Message::ViewerStates(_) => 1,
            Message::Deschedule { .. } => 2,
            Message::StartRequest { .. } => 3,
            Message::RoutedStart { .. } => 4,
            Message::InsertCommitted { .. } => 5,
            Message::StopRequest { .. } => 6,
            Message::ViewerFinished { .. } => 7,
            Message::DeadmanPing { .. } => 8,
            Message::RejoinRequest { .. } => 9,
            Message::RejoinAck { .. } => 10,
            Message::RetiredReplay { .. } => 11,
            Message::FailureNotice { .. } => 12,
            Message::StreamData { .. } => 13,
            Message::MbrReserve { .. } => 14,
            Message::MbrReserveReply { .. } => 15,
        };
        let mut seen = [false; 16];
        for m in exemplars() {
            seen[tag(&m)] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing exemplar: {seen:?}");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "NOPE 1",
            "VS",
            "VS 1,2,3",
            "PING",
            "PING x",
            "PING 1 trailing",
            "RACK 0",
            "RACK 0 1,,2",
            "RPLY",
            "RPLY 0 1,2,3",
            "DESCH 1,0 5",
            "DATA 1,0 88 ? 1 10",
            "MBRRPL 1 2",
            "VS 1,2,3,4,5,6,7,8,P,extra",
        ] {
            assert!(decode(bad).is_none(), "accepted malformed line: {bad:?}");
        }
    }

    #[test]
    fn newline_free_encoding() {
        for msg in exemplars() {
            let line = encode(&msg);
            assert!(
                !line.contains('\n') && !line.is_empty(),
                "wire lines must be single non-empty lines: {line:?}"
            );
        }
    }
}
