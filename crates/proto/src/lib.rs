//! The sans-io protocol core of the Tiger reproduction.
//!
//! Everything in this crate is a *pure* state machine: inputs are typed
//! messages and timer expiries, outputs are typed verdicts the caller —
//! the *driver* — turns into sends, schedule actions, and timer re-arms.
//! Nothing here touches a clock, a socket, an event queue, or a tracer;
//! time enters only as `SimTime` arguments and leaves only as deadline
//! values inside outputs. That boundary is what lets the same machines
//! run under two very different drivers:
//!
//! * the deterministic discrete-event simulation in `tiger-core`
//!   (`TigerSystem` and `Cub` feed the machines and interpret their
//!   outputs against the simulated network and event queue), and
//! * the real-transport driver in `tiger-rt` (OS threads, loopback UDP
//!   sockets, wall-clock timers), whose protocol-decision sequence must
//!   match the DES oracle seq-for-seq.
//!
//! Modules:
//!
//! * [`msg`] — the control-plane message vocabulary ([`Message`]).
//! * [`wire`] — the lossless text wire format for [`Message`], used by
//!   real transports and pinned by exhaustive round-trip tests.
//! * [`ring`] — ring membership ([`Membership`]) and the failure
//!   detector / rejoin machine ([`RingMachine`]): deadman pings and
//!   checks, failure declaration, zombie fencing, rejoin baselines, and
//!   the bounded mirror hand-back window.
//! * [`insert`] — the ownership-window insertion machine
//!   ([`InsertMachine`]): queued start requests, redundant-start
//!   promotion, and the attempt/commit/miss cycle.
//!
//! See `docs/PROTOCOL.md` ("The sans-io core and its drivers") for the
//! driver contract.

pub mod insert;
pub mod msg;
pub mod ring;
pub mod wire;

pub use insert::{InsertMachine, PendingStart};
pub use msg::{Message, FRAME_BYTES};
pub use ring::{Membership, RejoinOutcome, RingConfig, RingMachine};
pub use wire::{decode, encode};
