//! The ownership-window insertion state machine (§4.1.3).
//!
//! [`InsertMachine`] owns a cub's queued start requests: the primary
//! queue (starts this cub must insert) and the redundant holds (starts
//! the controller also routed to the successor, promoted only on the
//! primary holder's failure). Inputs are routed starts, deschedules,
//! viewer-state sightings, takeover promotions, and the insert-attempt
//! timer; outputs say whether the driver must (re)arm the attempt timer
//! and, per queued start, whether it committed, missed, or was dropped.
//!
//! The machine deliberately does *not* know slot arithmetic or the
//! catalog: whether a slot is free inside an owned window is the
//! driver's question to its schedule view. The machine's job is the
//! queue discipline — idempotent enqueue, ordered retry, one armed
//! attempt at a time — which is what both drivers must agree on.

use tiger_layout::ids::ViewerInstance;
use tiger_layout::{BlockNum, FileId};
use tiger_sim::SimTime;

/// A queued start request (§4.1.3).
#[derive(Clone, Copy, Debug)]
pub struct PendingStart {
    /// The viewer instance to start.
    pub instance: ViewerInstance,
    /// The client's network node id.
    pub client: u32,
    /// The file to play.
    pub file: FileId,
    /// First block to play (0 from the beginning; seeks/resumes start
    /// mid-file).
    pub from_block: BlockNum,
    /// When the client asked (latency measurement).
    pub requested_at: SimTime,
}

/// The driver's verdict on one queued start during an attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptDecision {
    /// Unknown file, out-of-range block, or another cub's insertion:
    /// drop the start from the queue.
    Drop,
    /// An owned free slot was found; the driver committed the insert.
    Commit,
    /// No free owned slot in the current window: keep the start queued
    /// for the next ownership window.
    Miss,
}

/// The insertion queue machine.
#[derive(Clone, Debug, Default)]
pub struct InsertMachine {
    start_queue: Vec<PendingStart>,
    redundant_starts: Vec<PendingStart>,
    attempt_scheduled: bool,
}

impl InsertMachine {
    /// An empty machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queued primary starts (waiting for an ownership window).
    pub fn queued(&self) -> usize {
        self.start_queue.len()
    }

    /// The queue head (the start whose disk gates the retry timer).
    pub fn head(&self) -> Option<&PendingStart> {
        self.start_queue.first()
    }

    /// Redundant holds (promoted only on the primary holder's failure).
    pub fn redundant_held(&self) -> usize {
        self.redundant_starts.len()
    }

    /// Input: a routed start. Redundant copies are held (idempotently)
    /// and never trigger an attempt; primary copies enqueue unless the
    /// instance is already queued or `already_carried` (the driver's
    /// idempotence check against its view/active/retired state). Returns
    /// true when the driver must arm an insert attempt — always, for a
    /// primary start, even when the enqueue was a duplicate.
    pub fn on_routed_start(
        &mut self,
        pending: PendingStart,
        redundant: bool,
        already_carried: bool,
    ) -> bool {
        if redundant {
            if !self
                .redundant_starts
                .iter()
                .any(|p| p.instance == pending.instance)
            {
                self.redundant_starts.push(pending);
            }
            return false;
        }
        if !self
            .start_queue
            .iter()
            .any(|p| p.instance == pending.instance)
            && !already_carried
        {
            self.start_queue.push(pending);
        }
        true
    }

    /// Arms the attempt timer. Returns true when the driver must
    /// schedule the attempt (false: one is already pending).
    pub fn arm_attempt(&mut self) -> bool {
        if self.attempt_scheduled {
            return false;
        }
        self.attempt_scheduled = true;
        true
    }

    /// Timer input: the armed attempt fired. Always disarms (a failed
    /// cub consumes the expiry without running the attempt).
    pub fn attempt_due(&mut self) {
        self.attempt_scheduled = false;
    }

    /// Takes the whole queue for an attempt pass; the driver decides
    /// each start and returns the misses via [`InsertMachine::requeue`].
    pub fn take_queue(&mut self) -> Vec<PendingStart> {
        std::mem::take(&mut self.start_queue)
    }

    /// Restores the post-attempt queue (the misses, in order).
    pub fn requeue(&mut self, remaining: Vec<PendingStart>) {
        self.start_queue = remaining;
    }

    /// Runs one whole attempt against the driver's `decide` verdicts:
    /// commits and drops leave the queue, misses stay (in order).
    /// Returns the number of commits. Equivalent to
    /// `take_queue`/`requeue` with the loop run inline — the form the
    /// isolation tests and simple drivers use.
    pub fn attempt(&mut self, mut decide: impl FnMut(&PendingStart) -> AttemptDecision) -> u32 {
        let queue = self.take_queue();
        let mut remaining = Vec::new();
        let mut commits = 0;
        for pending in queue {
            match decide(&pending) {
                AttemptDecision::Drop => {}
                AttemptDecision::Commit => commits += 1,
                AttemptDecision::Miss => remaining.push(pending),
            }
        }
        self.requeue(remaining);
        commits
    }

    /// Input: a viewer-state sighting for `instance` — any sighting
    /// supersedes a redundant hold for the same instance.
    pub fn superseded_by_sighting(&mut self, instance: &ViewerInstance) {
        self.redundant_starts.retain(|p| p.instance != *instance);
    }

    /// Input: a deschedule for `instance` — both queues drop it.
    pub fn drop_instance(&mut self, instance: &ViewerInstance) {
        self.start_queue.retain(|p| p.instance != *instance);
        self.redundant_starts.retain(|p| p.instance != *instance);
    }

    /// Takeover input: promote every redundant hold matching `covers`
    /// (its file's start disk belonged to the failed cub, per the
    /// driver's catalog) into the primary queue, idempotently.
    pub fn promote_where(&mut self, covers: impl Fn(&PendingStart) -> bool) {
        let promote: Vec<PendingStart> = self
            .redundant_starts
            .iter()
            .filter(|p| covers(p))
            .copied()
            .collect();
        self.redundant_starts.retain(|p| !covers(p));
        for p in promote {
            if !self.start_queue.iter().any(|q| q.instance == p.instance) {
                self.start_queue.push(p);
            }
        }
    }

    /// Power-cut / restripe cut-over: both queues empty. The armed flag
    /// is left alone on a power cut (the stale expiry is consumed by
    /// [`InsertMachine::attempt_due`]); restart clears it via
    /// [`InsertMachine::reset`].
    pub fn clear_queues(&mut self) {
        self.start_queue.clear();
        self.redundant_starts.clear();
    }

    /// Restart: empty queues, nothing armed.
    pub fn reset(&mut self) {
        self.clear_queues();
        self.attempt_scheduled = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_layout::ViewerId;

    fn pending(v: u64) -> PendingStart {
        PendingStart {
            instance: ViewerInstance {
                viewer: ViewerId(v),
                incarnation: 0,
            },
            client: 1,
            file: FileId(0),
            from_block: BlockNum(0),
            requested_at: SimTime::ZERO,
        }
    }

    #[test]
    fn routed_starts_enqueue_idempotently_and_always_want_an_attempt() {
        let mut m = InsertMachine::new();
        assert!(m.on_routed_start(pending(1), false, false));
        assert!(
            m.on_routed_start(pending(1), false, false),
            "duplicate still wants an attempt"
        );
        assert_eq!(m.queued(), 1, "but does not enqueue twice");
        assert!(
            m.on_routed_start(pending(2), false, true),
            "already-carried wants an attempt too"
        );
        assert_eq!(m.queued(), 1, "without enqueueing");
        assert!(
            !m.on_routed_start(pending(3), true, false),
            "redundant: no attempt"
        );
        m.on_routed_start(pending(3), true, false);
        assert_eq!(m.redundant_held(), 1, "redundant holds dedup");
    }

    #[test]
    fn only_one_attempt_is_armed_at_a_time() {
        let mut m = InsertMachine::new();
        assert!(m.arm_attempt(), "first arm schedules");
        assert!(!m.arm_attempt(), "second is a no-op");
        m.attempt_due();
        assert!(m.arm_attempt(), "disarmed by the expiry");
    }

    // Satellite coverage: insertion commit/miss driven purely by
    // synthetic verdicts — no DES, no slot arithmetic.
    #[test]
    fn attempt_commits_drop_and_misses_keep_order() {
        let mut m = InsertMachine::new();
        for v in 1..=4 {
            m.on_routed_start(pending(v), false, false);
        }
        // v1 commits, v2 has no free owned slot, v3 is another cub's
        // insertion, v4 also misses.
        let commits = m.attempt(|p| match p.instance.viewer.raw() {
            1 => AttemptDecision::Commit,
            3 => AttemptDecision::Drop,
            _ => AttemptDecision::Miss,
        });
        assert_eq!(commits, 1);
        assert_eq!(m.queued(), 2, "misses stay queued");
        let order: Vec<u64> = [m.head().unwrap().instance.viewer.raw()].to_vec();
        assert_eq!(order, vec![2], "retry order preserved");
        // Next window: everything left commits.
        assert_eq!(m.attempt(|_| AttemptDecision::Commit), 2);
        assert_eq!(m.queued(), 0);
    }

    #[test]
    fn takeover_promotes_matching_redundant_holds() {
        let mut m = InsertMachine::new();
        m.on_routed_start(pending(1), true, false);
        m.on_routed_start(pending(2), true, false);
        m.on_routed_start(pending(2), false, false); // already queued as primary
        m.promote_where(|p| p.instance.viewer.raw() <= 2);
        assert_eq!(m.redundant_held(), 0);
        assert_eq!(m.queued(), 2, "promotion dedups against the queue");
    }

    #[test]
    fn sightings_and_deschedules_clean_the_queues() {
        let mut m = InsertMachine::new();
        m.on_routed_start(pending(1), false, false);
        m.on_routed_start(pending(1), true, false);
        m.superseded_by_sighting(&pending(1).instance);
        assert_eq!(m.redundant_held(), 0, "sighting clears the redundant hold");
        assert_eq!(m.queued(), 1, "but not the primary queue");
        m.drop_instance(&pending(1).instance);
        assert_eq!(m.queued(), 0, "deschedule clears both");
    }
}
