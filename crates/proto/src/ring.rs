//! The ring-membership / failure-detector state machine (§2.3, §4.1.1).
//!
//! [`RingMachine`] owns every belief a cub holds about the ring: which
//! cubs it believes failed, when it last heard from each, the per-cub
//! "recently rejoined" horizon, and the open mirror hand-back window.
//! Inputs are deadman pings, failure notices, rejoin requests/acks, and
//! timer expiries (the periodic deadman check); outputs are small typed
//! verdicts the driver turns into sends, traces, and metrics. The
//! machine itself never sends, schedules, or records anything — that is
//! the sans-io contract that lets the DES driver (`tiger_core::Cub`)
//! and the socket driver (`tiger-rt`) run identical protocol logic.
//!
//! [`Membership`] is the belief vector alone, shared with the
//! controller's routing table (the controller tracks cub liveness from
//! failure notices and rejoin requests but runs no deadman of its own).

use tiger_layout::CubId;
use tiger_sim::{SimDuration, SimTime};

/// Protocol timing constants the ring machine needs. The driver builds
/// this from its configuration; the machine never reads a config store.
#[derive(Clone, Copy, Debug)]
pub struct RingConfig {
    /// Silence strictly greater than this declares the predecessor dead.
    pub deadman_timeout: SimDuration,
    /// Heartbeat period (bounds the rejoin vulnerability horizon).
    pub deadman_interval: SimDuration,
    /// One schedule lead: the mirror hand-back window length, and the
    /// time a rejoiner needs to re-acquire every stream.
    pub min_vstate_lead: SimDuration,
}

impl RingConfig {
    /// How long after a rejoin the rejoiner stays inside the
    /// vulnerability horizon: until it has re-acquired every stream (one
    /// schedule lead) and a covering partner's death would be detected
    /// (one timeout plus two heartbeat periods of slack).
    pub fn rejoin_horizon(&self) -> SimDuration {
        self.min_vstate_lead + self.deadman_timeout + self.deadman_interval.mul_u64(2)
    }
}

/// A ring liveness-belief vector: which members are believed failed.
///
/// Ring scans are deterministic walks from a starting member; the
/// *within* variants bound the walk to the first `n` members, which is
/// how the controller routes on the striped ring while its vector spans
/// striped cubs and spares alike.
#[derive(Clone, Debug)]
pub struct Membership {
    failed: Vec<bool>,
}

impl Membership {
    /// All `n` members living.
    pub fn all_living(n: usize) -> Self {
        Membership {
            failed: vec![false; n],
        }
    }

    /// `total` members with the trailing spares (ids `>= striped`) marked
    /// failed — the boot-time vector: spares are not ring members until a
    /// restripe cut-over activates them.
    pub fn with_spares(total: u32, striped: u32) -> Self {
        Membership {
            failed: (0..total).map(|c| c >= striped).collect(),
        }
    }

    /// Number of members tracked (living or not).
    pub fn len(&self) -> usize {
        self.failed.len()
    }

    /// Whether the vector tracks no members at all.
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty()
    }

    /// Whether `cub` is believed failed.
    pub fn is_failed(&self, cub: CubId) -> bool {
        self.failed[cub.index()]
    }

    /// Sets the belief for one member.
    pub fn set_failed(&mut self, cub: CubId, failed: bool) {
        self.failed[cub.index()] = failed;
    }

    /// Replaces the whole vector (restripe cut-over ground truth).
    pub fn reset_from(&mut self, failed: &[bool]) {
        self.failed = failed.to_vec();
    }

    /// Raw ids of every member currently believed failed, ascending.
    pub fn failed_ids(&self) -> Vec<u32> {
        (0..self.failed.len() as u32)
            .filter(|&c| self.failed[c as usize])
            .collect()
    }

    /// The first living member strictly after `from`, walking the whole
    /// ring.
    pub fn next_living(&self, from: CubId) -> Option<CubId> {
        self.next_living_within(from, self.failed.len() as u32)
    }

    /// The first living member strictly after `from` on the `n`-member
    /// sub-ring.
    pub fn next_living_within(&self, from: CubId, n: u32) -> Option<CubId> {
        (1..n)
            .map(|i| CubId((from.raw() + i) % n))
            .find(|c| !self.failed[c.index()])
    }

    /// The first living member strictly before `from`, walking the whole
    /// ring backwards.
    pub fn prev_living(&self, from: CubId) -> Option<CubId> {
        let n = self.failed.len() as u32;
        (1..n)
            .map(|i| CubId((from.raw() + n - i) % n))
            .find(|c| !self.failed[c.index()])
    }

    /// The first living member at-or-after `from` on the `n`-member
    /// sub-ring, or `from` itself when every member is believed down
    /// (the caller has nowhere better to route).
    pub fn first_living_at(&self, from: CubId, n: u32) -> CubId {
        (0..n)
            .map(|i| CubId((from.raw() + i) % n))
            .find(|c| !self.failed[c.index()])
            .unwrap_or(from)
    }
}

/// What a rejoin request obliges the receiver to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RejoinOutcome {
    /// The receiver was the acting successor covering the rejoiner's
    /// disks: it must open the mirror hand-back window
    /// ([`RingMachine::open_handback`]) and send the granted records.
    pub was_covering: bool,
    /// The receiver is a ring neighbour of the rejoiner: it must answer
    /// with a rejoin ack carrying [`RingMachine::failed_ids`].
    pub should_ack: bool,
    /// The receiver is the rejoiner's ring *predecessor*: its retired-log
    /// tail, advanced one position, lands on the rejoiner's disks, so it
    /// must stream the tail as a retired-replay batch (sub-interval
    /// rejoin). The successor's tail advances *away* from the rejoiner
    /// and owes nothing here.
    pub should_replay: bool,
}

/// The per-cub ring state machine: failure beliefs, deadman clocks,
/// rejoin horizons, and the hand-back window.
#[derive(Clone, Debug)]
pub struct RingMachine {
    id: CubId,
    members: Membership,
    /// Last time anything was heard from each cub (deadman input).
    last_heard: Vec<SimTime>,
    /// Per-cub "recently rejoined until" horizon.
    rejoin_until: Vec<SimTime>,
    /// Open mirror hand-back window: `(rejoiner, until)`.
    handback: Option<(CubId, SimTime)>,
}

impl RingMachine {
    /// A fresh machine for cub `id` on an `n`-cub ring, everyone living.
    pub fn new(id: CubId, num_cubs: u32) -> Self {
        RingMachine {
            id,
            members: Membership::all_living(num_cubs as usize),
            last_heard: vec![SimTime::ZERO; num_cubs as usize],
            rejoin_until: vec![SimTime::ZERO; num_cubs as usize],
            handback: None,
        }
    }

    /// This machine's own cub id.
    pub fn id(&self) -> CubId {
        self.id
    }

    /// Ring size (members tracked, living or not).
    pub fn num_cubs(&self) -> u32 {
        self.members.len() as u32
    }

    /// Whether this cub currently believes `cub` is failed.
    pub fn believes_failed(&self, cub: CubId) -> bool {
        self.members.is_failed(cub)
    }

    /// Raw ids of every cub currently believed failed, ascending.
    pub fn failed_ids(&self) -> Vec<u32> {
        self.members.failed_ids()
    }

    /// The first living cub strictly after `from`.
    pub fn next_living(&self, from: CubId) -> Option<CubId> {
        self.members.next_living(from)
    }

    /// The first living cub strictly before `from`.
    pub fn prev_living(&self, from: CubId) -> Option<CubId> {
        self.members.prev_living(from)
    }

    /// Whether this cub is the acting successor for `failed` (the first
    /// living cub after it).
    pub fn acting_successor_of(&self, failed: CubId) -> bool {
        self.next_living(failed) == Some(self.id)
    }

    /// Where this cub's periodic heartbeat goes (its living successor).
    pub fn ping_target(&self) -> Option<CubId> {
        self.next_living(self.id)
    }

    /// Whether `cub` is still inside its post-rejoin vulnerability
    /// horizon at `now`.
    pub fn recently_rejoined(&self, cub: CubId, now: SimTime) -> bool {
        now < self.rejoin_until[cub.index()]
    }

    /// Input: a deadman ping (or any sign of life) from `from`. Returns
    /// true when the sender is a *zombie* — a cub this machine already
    /// declared dead — which the driver must answer with a failure
    /// notice so the zombie fences itself off.
    pub fn on_ping(&mut self, from: CubId, now: SimTime) -> bool {
        self.last_heard[from.index()] = now;
        self.members.is_failed(from)
    }

    /// Input: any message from `from` that implies liveness without the
    /// zombie check (rejoin acks).
    pub fn heard_from(&mut self, from: CubId, now: SimTime) {
        self.last_heard[from.index()] = now;
    }

    /// Timer input: the periodic deadman check. Read-only — returns the
    /// predecessor and its observed silence when the silence *strictly*
    /// exceeds the timeout, `None` otherwise (including the degenerate
    /// one-living-cub ring). The driver records the declaration and then
    /// calls [`RingMachine::declare_failed`].
    pub fn poll_check(&self, now: SimTime, cfg: &RingConfig) -> Option<(CubId, SimDuration)> {
        let pred = self.prev_living(self.id)?;
        if pred == self.id {
            return None;
        }
        let silence = now.saturating_since(self.last_heard[pred.index()]);
        (silence > cfg.deadman_timeout).then_some((pred, silence))
    }

    /// Input: `failed` is to be believed dead (a local declaration or a
    /// received failure notice). Returns false when the belief was
    /// already held (or `failed` is this cub) and nothing changed; true
    /// when the belief flipped — the driver then runs the gap-bridging
    /// re-drive and the acting-successor takeover. Flipping the belief
    /// re-baselines monitoring of the (possibly new) predecessor.
    pub fn declare_failed(&mut self, failed: CubId, now: SimTime) -> bool {
        if self.members.is_failed(failed) || failed == self.id {
            return false;
        }
        self.members.set_failed(failed, true);
        self.reset_pred_baseline(now);
        true
    }

    /// Input: a rejoin request from a restarted cub. Clears the failure
    /// belief, re-baselines the deadman clocks, opens the rejoiner's
    /// vulnerability horizon, and reports what the driver owes the
    /// rejoiner. `None` when `from` is this cub itself.
    pub fn on_rejoin_request(
        &mut self,
        from: CubId,
        now: SimTime,
        cfg: &RingConfig,
    ) -> Option<RejoinOutcome> {
        if from == self.id {
            return None;
        }
        let was_covering = self.members.is_failed(from) && self.acting_successor_of(from);
        self.members.set_failed(from, false);
        self.last_heard[from.index()] = now;
        self.rejoin_until[from.index()] = now + cfg.rejoin_horizon();
        // The ring just changed back: re-baseline predecessor monitoring
        // exactly as a failure declaration does.
        self.reset_pred_baseline(now);
        let is_pred = self.prev_living(from) == Some(self.id);
        let should_ack = self.next_living(from) == Some(self.id) || is_pred;
        Some(RejoinOutcome {
            was_covering,
            should_ack,
            should_replay: is_pred,
        })
    }

    /// Opens the mirror hand-back window toward `to` for one schedule
    /// lead (the covering partner's half of a rejoin).
    pub fn open_handback(&mut self, to: CubId, now: SimTime, cfg: &RingConfig) {
        self.handback = Some((to, now + cfg.min_vstate_lead));
    }

    /// Timer-checked input: a shadowed record owned by `owner` arrived
    /// while a hand-back window may be open. Returns true when the
    /// record must be relayed to the rejoiner; an expired window closes
    /// as a side effect.
    pub fn handback_relay(&mut self, owner: CubId, now: SimTime) -> bool {
        match self.handback {
            Some((_, until)) if now >= until => {
                self.handback = None;
                false
            }
            Some((hb, _)) => owner == hb,
            None => false,
        }
    }

    /// Closes any open hand-back window (restripe cut-over, restart).
    pub fn clear_handback(&mut self) {
        self.handback = None;
    }

    /// Re-baselines deadman monitoring of the current predecessor after
    /// a ring-membership change (a failure declaration *or* a rejoin):
    /// the new predecessor redirects its pings here only once it learns
    /// of the change too. Measure its silence from this instant —
    /// otherwise a takeover instantly declares a never-heard-from
    /// predecessor with an epoch-sized silence claim.
    pub fn reset_pred_baseline(&mut self, now: SimTime) {
        if let Some(p) = self.prev_living(self.id) {
            if p != self.id {
                self.last_heard[p.index()] = self.last_heard[p.index()].max(now);
            }
        }
    }

    /// Restart with empty protocol state: a restarted process knows
    /// nothing about who is down; it assumes the full striped ring is
    /// alive (spares stay marked failed — they are not ring members)
    /// and learns real failures from rejoin acks.
    pub fn restart(&mut self, now: SimTime, striped_cubs: u32) {
        for c in 0..self.members.len() as u32 {
            self.members.set_failed(CubId(c), c >= striped_cubs);
        }
        for t in &mut self.last_heard {
            *t = now;
        }
        for t in &mut self.rejoin_until {
            *t = SimTime::ZERO;
        }
        self.handback = None;
    }

    /// Marks `cub` believed-failed without the declaration side effects
    /// (construction-time marking of spare cubs, which are not ring
    /// members until a restripe cut-over activates them).
    pub fn mark_believed_failed(&mut self, cub: CubId) {
        self.members.set_failed(cub, true);
    }

    /// Installs a post-cut-over ring map: belief vectors resize to the
    /// new ring and every member's liveness is set from ground truth.
    /// Deadman baselines restart from this instant.
    pub fn set_ring_state(&mut self, failed: &[bool], now: SimTime) {
        self.members.reset_from(failed);
        self.last_heard = vec![now; failed.len()];
        self.rejoin_until = vec![SimTime::ZERO; failed.len()];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RingConfig {
        RingConfig {
            deadman_timeout: SimDuration::from_secs(2),
            deadman_interval: SimDuration::from_millis(500),
            min_vstate_lead: SimDuration::from_secs(2),
        }
    }

    fn warm(machine: &mut RingMachine, now: SimTime) {
        for c in 0..machine.num_cubs() {
            machine.heard_from(CubId(c), now);
        }
    }

    #[test]
    fn membership_walks_the_ring_in_both_directions() {
        let mut m = Membership::all_living(4);
        assert_eq!(m.next_living(CubId(0)), Some(CubId(1)));
        assert_eq!(m.prev_living(CubId(0)), Some(CubId(3)));
        m.set_failed(CubId(1), true);
        assert_eq!(m.next_living(CubId(0)), Some(CubId(2)));
        assert_eq!(m.prev_living(CubId(2)), Some(CubId(0)));
        assert_eq!(m.first_living_at(CubId(1), 4), CubId(2));
        assert_eq!(m.first_living_at(CubId(2), 4), CubId(2));
        assert_eq!(m.failed_ids(), vec![1]);
        m.set_failed(CubId(0), true);
        m.set_failed(CubId(2), true);
        m.set_failed(CubId(3), true);
        assert_eq!(m.next_living(CubId(0)), None);
        assert_eq!(m.first_living_at(CubId(2), 4), CubId(2), "fallback");
    }

    #[test]
    fn membership_sub_ring_scans_ignore_spares() {
        // 6 tracked members, 4-cub striped ring: the controller routes
        // only within the stripe even though spares 4/5 are tracked.
        let mut m = Membership::all_living(6);
        m.set_failed(CubId(3), true);
        assert_eq!(m.next_living_within(CubId(2), 4), Some(CubId(0)));
        assert_eq!(m.first_living_at(CubId(3), 4), CubId(0));
    }

    // Satellite coverage: the deadman declare/suppress boundary, driven
    // purely by synthetic inputs — no DES, no sockets.
    #[test]
    fn deadman_boundary_is_strictly_greater_than_timeout() {
        let mut ring = RingMachine::new(CubId(2), 4);
        let t0 = SimTime::from_secs(10);
        warm(&mut ring, t0);
        let at_timeout = t0 + cfg().deadman_timeout;
        assert_eq!(
            ring.poll_check(at_timeout, &cfg()),
            None,
            "silence exactly equal to the timeout must not declare"
        );
        let past = at_timeout + SimDuration::from_nanos(1);
        assert_eq!(
            ring.poll_check(past, &cfg()),
            Some((CubId(1), cfg().deadman_timeout + SimDuration::from_nanos(1))),
            "one nanosecond past the timeout declares the predecessor"
        );
        // A ping resets the clock and suppresses the declaration.
        assert!(
            !ring.on_ping(CubId(1), past),
            "live predecessor, not a zombie"
        );
        assert_eq!(ring.poll_check(past + cfg().deadman_timeout, &cfg()), None);
    }

    #[test]
    fn declaration_shifts_monitoring_to_the_next_predecessor() {
        let mut ring = RingMachine::new(CubId(2), 4);
        let t0 = SimTime::from_secs(10);
        warm(&mut ring, t0);
        let late = t0 + cfg().deadman_timeout + SimDuration::from_millis(1);
        let (pred, _) = ring.poll_check(late, &cfg()).expect("c1 silent too long");
        assert_eq!(pred, CubId(1));
        assert!(ring.declare_failed(pred, late));
        assert!(!ring.declare_failed(pred, late), "idempotent");
        assert!(ring.believes_failed(CubId(1)));
        // The new predecessor (c0) is monitored from the declaration
        // instant, not from its stale last-heard: no instant cascade.
        assert_eq!(ring.prev_living(CubId(2)), Some(CubId(0)));
        assert_eq!(ring.poll_check(late + cfg().deadman_timeout, &cfg()), None);
        assert!(ring
            .poll_check(
                late + cfg().deadman_timeout + SimDuration::from_nanos(1),
                &cfg()
            )
            .is_some());
    }

    #[test]
    fn zombie_pings_are_flagged_for_fencing() {
        let mut ring = RingMachine::new(CubId(2), 4);
        warm(&mut ring, SimTime::from_secs(1));
        assert!(ring.declare_failed(CubId(1), SimTime::from_secs(4)));
        assert!(
            ring.on_ping(CubId(1), SimTime::from_secs(5)),
            "a ping from a declared-dead cub is a zombie"
        );
    }

    // Satellite coverage: the rejoin hand-back, driven synthetically.
    #[test]
    fn rejoin_from_the_covering_successor_opens_the_handback() {
        let mut ring = RingMachine::new(CubId(2), 4);
        let t0 = SimTime::from_secs(5);
        warm(&mut ring, t0);
        ring.declare_failed(CubId(1), t0);
        assert!(ring.acting_successor_of(CubId(1)), "c2 covers c1");

        let t1 = SimTime::from_secs(15);
        let out = ring
            .on_rejoin_request(CubId(1), t1, &cfg())
            .expect("not self");
        assert!(out.was_covering, "the covering partner owes a hand-back");
        assert!(out.should_ack, "and is a ring neighbour");
        assert!(
            !out.should_replay,
            "the successor's retired tail advances away from the rejoiner"
        );
        assert!(!ring.believes_failed(CubId(1)), "belief cleared");
        assert!(ring.recently_rejoined(CubId(1), t1));
        assert!(
            !ring.recently_rejoined(CubId(1), t1 + cfg().rejoin_horizon()),
            "horizon closes"
        );

        // The driver opens the window; records owned by the rejoiner are
        // relayed until one schedule lead passes.
        ring.open_handback(CubId(1), t1, &cfg());
        assert!(ring.handback_relay(CubId(1), t1 + SimDuration::from_secs(1)));
        assert!(
            !ring.handback_relay(CubId(3), t1 + SimDuration::from_secs(1)),
            "records for other owners are not relayed"
        );
        let after = t1 + cfg().min_vstate_lead;
        assert!(!ring.handback_relay(CubId(1), after), "window expired");
        assert!(
            !ring.handback_relay(CubId(1), t1),
            "expiry closed the window for good"
        );
    }

    #[test]
    fn rejoin_from_a_non_covering_neighbour_only_acks() {
        let mut ring = RingMachine::new(CubId(0), 4);
        let t0 = SimTime::from_secs(5);
        warm(&mut ring, t0);
        ring.declare_failed(CubId(1), t0);
        assert!(!ring.acting_successor_of(CubId(1)), "c2 covers, not c0");
        let out = ring
            .on_rejoin_request(CubId(1), SimTime::from_secs(15), &cfg())
            .expect("not self");
        assert!(!out.was_covering);
        assert!(out.should_ack, "c0 is the rejoiner's predecessor");
        assert!(
            out.should_replay,
            "the predecessor's retired tail lands on the rejoiner: replay"
        );
        assert!(
            ring.on_rejoin_request(CubId(0), t0, &cfg()).is_none(),
            "self"
        );
    }

    // Satellite coverage: the `rejoin_until` horizon boundary. The
    // shadow re-drive on a failure declaration consults
    // `recently_rejoined` — a record owned by a cub inside its horizon
    // is re-driven toward it, one past the horizon is not — so the
    // boundary semantics (`now < rejoin_until`, half-open) are pinned
    // here to the nanosecond.
    #[test]
    fn rejoin_horizon_closes_exactly_at_the_boundary() {
        let mut ring = RingMachine::new(CubId(0), 4);
        let t0 = SimTime::from_secs(5);
        warm(&mut ring, t0);
        ring.declare_failed(CubId(1), t0);
        let t1 = SimTime::from_secs(15);
        ring.on_rejoin_request(CubId(1), t1, &cfg()).expect("ok");
        let horizon = t1 + cfg().rejoin_horizon();
        assert!(
            ring.recently_rejoined(CubId(1), horizon - SimDuration::from_nanos(1)),
            "one tick before the horizon the rejoiner is still vulnerable"
        );
        assert!(
            !ring.recently_rejoined(CubId(1), horizon),
            "exactly at the horizon the window is closed (half-open interval)"
        );
        assert!(!ring.recently_rejoined(CubId(1), horizon + SimDuration::from_nanos(1)));
        // A second rejoin re-opens a fresh horizon from its own instant.
        let t2 = horizon + SimDuration::from_secs(1);
        ring.on_rejoin_request(CubId(1), t2, &cfg()).expect("ok");
        assert!(ring.recently_rejoined(
            CubId(1),
            t2 + cfg().rejoin_horizon() - SimDuration::from_nanos(1)
        ));
        assert!(!ring.recently_rejoined(CubId(1), t2 + cfg().rejoin_horizon()));
    }

    #[test]
    fn restart_assumes_the_striped_ring_alive_and_spares_dead() {
        let mut ring = RingMachine::new(CubId(1), 6);
        warm(&mut ring, SimTime::from_secs(1));
        ring.declare_failed(CubId(3), SimTime::from_secs(2));
        ring.open_handback(CubId(3), SimTime::from_secs(2), &cfg());
        let t = SimTime::from_secs(9);
        ring.restart(t, 4);
        assert!(!ring.believes_failed(CubId(3)), "beliefs wiped");
        assert!(ring.believes_failed(CubId(4)) && ring.believes_failed(CubId(5)));
        assert!(!ring.handback_relay(CubId(3), t), "handback closed");
        assert_eq!(ring.poll_check(t + cfg().deadman_timeout, &cfg()), None);
        assert_eq!(ring.failed_ids(), vec![4, 5]);
    }

    #[test]
    fn set_ring_state_resizes_and_rebaselines() {
        let mut ring = RingMachine::new(CubId(0), 4);
        let t = SimTime::from_secs(30);
        ring.set_ring_state(&[false, false, false, false, false, true], t);
        assert_eq!(ring.num_cubs(), 6);
        assert!(ring.believes_failed(CubId(5)));
        assert_eq!(ring.poll_check(t + cfg().deadman_timeout, &cfg()), None);
        assert!(ring
            .poll_check(
                t + cfg().deadman_timeout + SimDuration::from_nanos(1),
                &cfg()
            )
            .is_some());
    }
}
