//! Property tests for the disk model: FIFO completion order, service-time
//! lower bounds, zone monotonicity, and capacity math stability.

use proptest::prelude::*;

use tiger_disk::{Disk, DiskProfile, DiskRequest, RequestKind};
use tiger_sim::{ByteSize, RngTree, SimDuration, SimTime};

fn quiet_disk(seed: u64) -> Disk {
    Disk::new(
        DiskProfile::sosp97().without_blips(),
        RngTree::new(seed).fork("d", 0),
    )
}

proptest! {
    /// Completions come back in submission order (the model is FIFO) and
    /// strictly after their submission.
    #[test]
    fn completions_are_fifo(
        reqs in proptest::collection::vec((0u64..2_000_000_000u64, 1u64..300_000), 1..60),
        seed in 0u64..1000,
    ) {
        let mut d = quiet_disk(seed);
        let cap = d.profile().capacity.as_bytes();
        let mut prev = SimTime::ZERO;
        for (i, &(off, len)) in reqs.iter().enumerate() {
            let now = SimTime::from_millis(i as u64);
            let offset = off % (cap - len);
            let done = d
                .submit(now, DiskRequest {
                    offset,
                    len: ByteSize::from_bytes(len),
                    kind: RequestKind::Primary,
                })
                .expect("in range");
            prop_assert!(done > now, "completion not after submission");
            prop_assert!(done > prev, "completion order violated FIFO");
            prev = done;
        }
    }

    /// Service time is bounded below by the pure transfer time of the
    /// request's zone and above by full positioning plus the slowest zone.
    #[test]
    fn service_time_bounds(
        off in 0u64..2_000_000_000u64,
        len in 1u64..300_000u64,
        seed in 0u64..1000,
    ) {
        let mut d = quiet_disk(seed);
        let profile = d.profile().clone();
        let cap = profile.capacity.as_bytes();
        let offset = off % (cap - len);
        let done = d
            .submit(SimTime::ZERO, DiskRequest {
                offset,
                len: ByteSize::from_bytes(len),
                kind: RequestKind::Primary,
            })
            .expect("in range");
        let service = done - SimTime::ZERO;
        let frac = offset as f64 / cap as f64;
        let transfer = profile.rate_at(frac).time_to_move(ByteSize::from_bytes(len));
        prop_assert!(service >= transfer, "faster than the media");
        let worst = profile.max_seek
            + profile.avg_rotational_latency()
            + profile.overhead
            + profile.rate_at(1.0).time_to_move(ByteSize::from_bytes(len));
        prop_assert!(
            service <= worst + SimDuration::from_nanos(1),
            "slower than worst positioning + slowest zone"
        );
    }

    /// Reading the same extent from a slower (inner) zone never takes less
    /// time than from a faster (outer) zone, all else equal.
    #[test]
    fn inner_zones_never_beat_outer(len in 1u64..300_000u64) {
        let profile = DiskProfile::sosp97();
        let mut prev = SimDuration::MAX;
        for z in 0..profile.num_zones {
            let frac = (f64::from(z) + 0.5) / f64::from(profile.num_zones);
            let t = profile.rate_at(frac).time_to_move(ByteSize::from_bytes(len));
            prop_assert!(t >= SimDuration::ZERO);
            if z > 0 {
                prop_assert!(t >= prev, "inner zone faster than outer");
            }
            prev = t;
        }
    }

    /// The worst-case read used for capacity derivation dominates any
    /// average-seek read of the same shape within the primary region.
    #[test]
    fn worst_case_read_dominates_primary_region(
        off_frac_milli in 0u64..499,
        decl in 1u32..8,
    ) {
        let profile = DiskProfile::sosp97();
        let block = ByteSize::from_bytes(250_000);
        let worst = profile.worst_case_read(block, decl, false);
        // An average-positioned read anywhere in the primary (outer) half:
        let frac = off_frac_milli as f64 / 1000.0;
        let avg = profile.avg_seek()
            + profile.avg_rotational_latency()
            + profile.overhead
            + profile.rate_at(frac).time_to_move(block);
        prop_assert!(
            worst + SimDuration::from_nanos(1) >= avg,
            "worst case {worst:?} beaten by primary-region read {avg:?} at {frac}"
        );
    }
}
