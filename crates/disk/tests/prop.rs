//! Property tests for the disk model: FIFO completion order, service-time
//! lower bounds, zone monotonicity, and capacity math stability.
//!
//! Ported from `proptest` to the in-tree `tiger_sim::check` harness: each
//! property runs over many deterministically seeded cases, and failures
//! report a replayable case seed.

use tiger_disk::{Disk, DiskProfile, DiskRequest, RequestKind};
use tiger_sim::check::{check, vec_of};
use tiger_sim::{ByteSize, RngTree, SimDuration, SimTime};

fn quiet_disk(seed: u64) -> Disk {
    Disk::new(
        DiskProfile::sosp97().without_blips(),
        RngTree::new(seed).fork("d", 0),
    )
}

/// Completions come back in submission order (the model is FIFO) and
/// strictly after their submission.
#[test]
fn completions_are_fifo() {
    check("completions_are_fifo", |rng| {
        let reqs = vec_of(rng, 1..60, |r| {
            (r.gen_range(0u64..2_000_000_000), r.gen_range(1u64..300_000))
        });
        let seed = rng.gen_range(0u64..1000);
        let mut d = quiet_disk(seed);
        let cap = d.profile().capacity.as_bytes();
        let mut prev = SimTime::ZERO;
        for (i, &(off, len)) in reqs.iter().enumerate() {
            let now = SimTime::from_millis(i as u64);
            let offset = off % (cap - len);
            let done = d
                .submit(
                    now,
                    DiskRequest {
                        offset,
                        len: ByteSize::from_bytes(len),
                        kind: RequestKind::Primary,
                    },
                )
                .expect("in range");
            assert!(done > now, "completion not after submission");
            assert!(done > prev, "completion order violated FIFO");
            prev = done;
        }
    });
}

/// Service time is bounded below by the pure transfer time of the
/// request's zone and above by full positioning plus the slowest zone.
#[test]
fn service_time_bounds() {
    check("service_time_bounds", |rng| {
        let off = rng.gen_range(0u64..2_000_000_000);
        let len = rng.gen_range(1u64..300_000);
        let seed = rng.gen_range(0u64..1000);
        let mut d = quiet_disk(seed);
        let profile = d.profile().clone();
        let cap = profile.capacity.as_bytes();
        let offset = off % (cap - len);
        let done = d
            .submit(
                SimTime::ZERO,
                DiskRequest {
                    offset,
                    len: ByteSize::from_bytes(len),
                    kind: RequestKind::Primary,
                },
            )
            .expect("in range");
        let service = done - SimTime::ZERO;
        let frac = offset as f64 / cap as f64;
        let transfer = profile
            .rate_at(frac)
            .time_to_move(ByteSize::from_bytes(len));
        assert!(service >= transfer, "faster than the media");
        let worst = profile.max_seek
            + profile.avg_rotational_latency()
            + profile.overhead
            + profile.rate_at(1.0).time_to_move(ByteSize::from_bytes(len));
        assert!(
            service <= worst + SimDuration::from_nanos(1),
            "slower than worst positioning + slowest zone"
        );
    });
}

/// Reading the same extent from a slower (inner) zone never takes less
/// time than from a faster (outer) zone, all else equal.
#[test]
fn inner_zones_never_beat_outer() {
    check("inner_zones_never_beat_outer", |rng| {
        let len = rng.gen_range(1u64..300_000);
        let profile = DiskProfile::sosp97();
        let mut prev = SimDuration::MAX;
        for z in 0..profile.num_zones {
            let frac = (f64::from(z) + 0.5) / f64::from(profile.num_zones);
            let t = profile
                .rate_at(frac)
                .time_to_move(ByteSize::from_bytes(len));
            assert!(t >= SimDuration::ZERO);
            if z > 0 {
                assert!(t >= prev, "inner zone faster than outer");
            }
            prev = t;
        }
    });
}

/// The worst-case read used for capacity derivation dominates any
/// average-seek read of the same shape within the primary region.
#[test]
fn worst_case_read_dominates_primary_region() {
    check("worst_case_read_dominates_primary_region", |rng| {
        let off_frac_milli = rng.gen_range(0u64..499);
        let decl = rng.gen_range(1u32..8);
        let profile = DiskProfile::sosp97();
        let block = ByteSize::from_bytes(250_000);
        let worst = profile.worst_case_read(block, decl, false);
        // An average-positioned read anywhere in the primary (outer) half:
        let frac = off_frac_milli as f64 / 1000.0;
        let avg = profile.avg_seek()
            + profile.avg_rotational_latency()
            + profile.overhead
            + profile.rate_at(frac).time_to_move(block);
        assert!(
            worst + SimDuration::from_nanos(1) >= avg,
            "worst case {worst:?} beaten by primary-region read {avg:?} at {frac}"
        );
    });
}
