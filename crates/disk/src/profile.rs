//! Drive parameter profiles and the zoned service-time formula.

use tiger_sim::{Bandwidth, ByteSize, SimDuration};

/// Static parameters of a disk drive model.
///
/// The default [`DiskProfile::sosp97`] profile is calibrated so that the
/// §3.1 worst-case block-service-time computation yields the paper's
/// capacity: 10.75 streams per disk, 602 streams for 56 disks, with
/// 250,000-byte blocks (2 Mbit/s × 1 s) and decluster factor 4.
#[derive(Clone, Debug, PartialEq)]
pub struct DiskProfile {
    /// Formatted capacity in bytes.
    pub capacity: ByteSize,
    /// Media transfer rate of the outermost zone.
    pub outer_rate: Bandwidth,
    /// Media transfer rate of the innermost zone.
    pub inner_rate: Bandwidth,
    /// Number of recording zones (equal-sized byte ranges).
    pub num_zones: u32,
    /// Single-track (minimum) seek time.
    pub min_seek: SimDuration,
    /// Full-stroke (maximum) seek time.
    pub max_seek: SimDuration,
    /// Rotational speed in revolutions per minute.
    pub rpm: u32,
    /// Fixed per-request controller/command overhead.
    pub overhead: SimDuration,
    /// Probability that a request suffers a service-time blip.
    pub blip_probability: f64,
    /// Pareto shape for blip magnitude (larger = lighter tail).
    pub blip_alpha: f64,
    /// Maximum blip multiplier.
    pub blip_cap: f64,
}

impl DiskProfile {
    /// The drive modelled after the paper's testbed disks.
    ///
    /// `outer_rate`/`inner_rate` were calibrated (see `EXPERIMENTS.md`) so
    /// that [`DiskProfile::worst_case_read`] for one 250,000-byte primary
    /// plus one 62,500-byte mirror piece lands in the band that makes a
    /// 56-disk system's capacity exactly 602 streams.
    pub fn sosp97() -> Self {
        DiskProfile {
            capacity: ByteSize::from_bytes(2_250_000_000),
            outer_rate: Bandwidth::from_bytes_per_sec(6_980_000),
            inner_rate: Bandwidth::from_bytes_per_sec(3_280_000),
            num_zones: 8,
            min_seek: SimDuration::from_micros(1_000),
            max_seek: SimDuration::from_micros(11_000),
            rpm: 5400,
            overhead: SimDuration::from_micros(1_040),
            blip_probability: 3e-4,
            blip_alpha: 1.1,
            blip_cap: 20.0,
        }
    }

    /// A profile with blips disabled, for deterministic capacity tests.
    pub fn without_blips(mut self) -> Self {
        self.blip_probability = 0.0;
        self
    }

    /// Average rotational latency (half a revolution).
    pub fn avg_rotational_latency(&self) -> SimDuration {
        // Half revolution: 60 s / rpm / 2.
        SimDuration::from_nanos(30 * 1_000_000_000 / u64::from(self.rpm))
    }

    /// The media rate of the zone containing byte-offset fraction `frac`
    /// (0 = outermost edge, 1 = innermost).
    ///
    /// Zones are equal byte ranges; each zone's rate is the linear
    /// interpolation between `outer_rate` and `inner_rate` evaluated at the
    /// zone's centre, matching the staircase profile of real zoned drives.
    pub fn rate_at(&self, frac: f64) -> Bandwidth {
        let frac = frac.clamp(0.0, 1.0);
        let zone = ((frac * self.num_zones as f64) as u32).min(self.num_zones - 1);
        let centre = (zone as f64 + 0.5) / self.num_zones as f64;
        let outer = self.outer_rate.bits_per_sec() as f64;
        let inner = self.inner_rate.bits_per_sec() as f64;
        Bandwidth::from_bits_per_sec((outer - (outer - inner) * centre) as u64)
    }

    /// Seek time for a head movement spanning `distance_frac` of the full
    /// stroke, using the classic square-root seek curve (Ruemmler & Wilkes).
    pub fn seek_time(&self, distance_frac: f64) -> SimDuration {
        let d = distance_frac.clamp(0.0, 1.0);
        if d == 0.0 {
            return SimDuration::ZERO;
        }
        let min = self.min_seek.as_nanos() as f64;
        let max = self.max_seek.as_nanos() as f64;
        SimDuration::from_nanos((min + (max - min) * d.sqrt()) as u64)
    }

    /// Average-case seek (computed by integrating the seek curve over a
    /// uniformly distributed distance; `∫√x dx = 2/3`).
    pub fn avg_seek(&self) -> SimDuration {
        let min = self.min_seek.as_nanos() as f64;
        let max = self.max_seek.as_nanos() as f64;
        SimDuration::from_nanos((min + (max - min) * 2.0 / 3.0) as u64)
    }

    /// The deterministic part of one read's service time: seek over
    /// `seek_frac` of the stroke, average rotational latency, controller
    /// overhead, and the transfer of `len` bytes from the zone at
    /// `offset_frac`.
    pub fn read_time(&self, seek_frac: f64, offset_frac: f64, len: ByteSize) -> SimDuration {
        self.seek_time(seek_frac)
            + self.avg_rotational_latency()
            + self.overhead
            + self.rate_at(offset_frac).time_to_move(len)
    }

    /// The §3.1 worst-case service time for one primary block read plus (if
    /// `with_mirror_load`) one declustered mirror-piece read, used to size
    /// the block service time.
    ///
    /// Worst case assumptions: maximum seek for each read, the slowest zone
    /// of the primary (outer-half) region for the primary, and the slowest
    /// zone of the disk for the secondary piece.
    pub fn worst_case_read(
        &self,
        block_size: ByteSize,
        decluster: u32,
        with_mirror_load: bool,
    ) -> SimDuration {
        // Worst-case *expected* service: average seek + average rotation.
        // (Tiger sizes for sustainable worst case, not for the absolute
        // worst single request — occasional overruns are absorbed by the
        // read-ahead lead, and show up as the paper's rare missed blocks.)
        let fixed = self.avg_seek() + self.avg_rotational_latency() + self.overhead;
        // Slowest primary zone: just inside the outer half.
        let primary = fixed + self.rate_at(0.4999).time_to_move(block_size);
        if !with_mirror_load {
            return primary;
        }
        let piece = block_size.div_u64_ceil(u64::from(decluster));
        // Slowest zone on the disk for the mirror piece.
        let secondary = fixed + self.rate_at(0.9999).time_to_move(piece);
        primary + secondary
    }

    /// The worst-case per-slot disk work under the coded backend: `k`
    /// shard reads of `ceil(block/k)` bytes from the slowest zone.
    ///
    /// A coded block is assembled from `k` of its `2k` shards, so one
    /// block's service costs the system `k` shard reads spread over `k`
    /// disks; by ring symmetry the per-disk worst case per slot is that
    /// same `k`-read budget (one as the home, `k − 1` as a chosen
    /// holder). Each shard read pays the fixed positioning cost in full,
    /// which is why coded service *loses* to mirroring at large `k`: the
    /// `k × fixed` term grows while the transfer term stays `≈ block`.
    /// At `k = 2` the shorter transfers win. There is no separate
    /// fault-tolerance reserve — degraded coded service is ordinary
    /// coded service with a smaller holder-candidate set.
    pub fn worst_case_coded_read(&self, block_size: ByteSize, k: u32) -> SimDuration {
        let fixed = self.avg_seek() + self.avg_rotational_latency() + self.overhead;
        let shard = block_size.div_u64_ceil(u64::from(k));
        // Shards live in both regions (shard 0 primary, the rest
        // secondary); size for the slowest zone on the disk.
        let one = fixed + self.rate_at(0.9999).time_to_move(shard);
        one.mul_u64(u64::from(k))
    }

    /// Sustained streams per disk implied by the worst-case service time
    /// (the paper's "10.75 streams per disk"), as a float for reporting.
    pub fn streams_per_disk(
        &self,
        block_size: ByteSize,
        block_play_time: SimDuration,
        decluster: u32,
        with_mirror_load: bool,
    ) -> f64 {
        let svc = self.worst_case_read(block_size, decluster, with_mirror_load);
        block_play_time.as_secs_f64() / svc.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zones_are_monotonically_slower_inward() {
        let p = DiskProfile::sosp97();
        let mut prev = p.rate_at(0.0);
        for z in 1..p.num_zones {
            let frac = (z as f64 + 0.01) / p.num_zones as f64;
            let r = p.rate_at(frac);
            assert!(r < prev, "zone {z} should be slower");
            prev = r;
        }
    }

    #[test]
    fn rate_is_constant_within_a_zone() {
        let p = DiskProfile::sosp97();
        assert_eq!(p.rate_at(0.01), p.rate_at(0.12));
        assert_ne!(p.rate_at(0.01), p.rate_at(0.13));
    }

    #[test]
    fn seek_curve_shape() {
        let p = DiskProfile::sosp97();
        assert_eq!(p.seek_time(0.0), SimDuration::ZERO);
        assert_eq!(p.seek_time(1.0), p.max_seek);
        let half = p.seek_time(0.5);
        assert!(half > p.min_seek && half < p.max_seek);
        // Concave: half-stroke seek is more than half of full-stroke.
        assert!(half.as_nanos() > p.max_seek.as_nanos() / 2);
    }

    #[test]
    fn rotational_latency_is_half_revolution() {
        let p = DiskProfile::sosp97();
        // 5400 rpm = 90 rev/s = 11.11 ms/rev; half is ~5.56 ms.
        let lat = p.avg_rotational_latency();
        assert!((lat.as_millis_f64() - 5.5555).abs() < 0.01);
    }

    #[test]
    fn sosp_capacity_calibration_matches_paper() {
        // §5: ~10.75 streams per disk; 56 disks → 602 streams.
        let p = DiskProfile::sosp97();
        let block = ByteSize::from_bytes(250_000);
        let bpt = SimDuration::from_secs(1);
        let spd = p.streams_per_disk(block, bpt, 4, true);
        assert!(
            (10.6..=10.9).contains(&spd),
            "streams/disk {spd} out of calibration band"
        );
        // System capacity with the integral-slot rounding of §3.1.
        let svc = p.worst_case_read(block, 4, true);
        let capacity = (bpt.mul_u64(56)).div_duration(svc);
        assert_eq!(capacity, 602, "56-disk capacity");
    }

    #[test]
    fn mirror_load_inflates_service_time() {
        let p = DiskProfile::sosp97();
        let block = ByteSize::from_bytes(250_000);
        let with = p.worst_case_read(block, 4, true);
        let without = p.worst_case_read(block, 4, false);
        assert!(with > without);
        // The secondary read is much smaller than the primary (1/decluster
        // of the bytes) but pays full positioning cost.
        let delta = with - without;
        assert!(delta < without);
    }

    #[test]
    fn higher_decluster_means_smaller_secondary_reads() {
        let p = DiskProfile::sosp97();
        let block = ByteSize::from_bytes(250_000);
        let d2 = p.worst_case_read(block, 2, true);
        let d8 = p.worst_case_read(block, 8, true);
        assert!(d8 < d2);
    }
}
