//! The dynamic disk model: a FIFO-serviced drive with head position,
//! utilization accounting, failure state, and service-time blips.
//!
//! The simulation driver calls [`Disk::submit`] when a cub issues a read;
//! the model serializes requests internally and returns the absolute
//! completion time, at which the driver schedules a completion event. Two
//! load metrics are kept:
//!
//! * *head utilization* — the fraction of time the media is transferring or
//!   positioning (what a drive vendor would call duty cycle), and
//! * *disk load* — the paper's §5 definition, "the percentage of time during
//!   which the disk was waiting for an I/O completion", i.e. the fraction of
//!   time at least one request is outstanding (queueing included).

use tiger_faults::{DiskFaults, DiskVerdict};
use tiger_sim::rng::sample_bounded_pareto;
use tiger_sim::{BusyTracker, ByteSize, Counter, SimDuration, SimRng, SimTime};

use crate::profile::DiskProfile;

/// Why a read was issued; affects nothing in the model but is kept for
/// per-class accounting (primary vs failed-mode mirror traffic).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// A primary block read.
    Primary,
    /// A declustered mirror-piece read issued while covering a failed peer.
    Mirror,
}

/// One read request.
#[derive(Clone, Copy, Debug)]
pub struct DiskRequest {
    /// Byte offset of the extent on the disk.
    pub offset: u64,
    /// Length of the extent.
    pub len: ByteSize,
    /// Accounting class.
    pub kind: RequestKind,
}

/// Errors from submitting disk requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskError {
    /// The disk has failed; it accepts no requests.
    Failed,
    /// The request extends past the end of the disk.
    OutOfRange,
    /// Fault injection failed this read; the disk stays alive and later
    /// requests may succeed.
    Transient,
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Failed => write!(f, "disk has failed"),
            DiskError::OutOfRange => write!(f, "request extends past end of disk"),
            DiskError::Transient => write!(f, "transient read error (injected)"),
        }
    }
}

impl std::error::Error for DiskError {}

/// A simulated disk drive.
#[derive(Debug)]
pub struct Disk {
    profile: DiskProfile,
    rng: SimRng,
    failed: bool,
    /// Completion time of the most recently accepted request (the queue is
    /// FIFO, so this is when the head becomes free).
    head_free_at: SimTime,
    /// Head position after the queue drains, as a byte offset.
    head_offset: u64,
    outstanding: u32,
    /// The paper's "disk load": time with >= 1 outstanding request.
    load: BusyTracker,
    /// Media/positioning busy time.
    head_busy: SimDuration,
    reads: Counter,
    bytes: Counter,
    mirror_reads: Counter,
    blips: Counter,
    /// Fault injector; disabled (one pointer test per submit) by default.
    faults: DiskFaults,
    transient_errors: Counter,
}

impl Disk {
    /// Creates an idle disk with the given profile and RNG stream.
    pub fn new(profile: DiskProfile, rng: SimRng) -> Self {
        Disk {
            profile,
            rng,
            failed: false,
            head_free_at: SimTime::ZERO,
            head_offset: 0,
            outstanding: 0,
            load: BusyTracker::new(),
            head_busy: SimDuration::ZERO,
            reads: Counter::new(),
            bytes: Counter::new(),
            mirror_reads: Counter::new(),
            blips: Counter::new(),
            faults: DiskFaults::disabled(),
            transient_errors: Counter::new(),
        }
    }

    /// Installs a compiled fault injector (replacing the disabled
    /// default). The injector draws from its own RNG stream, so the
    /// disk's service-time sequence is untouched by fault decisions.
    pub fn set_faults(&mut self, faults: DiskFaults) {
        self.faults = faults;
    }

    /// The drive's static profile.
    pub fn profile(&self) -> &DiskProfile {
        &self.profile
    }

    /// Marks the disk failed. Outstanding requests are considered lost; the
    /// caller is responsible for not delivering their completions.
    pub fn fail(&mut self, now: SimTime) {
        if !self.failed {
            self.failed = true;
            // Close the load interval if one is open.
            if self.outstanding > 0 {
                self.load.end(now);
                self.outstanding = 0;
            }
        }
    }

    /// Whether the disk has failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Revives a failed disk (the machine rejoined with its media intact).
    /// The platters kept their bytes; only the serving state restarts.
    /// `fail` already zeroed `outstanding`, and `submit` clamps the head
    /// start time with `max(now)`, so the stale `head_free_at` is harmless.
    pub fn revive(&mut self, _now: SimTime) {
        self.failed = false;
    }

    /// Submits a read at `now`; returns the absolute completion time.
    ///
    /// The model is FIFO: service begins when the head frees up. Service
    /// time is seek (from the previous request's end position) + rotational
    /// latency + command overhead + zoned transfer, times a rare heavy-tail
    /// blip multiplier.
    pub fn submit(&mut self, now: SimTime, req: DiskRequest) -> Result<SimTime, DiskError> {
        if self.failed {
            return Err(DiskError::Failed);
        }
        let cap = self.profile.capacity.as_bytes();
        if req.offset + req.len.as_bytes() > cap {
            return Err(DiskError::OutOfRange);
        }
        // Fault injection sees the request before it occupies the head: a
        // transient error is an immediate host-side failure, not a
        // media-time consumer; a degraded window stretches service.
        let mut degrade = 1.0;
        if self.faults.active() {
            match self.faults.verdict(now) {
                DiskVerdict::Transient => {
                    self.transient_errors.incr();
                    return Err(DiskError::Transient);
                }
                DiskVerdict::Degraded(factor) => degrade = factor,
                DiskVerdict::Clean => {}
            }
        }

        if self.outstanding == 0 {
            self.load.begin(now);
        }
        self.outstanding += 1;

        let start = self.head_free_at.max(now);
        let seek_frac =
            (req.offset as i64 - self.head_offset as i64).unsigned_abs() as f64 / cap as f64;
        let offset_frac = req.offset as f64 / cap as f64;
        let mut service = self.profile.read_time(seek_frac, offset_frac, req.len);
        if self.profile.blip_probability > 0.0 && self.rng.gen_f64() < self.profile.blip_probability
        {
            let mult = sample_bounded_pareto(
                &mut self.rng,
                self.profile.blip_alpha,
                self.profile.blip_cap,
            );
            service = SimDuration::from_nanos((service.as_nanos() as f64 * mult) as u64);
            self.blips.incr();
        }
        if degrade > 1.0 {
            service = SimDuration::from_nanos((service.as_nanos() as f64 * degrade) as u64);
        }

        let done = start + service;
        self.head_free_at = done;
        self.head_offset = req.offset + req.len.as_bytes();
        self.head_busy += service;
        self.reads.incr();
        self.bytes.add(req.len.as_bytes());
        if req.kind == RequestKind::Mirror {
            self.mirror_reads.incr();
        }
        Ok(done)
    }

    /// Notifies the model that a completion event fired at `now`. Must be
    /// called exactly once per successful [`Disk::submit`], in completion
    /// order.
    pub fn complete(&mut self, now: SimTime) {
        if self.failed {
            return; // Losses after failure are accounted elsewhere.
        }
        debug_assert!(
            self.outstanding > 0,
            "completion without outstanding request"
        );
        self.outstanding -= 1;
        if self.outstanding == 0 {
            self.load.end(now);
        }
    }

    /// Outstanding (queued or in-service) request count.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// The paper's disk load over the current measurement window.
    pub fn load_window(&self, now: SimTime) -> f64 {
        self.load.window_utilization(now)
    }

    /// Starts a fresh measurement window (the 50 s settle periods of §5).
    pub fn reset_window(&mut self, now: SimTime) {
        self.load.reset_window(now);
        self.reads.reset_window(now);
        self.bytes.reset_window(now);
    }

    /// Head (media) utilization since creation.
    pub fn head_utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.head_busy.as_secs_f64() / now.as_secs_f64()).min(1.0)
    }

    /// Bytes read per second over the current window.
    pub fn window_bytes_per_sec(&self, now: SimTime) -> f64 {
        self.bytes.window_rate(now)
    }

    /// Reads per second over the current window.
    pub fn window_reads_per_sec(&self, now: SimTime) -> f64 {
        self.reads.window_rate(now)
    }

    /// Lifetime read count.
    pub fn total_reads(&self) -> u64 {
        self.reads.total()
    }

    /// Lifetime mirror-read count.
    pub fn total_mirror_reads(&self) -> u64 {
        self.mirror_reads.total()
    }

    /// Lifetime bytes read.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.total()
    }

    /// Lifetime count of blipped (heavy-tail slowed) requests.
    pub fn total_blips(&self) -> u64 {
        self.blips.total()
    }

    /// Lifetime count of injected transient read errors.
    pub fn total_transient_errors(&self) -> u64 {
        self.transient_errors.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_sim::RngTree;

    fn disk() -> Disk {
        Disk::new(
            DiskProfile::sosp97().without_blips(),
            RngTree::new(1).fork("disk", 0),
        )
    }

    fn req(offset: u64, len: u64) -> DiskRequest {
        DiskRequest {
            offset,
            len: ByteSize::from_bytes(len),
            kind: RequestKind::Primary,
        }
    }

    #[test]
    fn fifo_serialization() {
        let mut d = disk();
        let t0 = SimTime::ZERO;
        // The first request seeks in from offset 0; the second is
        // sequential after it.
        let c1 = d.submit(t0, req(1_000_000_000, 250_000)).expect("accepts");
        let c2 = d.submit(t0, req(1_000_250_000, 250_000)).expect("accepts");
        assert!(c2 > c1, "second request completes after first");
        // Back-to-back sequential read: no seek, so the delta is rotation +
        // overhead + transfer only, which is strictly less than c1's total.
        assert!(c2 - c1 < c1 - t0);
    }

    #[test]
    fn outer_reads_are_faster_than_inner() {
        let mut fast = disk();
        let mut slow = disk();
        let cap = fast.profile().capacity.as_bytes();
        let t_outer = fast
            .submit(SimTime::ZERO, req(0, 250_000))
            .expect("accepts");
        // Position the slow disk's head at the inner edge first so the seek
        // distance matches (zero from head position).
        slow.head_offset = cap - 300_000;
        let t_inner = slow
            .submit(SimTime::ZERO, req(cap - 250_000, 250_000))
            .expect("accepts");
        assert!(t_inner > t_outer);
    }

    #[test]
    fn load_includes_queueing_head_does_not() {
        let mut d = disk();
        let t0 = SimTime::ZERO;
        let c1 = d.submit(t0, req(0, 250_000)).expect("accepts");
        let c2 = d.submit(t0, req(1_000_000_000, 250_000)).expect("accepts");
        d.complete(c1);
        d.complete(c2);
        // Disk load (paper definition) covered the whole [t0, c2] span.
        assert!((d.load_window(c2) - 1.0).abs() < 1e-9);
        // Head utilization equals busy time over elapsed, also ~1 here
        // because requests were continuous.
        assert!(d.head_utilization(c2) > 0.99);
        // After completions, an idle gap lowers the load.
        let later = c2 + SimDuration::from_secs(1);
        assert!(d.load_window(later) < 1.0);
    }

    #[test]
    fn failed_disk_rejects() {
        let mut d = disk();
        d.fail(SimTime::ZERO);
        assert_eq!(d.submit(SimTime::ZERO, req(0, 64)), Err(DiskError::Failed));
        assert!(d.is_failed());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = disk();
        let cap = d.profile().capacity.as_bytes();
        assert_eq!(
            d.submit(SimTime::ZERO, req(cap - 63, 64)),
            Err(DiskError::OutOfRange)
        );
    }

    #[test]
    fn counters_track_reads() {
        let mut d = disk();
        let c1 = d.submit(SimTime::ZERO, req(0, 100_000)).expect("accepts");
        d.complete(c1);
        let c2 = d
            .submit(
                c1,
                DiskRequest {
                    offset: 2_000_000_000,
                    len: ByteSize::from_bytes(62_500),
                    kind: RequestKind::Mirror,
                },
            )
            .expect("accepts");
        d.complete(c2);
        assert_eq!(d.total_reads(), 2);
        assert_eq!(d.total_mirror_reads(), 1);
        assert_eq!(d.total_bytes(), 162_500);
    }

    #[test]
    fn blips_occur_at_configured_rate() {
        let mut profile = DiskProfile::sosp97();
        profile.blip_probability = 0.2;
        let mut d = Disk::new(profile, RngTree::new(7).fork("disk", 0));
        let mut now = SimTime::ZERO;
        for i in 0..1000 {
            let c = d
                .submit(now, req((i % 1000) * 250_000, 250_000))
                .expect("accepts");
            d.complete(c);
            now = c;
        }
        let frac = d.total_blips() as f64 / 1000.0;
        assert!((0.1..0.3).contains(&frac), "blip fraction {frac}");
    }

    #[test]
    fn injected_transient_errors_fail_reads_without_occupying_the_head() {
        use tiger_faults::FaultPlan;
        let plan = FaultPlan::new().disk_transient(
            0,
            0,
            1.0,
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        let mut d = disk();
        d.set_faults(DiskFaults::compile(
            &plan,
            0,
            0,
            RngTree::new(1).subtree("faults", 0).fork("disk", 0),
        ));
        // Before the window: clean.
        let c = d.submit(SimTime::ZERO, req(0, 250_000)).expect("clean");
        d.complete(c);
        // Inside: every read fails, the disk stays alive, nothing queues.
        assert_eq!(
            d.submit(SimTime::from_secs(1), req(0, 250_000)),
            Err(DiskError::Transient)
        );
        assert!(!d.is_failed());
        assert_eq!(d.outstanding(), 0);
        // After: clean again, and only the error counter remembers.
        d.submit(SimTime::from_secs(2), req(0, 250_000))
            .expect("recovered");
        assert_eq!(d.total_transient_errors(), 1);
        assert_eq!(d.total_reads(), 2);
    }

    #[test]
    fn degraded_window_stretches_service_by_its_factor() {
        use tiger_faults::FaultPlan;
        let factor = 3.0;
        let plan = FaultPlan::new().disk_degraded(
            0,
            0,
            factor,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        let service_of = |at: SimTime, faulted: bool| {
            let mut d = disk();
            if faulted {
                d.set_faults(DiskFaults::compile(
                    &plan,
                    0,
                    0,
                    RngTree::new(1).subtree("faults", 0).fork("disk", 0),
                ));
            }
            d.submit(at, req(1_000_000_000, 250_000)).expect("accepts") - at
        };
        let t = SimTime::from_secs(15);
        let clean = service_of(t, false);
        let slowed = service_of(t, true);
        let ratio = slowed.as_nanos() as f64 / clean.as_nanos() as f64;
        assert!(
            (ratio - factor).abs() < 1e-6,
            "service stretched by {ratio}, want {factor}"
        );
        // Outside the window the faulted disk matches the clean one.
        assert_eq!(service_of(SimTime::from_secs(5), true), clean);
    }

    #[test]
    fn sustained_throughput_matches_capacity_math() {
        // Feed the disk the §5 failed-mode mix (one primary + one mirror
        // piece per slot) with randomly placed extents and verify the
        // achieved service rate supports ~10.75 slots/s.
        let mut d = disk();
        let mut rng = RngTree::new(3).fork("places", 0);
        let cap = d.profile().capacity.as_bytes();
        let half = cap / 2;
        let mut now = SimTime::ZERO;
        let slots = 500u64;
        for _ in 0..slots {
            let p_off = rng.gen_range(0..half - 250_000);
            let s_off = rng.gen_range(half..cap - 62_500);
            let c1 = d.submit(now, req(p_off, 250_000)).expect("accepts");
            let c2 = d
                .submit(
                    now,
                    DiskRequest {
                        offset: s_off,
                        len: ByteSize::from_bytes(62_500),
                        kind: RequestKind::Mirror,
                    },
                )
                .expect("accepts");
            d.complete(c1);
            d.complete(c2);
            now = c2;
        }
        let achieved = slots as f64 / now.as_secs_f64();
        // Average-case throughput must meet (and will exceed) the
        // worst-case design point of ~10.75 slots/s.
        assert!(achieved > 10.75, "achieved {achieved} slots/s");
        assert!(achieved < 16.0, "model unrealistically fast: {achieved}");
    }
}
