//! Multi-zone disk drive model for the Tiger reproduction.
//!
//! The paper's testbed used IBM Ultrastar 2.25/4.5 GB SCSI drives whose
//! worst-case behaviour supports "about 10.75 primary streams each" while
//! covering for a failed peer (§5). This crate models such a drive:
//!
//! * **Zoned recording** (§2.3, [Ruemmler94; Van Meter97]): outer tracks
//!   transfer faster than inner ones. Primaries live on the fast outer
//!   half, declustered secondaries on the slow inner half.
//! * **Seek + rotation**: a distance-dependent seek curve plus average
//!   rotational latency and a fixed controller overhead.
//! * **Service-time blips**: rare heavy-tailed slowdowns that reproduce the
//!   paper's sporadic missed deadlines (15 blocks in 4.1 million sends).
//! * **Queueing**: requests are serviced FIFO; the model separately tracks
//!   *head utilization* (media busy) and the paper's notion of *disk load*
//!   ("the percentage of time during which the disk was waiting for an I/O
//!   completion", which includes queueing).

pub mod model;
pub mod profile;

pub use model::{Disk, DiskError, DiskRequest, RequestKind};
pub use profile::DiskProfile;
