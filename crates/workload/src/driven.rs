//! Drives a [`TigerSystem`] from a compiled [`WorkloadPlan`] — the bridge
//! between `tiger-workgen`'s declarative demand and the system's workload
//! API.
//!
//! [`drive_plan`] schedules every arrival, title choice, and session
//! operation the plan generates; [`run_workgen`] wraps it into a full
//! experiment (catalog, trace, embedded fault plan, invariant collection)
//! and reduces the run to the §5-style figures of merit: **blocking
//! probability** (viewers admitted but never served their first block —
//! the quantity the coded-storage comparison in PAPERS.md optimizes),
//! **ownership conflicts** (`vs-conflict` events: two cubs believing they
//! own one slot), and **deschedule churn** (`desched-apply` events: the
//! §4.1.2 kill-forwarding machinery at work).
//!
//! Everything is a deterministic function of `(TigerConfig, plan)`: the
//! generators draw only from the `"workgen"` RNG subtree, and the driver
//! walks arrivals in a single sequential pass, so runs are bit-identical
//! at any fleet thread count.

use tiger_core::{TigerConfig, TigerSystem};
use tiger_layout::ids::ViewerInstance;
use tiger_layout::FileId;
use tiger_sim::{RngTree, SimDuration, SimTime};
use tiger_trace::TraceEvent;
use tiger_workgen::{SessionOp, WorkloadPlan};

use crate::catalog::{populate_catalog, CatalogSpec};

/// Configuration of one plan-driven run.
#[derive(Clone, Debug)]
pub struct WorkgenConfig {
    /// System configuration.
    pub tiger: TigerConfig,
    /// The workload plan (its embedded fault plan is applied too).
    pub plan: WorkloadPlan,
    /// Content catalog; must hold at least [`WorkloadPlan::titles`] files
    /// (title rank `i` plays catalog file `i`).
    pub catalog: CatalogSpec,
    /// How long to run (normally past the plan's horizon so admitted
    /// streams play out).
    pub run_to: SimTime,
    /// Trace-ring capacity (the conflict/churn counters read the trace,
    /// so it is always enabled).
    pub trace_cap: usize,
    /// Bucket width of the blocking-probability curve.
    pub curve_bucket: SimDuration,
}

impl WorkgenConfig {
    /// A seconds-long run of `plan` on the small test system.
    pub fn quick(plan: WorkloadPlan) -> Self {
        let mut tiger = TigerConfig::small_test();
        tiger.disk = tiger.disk.without_blips();
        let titles = plan.titles();
        let run_to = SimTime::ZERO + plan.horizon + SimDuration::from_secs(30);
        WorkgenConfig {
            tiger,
            plan,
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(200), titles),
            run_to,
            trace_cap: 65_536,
            curve_bucket: SimDuration::from_secs(10),
        }
    }
}

/// What [`drive_plan`] scheduled: the request-side ledger, before the
/// system has run.
#[derive(Clone, Debug, Default)]
pub struct DriveStats {
    /// Viewers admitted to the driver (arrival process × caps).
    pub arrivals: u32,
    /// Every initial play instance, with its arrival time and client.
    pub starts: Vec<(SimTime, u32, ViewerInstance)>,
    /// Pause operations scheduled.
    pub pauses: u32,
    /// Resume operations scheduled.
    pub resumes: u32,
    /// Seek operations scheduled.
    pub seeks: u32,
    /// Abandon (early stop) operations scheduled.
    pub abandons: u32,
}

/// Schedules everything `plan` generates against `sys`: arrivals become
/// start requests on round-robin clients, titles map to `files` by rank,
/// and each viewer's session script threads pause/resume/seek/stop
/// through the incarnation chain. Flash-crowd onsets drop
/// [`TraceEvent::WorkgenBurst`] markers into the trace ring.
///
/// `files` must hold at least [`WorkloadPlan::titles`] entries.
pub fn drive_plan(sys: &mut TigerSystem, plan: &WorkloadPlan, files: &[FileId]) -> DriveStats {
    assert!(
        files.len() >= plan.titles() as usize,
        "catalog has {} files but the plan draws over {} titles",
        files.len(),
        plan.titles()
    );
    let tree = RngTree::new(sys.shared().cfg.seed).subtree("workgen", 0);
    let mut w = plan.compile(&tree);
    let horizon = SimTime::ZERO + plan.horizon;

    for crowd in &plan.crowds {
        sys.trace_note_at(
            crowd.at,
            TraceEvent::WorkgenBurst {
                title: crowd.title,
                peak_x10: (crowd.peak * 10.0).round() as u32,
            },
        );
    }

    let mut stats = DriveStats::default();
    for ordinal in 0..u64::from(plan.max_viewers) {
        let at = w.arrivals.next_arrival();
        if at > horizon {
            break;
        }
        let title = w.popularity.sample(at, &mut w.chooser);
        let file = files[title as usize];
        let client = sys.add_client();
        let mut current = sys.request_start(at, client, file);
        stats.arrivals += 1;
        stats.starts.push((at, client, current));

        let file_blocks = sys
            .shared()
            .catalog
            .get(file)
            .expect("populated file")
            .num_blocks;
        for ev in w.sessions.script(ordinal, at, file_blocks, horizon) {
            match ev.op {
                SessionOp::Pause => {
                    sys.request_pause(ev.at, current);
                    stats.pauses += 1;
                }
                SessionOp::Resume => {
                    current = sys.request_resume(ev.at, current);
                    stats.resumes += 1;
                }
                SessionOp::Seek { to_block } => {
                    current = sys.request_seek(ev.at, current, to_block);
                    stats.seeks += 1;
                }
                SessionOp::Stop => {
                    sys.request_stop(ev.at, current);
                    stats.abandons += 1;
                }
            }
        }
    }
    stats
}

/// One bucket of the blocking-probability curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CurvePoint {
    /// Bucket start, seconds.
    pub t_secs: u64,
    /// Viewers arriving in the bucket.
    pub arrivals: u32,
    /// Of those, how many never received their first block.
    pub blocked: u32,
}

/// What one plan-driven run observed.
#[derive(Clone, Debug)]
pub struct WorkgenOutcome {
    /// What the driver scheduled.
    pub drive: DriveStats,
    /// Initial instances that never received a first block (admission
    /// blocking, §2.2's quantity of interest under skew).
    pub blocked: u32,
    /// `blocked / arrivals` (0 when nothing arrived).
    pub blocking_prob: f64,
    /// `vs-conflict` events in the trace (ownership conflicts).
    pub conflicts: u64,
    /// `desched-apply` events in the trace (deschedule churn).
    pub desched_churn: u64,
    /// `session-transition` events the system recorded (resumes + seeks
    /// that reached the schedule).
    pub session_transitions: u64,
    /// Blocks fully assembled by clients.
    pub blocks_received: u64,
    /// Delivery holes below each instance's high water.
    pub blocks_missing: u64,
    /// Blocks delivered more than once (must stay 0 without faults).
    pub dup_blocks: u64,
    /// Blocking-probability curve over arrival time.
    pub curve: Vec<CurvePoint>,
    /// Omniscient-checker and assert violations (empty = clean).
    pub violations: Vec<String>,
}

/// One line summarizing the deterministic payload of an outcome — what
/// the workload sweep prints and the thread-count bit-identity test
/// compares.
pub fn workgen_digest(o: &WorkgenOutcome) -> String {
    format!(
        "arrivals {}  blocked {}  p_block {:.4}  pauses {}  resumes {}  seeks {}  \
         abandons {}  conflicts {}  desched {}  transitions {}  received {}  \
         missing {}  dup {}  violations {}",
        o.drive.arrivals,
        o.blocked,
        o.blocking_prob,
        o.drive.pauses,
        o.drive.resumes,
        o.drive.seeks,
        o.drive.abandons,
        o.conflicts,
        o.desched_churn,
        o.session_transitions,
        o.blocks_received,
        o.blocks_missing,
        o.dup_blocks,
        o.violations.len(),
    )
}

/// Runs one plan-driven experiment: populate the catalog, schedule the
/// plan's demand, apply its embedded fault plan, run to the horizon, and
/// reduce to blocking/conflict/churn figures.
pub fn run_workgen(cfg: &WorkgenConfig) -> WorkgenOutcome {
    let mut sys = TigerSystem::new(cfg.tiger.clone());
    sys.enable_trace(cfg.trace_cap);
    sys.enable_omniscient();
    let files = populate_catalog(&mut sys, &cfg.catalog);
    let drive = drive_plan(&mut sys, &cfg.plan, &files);
    sys.apply_fault_plan(&cfg.plan.faults);
    sys.run_until(cfg.run_to);

    // Blocking: an initial instance whose first block never arrived. The
    // per-start ledger keeps this O(starts) and deterministic (client
    // viewer maps are unordered; the ledger is not).
    let mut blocked = 0u32;
    let bucket_s = cfg.curve_bucket.as_secs_f64().max(1.0) as u64;
    let mut curve: Vec<CurvePoint> = Vec::new();
    for &(at, client, inst) in &drive.starts {
        let served = sys.clients()[client as usize]
            .viewer(&inst)
            .is_some_and(|v| v.first_block_at.is_some());
        let t_secs = (at.as_secs_f64() as u64) / bucket_s * bucket_s;
        if curve.last().map(|p| p.t_secs) != Some(t_secs) {
            curve.push(CurvePoint {
                t_secs,
                arrivals: 0,
                blocked: 0,
            });
        }
        let p = curve.last_mut().expect("just pushed");
        p.arrivals += 1;
        if !served {
            blocked += 1;
            p.blocked += 1;
        }
    }

    let mut conflicts = 0u64;
    let mut desched_churn = 0u64;
    let mut session_transitions = 0u64;
    for rec in sys.tracer().records() {
        match rec.ev {
            TraceEvent::VsConflict { .. } => conflicts += 1,
            TraceEvent::DeschedApply { .. } => desched_churn += 1,
            TraceEvent::SessionTransition { .. } => session_transitions += 1,
            _ => {}
        }
    }

    let report = sys.all_clients_report();
    WorkgenOutcome {
        blocked,
        blocking_prob: if drive.arrivals > 0 {
            f64::from(blocked) / f64::from(drive.arrivals)
        } else {
            0.0
        },
        conflicts,
        desched_churn,
        session_transitions,
        blocks_received: report.blocks_received,
        blocks_missing: report.blocks_missing,
        dup_blocks: report.dup_blocks,
        curve,
        violations: sys.take_violations(),
        drive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_sim::SimDuration;

    fn quick(plan_text: &str) -> WorkgenConfig {
        WorkgenConfig::quick(WorkloadPlan::parse(plan_text).expect("plan parses"))
    }

    #[test]
    fn uniform_plan_under_capacity_serves_everyone() {
        let cfg = quick("uniform titles=4\narrivals rate=0.2/s\nviewers max=10\nhorizon t=50s");
        let out = run_workgen(&cfg);
        assert!(out.drive.arrivals > 0, "nothing arrived");
        assert_eq!(out.blocked, 0, "under-capacity load blocked viewers");
        assert_eq!(out.dup_blocks, 0);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.blocks_received > 0);
    }

    #[test]
    fn interactive_sessions_reach_the_schedule() {
        let cfg = quick(
            "uniform titles=4\narrivals rate=0.3/s\n\
             session interactive=1.0 pause=6/min dwell=4s seek=4/min abandon=1/min\n\
             viewers max=12\nhorizon t=60s",
        );
        let out = run_workgen(&cfg);
        let ops = out.drive.pauses + out.drive.resumes + out.drive.seeks + out.drive.abandons;
        assert!(ops > 0, "fully interactive plan generated no ops");
        assert!(
            out.session_transitions > 0,
            "no resume/seek reached the system: {:?}",
            out.drive
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn oversubscribed_flash_crowd_blocks_and_stays_coherent() {
        // A flash crowd that far exceeds the small system's capacity:
        // blocking must appear (that's the measured quantity, not a bug)
        // while every coherence property still holds.
        let cfg = quick(
            "zipf s=1.1 titles=4\nflashcrowd title=t0 at=20s peak=30x decay=10s\n\
             arrivals rate=0.3/s\nviewers max=120\nhorizon t=60s",
        );
        let out = run_workgen(&cfg);
        assert!(out.blocked > 0, "30× surge on the small system must block");
        assert!(out.blocking_prob > 0.0 && out.blocking_prob <= 1.0);
        assert_eq!(out.dup_blocks, 0);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        // The onset marker must be in the curve's time range.
        assert!(!out.curve.is_empty());
        let total: u32 = out.curve.iter().map(|p| p.arrivals).sum();
        assert_eq!(total, out.drive.arrivals, "curve buckets lose arrivals");
    }

    #[test]
    fn runs_are_bit_identical_across_reruns() {
        let cfg = quick(
            "zipf s=1.0 titles=4\narrivals rate=0.4/s\n\
             session interactive=0.5 pause=4/min dwell=5s seek=3/min abandon=1/min\n\
             viewers max=20\nhorizon t=60s",
        );
        let a = run_workgen(&cfg);
        let b = run_workgen(&cfg);
        assert_eq!(workgen_digest(&a), workgen_digest(&b));
        assert_eq!(a.curve, b.curve);
    }

    #[test]
    fn horizon_caps_arrivals() {
        let mut cfg = quick("uniform titles=2\narrivals rate=50/s\nviewers max=500\nhorizon t=5s");
        cfg.run_to = SimTime::from_secs(20);
        let out = run_workgen(&cfg);
        assert_eq!(out.drive.arrivals, 500.min(out.drive.arrivals));
        for &(at, _, _) in &out.drive.starts {
            assert!(at <= SimTime::from_secs(5) + SimDuration::from_secs(1));
        }
    }
}
