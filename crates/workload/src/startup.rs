//! The Figure 10 experiment: stream startup latency vs schedule load.
//!
//! "Figure 10 shows the distribution of stream start times versus the
//! schedule load. … Each start is represented by a gray dot … The heavy
//! black line represents the mean of the starts at that particular
//! schedule load."

use tiger_core::{TigerConfig, TigerSystem};
use tiger_layout::CubId;
use tiger_sim::{RngTree, SimDuration, SimTime};

use crate::catalog::{populate_catalog, CatalogSpec};

/// Configuration of the startup-latency experiment.
#[derive(Clone, Debug)]
pub struct StartupConfig {
    /// System configuration.
    pub tiger: TigerConfig,
    /// Content catalog.
    pub catalog: CatalogSpec,
    /// Schedule loads (fractions of capacity) at which to probe.
    pub loads: Vec<f64>,
    /// Probe starts issued at each load level.
    pub probes_per_load: u32,
    /// Optional failed cub (the paper combines failed and unfailed runs).
    pub failed_cub: Option<CubId>,
}

impl StartupConfig {
    /// Default probe ladder: 50 % to full load.
    pub fn fig10(tiger: TigerConfig) -> Self {
        StartupConfig {
            tiger,
            catalog: CatalogSpec::sosp97(),
            loads: vec![0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.98, 1.0],
            probes_per_load: 30,
            failed_cub: None,
        }
    }
}

/// Result of the startup experiment: `(schedule load, latency seconds)`
/// per start, like the paper's scatter.
#[derive(Clone, Debug)]
pub struct StartupResult {
    /// All start samples.
    pub samples: Vec<(f64, f64)>,
}

impl StartupResult {
    /// The mean latency at loads within `[lo, hi)`.
    pub fn mean_in(&self, lo: f64, hi: f64) -> Option<f64> {
        let v: Vec<f64> = self
            .samples
            .iter()
            .filter(|(l, _)| *l >= lo && *l < hi)
            .map(|&(_, s)| s)
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// The smallest latency observed.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min)
    }

    /// The largest latency observed.
    pub fn max(&self) -> f64 {
        self.samples.iter().map(|&(_, s)| s).fold(0.0, f64::max)
    }

    /// Samples exceeding `secs`.
    pub fn count_above(&self, secs: f64) -> usize {
        self.samples.iter().filter(|(_, s)| *s > secs).count()
    }
}

/// Runs the startup-latency experiment: fills the schedule stepwise and
/// issues probe starts at each load level, recording their latencies.
pub fn run_startup(cfg: &StartupConfig) -> StartupResult {
    let mut sys = TigerSystem::new(cfg.tiger.clone());
    let files = populate_catalog(&mut sys, &cfg.catalog);
    let mut chooser = RngTree::new(cfg.tiger.seed).fork("startup-files", 0);

    if let Some(failed) = cfg.failed_cub {
        sys.fail_cub_at(SimTime::from_millis(10), failed);
        sys.run_until(SimTime::from_millis(10) + cfg.tiger.deadman_timeout.mul_u64(2));
    }

    let capacity = sys.shared().params.capacity();
    let mut filled = 0u32;
    for &load in &cfg.loads {
        let want = ((capacity as f64) * load).round() as u32;
        let want = want.min(capacity);
        // Fill up to the target load (these fills also record latencies).
        let mut now = sys.now();
        while filled < want {
            let client = sys.add_client();
            let file = files[chooser.gen_range(0..files.len())];
            now += SimDuration::from_millis(120);
            sys.request_start(now, client, file);
            filled += 1;
        }
        // Let fills land, then issue measured probes spread over time.
        sys.run_until(now + SimDuration::from_secs(10));
        let mut t = sys.now();
        for _ in 0..cfg.probes_per_load {
            // Start a probe, then stop it shortly after it begins playing
            // so the load level stays put.
            let client = sys.add_client();
            let file = files[chooser.gen_range(0..files.len())];
            t += SimDuration::from_millis(1_500);
            let instance = sys.request_start(t, client, file);
            sys.request_stop(t + SimDuration::from_secs(70), instance);
        }
        sys.run_until(t + SimDuration::from_secs(80));
    }

    StartupResult {
        samples: sys.metrics().start_latencies.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_toward_full_load() {
        let mut tiger = TigerConfig::small_test();
        tiger.disk = tiger.disk.without_blips();
        let cfg = StartupConfig {
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(500), 4),
            loads: vec![0.3, 0.95],
            probes_per_load: 10,
            failed_cub: None,
            tiger,
        };
        let result = run_startup(&cfg);
        let low = result.mean_in(0.0, 0.5).expect("low-load samples");
        let high = result.mean_in(0.85, 1.01).expect("high-load samples");
        assert!(
            high > low,
            "startup latency must grow with load: low {low:.2}s high {high:.2}s"
        );
        // Minimum ≈ transmission time (1 s) + lead; never below 1 s.
        assert!(result.min() >= 1.0, "min {:.2}", result.min());
    }
}
