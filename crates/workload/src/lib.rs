//! Workload generators and experiment drivers reproducing the paper's §5
//! evaluation.
//!
//! Each experiment in the paper maps to one driver here; the bench crate's
//! binaries are thin wrappers that run a driver and print the table/series
//! the paper reports. Drivers are deterministic functions of their
//! configuration structs.

pub mod catalog;
pub mod chaos;
pub mod driven;
pub mod ramp;
pub mod reconfig;
pub mod report;
pub mod startup;
pub mod vcr;

pub use catalog::{populate_catalog, CatalogSpec};
pub use chaos::{chaos_digest, run_chaos, ChaosConfig, ChaosOutcome};
pub use driven::{
    drive_plan, run_workgen, workgen_digest, CurvePoint, DriveStats, WorkgenConfig, WorkgenOutcome,
};
pub use ramp::{run_ramp, RampConfig, RampResult};
pub use reconfig::{run_reconfig, run_reconfig_with_plan, ReconfigConfig, ReconfigResult};
pub use report::{format_ramp_table, format_startup_table};
pub use startup::{run_startup, StartupConfig, StartupResult};
pub use vcr::{run_vcr, VcrConfig, VcrResult};
