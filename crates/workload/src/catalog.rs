//! Content catalogs for the experiments.
//!
//! §5: "We loaded the system with 64 different files, each 1 hour in
//! length. These files were filled with a test pattern … the test files
//! completely filled the available 2 Mbit/s bandwidth."

use tiger_core::TigerSystem;
use tiger_layout::FileId;
use tiger_sim::{Bandwidth, SimDuration};

/// Description of a synthetic content catalog.
#[derive(Clone, Copy, Debug)]
pub struct CatalogSpec {
    /// Number of files.
    pub files: u32,
    /// Duration of each file.
    pub duration: SimDuration,
    /// Bitrate of each file (full-rate test pattern by default).
    pub bitrate: Bandwidth,
}

impl CatalogSpec {
    /// The §5 catalog: 64 × 1 hour at 2 Mbit/s.
    pub fn sosp97() -> Self {
        CatalogSpec {
            files: 64,
            duration: SimDuration::from_secs(3600),
            bitrate: Bandwidth::from_mbit_per_sec(2),
        }
    }

    /// A smaller catalog for fast experiments: enough play time to cover
    /// `experiment` plus margin so viewers never hit end-of-file.
    pub fn sized_for(experiment: SimDuration, files: u32) -> Self {
        CatalogSpec {
            files,
            duration: experiment + SimDuration::from_secs(120),
            bitrate: Bandwidth::from_mbit_per_sec(2),
        }
    }
}

/// Loads the catalog into a system; returns the file ids.
pub fn populate_catalog(sys: &mut TigerSystem, spec: &CatalogSpec) -> Vec<FileId> {
    (0..spec.files)
        .map(|_| sys.add_file(spec.bitrate, spec.duration))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_core::TigerConfig;

    #[test]
    fn populates_files() {
        let mut sys = TigerSystem::new(TigerConfig::small_test());
        let spec = CatalogSpec::sized_for(SimDuration::from_secs(10), 4);
        let files = populate_catalog(&mut sys, &spec);
        assert_eq!(files.len(), 4);
        assert_eq!(sys.shared().catalog.len(), 4);
    }
}
