//! Text-table formatting for experiment output, matching the series the
//! paper's figures plot.

use tiger_core::WindowSample;

use crate::startup::StartupResult;

/// Formats ramp windows as the Figure 8/9 table: streams on the x-axis,
/// loads on the left axis, control traffic on the right axis.
pub fn format_ramp_table(title: &str, windows: &[WindowSample]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str("streams  cub_cpu%  ctrl_cpu%  disk_load%  nic_util%  ctrl_traffic_B/s\n");
    for w in windows {
        out.push_str(&format!(
            "{:>7}  {:>8.1}  {:>9.2}  {:>10.1}  {:>9.1}  {:>16.0}\n",
            w.streams,
            w.cub_cpu * 100.0,
            w.controller_cpu * 100.0,
            w.disk_load * 100.0,
            w.nic_utilization * 100.0,
            w.control_bytes_per_sec,
        ));
    }
    out
}

/// Formats startup samples as the Figure 10 series: per-load mean, min,
/// max, and the count of >20 s outliers.
pub fn format_startup_table(result: &StartupResult) -> String {
    let mut out = String::new();
    out.push_str("# Figure 10: stream startup latency vs schedule load\n");
    out.push_str("load_bin   n   mean_s    min_s    max_s   >20s\n");
    let bins = [
        (0.0, 0.55),
        (0.55, 0.65),
        (0.65, 0.75),
        (0.75, 0.825),
        (0.825, 0.875),
        (0.875, 0.925),
        (0.925, 0.965),
        (0.965, 0.99),
        (0.99, 1.01),
    ];
    for (lo, hi) in bins {
        let samples: Vec<f64> = result
            .samples
            .iter()
            .filter(|(l, _)| *l >= lo && *l < hi)
            .map(|&(_, s)| s)
            .collect();
        if samples.is_empty() {
            continue;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        let outliers = samples.iter().filter(|&&s| s > 20.0).count();
        out.push_str(&format!(
            "{lo:.2}-{hi:.2}  {n:>3}  {mean:>7.2}  {min:>7.2}  {max:>7.2}  {outliers:>5}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_sim::SimTime;

    #[test]
    fn ramp_table_has_one_row_per_window() {
        let windows = vec![
            WindowSample {
                at: SimTime::from_secs(50),
                streams: 30,
                cub_cpu: 0.1,
                controller_cpu: 0.01,
                disk_load: 0.12,
                control_bytes_per_sec: 900.0,
                nic_utilization: 0.03,
            },
            WindowSample {
                at: SimTime::from_secs(100),
                streams: 60,
                cub_cpu: 0.2,
                controller_cpu: 0.01,
                disk_load: 0.24,
                control_bytes_per_sec: 1800.0,
                nic_utilization: 0.06,
            },
        ];
        let table = format_ramp_table("Figure 8", &windows);
        assert_eq!(table.lines().count(), 4);
        assert!(table.contains("Figure 8"));
        assert!(table
            .lines()
            .nth(2)
            .expect("row")
            .trim_start()
            .starts_with("30"));
    }

    #[test]
    fn startup_table_bins_samples() {
        let r = StartupResult {
            samples: vec![(0.5, 1.8), (0.51, 2.0), (0.95, 25.0)],
        };
        let t = format_startup_table(&r);
        assert!(t.contains("0.00-0.55"));
        assert!(t.contains("1"), "outlier bin counted");
    }
}
