//! The §5 ramp experiment: Figures 8 (unfailed) and 9 (one cub failed).
//!
//! "In each of the experiments, we ramped the system up to its full
//! capacity of 602 streams … we increased the load on the server by adding
//! 30 streams at a time (except that we added 2 during the final step from
//! 600 to 602 streams), waiting for at least 50s and then recording
//! various system load factors."

use tiger_core::{LossReport, TigerConfig, TigerSystem, WindowSample};
use tiger_layout::CubId;
use tiger_sim::{RngTree, SimDuration, SimTime};

use crate::catalog::{populate_catalog, CatalogSpec};

/// Configuration of a ramp experiment.
#[derive(Clone, Debug)]
pub struct RampConfig {
    /// System configuration.
    pub tiger: TigerConfig,
    /// Content catalog.
    pub catalog: CatalogSpec,
    /// Streams added per step (30 in the paper).
    pub step: u32,
    /// Settle time per step (≥50 s in the paper).
    pub settle: SimDuration,
    /// Target stream count; capped at system capacity. `None` = capacity.
    pub target: Option<u32>,
    /// A cub to fail for the entire run (Figure 9), if any.
    pub failed_cub: Option<CubId>,
    /// Extra steady-state time at the final load (the failed test ran a
    /// further hour at 602 streams).
    pub hold_at_peak: SimDuration,
    /// Which cub's control traffic to report.
    pub report_cub: CubId,
    /// Which cub's disks to report (`None` = all living cubs' mean). The
    /// failed test reports a mirroring cub.
    pub disk_report_cub: Option<CubId>,
}

impl RampConfig {
    /// The Figure 8 configuration at a reduced (fast) scale: capacity
    /// target with short files, no failure.
    pub fn fig8(tiger: TigerConfig, settle: SimDuration) -> Self {
        RampConfig {
            tiger,
            catalog: CatalogSpec::sosp97(),
            step: 30,
            settle,
            target: None,
            failed_cub: None,
            hold_at_peak: SimDuration::ZERO,
            report_cub: CubId(0),
            disk_report_cub: None,
        }
    }

    /// The Figure 9 configuration: cub 5 failed for the whole run; disk
    /// load reported for mirroring cub 6.
    pub fn fig9(tiger: TigerConfig, settle: SimDuration) -> Self {
        RampConfig {
            failed_cub: Some(CubId(5)),
            disk_report_cub: Some(CubId(6)),
            report_cub: CubId(6),
            ..Self::fig8(tiger, settle)
        }
    }
}

/// Result of a ramp run.
#[derive(Clone, Debug)]
pub struct RampResult {
    /// One sample per ramp step (the Figure 8/9 series).
    pub windows: Vec<WindowSample>,
    /// Loss accounting over the whole run.
    pub loss: LossReport,
    /// Client-observed missing blocks.
    pub client_missing: u64,
    /// Client-observed received blocks.
    pub client_received: u64,
    /// Start latency samples `(schedule load, seconds)`.
    pub start_latencies: Vec<(f64, f64)>,
    /// Peak read-ahead buffer bytes used on any cub (the testbed had a
    /// 20 MB cache per cub).
    pub peak_buffers: u64,
    /// Buffer-cache hit rate across all cubs (§5 measured < 0.05%).
    pub cache_hit_rate: f64,
}

/// Runs a ramp experiment.
pub fn run_ramp(cfg: &RampConfig) -> RampResult {
    let mut sys = TigerSystem::new(cfg.tiger.clone());
    let files = populate_catalog(&mut sys, &cfg.catalog);
    let mut chooser = RngTree::new(cfg.tiger.seed).fork("ramp-files", 0);

    if let Some(failed) = cfg.failed_cub {
        // Failed for the entire duration: cut power before any viewer
        // arrives, let detection settle.
        sys.fail_cub_at(SimTime::from_millis(10), failed);
        sys.run_until(SimTime::from_millis(10) + cfg.tiger.deadman_timeout.mul_u64(2));
    }

    let capacity = sys.shared().params.capacity();
    let target = cfg.target.unwrap_or(capacity).min(capacity);
    let mut launched = 0u32;
    let mut now = sys.now();

    while launched < target {
        let batch = cfg.step.min(target - launched);
        // Spread the batch's requests over most of the settle window, like
        // real client machines arriving (tightly bunched same-file starts
        // would ride each other's buffer-cache residency, which the §5
        // setup explicitly avoided).
        let spacing = cfg.settle.mul_u64(3).div_u64(4 * u64::from(batch.max(1)));
        for i in 0..batch {
            let client = sys.add_client();
            let file = files[chooser.gen_range(0..files.len())];
            let at = now + SimDuration::from_millis(50) + spacing.mul_u64(u64::from(i));
            sys.request_start(at, client, file);
        }
        launched += batch;
        now += cfg.settle;
        sys.run_until(now);
        sys.sample_window(now, cfg.report_cub, cfg.disk_report_cub);
    }

    if !cfg.hold_at_peak.is_zero() {
        let end = now + cfg.hold_at_peak;
        // Sample in ~50 s sub-windows during the hold; viewers that reach
        // end-of-file are replaced ("The clients randomly selected a file,
        // played it from beginning to end and repeated", §5).
        let window = SimDuration::from_secs(50);
        while now < end {
            let next = (now + window).min(end);
            sys.run_until(next);
            let active = sys.controller().active_streams();
            for i in 0..target.saturating_sub(active) {
                let client = sys.add_client();
                let file = files[chooser.gen_range(0..files.len())];
                let at = next + SimDuration::from_millis(10 + u64::from(i) * 47);
                sys.request_start(at, client, file);
            }
            sys.sample_window(next, cfg.report_cub, cfg.disk_report_cub);
            now = next;
        }
    }

    let report = sys.all_clients_report();
    RampResult {
        windows: sys.metrics().windows.clone(),
        loss: sys.metrics().loss.clone(),
        client_missing: report.blocks_missing,
        client_received: report.blocks_received,
        start_latencies: sys.metrics().start_latencies.clone(),
        peak_buffers: sys
            .cubs()
            .iter()
            .map(|c| c.peak_buffer_bytes)
            .max()
            .unwrap_or(0),
        cache_hit_rate: {
            let hits: u64 = sys.cubs().iter().map(|c| c.cache_hits.total()).sum();
            let lookups: u64 = sys.cubs().iter().map(|c| c.cache_lookups.total()).sum();
            if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast, small ramp exercising the whole driver path.
    #[test]
    fn small_ramp_reaches_target_without_loss() {
        let mut tiger = TigerConfig::small_test();
        tiger.disk = tiger.disk.without_blips();
        let cfg = RampConfig {
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(120), 4),
            step: 8,
            settle: SimDuration::from_secs(15),
            target: Some(24),
            ..RampConfig::fig8(tiger, SimDuration::from_secs(15))
        };
        let result = run_ramp(&cfg);
        assert_eq!(result.windows.len(), 3);
        let last = result.windows.last().expect("has windows");
        assert_eq!(last.streams, 24);
        assert_eq!(result.loss.server_missed, 0);
        assert_eq!(result.client_missing, 0);
        // Load grows monotonically with streams.
        assert!(result.windows[0].cub_cpu < result.windows[2].cub_cpu);
        assert!(result.windows[0].disk_load < result.windows[2].disk_load);
    }

    #[test]
    fn failed_ramp_doubles_control_traffic() {
        let mut tiger = TigerConfig::small_test();
        tiger.disk = tiger.disk.without_blips();
        let base = RampConfig {
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(100), 4),
            step: 8,
            settle: SimDuration::from_secs(15),
            target: Some(16),
            ..RampConfig::fig8(tiger, SimDuration::from_secs(15))
        };
        let unfailed = run_ramp(&base);
        let failed_cfg = RampConfig {
            failed_cub: Some(CubId(2)),
            disk_report_cub: Some(CubId(3)),
            report_cub: CubId(3),
            ..base
        };
        let failed = run_ramp(&failed_cfg);
        let u = unfailed
            .windows
            .last()
            .expect("windows")
            .control_bytes_per_sec;
        let f = failed
            .windows
            .last()
            .expect("windows")
            .control_bytes_per_sec;
        // The mirroring cub forwards a mirror viewer state for each primary
        // one: roughly double the control traffic (§5).
        assert!(f > u * 1.3, "failed {f:.0} B/s vs unfailed {u:.0} B/s");
        assert!(f < u * 4.0, "failed traffic implausibly high: {f:.0} B/s");
        // Mirroring-cub disks work harder than the unfailed mean.
        let fd = failed.windows.last().expect("windows").disk_load;
        let ud = unfailed.windows.last().expect("windows").disk_load;
        assert!(fd > ud, "mirroring disk load {fd} <= unfailed {ud}");
    }
}
