//! A VCR-style interactive workload: viewers that pause, resume, and seek
//! while others play straight through.
//!
//! The paper's §4.1.2 machinery (instance numbers, idempotent deschedules)
//! exists to make exactly this kind of churn safe. Since the workgen
//! subsystem landed, this driver is a thin preset: it keeps its staggered
//! deterministic arrivals (one viewer every 900 ms — the startup shape
//! the original experiment used) but all interactive behavior comes from
//! `tiger-workgen`'s session machine, compiled from a [`WorkloadPlan`].
//! The old ad-hoc pause/resume/seek sampling is gone; see
//! EXPERIMENTS.md for how the regenerated figures differ.

use tiger_core::{TigerConfig, TigerSystem};
use tiger_sim::{RngTree, SimDuration, SimTime};
use tiger_workgen::{SessionOp, SessionSpec, WorkloadPlan};

use crate::catalog::{populate_catalog, CatalogSpec};

/// Configuration of the interactive workload.
#[derive(Clone, Debug)]
pub struct VcrConfig {
    /// System configuration.
    pub tiger: TigerConfig,
    /// Content catalog.
    pub catalog: CatalogSpec,
    /// Concurrent viewers.
    pub viewers: u32,
    /// Fraction of viewers that behave interactively (pause/resume/seek);
    /// the rest play straight through.
    pub interactive_fraction: f64,
    /// Total driven duration.
    pub duration: SimDuration,
}

impl VcrConfig {
    /// A medium interactive load on the given system.
    pub fn medium(tiger: TigerConfig) -> Self {
        VcrConfig {
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(400), 32),
            viewers: 120,
            interactive_fraction: 0.4,
            duration: SimDuration::from_secs(300),
            tiger,
        }
    }

    /// The [`WorkloadPlan`] this preset expands to: uniform popularity
    /// over the catalog and hazard rates that reproduce the original
    /// driver's cadence (a pause roughly every half minute of play, a
    /// ~10 s think time, seeks about as often as the old 50% coin).
    pub fn plan(&self) -> WorkloadPlan {
        WorkloadPlan::new()
            .uniform(self.catalog.files)
            .session(SessionSpec {
                interactive: self.interactive_fraction,
                pause_rate: 2.0 / 60.0,
                dwell_mean: SimDuration::from_secs(10),
                seek_rate: 1.0 / 60.0,
                abandon_rate: 0.0,
            })
            .viewers(self.viewers)
            .horizon(self.duration)
    }
}

/// Result of an interactive run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VcrResult {
    /// Pause operations issued.
    pub pauses: u32,
    /// Resume operations issued.
    pub resumes: u32,
    /// Seek operations issued.
    pub seeks: u32,
    /// Blocks received across all play instances.
    pub blocks_received: u64,
    /// Gap blocks (delivery holes below each instance's high water).
    pub blocks_missing: u64,
    /// Ownership-protocol violations (must be 0).
    pub violations: u64,
}

/// Runs the interactive workload.
pub fn run_vcr(cfg: &VcrConfig) -> VcrResult {
    let mut sys = TigerSystem::new(cfg.tiger.clone());
    sys.enable_omniscient();
    let files = populate_catalog(&mut sys, &cfg.catalog);
    let plan = cfg.plan();
    let tree = RngTree::new(cfg.tiger.seed).subtree("workgen", 0);
    let mut w = plan.compile(&tree);
    let horizon = SimTime::ZERO + cfg.duration;

    let mut pauses = 0u32;
    let mut resumes = 0u32;
    let mut seeks = 0u32;

    for i in 0..u64::from(cfg.viewers) {
        let client = sys.add_client();
        let t0 = SimTime::from_millis(100 + i * 900);
        let file = files[w.popularity.sample(t0, &mut w.chooser) as usize];
        let mut current = sys.request_start(t0, client, file);
        let file_blocks = sys
            .shared()
            .catalog
            .get(file)
            .expect("populated file")
            .num_blocks;
        for ev in w.sessions.script(i, t0, file_blocks, horizon) {
            match ev.op {
                SessionOp::Pause => {
                    sys.request_pause(ev.at, current);
                    pauses += 1;
                }
                SessionOp::Resume => {
                    current = sys.request_resume(ev.at, current);
                    resumes += 1;
                }
                SessionOp::Seek { to_block } => {
                    current = sys.request_seek(ev.at, current, to_block);
                    seeks += 1;
                }
                SessionOp::Stop => sys.request_stop(ev.at, current),
            }
        }
    }

    let end = SimTime::ZERO + cfg.duration;
    sys.run_until(end);

    let mut received = 0u64;
    let mut missing = 0u64;
    for c in sys.clients() {
        for (_, v) in c.viewers() {
            received += u64::from(v.blocks_received());
            missing += u64::from(v.blocks_missing());
        }
    }
    VcrResult {
        pauses,
        resumes,
        seeks,
        blocks_received: received,
        blocks_missing: missing,
        violations: sys.take_violations().len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> VcrConfig {
        let mut tiger = TigerConfig::small_test();
        tiger.disk = tiger.disk.without_blips();
        VcrConfig {
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(200), 8),
            viewers: 20,
            interactive_fraction: 0.5,
            duration: SimDuration::from_secs(150),
            tiger,
        }
    }

    #[test]
    fn interactive_churn_stays_clean() {
        let r = run_vcr(&small());
        // Invariant-style asserts: the hazard-rate session machine decides
        // op counts, so exact tallies are not pinned — coherence is.
        assert!(r.pauses > 0, "half-interactive run never paused");
        // Every pause resumes, except at most one per viewer whose resume
        // fell past the horizon and was clipped from the script.
        assert!(r.resumes <= r.pauses && r.pauses - r.resumes <= 10, "{r:?}");
        assert_eq!(r.violations, 0, "interactive churn broke coherence");
        assert_eq!(r.blocks_missing, 0, "interactive churn caused gaps");
        assert!(r.blocks_received > 1_000);
    }

    #[test]
    fn vcr_is_deterministic() {
        let cfg = small();
        assert_eq!(run_vcr(&cfg), run_vcr(&cfg));
    }

    #[test]
    fn preset_plan_matches_config() {
        let cfg = small();
        let plan = cfg.plan();
        assert_eq!(plan.titles(), 8);
        assert_eq!(plan.session.interactive, 0.5);
        assert_eq!(plan.max_viewers, 20);
        assert_eq!(plan.horizon, SimDuration::from_secs(150));
    }
}
