//! A VCR-style interactive workload: viewers that pause, resume, and seek
//! while others play straight through.
//!
//! The paper's §4.1.2 machinery (instance numbers, idempotent deschedules)
//! exists to make exactly this kind of churn safe; this driver generates
//! it at scale for tests and benches.

use tiger_core::{TigerConfig, TigerSystem};
use tiger_layout::ids::ViewerInstance;
use tiger_sim::{RngTree, SimDuration, SimTime};

use crate::catalog::{populate_catalog, CatalogSpec};

/// Configuration of the interactive workload.
#[derive(Clone, Debug)]
pub struct VcrConfig {
    /// System configuration.
    pub tiger: TigerConfig,
    /// Content catalog.
    pub catalog: CatalogSpec,
    /// Concurrent viewers.
    pub viewers: u32,
    /// Fraction of viewers that behave interactively (pause/resume/seek);
    /// the rest play straight through.
    pub interactive_fraction: f64,
    /// Total driven duration.
    pub duration: SimDuration,
}

impl VcrConfig {
    /// A medium interactive load on the given system.
    pub fn medium(tiger: TigerConfig) -> Self {
        VcrConfig {
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(400), 32),
            viewers: 120,
            interactive_fraction: 0.4,
            duration: SimDuration::from_secs(300),
            tiger,
        }
    }
}

/// Result of an interactive run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VcrResult {
    /// Pause operations issued.
    pub pauses: u32,
    /// Resume operations issued.
    pub resumes: u32,
    /// Seek operations issued.
    pub seeks: u32,
    /// Blocks received across all play instances.
    pub blocks_received: u64,
    /// Gap blocks (delivery holes below each instance's high water).
    pub blocks_missing: u64,
    /// Ownership-protocol violations (must be 0).
    pub violations: u64,
}

/// Runs the interactive workload.
pub fn run_vcr(cfg: &VcrConfig) -> VcrResult {
    let mut sys = TigerSystem::new(cfg.tiger.clone());
    sys.enable_omniscient();
    let files = populate_catalog(&mut sys, &cfg.catalog);
    let mut rng = RngTree::new(cfg.tiger.seed).fork("vcr", 0);

    let mut pauses = 0u32;
    let mut resumes = 0u32;
    let mut seeks = 0u32;

    for i in 0..u64::from(cfg.viewers) {
        let client = sys.add_client();
        let file = files[rng.gen_range(0..files.len())];
        let t0 = SimTime::from_millis(100 + i * 900);
        let mut current: ViewerInstance = sys.request_start(t0, client, file);
        if (i as f64) < f64::from(cfg.viewers) * cfg.interactive_fraction {
            // An interactive session: play, pause, resume, maybe seek.
            let pause_at = t0 + SimDuration::from_secs(rng.gen_range(10u64..30));
            sys.request_pause(pause_at, current);
            pauses += 1;
            let resume_at = pause_at + SimDuration::from_secs(rng.gen_range(3u64..20));
            current = sys.request_resume(resume_at, current);
            resumes += 1;
            if rng.gen_bool(0.5) {
                let seek_at = resume_at + SimDuration::from_secs(rng.gen_range(10u64..25));
                let target = rng.gen_range(0u32..200);
                sys.request_seek(seek_at, current, target);
                seeks += 1;
            }
        }
    }

    let end = SimTime::ZERO + cfg.duration;
    sys.run_until(end);

    let mut received = 0u64;
    let mut missing = 0u64;
    for c in sys.clients() {
        for (_, v) in c.viewers() {
            received += u64::from(v.blocks_received());
            missing += u64::from(v.blocks_missing());
        }
    }
    VcrResult {
        pauses,
        resumes,
        seeks,
        blocks_received: received,
        blocks_missing: missing,
        violations: sys.take_violations().len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interactive_churn_stays_clean() {
        let mut tiger = TigerConfig::small_test();
        tiger.disk = tiger.disk.without_blips();
        let cfg = VcrConfig {
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(200), 8),
            viewers: 20,
            interactive_fraction: 0.5,
            duration: SimDuration::from_secs(150),
            tiger,
        };
        let r = run_vcr(&cfg);
        assert_eq!(r.pauses, 10);
        assert_eq!(r.resumes, 10);
        assert_eq!(r.violations, 0, "interactive churn broke coherence");
        assert_eq!(r.blocks_missing, 0, "interactive churn caused gaps");
        assert!(r.blocks_received > 1_000);
    }
}
