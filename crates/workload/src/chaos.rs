//! Chaos campaigns: a declarative fault plan injected into a loaded
//! system, with every run checked against the Tiger invariants.
//!
//! A chaos run is a pure function of `(TigerConfig, CatalogSpec, load,
//! FaultPlan)` — fault randomness draws from its own RNG subtree (see
//! [`tiger_core::TigerSystem::apply_fault_plan`]), so the same plan and
//! seed reproduce the identical injection sequence, metrics, and trace
//! at any fleet thread count. The invariants checked:
//!
//! 1. **No block double-delivered.** Tiger never retransmits; a client
//!    assembling the same block twice is a protocol bug. Control-plane
//!    duplication faults must not leak into the data plane. (Plans that
//!    force a fencing window — a freeze past the deadman timeout, or a
//!    partition — are exempt: the bounded hand-off overlap is by design.)
//! 2. **No live cub declared dead.** Every deadman declaration must be
//!    justified by a genuine communication stall at least as long as the
//!    claimed silence — declared by the plan (crashes, freezes,
//!    partitions separating the pair) or observed in the run itself
//!    (protocol-side fencing and power cuts, each closed by the cub's
//!    restart). Partitioned rings and probabilistic drops are both
//!    modeled, not skipped: a drop window justifies a declaration only
//!    when its per-pair silence probability — `drop_prob` compounded
//!    over a timeout's worth of pings — is non-negligible (see
//!    [`tiger_faults::check_deadman_justified_probabilistic`]).
//! 3. **Schedule views stay within `maxVStateLead`** (plus the
//!    declustered forwarding slack) on every living cub.
//! 4. **Loss window bounded after a single clean failure**: when the
//!    plan is exactly one cub crash, the span between the earliest and
//!    latest lost block must stay within
//!    [`tiger_faults::loss_window_bound`].
//! 5. **Rejoin convergence bounded.** A restarted cub that re-accepts a
//!    slot (`rejoin-done`) must do so within the hand-back window plus
//!    scheduling slack of its `cub-restart` — re-learning the schedule
//!    must not take longer than the §4 ownership-insertion path allows.
//!    When the rejoin handshake carried a non-empty retired-log replay
//!    (a `retired-replay` trace with `count > 0`), the bound tightens
//!    to *under one forward interval*: the predecessor pushed the
//!    schedule tail directly, so convergence must not wait for periodic
//!    forwarding. The stubbed-replay negative control lives in this
//!    module's tests: replay off, the same scenario converges only at
//!    forwarding cadence.
//! 6. **Restripe duration within the §6.4 bandwidth estimate.** A
//!    fault-free live restripe must cut over no sooner than the raw
//!    transfer time of its bottleneck disk/NIC and no later than the
//!    half-duty background-bandwidth estimate times a contention factor.
//! 7. **Spares never widen loss** ([`run_shield_ablation`]). With
//!    `spare_shield` on, the per-(viewer, block) missing set must be a
//!    subset of the same run's missing set with the shield off: interim
//!    mirror capacity may only recover exposure, never add it. Checked
//!    as a dual run under fixed (zero-jitter) control latency so the
//!    two runs differ only in shield behavior.
//!
//! Violations of the omniscient checker and the NIC/schedule asserts
//! (`Metrics::violations`) are folded in as well.

use std::collections::BTreeSet;

use tiger_core::{TigerConfig, TigerSystem};
use tiger_faults::{
    check_deadman_justified_probabilistic, loss_window_bound, FaultPlan, ObservedDeclare,
    ObservedStall, ProcessFault, Topology,
};
use tiger_layout::ids::ViewerInstance;
use tiger_layout::{RestripePlan, StripeConfig};
use tiger_net::LatencyModel;
use tiger_sim::{Bandwidth, RngTree, SimDuration, SimTime};
use tiger_trace::TraceEvent;

use crate::catalog::{populate_catalog, CatalogSpec};

/// The silence-probability threshold below which a probabilistic-drop
/// window does *not* justify a deadman declaration: an all-pings-dropped
/// streak rarer than one in a billion windows is treated as impossible,
/// so a declaration during such a window is still a live cub declared
/// dead. (For scale: the lossy-control scenario's 20% drop rate over the
/// small system's four-ping timeout would sit at `0.2^4 = 1.6e-3`, nine
/// orders of magnitude above the cut — heavy loss stays modeled.)
const DROP_SILENCE_MIN_PROB: f64 = 1e-9;

/// Configuration of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// System configuration.
    pub tiger: TigerConfig,
    /// Content catalog.
    pub catalog: CatalogSpec,
    /// Fraction of capacity to load before the faults begin (ignored when
    /// `workload` is set).
    pub load: f64,
    /// Optional declarative demand: when set, the load phase is driven by
    /// this `tiger-workgen` plan (skewed popularity, flash crowds,
    /// interactive sessions) instead of the uniform capacity ramp. The
    /// plan's *embedded* fault plan is NOT applied — set `plan` to
    /// `workload.faults` (or anything else) explicitly, so the invariants
    /// below always see the faults they are checked against.
    pub workload: Option<tiger_workgen::WorkloadPlan>,
    /// The fault plan to inject.
    pub plan: FaultPlan,
    /// How long to run.
    pub run_to: SimTime,
    /// Trace-ring capacity. The trace is always on in a chaos run — it
    /// is how the deadman invariant observes declarations, and it is the
    /// artifact dumped when an invariant fails. Enabling it cannot
    /// change the run (the tracer is a pure observer).
    pub trace_cap: usize,
}

impl ChaosConfig {
    /// A seconds-long run on the small test system.
    pub fn quick(plan: FaultPlan) -> Self {
        let mut tiger = TigerConfig::small_test();
        tiger.disk = tiger.disk.without_blips();
        tiger.deadman_timeout = SimDuration::from_millis(2_000);
        ChaosConfig {
            tiger,
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(200), 4),
            load: 0.5,
            workload: None,
            plan,
            run_to: SimTime::from_secs(90),
            trace_cap: 65_536,
        }
    }
}

/// What one chaos run observed.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Streams playing at the end of the run.
    pub streams: u32,
    /// Blocks the cubs transmitted.
    pub blocks_sent: u64,
    /// Fully-assembled blocks the clients received.
    pub blocks_received: u64,
    /// Blocks the clients should have received but did not.
    pub blocks_missing: u64,
    /// Fully-assembled blocks delivered more than once (invariant 1).
    pub dup_blocks: u64,
    /// Injected transient read errors the disks served.
    pub transient_errors: u64,
    /// Deadman declarations, in declaration order.
    pub declares: Vec<ObservedDeclare>,
    /// Span between the earliest and latest lost block (0 without loss).
    pub loss_window_secs: f64,
    /// Every invariant violation (empty = the run is clean).
    pub violations: Vec<String>,
    /// The rendered trace ring (faults inline with protocol reactions).
    pub trace: String,
}

/// One line summarizing the deterministic payload of an outcome — the
/// quantity the chaos sweep prints and the thread-count bit-identity
/// test compares.
pub fn chaos_digest(o: &ChaosOutcome) -> String {
    format!(
        "streams {}  sent {}  received {}  missing {}  dup {}  transient {}  \
         declares {}  loss_window {:.3}s  violations {}",
        o.streams,
        o.blocks_sent,
        o.blocks_received,
        o.blocks_missing,
        o.dup_blocks,
        o.transient_errors,
        o.declares.len(),
        o.loss_window_secs,
        o.violations.len(),
    )
}

/// Runs one chaos campaign: load the system, apply the plan, run to the
/// horizon, then check every invariant.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    run_chaos_full(cfg).0
}

/// [`run_chaos`] plus the exact per-(viewer, block) missing set — the
/// quantity invariant 7's ablation compares across shield settings.
fn run_chaos_full(cfg: &ChaosConfig) -> (ChaosOutcome, BTreeSet<(ViewerInstance, u32)>) {
    // Plans that restripe need spare machines on the floor; provision
    // them automatically so a plan is self-contained (the spares are
    // inert until the cut-over, so a plan without restripes is
    // unaffected by a non-zero `spare_cubs` in its base config).
    let mut tiger = cfg.tiger.clone();
    // Steps execute in sequence, so the peak draw is the running sum of
    // grows minus the shrinks *already cut over* — a grow consumes its
    // spares at cut-over, a shrink returns the drained cubs to the pool.
    let mut spares_needed = 0u32;
    let mut drawn = 0i64;
    for r in &cfg.plan.restripes {
        drawn += i64::from(r.add_cubs);
        spares_needed = spares_needed.max(u32::try_from(drawn.max(0)).expect("small"));
        drawn -= i64::from(r.remove_cubs);
    }
    tiger.spare_cubs = tiger.spare_cubs.max(spares_needed);
    let mut sys = TigerSystem::new(tiger.clone());
    sys.enable_trace(cfg.trace_cap);
    let files = populate_catalog(&mut sys, &cfg.catalog);
    // The §6.4 duration estimate, computed from the same catalog the
    // live restriper will plan over (streaming never changes the
    // catalog, so the pre-run plan equals the one `restripe-start`
    // computes).
    let restripe_estimate = cfg.plan.restripes.first().map(|r| {
        let old = tiger.stripe;
        let new = StripeConfig::new(
            old.num_cubs + r.add_cubs - r.remove_cubs,
            old.disks_per_cub,
            old.decluster,
        );
        let plan = RestripePlan::plan(&sys.shared().catalog, old, new);
        // Fastest conceivable drain: bottleneck bytes at the outermost
        // zone rate with the whole NIC — a hard lower bound on any
        // schedule that actually moves the bytes.
        let floor = plan.estimate_duration(tiger.disk.rate_at(0.0), tiger.nic_capacity);
        // The §6.4-style budget: innermost-zone media rate at the
        // pump's half-duty pacing.
        let half_inner =
            Bandwidth::from_bits_per_sec(tiger.disk.rate_at(0.9999).bits_per_sec() / 2);
        let budget = plan.estimate_duration(half_inner, tiger.nic_capacity);
        (floor, budget)
    });
    if let Some(wplan) = &cfg.workload {
        crate::driven::drive_plan(&mut sys, wplan, &files);
    } else {
        let mut chooser = RngTree::new(cfg.tiger.seed).fork("chaos-files", 0);
        let capacity = sys.shared().params.capacity();
        let want = ((capacity as f64) * cfg.load).round() as u32;
        let mut now = SimTime::from_millis(100);
        for _ in 0..want {
            let client = sys.add_client();
            let file = files[chooser.gen_range(0..files.len())];
            sys.request_start(now, client, file);
            now += SimDuration::from_millis(150);
        }
    }
    sys.apply_fault_plan(&cfg.plan);
    sys.run_until(cfg.run_to);

    // Total machines, matching the node numbering `apply_fault_plan`
    // compiled selectors against (striped members plus spares).
    let topo = Topology {
        num_cubs: tiger.total_cubs(),
        num_clients: cfg.tiger.num_clients,
        backup_controller: cfg.tiger.backup_controller,
    };
    let report = sys.all_clients_report();
    let transient_errors: u64 = sys
        .cubs()
        .iter()
        .flat_map(|c| c.disks())
        .map(tiger_disk::Disk::total_transient_errors)
        .sum();
    let declares: Vec<ObservedDeclare> = sys
        .tracer()
        .records()
        .iter()
        .filter_map(|rec| match rec.ev {
            TraceEvent::DeadmanDeclare { failed, silence_ns } => Some(ObservedDeclare {
                at: rec.at,
                declarer: rec.cub,
                failed,
                silence: SimDuration::from_nanos(silence_ns),
            }),
            _ => None,
        })
        .collect();

    let mut violations = Vec::new();
    // Invariant 1: no double delivery. Two sanctioned exceptions, both
    // fencing windows rather than bugs: a freeze that outlasts the
    // deadman timeout (the resumed zombie serves a handful of
    // already-taken-over slots before the fencing reply lands), and a
    // partition (the healed ring's divergent failure views fence live
    // cubs the same way).
    let zombie_window = cfg.plan.process.iter().any(|p| {
        matches!(p, ProcessFault::Freeze { from, until, .. }
            if until.saturating_since(*from) > cfg.tiger.deadman_timeout)
    }) || !cfg.plan.partitions.is_empty();
    if report.dup_blocks > 0 && !zombie_window {
        violations.push(format!(
            "{} blocks were delivered more than once (Tiger never retransmits)",
            report.dup_blocks
        ));
    }
    // Invariant 2: every declaration justified by a genuine stall. The
    // plan declares crashes, freezes, and partitions (the stall algebra
    // separates partitioned pairs); on top of those, fencing cascades
    // and protocol-side power cuts observed in the trace — each closed
    // by that cub's restart — justify the post-heal declarations a
    // partitioned ring produces. Probabilistic drop windows are modeled
    // rather than skipped: a window whose per-pair silence probability
    // (`drop_prob` compounded over the timeout's worth of pings) reaches
    // `DROP_SILENCE_MIN_PROB` counts as a plausible stall for the pair;
    // anything rarer cannot explain a full timeout of silence, so a
    // declaration it would "cover" is still a live cub declared dead.
    let ring_observable = cfg.plan.links.iter().all(|l| l.drop_prob == 0.0);
    let mut observed_stalls: Vec<ObservedStall> = Vec::new();
    for rec in sys.tracer().records() {
        match rec.ev {
            TraceEvent::CubFenced { cub } | TraceEvent::PowerCut { cub } => {
                observed_stalls.push(ObservedStall {
                    cub,
                    from: rec.at,
                    until: SimTime::MAX,
                });
            }
            TraceEvent::CubRestart { cub } => {
                for s in observed_stalls.iter_mut().rev() {
                    if s.cub == cub && s.until == SimTime::MAX {
                        s.until = rec.at;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    // Injected link delay/jitter stretches legitimate ping gaps.
    let injected_delay = cfg
        .plan
        .links
        .iter()
        .map(|l| l.extra_delay + l.extra_jitter)
        .max()
        .unwrap_or(SimDuration::ZERO);
    let grace = cfg.tiger.deadman_interval + cfg.tiger.latency.worst_case() + injected_delay;
    violations.extend(check_deadman_justified_probabilistic(
        &cfg.plan,
        topo,
        &declares,
        &observed_stalls,
        cfg.tiger.deadman_timeout,
        cfg.tiger.deadman_interval,
        grace,
        DROP_SILENCE_MIN_PROB,
    ));
    // Invariant 3: schedule views within the legitimate lead.
    violations.extend(sys.check_view_lead());
    // Invariant 4: a single clean crash loses blocks only inside the
    // detection-plus-takeover window.
    let loss_window_secs = client_loss_window_secs(&sys, cfg.tiger.block_play_time);
    if let Some(bound) = single_crash_bound(cfg) {
        if loss_window_secs > bound.as_secs_f64() {
            violations.push(format!(
                "loss window {loss_window_secs:.3}s exceeds the single-failure bound {bound}",
            ));
        }
    }
    // Invariant 5: rejoin convergence. The covering successor relays
    // hand-back states as they come due, so a rejoined cub's first
    // re-accepted slot must land within the hand-back window plus
    // scheduling slack of its restart. Absence of `rejoin-done` is not a
    // violation — an idle cub has nothing to re-accept — and freezes
    // widen the bound by their longest window (the rejoiner or its
    // partner may be frozen mid-handshake). Partitions and drops delay
    // the relay unboundedly, so the bound is checked only on observable
    // rings.
    if ring_observable && cfg.plan.partitions.is_empty() {
        let longest_freeze = cfg
            .plan
            .process
            .iter()
            .filter_map(|p| match p {
                ProcessFault::Freeze { from, until, .. } => Some(until.saturating_since(*from)),
                _ => None,
            })
            .max()
            .unwrap_or(SimDuration::ZERO);
        let rejoin_bound = cfg.tiger.min_vstate_lead
            + cfg.tiger.forward_interval.mul_u64(2)
            + injected_delay
            + longest_freeze
            + SimDuration::from_secs(2);
        // The sub-interval bound for replayed rejoins: the predecessor's
        // `RetiredReplay` batch hands the rejoiner its imminent schedule
        // directly, so the first re-accepted slot cannot be waiting on a
        // periodic forwarding pass.
        let replay_bound = cfg.tiger.forward_interval + injected_delay + longest_freeze;
        let records = sys.tracer().records();
        for rec in &records {
            let TraceEvent::CubRestart { cub } = rec.ev else {
                continue;
            };
            let done = records.iter().find(|r| {
                r.at >= rec.at && matches!(r.ev, TraceEvent::RejoinDone { cub: c } if c == cub)
            });
            if let Some(done) = done {
                let took = done.at.saturating_since(rec.at);
                // The tight bound applies when the handshake delivered a
                // non-empty replay batch: acceptance is then immediate
                // (batch latency), never a wait on periodic forwarding.
                // An empty batch (idle predecessor) legitimately falls
                // back to the passive path and its legacy bound.
                let replayed = cfg.tiger.retired_replay
                    && records.iter().any(|r| {
                        r.at >= rec.at
                            && r.at <= done.at
                            && matches!(r.ev,
                                TraceEvent::RetiredReplay { to, count } if to == cub && count > 0)
                    });
                let bound = if replayed { replay_bound } else { rejoin_bound };
                if took > bound {
                    violations.push(format!(
                        "cub{cub} took {took} to re-accept a slot after its restart at {} \
                         (rejoin bound {bound}{})",
                        rec.at,
                        if replayed {
                            ", sub-interval replay"
                        } else {
                            ""
                        }
                    ));
                }
            }
        }
    }
    // Invariant 6: §6.4 restripe duration. A fault-free restripe must
    // drain no faster than the raw bottleneck transfer (the floor) and
    // no slower than the half-duty background estimate times a
    // contention factor (foreground streams own the disk first) plus
    // fixed admission slack. Plans that crash or partition mid-restripe
    // park moves for arbitrary repair windows, so only quiet plans are
    // held to the budget.
    let quiet_restripe = !cfg.plan.restripes.is_empty()
        && cfg.plan.process.is_empty()
        && cfg.plan.partitions.is_empty()
        && cfg.plan.disks.is_empty()
        && cfg.plan.links.is_empty();
    if let (Some((floor, budget)), true) = (restripe_estimate, quiet_restripe) {
        let start = sys.tracer().records().iter().find_map(|r| match r.ev {
            TraceEvent::RestripeStart { moves } => Some((r.at, moves)),
            _ => None,
        });
        let cutover = sys.tracer().records().iter().find_map(|r| match r.ev {
            TraceEvent::RestripeCutover { .. } => Some(r.at),
            _ => None,
        });
        let bound = budget.mul_u64(3) + SimDuration::from_secs(20);
        match (start, cutover) {
            (Some((started, moves)), Some(cut)) if moves > 0 => {
                let elapsed = cut.saturating_since(started);
                if elapsed > bound {
                    violations.push(format!(
                        "restripe took {elapsed}, over the §6.4 budget {bound} \
                         (half-duty estimate {budget})"
                    ));
                }
                if elapsed < floor {
                    violations.push(format!(
                        "restripe finished in {elapsed}, faster than the raw \
                         bottleneck transfer {floor} — blocks were not moved"
                    ));
                }
            }
            // A missing cut-over is only damning when the run gave the
            // budget room to elapse; a horizon shorter than the budget
            // simply did not watch long enough.
            (Some((started, _)), None) if cfg.run_to.saturating_since(started) > bound => {
                violations.push(
                    "restripe never cut over on a fault-free run (moves are parked or lost)"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
    // Omniscient checker + NIC/schedule asserts.
    violations.extend(sys.take_violations());

    let trace = sys.tracer().dump().unwrap_or_default();
    let missing = missing_blocks(&sys);
    let outcome = ChaosOutcome {
        streams: sys.controller().active_streams(),
        blocks_sent: sys.metrics().loss.blocks_sent,
        blocks_received: report.blocks_received,
        blocks_missing: report.blocks_missing,
        dup_blocks: report.dup_blocks,
        transient_errors,
        declares,
        loss_window_secs,
        violations,
        trace,
    };
    (outcome, missing)
}

/// The result of invariant 7's shield ablation: the same campaign run
/// twice, differing only in `spare_shield`.
#[derive(Clone, Debug)]
pub struct ShieldAblation {
    /// The run with spares serving shadow copies.
    pub shielded: ChaosOutcome,
    /// The run with the shield disabled.
    pub unshielded: ChaosOutcome,
    /// Invariant 7 violations: blocks the shielded run lost that the
    /// unshielded run delivered (empty = the shield only ever helped).
    pub violations: Vec<String>,
}

/// Invariant 7: runs `cfg` twice — `spare_shield` on, then off — under
/// fixed (zero-jitter) control latency, and checks that the shielded
/// run's per-(viewer, block) missing set is a subset of the unshielded
/// run's. Interim mirror capacity may narrow the loss window, never
/// widen it. Each run's own invariant checks land in its outcome's
/// `violations` as usual; this function's `violations` field carries
/// only the subset check.
pub fn run_shield_ablation(cfg: &ChaosConfig) -> ShieldAblation {
    // Zero jitter: shield traffic reorders RNG draws between the two
    // runs, so jittered latency would perturb unrelated deliveries and
    // muddy the subset comparison. Fix latency at the model's worst
    // case — both runs see the identical (conservative) control plane.
    let mut on = cfg.clone();
    on.tiger.latency = LatencyModel::fixed(cfg.tiger.latency.worst_case());
    on.tiger.spare_shield = true;
    let mut off = on.clone();
    off.tiger.spare_shield = false;
    let (shielded, miss_on) = run_chaos_full(&on);
    let (unshielded, miss_off) = run_chaos_full(&off);
    let mut violations = Vec::new();
    let widened: Vec<_> = miss_on.difference(&miss_off).collect();
    if let Some((v, b)) = widened.first() {
        violations.push(format!(
            "spare shield lost {} block(s) the unshielded run delivered (first: {v} block {b}) \
             — interim mirror capacity must never widen loss",
            widened.len(),
        ));
    }
    ShieldAblation {
        shielded,
        unshielded,
        violations,
    }
}

/// Every `(viewer instance, block)` a client should have received by the
/// horizon but did not — the exact loss set, ordered, for cross-run
/// comparison.
fn missing_blocks(sys: &TigerSystem) -> BTreeSet<(ViewerInstance, u32)> {
    let mut missing = BTreeSet::new();
    for client in sys.clients() {
        for (vi, v) in client.viewers() {
            let Some(high) = v.high_water else { continue };
            for b in 0..=high {
                if !v.block_received(b) {
                    missing.insert((*vi, b));
                }
            }
        }
    }
    missing
}

/// The loss-window bound, when the plan is exactly one cub crash (the
/// only shape the invariant covers: anything else — partitions, disk
/// faults, correlated cuts — can legitimately widen the window).
fn single_crash_bound(cfg: &ChaosConfig) -> Option<SimDuration> {
    let p = &cfg.plan;
    if !p.links.is_empty() || !p.partitions.is_empty() || !p.disks.is_empty() {
        return None;
    }
    // A crash mid-restripe widens the window: the cut-over fences every
    // viewer and re-inserts it at its high-water mark.
    if !p.restripes.is_empty() {
        return None;
    }
    match p.process.as_slice() {
        [ProcessFault::Crash { .. }] => Some(loss_window_bound(
            cfg.tiger.deadman_timeout,
            cfg.tiger.deadman_interval,
            cfg.tiger.latency.worst_case(),
            cfg.tiger.block_play_time,
        )),
        _ => None,
    }
}

/// The span between the expected arrival times of the earliest and
/// latest block any client lost (the §5 "inspected the clients' logs"
/// reconstruction, shared with the reconfiguration experiment).
fn client_loss_window_secs(sys: &TigerSystem, bpt: SimDuration) -> f64 {
    let bpt = bpt.as_secs_f64();
    let mut earliest: Option<f64> = None;
    let mut latest: Option<f64> = None;
    for client in sys.clients() {
        for (_, v) in client.viewers() {
            let Some(first) = v.first_block_at else {
                continue;
            };
            let first = first.as_secs_f64();
            let Some(high) = v.high_water else { continue };
            for b in 0..=high {
                if !v.block_received(b) {
                    let expected = first + f64::from(b) * bpt;
                    earliest = Some(earliest.map_or(expected, |e: f64| e.min(expected)));
                    latest = Some(latest.map_or(expected, |l: f64| l.max(expected)));
                }
            }
        }
    }
    match (earliest, latest) {
        (Some(e), Some(l)) => l - e,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_faults::NodeSel;

    #[test]
    fn clean_single_crash_passes_every_invariant() {
        let plan = FaultPlan::new().crash(1, SimTime::from_secs(30));
        let out = run_chaos(&ChaosConfig::quick(plan));
        assert!(out.streams > 0);
        assert!(!out.declares.is_empty(), "the crash was never detected");
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.trace.contains("power-cut"));
    }

    #[test]
    fn control_duplication_does_not_double_deliver_blocks() {
        let plan = FaultPlan::new().duplicate_msgs(
            NodeSel::Any,
            NodeSel::Any,
            0.5,
            SimTime::ZERO,
            SimTime::from_secs(90),
        );
        let out = run_chaos(&ChaosConfig::quick(plan));
        assert_eq!(out.dup_blocks, 0, "data plane must never duplicate");
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.trace.contains("net-dup"));
    }

    #[test]
    fn freeze_past_deadman_fences_the_zombie() {
        // Frozen well past the 2s deadman timeout: the cub is declared
        // dead and taken over; when it resumes and pings, the successor
        // replies with a FailureNotice naming the zombie, which fences
        // itself. The trace must show the whole arc.
        let plan = FaultPlan::new().freeze(1, SimTime::from_secs(30), SimTime::from_secs(40));
        let out = run_chaos(&ChaosConfig::quick(plan));
        assert!(!out.declares.is_empty(), "the stall was never declared");
        assert!(out.trace.contains("cub-freeze"));
        assert!(out.trace.contains("cub-resume"));
        assert!(out.trace.contains("cub-fenced"), "zombie was not fenced");
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn crash_and_restart_rejoins_within_bound() {
        // A crash followed by a restart: the rejoin handshake must show
        // in the trace, the convergence invariant must hold, and the
        // fresh monitoring baseline must keep the rejoined cub from
        // being re-declared dead.
        let plan = FaultPlan::new()
            .crash(1, SimTime::from_secs(20))
            .restart(1, SimTime::from_secs(40));
        let out = run_chaos(&ChaosConfig::quick(plan));
        assert!(out.trace.contains("cub-restart"), "restart never traced");
        assert!(
            out.trace.contains("rejoin-done"),
            "rejoined cub never re-accepted a slot"
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(
            !out.declares
                .iter()
                .any(|d| d.failed == 1 && d.at > SimTime::from_secs(40)),
            "rejoined cub re-declared dead after its restart"
        );
    }

    /// CubRestart → first RejoinDone, parsed back out of the rendered
    /// trace (the same records invariant 5 walks).
    fn rejoin_took(trace: &str) -> SimDuration {
        let recs = tiger_trace::parse_dump(trace).expect("trace parses");
        let restart = recs
            .iter()
            .find(|r| matches!(r.ev, TraceEvent::CubRestart { .. }))
            .expect("restart traced");
        let done = recs
            .iter()
            .find(|r| r.at >= restart.at && matches!(r.ev, TraceEvent::RejoinDone { .. }))
            .expect("rejoin-done traced");
        done.at.saturating_since(restart.at)
    }

    #[test]
    fn fast_rejoin_replays_the_retired_tail_sub_interval() {
        // With retired-log replay on (the default), the predecessor
        // pushes the rejoiner's imminent schedule in the rejoin
        // handshake: convergence must land under one forward interval,
        // and invariant 5's tightened bound must hold.
        let plan = FaultPlan::new()
            .crash(1, SimTime::from_secs(20))
            .restart(1, SimTime::from_secs(40));
        let cfg = ChaosConfig::quick(plan);
        assert!(cfg.tiger.retired_replay, "replay should be the default");
        let out = run_chaos(&cfg);
        let recs = tiger_trace::parse_dump(&out.trace).expect("trace parses");
        assert!(
            recs.iter().any(|r| matches!(
                r.ev, TraceEvent::RetiredReplay { count, .. } if count > 0
            )),
            "rejoin handshake never replayed a non-empty retired tail"
        );
        assert!(out.trace.contains("rejoin-done"));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let took = rejoin_took(&out.trace);
        assert!(
            took < cfg.tiger.forward_interval,
            "replayed rejoin took {took}, not sub-interval"
        );
    }

    #[test]
    fn stubbed_replay_cannot_meet_the_sub_interval_bound() {
        // The negative control for invariant 5's tightening: with the
        // replay stubbed out, the rejoiner waits on periodic forwarding
        // and converges well past one forward interval. Only the legacy
        // hand-back bound saves the run — so a stub that still traced
        // the handshake would fail the invariant outright.
        let plan = FaultPlan::new()
            .crash(1, SimTime::from_secs(20))
            .restart(1, SimTime::from_secs(40));
        let mut cfg = ChaosConfig::quick(plan);
        cfg.tiger.retired_replay = false;
        let out = run_chaos(&cfg);
        assert!(
            !out.trace.contains("retired-replay"),
            "stub must not replay"
        );
        assert!(out.trace.contains("rejoin-done"));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        // Passive convergence waits on the forwarding cadence — hundreds
        // of milliseconds. Replayed convergence is batch latency — a few
        // milliseconds. The gap is what the tightened bound enforces.
        let took = rejoin_took(&out.trace);
        assert!(
            took > SimDuration::from_millis(100),
            "passive rejoin converged in {took} — the sub-interval tightening would be vacuous"
        );
    }

    #[test]
    fn quiet_shrink_drains_fences_and_cuts_over() {
        // A fault-free live shrink: the leaving cub's primaries drain to
        // the survivors (shrink-drain), the cub is fenced at cut-over
        // (shrink-fence), and every invariant — including the §6.4
        // duration budget, now computed over the smaller geometry —
        // holds.
        let plan = FaultPlan::new().restripe_remove(SimTime::from_secs(10), 1);
        let mut cfg = ChaosConfig::quick(plan);
        cfg.run_to = SimTime::from_secs(200);
        let out = run_chaos(&cfg);
        assert!(out.trace.contains("restripe-start"));
        assert!(out.trace.contains("shrink-drain"), "no drain completion");
        assert!(out.trace.contains("shrink-fence"), "leaver never fenced");
        assert!(out.trace.contains("restripe-cutover"));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.dup_blocks, 0, "cut-over re-served a block");
        assert!(out.streams > 0, "shrink killed the streams");
    }

    #[test]
    fn queued_grow_then_shrink_runs_both_steps_in_order() {
        // Two plans queued while the first is still draining: the
        // executor must run them strictly in sequence — grow to five
        // cubs, cut over, then drain the fifth back out.
        let plan = FaultPlan::new()
            .restripe(SimTime::from_secs(10), 1)
            .restripe_remove(SimTime::from_secs(12), 1);
        let mut cfg = ChaosConfig::quick(plan);
        cfg.run_to = SimTime::from_secs(300);
        let out = run_chaos(&cfg);
        assert_eq!(
            out.trace.matches("restripe-cutover").count(),
            2,
            "both queued steps must cut over"
        );
        assert!(out.trace.contains("shrink-fence"));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn spare_shield_never_widens_loss_under_double_failure() {
        // Invariant 7's canonical scenario: cub 1 dies and the shield
        // shadows its exposed decluster spans onto the spare; then a
        // surviving holder of those spans (cub 2) dies too. Shielded,
        // the cover path routes the dead holder's pieces to the spare;
        // unshielded they are failover-lost. The shielded missing set
        // must be a strict improvement, never a widening.
        // An 8-cub ring, not the quick 4-cub one: with two of four cubs
        // dead, the schedule period (4s) is shorter than the maximum
        // legitimate record lead (6s), which structurally disables the
        // staleness guard and lets cover-chain records race the tiny
        // ring — a small-ring pathology, not the scenario under test.
        // Non-adjacent crashes keep the shadowed span's copy source
        // (cub 2, holder of disk 1's piece 0) alive through the
        // campaign; the second crash (cub 3, holder of piece 1) lands
        // after the spans shadowing cub 1 have all landed on the spare.
        let plan = FaultPlan::new()
            .crash(1, SimTime::from_secs(20))
            .crash(3, SimTime::from_secs(80));
        let mut cfg = ChaosConfig::quick(plan);
        cfg.tiger.stripe = StripeConfig::new(8, 1, 2);
        cfg.tiger.spare_cubs = 1;
        cfg.run_to = SimTime::from_secs(115);
        let ab = run_shield_ablation(&cfg);
        assert!(
            ab.shielded.trace.contains("spare-shadow"),
            "shield never completed a shadow span"
        );
        assert!(ab.violations.is_empty(), "{:?}", ab.violations);
        assert!(
            ab.shielded.violations.is_empty(),
            "{:?}",
            ab.shielded.violations
        );
        assert!(
            ab.unshielded.violations.is_empty(),
            "{:?}",
            ab.unshielded.violations
        );
        assert!(
            ab.shielded.blocks_missing < ab.unshielded.blocks_missing,
            "shield should recover exposure: shielded missing {} vs unshielded {}",
            ab.shielded.blocks_missing,
            ab.unshielded.blocks_missing
        );
    }

    #[test]
    fn quiet_restripe_meets_the_duration_budget() {
        // A fault-free mid-run restripe: the duration invariant (floor
        // and §6.4 budget) and every streaming invariant must hold, and
        // the cut-over must appear in the trace.
        let plan = FaultPlan::new().restripe(SimTime::from_secs(10), 2);
        let mut cfg = ChaosConfig::quick(plan);
        cfg.run_to = SimTime::from_secs(200);
        let out = run_chaos(&cfg);
        assert!(out.trace.contains("restripe-start"));
        assert!(
            out.trace.contains("restripe-cutover"),
            "restripe never cut over"
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.dup_blocks, 0, "cut-over re-served a block");
    }

    #[test]
    fn crash_mid_restripe_resumes_after_restart() {
        // A source cub dies with moves in flight and restarts later: the
        // plan parks (restripe-stall allowed), resumes, and still cuts
        // over; the duration budget is waived but every other invariant
        // holds.
        let plan = FaultPlan::new()
            .restripe(SimTime::from_secs(10), 2)
            .crash(1, SimTime::from_secs(12))
            .restart(1, SimTime::from_secs(30));
        let mut cfg = ChaosConfig::quick(plan);
        cfg.run_to = SimTime::from_secs(200);
        let out = run_chaos(&cfg);
        assert!(
            out.trace.contains("restripe-cutover"),
            "crash mid-restripe lost the plan"
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn transient_disk_errors_surface_in_outcome_and_trace() {
        let plan = FaultPlan::new().disk_transient(
            1,
            0,
            1.0,
            SimTime::from_secs(20),
            SimTime::from_secs(30),
        );
        let out = run_chaos(&ChaosConfig::quick(plan));
        assert!(out.transient_errors > 0, "no transient errors served");
        assert!(out.blocks_missing > 0, "errored reads should lose blocks");
        assert!(out.trace.contains("disk-transient"));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }
}
