//! Chaos campaigns: a declarative fault plan injected into a loaded
//! system, with every run checked against the Tiger invariants.
//!
//! A chaos run is a pure function of `(TigerConfig, CatalogSpec, load,
//! FaultPlan)` — fault randomness draws from its own RNG subtree (see
//! [`tiger_core::TigerSystem::apply_fault_plan`]), so the same plan and
//! seed reproduce the identical injection sequence, metrics, and trace
//! at any fleet thread count. The invariants checked:
//!
//! 1. **No block double-delivered.** Tiger never retransmits; a client
//!    assembling the same block twice is a protocol bug. Control-plane
//!    duplication faults must not leak into the data plane. (Plans that
//!    force a fencing window — a freeze past the deadman timeout, or a
//!    partition — are exempt: the bounded hand-off overlap is by design.)
//! 2. **No live cub declared dead.** Every deadman declaration must be
//!    justified by a genuine communication stall at least as long as the
//!    claimed silence — declared by the plan (crashes, freezes,
//!    partitions separating the pair) or observed in the run itself
//!    (protocol-side fencing and power cuts, each closed by the cub's
//!    restart). Partitioned rings and probabilistic drops are both
//!    modeled, not skipped: a drop window justifies a declaration only
//!    when its per-pair silence probability — `drop_prob` compounded
//!    over a timeout's worth of pings — is non-negligible (see
//!    [`tiger_faults::check_deadman_justified_probabilistic`]).
//! 3. **Schedule views stay within `maxVStateLead`** (plus the
//!    declustered forwarding slack) on every living cub.
//! 4. **Loss window bounded after a single clean failure**: when the
//!    plan is exactly one cub crash, the span between the earliest and
//!    latest lost block must stay within
//!    [`tiger_faults::loss_window_bound`].
//! 5. **Rejoin convergence bounded.** A restarted cub that re-accepts a
//!    slot (`rejoin-done`) must do so within the hand-back window plus
//!    scheduling slack of its `cub-restart` — re-learning the schedule
//!    must not take longer than the §4 ownership-insertion path allows.
//! 6. **Restripe duration within the §6.4 bandwidth estimate.** A
//!    fault-free live restripe must cut over no sooner than the raw
//!    transfer time of its bottleneck disk/NIC and no later than the
//!    half-duty background-bandwidth estimate times a contention factor.
//!
//! Violations of the omniscient checker and the NIC/schedule asserts
//! (`Metrics::violations`) are folded in as well.

use tiger_core::{TigerConfig, TigerSystem};
use tiger_faults::{
    check_deadman_justified_probabilistic, loss_window_bound, FaultPlan, ObservedDeclare,
    ObservedStall, ProcessFault, Topology,
};
use tiger_layout::{RestripePlan, StripeConfig};
use tiger_sim::{Bandwidth, RngTree, SimDuration, SimTime};
use tiger_trace::TraceEvent;

use crate::catalog::{populate_catalog, CatalogSpec};

/// The silence-probability threshold below which a probabilistic-drop
/// window does *not* justify a deadman declaration: an all-pings-dropped
/// streak rarer than one in a billion windows is treated as impossible,
/// so a declaration during such a window is still a live cub declared
/// dead. (For scale: the lossy-control scenario's 20% drop rate over the
/// small system's four-ping timeout would sit at `0.2^4 = 1.6e-3`, nine
/// orders of magnitude above the cut — heavy loss stays modeled.)
const DROP_SILENCE_MIN_PROB: f64 = 1e-9;

/// Configuration of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// System configuration.
    pub tiger: TigerConfig,
    /// Content catalog.
    pub catalog: CatalogSpec,
    /// Fraction of capacity to load before the faults begin (ignored when
    /// `workload` is set).
    pub load: f64,
    /// Optional declarative demand: when set, the load phase is driven by
    /// this `tiger-workgen` plan (skewed popularity, flash crowds,
    /// interactive sessions) instead of the uniform capacity ramp. The
    /// plan's *embedded* fault plan is NOT applied — set `plan` to
    /// `workload.faults` (or anything else) explicitly, so the invariants
    /// below always see the faults they are checked against.
    pub workload: Option<tiger_workgen::WorkloadPlan>,
    /// The fault plan to inject.
    pub plan: FaultPlan,
    /// How long to run.
    pub run_to: SimTime,
    /// Trace-ring capacity. The trace is always on in a chaos run — it
    /// is how the deadman invariant observes declarations, and it is the
    /// artifact dumped when an invariant fails. Enabling it cannot
    /// change the run (the tracer is a pure observer).
    pub trace_cap: usize,
}

impl ChaosConfig {
    /// A seconds-long run on the small test system.
    pub fn quick(plan: FaultPlan) -> Self {
        let mut tiger = TigerConfig::small_test();
        tiger.disk = tiger.disk.without_blips();
        tiger.deadman_timeout = SimDuration::from_millis(2_000);
        ChaosConfig {
            tiger,
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(200), 4),
            load: 0.5,
            workload: None,
            plan,
            run_to: SimTime::from_secs(90),
            trace_cap: 65_536,
        }
    }
}

/// What one chaos run observed.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Streams playing at the end of the run.
    pub streams: u32,
    /// Blocks the cubs transmitted.
    pub blocks_sent: u64,
    /// Fully-assembled blocks the clients received.
    pub blocks_received: u64,
    /// Blocks the clients should have received but did not.
    pub blocks_missing: u64,
    /// Fully-assembled blocks delivered more than once (invariant 1).
    pub dup_blocks: u64,
    /// Injected transient read errors the disks served.
    pub transient_errors: u64,
    /// Deadman declarations, in declaration order.
    pub declares: Vec<ObservedDeclare>,
    /// Span between the earliest and latest lost block (0 without loss).
    pub loss_window_secs: f64,
    /// Every invariant violation (empty = the run is clean).
    pub violations: Vec<String>,
    /// The rendered trace ring (faults inline with protocol reactions).
    pub trace: String,
}

/// One line summarizing the deterministic payload of an outcome — the
/// quantity the chaos sweep prints and the thread-count bit-identity
/// test compares.
pub fn chaos_digest(o: &ChaosOutcome) -> String {
    format!(
        "streams {}  sent {}  received {}  missing {}  dup {}  transient {}  \
         declares {}  loss_window {:.3}s  violations {}",
        o.streams,
        o.blocks_sent,
        o.blocks_received,
        o.blocks_missing,
        o.dup_blocks,
        o.transient_errors,
        o.declares.len(),
        o.loss_window_secs,
        o.violations.len(),
    )
}

/// Runs one chaos campaign: load the system, apply the plan, run to the
/// horizon, then check every invariant.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    // Plans that restripe need spare machines on the floor; provision
    // them automatically so a plan is self-contained (the spares are
    // inert until the cut-over, so a plan without restripes is
    // unaffected by a non-zero `spare_cubs` in its base config).
    let mut tiger = cfg.tiger.clone();
    let spares_needed = cfg
        .plan
        .restripes
        .iter()
        .map(|r| r.add_cubs)
        .max()
        .unwrap_or(0);
    tiger.spare_cubs = tiger.spare_cubs.max(spares_needed);
    let mut sys = TigerSystem::new(tiger.clone());
    sys.enable_trace(cfg.trace_cap);
    let files = populate_catalog(&mut sys, &cfg.catalog);
    // The §6.4 duration estimate, computed from the same catalog the
    // live restriper will plan over (streaming never changes the
    // catalog, so the pre-run plan equals the one `restripe-start`
    // computes).
    let restripe_estimate = cfg.plan.restripes.first().map(|r| {
        let old = tiger.stripe;
        let new = StripeConfig::new(old.num_cubs + r.add_cubs, old.disks_per_cub, old.decluster);
        let plan = RestripePlan::plan(&sys.shared().catalog, old, new);
        // Fastest conceivable drain: bottleneck bytes at the outermost
        // zone rate with the whole NIC — a hard lower bound on any
        // schedule that actually moves the bytes.
        let floor = plan.estimate_duration(tiger.disk.rate_at(0.0), tiger.nic_capacity);
        // The §6.4-style budget: innermost-zone media rate at the
        // pump's half-duty pacing.
        let half_inner =
            Bandwidth::from_bits_per_sec(tiger.disk.rate_at(0.9999).bits_per_sec() / 2);
        let budget = plan.estimate_duration(half_inner, tiger.nic_capacity);
        (floor, budget)
    });
    if let Some(wplan) = &cfg.workload {
        crate::driven::drive_plan(&mut sys, wplan, &files);
    } else {
        let mut chooser = RngTree::new(cfg.tiger.seed).fork("chaos-files", 0);
        let capacity = sys.shared().params.capacity();
        let want = ((capacity as f64) * cfg.load).round() as u32;
        let mut now = SimTime::from_millis(100);
        for _ in 0..want {
            let client = sys.add_client();
            let file = files[chooser.gen_range(0..files.len())];
            sys.request_start(now, client, file);
            now += SimDuration::from_millis(150);
        }
    }
    sys.apply_fault_plan(&cfg.plan);
    sys.run_until(cfg.run_to);

    // Total machines, matching the node numbering `apply_fault_plan`
    // compiled selectors against (striped members plus spares).
    let topo = Topology {
        num_cubs: tiger.total_cubs(),
        num_clients: cfg.tiger.num_clients,
        backup_controller: cfg.tiger.backup_controller,
    };
    let report = sys.all_clients_report();
    let transient_errors: u64 = sys
        .cubs()
        .iter()
        .flat_map(|c| c.disks())
        .map(tiger_disk::Disk::total_transient_errors)
        .sum();
    let declares: Vec<ObservedDeclare> = sys
        .tracer()
        .records()
        .iter()
        .filter_map(|rec| match rec.ev {
            TraceEvent::DeadmanDeclare { failed, silence_ns } => Some(ObservedDeclare {
                at: rec.at,
                declarer: rec.cub,
                failed,
                silence: SimDuration::from_nanos(silence_ns),
            }),
            _ => None,
        })
        .collect();

    let mut violations = Vec::new();
    // Invariant 1: no double delivery. Two sanctioned exceptions, both
    // fencing windows rather than bugs: a freeze that outlasts the
    // deadman timeout (the resumed zombie serves a handful of
    // already-taken-over slots before the fencing reply lands), and a
    // partition (the healed ring's divergent failure views fence live
    // cubs the same way).
    let zombie_window = cfg.plan.process.iter().any(|p| {
        matches!(p, ProcessFault::Freeze { from, until, .. }
            if until.saturating_since(*from) > cfg.tiger.deadman_timeout)
    }) || !cfg.plan.partitions.is_empty();
    if report.dup_blocks > 0 && !zombie_window {
        violations.push(format!(
            "{} blocks were delivered more than once (Tiger never retransmits)",
            report.dup_blocks
        ));
    }
    // Invariant 2: every declaration justified by a genuine stall. The
    // plan declares crashes, freezes, and partitions (the stall algebra
    // separates partitioned pairs); on top of those, fencing cascades
    // and protocol-side power cuts observed in the trace — each closed
    // by that cub's restart — justify the post-heal declarations a
    // partitioned ring produces. Probabilistic drop windows are modeled
    // rather than skipped: a window whose per-pair silence probability
    // (`drop_prob` compounded over the timeout's worth of pings) reaches
    // `DROP_SILENCE_MIN_PROB` counts as a plausible stall for the pair;
    // anything rarer cannot explain a full timeout of silence, so a
    // declaration it would "cover" is still a live cub declared dead.
    let ring_observable = cfg.plan.links.iter().all(|l| l.drop_prob == 0.0);
    let mut observed_stalls: Vec<ObservedStall> = Vec::new();
    for rec in sys.tracer().records() {
        match rec.ev {
            TraceEvent::CubFenced { cub } | TraceEvent::PowerCut { cub } => {
                observed_stalls.push(ObservedStall {
                    cub,
                    from: rec.at,
                    until: SimTime::MAX,
                });
            }
            TraceEvent::CubRestart { cub } => {
                for s in observed_stalls.iter_mut().rev() {
                    if s.cub == cub && s.until == SimTime::MAX {
                        s.until = rec.at;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    // Injected link delay/jitter stretches legitimate ping gaps.
    let injected_delay = cfg
        .plan
        .links
        .iter()
        .map(|l| l.extra_delay + l.extra_jitter)
        .max()
        .unwrap_or(SimDuration::ZERO);
    let grace = cfg.tiger.deadman_interval + cfg.tiger.latency.worst_case() + injected_delay;
    violations.extend(check_deadman_justified_probabilistic(
        &cfg.plan,
        topo,
        &declares,
        &observed_stalls,
        cfg.tiger.deadman_timeout,
        cfg.tiger.deadman_interval,
        grace,
        DROP_SILENCE_MIN_PROB,
    ));
    // Invariant 3: schedule views within the legitimate lead.
    violations.extend(sys.check_view_lead());
    // Invariant 4: a single clean crash loses blocks only inside the
    // detection-plus-takeover window.
    let loss_window_secs = client_loss_window_secs(&sys, cfg.tiger.block_play_time);
    if let Some(bound) = single_crash_bound(cfg) {
        if loss_window_secs > bound.as_secs_f64() {
            violations.push(format!(
                "loss window {loss_window_secs:.3}s exceeds the single-failure bound {bound}",
            ));
        }
    }
    // Invariant 5: rejoin convergence. The covering successor relays
    // hand-back states as they come due, so a rejoined cub's first
    // re-accepted slot must land within the hand-back window plus
    // scheduling slack of its restart. Absence of `rejoin-done` is not a
    // violation — an idle cub has nothing to re-accept — and freezes
    // widen the bound by their longest window (the rejoiner or its
    // partner may be frozen mid-handshake). Partitions and drops delay
    // the relay unboundedly, so the bound is checked only on observable
    // rings.
    if ring_observable && cfg.plan.partitions.is_empty() {
        let longest_freeze = cfg
            .plan
            .process
            .iter()
            .filter_map(|p| match p {
                ProcessFault::Freeze { from, until, .. } => Some(until.saturating_since(*from)),
                _ => None,
            })
            .max()
            .unwrap_or(SimDuration::ZERO);
        let rejoin_bound = cfg.tiger.min_vstate_lead
            + cfg.tiger.forward_interval.mul_u64(2)
            + injected_delay
            + longest_freeze
            + SimDuration::from_secs(2);
        let records = sys.tracer().records();
        for rec in &records {
            let TraceEvent::CubRestart { cub } = rec.ev else {
                continue;
            };
            let done = records.iter().find(|r| {
                r.at >= rec.at && matches!(r.ev, TraceEvent::RejoinDone { cub: c } if c == cub)
            });
            if let Some(done) = done {
                let took = done.at.saturating_since(rec.at);
                if took > rejoin_bound {
                    violations.push(format!(
                        "cub{cub} took {took} to re-accept a slot after its restart at {} \
                         (rejoin bound {rejoin_bound})",
                        rec.at
                    ));
                }
            }
        }
    }
    // Invariant 6: §6.4 restripe duration. A fault-free restripe must
    // drain no faster than the raw bottleneck transfer (the floor) and
    // no slower than the half-duty background estimate times a
    // contention factor (foreground streams own the disk first) plus
    // fixed admission slack. Plans that crash or partition mid-restripe
    // park moves for arbitrary repair windows, so only quiet plans are
    // held to the budget.
    let quiet_restripe = !cfg.plan.restripes.is_empty()
        && cfg.plan.process.is_empty()
        && cfg.plan.partitions.is_empty()
        && cfg.plan.disks.is_empty()
        && cfg.plan.links.is_empty();
    if let (Some((floor, budget)), true) = (restripe_estimate, quiet_restripe) {
        let start = sys.tracer().records().iter().find_map(|r| match r.ev {
            TraceEvent::RestripeStart { moves } => Some((r.at, moves)),
            _ => None,
        });
        let cutover = sys.tracer().records().iter().find_map(|r| match r.ev {
            TraceEvent::RestripeCutover { .. } => Some(r.at),
            _ => None,
        });
        let bound = budget.mul_u64(3) + SimDuration::from_secs(20);
        match (start, cutover) {
            (Some((started, moves)), Some(cut)) if moves > 0 => {
                let elapsed = cut.saturating_since(started);
                if elapsed > bound {
                    violations.push(format!(
                        "restripe took {elapsed}, over the §6.4 budget {bound} \
                         (half-duty estimate {budget})"
                    ));
                }
                if elapsed < floor {
                    violations.push(format!(
                        "restripe finished in {elapsed}, faster than the raw \
                         bottleneck transfer {floor} — blocks were not moved"
                    ));
                }
            }
            // A missing cut-over is only damning when the run gave the
            // budget room to elapse; a horizon shorter than the budget
            // simply did not watch long enough.
            (Some((started, _)), None) if cfg.run_to.saturating_since(started) > bound => {
                violations.push(
                    "restripe never cut over on a fault-free run (moves are parked or lost)"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
    // Omniscient checker + NIC/schedule asserts.
    violations.extend(sys.take_violations());

    let trace = sys.tracer().dump().unwrap_or_default();
    ChaosOutcome {
        streams: sys.controller().active_streams(),
        blocks_sent: sys.metrics().loss.blocks_sent,
        blocks_received: report.blocks_received,
        blocks_missing: report.blocks_missing,
        dup_blocks: report.dup_blocks,
        transient_errors,
        declares,
        loss_window_secs,
        violations,
        trace,
    }
}

/// The loss-window bound, when the plan is exactly one cub crash (the
/// only shape the invariant covers: anything else — partitions, disk
/// faults, correlated cuts — can legitimately widen the window).
fn single_crash_bound(cfg: &ChaosConfig) -> Option<SimDuration> {
    let p = &cfg.plan;
    if !p.links.is_empty() || !p.partitions.is_empty() || !p.disks.is_empty() {
        return None;
    }
    // A crash mid-restripe widens the window: the cut-over fences every
    // viewer and re-inserts it at its high-water mark.
    if !p.restripes.is_empty() {
        return None;
    }
    match p.process.as_slice() {
        [ProcessFault::Crash { .. }] => Some(loss_window_bound(
            cfg.tiger.deadman_timeout,
            cfg.tiger.deadman_interval,
            cfg.tiger.latency.worst_case(),
            cfg.tiger.block_play_time,
        )),
        _ => None,
    }
}

/// The span between the expected arrival times of the earliest and
/// latest block any client lost (the §5 "inspected the clients' logs"
/// reconstruction, shared with the reconfiguration experiment).
fn client_loss_window_secs(sys: &TigerSystem, bpt: SimDuration) -> f64 {
    let bpt = bpt.as_secs_f64();
    let mut earliest: Option<f64> = None;
    let mut latest: Option<f64> = None;
    for client in sys.clients() {
        for (_, v) in client.viewers() {
            let Some(first) = v.first_block_at else {
                continue;
            };
            let first = first.as_secs_f64();
            let Some(high) = v.high_water else { continue };
            for b in 0..=high {
                if !v.block_received(b) {
                    let expected = first + f64::from(b) * bpt;
                    earliest = Some(earliest.map_or(expected, |e: f64| e.min(expected)));
                    latest = Some(latest.map_or(expected, |l: f64| l.max(expected)));
                }
            }
        }
    }
    match (earliest, latest) {
        (Some(e), Some(l)) => l - e,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_faults::NodeSel;

    #[test]
    fn clean_single_crash_passes_every_invariant() {
        let plan = FaultPlan::new().crash(1, SimTime::from_secs(30));
        let out = run_chaos(&ChaosConfig::quick(plan));
        assert!(out.streams > 0);
        assert!(!out.declares.is_empty(), "the crash was never detected");
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.trace.contains("power-cut"));
    }

    #[test]
    fn control_duplication_does_not_double_deliver_blocks() {
        let plan = FaultPlan::new().duplicate_msgs(
            NodeSel::Any,
            NodeSel::Any,
            0.5,
            SimTime::ZERO,
            SimTime::from_secs(90),
        );
        let out = run_chaos(&ChaosConfig::quick(plan));
        assert_eq!(out.dup_blocks, 0, "data plane must never duplicate");
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.trace.contains("net-dup"));
    }

    #[test]
    fn freeze_past_deadman_fences_the_zombie() {
        // Frozen well past the 2s deadman timeout: the cub is declared
        // dead and taken over; when it resumes and pings, the successor
        // replies with a FailureNotice naming the zombie, which fences
        // itself. The trace must show the whole arc.
        let plan = FaultPlan::new().freeze(1, SimTime::from_secs(30), SimTime::from_secs(40));
        let out = run_chaos(&ChaosConfig::quick(plan));
        assert!(!out.declares.is_empty(), "the stall was never declared");
        assert!(out.trace.contains("cub-freeze"));
        assert!(out.trace.contains("cub-resume"));
        assert!(out.trace.contains("cub-fenced"), "zombie was not fenced");
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn crash_and_restart_rejoins_within_bound() {
        // A crash followed by a restart: the rejoin handshake must show
        // in the trace, the convergence invariant must hold, and the
        // fresh monitoring baseline must keep the rejoined cub from
        // being re-declared dead.
        let plan = FaultPlan::new()
            .crash(1, SimTime::from_secs(20))
            .restart(1, SimTime::from_secs(40));
        let out = run_chaos(&ChaosConfig::quick(plan));
        assert!(out.trace.contains("cub-restart"), "restart never traced");
        assert!(
            out.trace.contains("rejoin-done"),
            "rejoined cub never re-accepted a slot"
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(
            !out.declares
                .iter()
                .any(|d| d.failed == 1 && d.at > SimTime::from_secs(40)),
            "rejoined cub re-declared dead after its restart"
        );
    }

    #[test]
    fn quiet_restripe_meets_the_duration_budget() {
        // A fault-free mid-run restripe: the duration invariant (floor
        // and §6.4 budget) and every streaming invariant must hold, and
        // the cut-over must appear in the trace.
        let plan = FaultPlan::new().restripe(SimTime::from_secs(10), 2);
        let mut cfg = ChaosConfig::quick(plan);
        cfg.run_to = SimTime::from_secs(200);
        let out = run_chaos(&cfg);
        assert!(out.trace.contains("restripe-start"));
        assert!(
            out.trace.contains("restripe-cutover"),
            "restripe never cut over"
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.dup_blocks, 0, "cut-over re-served a block");
    }

    #[test]
    fn crash_mid_restripe_resumes_after_restart() {
        // A source cub dies with moves in flight and restarts later: the
        // plan parks (restripe-stall allowed), resumes, and still cuts
        // over; the duration budget is waived but every other invariant
        // holds.
        let plan = FaultPlan::new()
            .restripe(SimTime::from_secs(10), 2)
            .crash(1, SimTime::from_secs(12))
            .restart(1, SimTime::from_secs(30));
        let mut cfg = ChaosConfig::quick(plan);
        cfg.run_to = SimTime::from_secs(200);
        let out = run_chaos(&cfg);
        assert!(
            out.trace.contains("restripe-cutover"),
            "crash mid-restripe lost the plan"
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn transient_disk_errors_surface_in_outcome_and_trace() {
        let plan = FaultPlan::new().disk_transient(
            1,
            0,
            1.0,
            SimTime::from_secs(20),
            SimTime::from_secs(30),
        );
        let out = run_chaos(&ChaosConfig::quick(plan));
        assert!(out.transient_errors > 0, "no transient errors served");
        assert!(out.blocks_missing > 0, "errored reads should lose blocks");
        assert!(out.trace.contains("disk-transient"));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }
}
