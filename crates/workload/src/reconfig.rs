//! The §5 reconfiguration experiment.
//!
//! "A final measurement was the time for the system to reconfigure from a
//! cub failure. We loaded the system to 50% of capacity and cut the power
//! to a cub. We inspected the clients' logs and found about 8 seconds
//! between the earliest and latest lost block."

use tiger_core::{TigerConfig, TigerSystem};
use tiger_faults::FaultPlan;
use tiger_layout::CubId;
use tiger_sim::{RngTree, SimDuration, SimTime};

use crate::catalog::{populate_catalog, CatalogSpec};

/// Configuration of the power-cut experiment.
#[derive(Clone, Debug)]
pub struct ReconfigConfig {
    /// System configuration.
    pub tiger: TigerConfig,
    /// Content catalog.
    pub catalog: CatalogSpec,
    /// Fraction of capacity to load before the cut (0.5 in the paper).
    pub load: f64,
    /// The cub whose power is cut.
    pub victim: CubId,
    /// When to cut power (after the load has settled).
    pub cut_at: SimTime,
    /// How long to observe after the cut.
    pub observe: SimDuration,
}

impl ReconfigConfig {
    /// The paper's setup at a given system scale.
    pub fn sosp97(tiger: TigerConfig) -> Self {
        ReconfigConfig {
            tiger,
            catalog: CatalogSpec::sosp97(),
            load: 0.5,
            victim: CubId(5),
            cut_at: SimTime::from_secs(120),
            observe: SimDuration::from_secs(120),
        }
    }
}

/// Result of the power-cut experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct ReconfigResult {
    /// Expected arrival time of the earliest block any client lost.
    pub earliest_loss: Option<f64>,
    /// Expected arrival time of the latest block any client lost.
    pub latest_loss: Option<f64>,
    /// The §5 headline: seconds between the earliest and latest lost block.
    pub loss_window_secs: f64,
    /// Total blocks lost across all clients.
    pub blocks_lost: u64,
    /// When the deadman protocol detected the failure (seconds after the
    /// cut).
    pub detection_secs: Option<f64>,
    /// Streams playing when the power was cut.
    pub streams: u32,
}

/// Runs the power-cut experiment.
pub fn run_reconfig(cfg: &ReconfigConfig) -> ReconfigResult {
    run_reconfig_impl(cfg, None)
}

/// Runs the power-cut experiment with the failure expressed as a
/// declarative fault plan instead of the direct `fail_cub_at` call. With
/// the plan `crash <victim> at=<cut_at>` this is the same experiment —
/// the equivalence test in `tests/faults.rs` holds the two paths to
/// identical results, which is what pins the fault subsystem to the §5
/// measurement.
pub fn run_reconfig_with_plan(cfg: &ReconfigConfig, plan: &FaultPlan) -> ReconfigResult {
    run_reconfig_impl(cfg, Some(plan))
}

fn run_reconfig_impl(cfg: &ReconfigConfig, plan: Option<&FaultPlan>) -> ReconfigResult {
    let mut sys = TigerSystem::new(cfg.tiger.clone());
    let files = populate_catalog(&mut sys, &cfg.catalog);
    let mut chooser = RngTree::new(cfg.tiger.seed).fork("reconfig-files", 0);

    let capacity = sys.shared().params.capacity();
    let want = ((capacity as f64) * cfg.load).round() as u32;
    let mut now = SimTime::from_millis(100);
    for _ in 0..want {
        let client = sys.add_client();
        let file = files[chooser.gen_range(0..files.len())];
        sys.request_start(now, client, file);
        now += SimDuration::from_millis(150);
    }
    assert!(now < cfg.cut_at, "load phase must finish before the cut");
    match plan {
        None => sys.fail_cub_at(cfg.cut_at, cfg.victim),
        Some(p) => sys.apply_fault_plan(p),
    }
    sys.run_until(cfg.cut_at + cfg.observe);

    let streams = sys.controller().active_streams();

    // Inspect the clients' logs: reconstruct each missing block's expected
    // arrival time from the viewer's first-block time and the block play
    // time (blocks arrive equitemporally once started).
    let bpt = cfg.tiger.block_play_time.as_secs_f64();
    let mut earliest: Option<f64> = None;
    let mut latest: Option<f64> = None;
    let mut lost = 0u64;
    for client in sys.clients() {
        for (_, v) in client.viewers() {
            let Some(first) = v.first_block_at else {
                continue;
            };
            let first = first.as_secs_f64();
            let high = match v.high_water {
                Some(h) => h,
                None => continue,
            };
            for b in 0..=high {
                if !v.block_received(b) {
                    let expected = first + f64::from(b) * bpt;
                    lost += 1;
                    earliest = Some(earliest.map_or(expected, |e: f64| e.min(expected)));
                    latest = Some(latest.map_or(expected, |l: f64| l.max(expected)));
                }
            }
        }
    }

    let detection_secs = sys
        .metrics()
        .failure_detections
        .first()
        .map(|&(t, _)| t.saturating_since(cfg.cut_at).as_secs_f64());

    ReconfigResult {
        earliest_loss: earliest,
        latest_loss: latest,
        loss_window_secs: match (earliest, latest) {
            (Some(e), Some(l)) => l - e,
            _ => 0.0,
        },
        blocks_lost: lost,
        detection_secs,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_window_tracks_detection_time() {
        let mut tiger = TigerConfig::small_test();
        tiger.disk = tiger.disk.without_blips();
        tiger.deadman_timeout = SimDuration::from_millis(2_000);
        let cfg = ReconfigConfig {
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(200), 4),
            load: 0.5,
            victim: CubId(1),
            cut_at: SimTime::from_secs(30),
            observe: SimDuration::from_secs(60),
            tiger,
        };
        let result = run_reconfig(&cfg);
        assert!(result.streams > 0);
        assert!(result.detection_secs.expect("detected") < 4.0);
        // Some blocks are lost in the detection window, and the window is
        // bounded: detection + propagation, not tens of seconds.
        assert!(result.blocks_lost > 0, "expected losses in the window");
        assert!(
            result.loss_window_secs < 10.0,
            "loss window {} too wide",
            result.loss_window_secs
        );
    }
}
