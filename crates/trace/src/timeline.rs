//! Human-readable rendering of parsed traces: per-cub / per-slot
//! timelines, and a first-divergence diff of two traces.
//!
//! Rendering is purely a function of the input records — no clocks, no
//! environment — so timelines are golden-testable and byte-stable across
//! machines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{TraceRecord, CTRL};

/// One event as a timeline line body (everything after the location
/// prefix): `[seq] <time> <name> <fields>`, with the `viewer`/`inc` pair
/// folded to the protocol's `viewerN#M` spelling and `u32::MAX` routing
/// fields shown as `none`.
fn event_body(rec: &TraceRecord) -> String {
    let mut s = String::new();
    let _ = write!(s, "[{}] {} {}", rec.seq, rec.at, rec.ev.name());
    let fields = rec.ev.fields();
    let inc = fields.iter().find(|&&(k, _)| k == "inc").map(|&(_, v)| v);
    for &(k, v) in &fields {
        match k {
            "inc" if fields.iter().any(|&(k2, _)| k2 == "viewer") => {}
            "viewer" => {
                let _ = write!(s, " viewer{v}");
                if let Some(inc) = inc {
                    let _ = write!(s, "#{inc}");
                }
            }
            "redundant" | "target" if v == u64::from(u32::MAX) => {
                let _ = write!(s, " {k}=none");
            }
            _ => {
                let _ = write!(s, " {k}={v}");
            }
        }
    }
    s
}

fn cub_label(cub: u32) -> String {
    if cub == CTRL {
        "ctrl".to_string()
    } else {
        format!("cub{cub}")
    }
}

/// Wire names of fault-injection events (plus the pre-existing
/// `power-cut`), cross-referenced into their own timeline section so
/// injected faults read inline, above the per-cub protocol reactions.
const FAULT_EVENTS: &[&str] = &[
    "power-cut",
    "net-drop",
    "net-delay",
    "net-dup",
    "disk-transient",
    "disk-death",
    "cub-freeze",
    "cub-resume",
    "cub-fenced",
    "fault-start",
    "fault-end",
    "cub-restart",
    "restripe-start",
    "restripe-stall",
    "restripe-cutover",
];

fn is_fault(rec: &TraceRecord) -> bool {
    FAULT_EVENTS.contains(&rec.ev.name())
}

fn slot_of(rec: &TraceRecord) -> Option<u64> {
    rec.ev
        .fields()
        .iter()
        .find(|&&(k, _)| k == "slot")
        .map(|&(_, v)| v)
}

/// Renders a full timeline: a header, a faults section when the run
/// injected any (drop/delay/partition/stall markers, chronologically),
/// one section per recording cub (controller last), then one section per
/// schedule slot touched, cross-referencing every event that names that
/// slot. Events stay in `seq` order within every section.
pub fn render_timeline(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    let mut by_cub: BTreeMap<u32, Vec<&TraceRecord>> = BTreeMap::new();
    let mut by_slot: BTreeMap<u64, Vec<&TraceRecord>> = BTreeMap::new();
    let mut faults: Vec<&TraceRecord> = Vec::new();
    for rec in records {
        by_cub.entry(rec.cub).or_default().push(rec);
        if let Some(slot) = slot_of(rec) {
            by_slot.entry(slot).or_default().push(rec);
        }
        if is_fault(rec) {
            faults.push(rec);
        }
    }
    let _ = writeln!(
        out,
        "== tiger trace timeline: {} events, {} cubs, {} slots ==",
        records.len(),
        by_cub.keys().filter(|&&c| c != CTRL).count(),
        by_slot.len()
    );
    if !faults.is_empty() {
        let _ = writeln!(out, "-- faults ({} events) --", faults.len());
        for rec in &faults {
            let _ = writeln!(out, "  {} {}", cub_label(rec.cub), event_body(rec));
        }
    }
    // BTreeMap order puts CTRL (u32::MAX) last automatically.
    for (&cub, recs) in &by_cub {
        let _ = writeln!(out, "-- {} ({} events) --", cub_label(cub), recs.len());
        for rec in recs {
            let _ = writeln!(out, "  {}", event_body(rec));
        }
    }
    for (&slot, recs) in &by_slot {
        let _ = writeln!(out, "-- slot {slot} ({} events) --", recs.len());
        for rec in recs {
            let _ = writeln!(out, "  {} {}", cub_label(rec.cub), event_body(rec));
        }
    }
    out
}

/// Normalized comparison key for diffing: location + event, but not
/// `seq` (two rings of different capacity drop different prefixes, which
/// would offset every sequence number without being a real divergence).
fn diff_key(rec: &TraceRecord) -> String {
    let mut s = format!(
        "{} {} {}",
        rec.at.as_nanos(),
        cub_label(rec.cub),
        rec.ev.name()
    );
    for (k, v) in rec.ev.fields() {
        let _ = write!(s, " {k}={v}");
    }
    s
}

/// Diffs two traces of the same scenario (e.g. two scheduler variants on
/// one seed): reports the first index where the event streams diverge,
/// with `context` matching lines before it and up to `context + 1`
/// diverging lines from each side (`-` = first trace, `+` = second).
/// Sequence numbers are ignored (see `diff_key`); identical streams
/// produce a one-line "traces identical" report.
pub fn render_diff(a: &[TraceRecord], b: &[TraceRecord], context: usize) -> String {
    let ka: Vec<String> = a.iter().map(diff_key).collect();
    let kb: Vec<String> = b.iter().map(diff_key).collect();
    let common = ka.iter().zip(&kb).take_while(|(x, y)| x == y).count();
    if common == ka.len() && common == kb.len() {
        return format!("traces identical ({} events)\n", ka.len());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "traces diverge at event {common} ({} vs {} events)",
        ka.len(),
        kb.len()
    );
    for key in &ka[common.saturating_sub(context)..common] {
        let _ = writeln!(out, "  {key}");
    }
    for key in ka.iter().skip(common).take(context + 1) {
        let _ = writeln!(out, "- {key}");
    }
    if common == ka.len() && common < kb.len() {
        let _ = writeln!(out, "- <end of first trace>");
    }
    for key in kb.iter().skip(common).take(context + 1) {
        let _ = writeln!(out, "+ {key}");
    }
    if common == kb.len() && common < ka.len() {
        let _ = writeln!(out, "+ <end of second trace>");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use tiger_sim::SimTime;

    fn rec(seq: u64, cub: u32, ev: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            at: SimTime::from_nanos(seq * 1_000_000),
            cub,
            ev,
        }
    }

    fn sample() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                CTRL,
                TraceEvent::CtrlRouteStart {
                    viewer: 1,
                    inc: 0,
                    primary: 0,
                    redundant: u32::MAX,
                },
            ),
            rec(
                1,
                0,
                TraceEvent::InsertCommit {
                    slot: 3,
                    viewer: 1,
                    inc: 0,
                    disk: 0,
                },
            ),
            rec(
                2,
                0,
                TraceEvent::VsForward {
                    dst: 1,
                    count: 1,
                    second: false,
                },
            ),
            rec(
                3,
                1,
                TraceEvent::VsAccept {
                    slot: 3,
                    viewer: 1,
                    inc: 0,
                    play_seq: 0,
                    position: 0,
                },
            ),
        ]
    }

    #[test]
    fn timeline_groups_by_cub_and_slot() {
        let text = render_timeline(&sample());
        assert!(text.contains("4 events, 2 cubs, 1 slots"), "{text}");
        assert!(text.contains("-- cub0 (2 events) --"), "{text}");
        assert!(text.contains("-- ctrl (1 events) --"), "{text}");
        assert!(text.contains("-- slot 3 (2 events) --"), "{text}");
        // viewer/inc folding and MAX routing rendering.
        assert!(text.contains("viewer1#0"), "{text}");
        assert!(text.contains("redundant=none"), "{text}");
        // The controller section comes after the cubs.
        assert!(
            text.find("-- cub1").unwrap() < text.find("-- ctrl").unwrap(),
            "{text}"
        );
    }

    #[test]
    fn fault_events_get_their_own_section() {
        // No faults: no section at all.
        assert!(!render_timeline(&sample()).contains("-- faults"));

        let mut records = sample();
        records.push(rec(
            4,
            CTRL,
            TraceEvent::NetDrop {
                src: 1,
                dst: 3,
                partition: true,
            },
        ));
        records.push(rec(5, CTRL, TraceEvent::CubFreeze { cub: 1 }));
        let text = render_timeline(&records);
        assert!(text.contains("-- faults (2 events) --"), "{text}");
        assert!(
            text.contains("ctrl [4] 0.004s net-drop src=1 dst=3 partition=1"),
            "{text}"
        );
        // The faults section sits between the header and the cub sections.
        assert!(
            text.find("-- faults").unwrap() < text.find("-- cub0").unwrap(),
            "{text}"
        );
    }

    #[test]
    fn diff_reports_first_divergence_and_identity() {
        let a = sample();
        assert_eq!(render_diff(&a, &a, 2), "traces identical (4 events)\n");

        let mut b = sample();
        b[3].ev = TraceEvent::VsDuplicate {
            slot: 3,
            viewer: 1,
            inc: 0,
            play_seq: 0,
        };
        let text = render_diff(&a, &b, 2);
        assert!(text.contains("diverge at event 3"), "{text}");
        assert!(text.contains("- 3000000 cub1 vs-accept"), "{text}");
        assert!(text.contains("+ 3000000 cub1 vs-duplicate"), "{text}");

        // A truncated second trace reports its end rather than inventing
        // a diverging line.
        let text = render_diff(&a, &a[..3], 1);
        assert!(text.contains("diverge at event 3"), "{text}");
        assert!(text.contains("+ <end of second trace>"), "{text}");
    }

    #[test]
    fn diff_ignores_seq_offsets() {
        let a = sample();
        let mut b = sample();
        for r in &mut b {
            r.seq += 100; // same events, ring dropped an earlier prefix
        }
        assert_eq!(render_diff(&a, &b, 2), "traces identical (4 events)\n");
    }
}
