//! The trace event vocabulary and its on-disk line format.
//!
//! Events carry primitive fields (`u32`/`u64`/`bool`) rather than the
//! layout/sched newtypes so that `tiger-trace` sits below every protocol
//! crate in the dependency graph; call sites convert with `.raw()`. The
//! field names keep the protocol vocabulary (`slot`, `viewer`, `inc`,
//! `disk`) so dumps read like the paper.
//!
//! A dump is plain text, one [`TraceRecord`] per line:
//!
//! ```text
//! <seq> <at-nanos> c<cub> <event-name> <key>=<value> ...
//! ```
//!
//! with `ctrl` in place of `c<cub>` for controller-side events
//! ([`CTRL`]). Lines starting with `#` are comments. The format is
//! lossless: [`TraceRecord::parse_line`] inverts [`TraceRecord::to_line`]
//! exactly, which is what lets `trace_timeline` re-render and diff dumps
//! long after the run that produced them.

use std::fmt::Write as _;

use tiger_sim::SimTime;

/// Pseudo cub id for events recorded by the controller (which is not a
/// cub but participates in the protocol: start routing, deschedule
/// fan-out). Rendered as `ctrl` in dumps.
pub const CTRL: u32 = u32::MAX;

/// Field value conversion for the wire format: every event field is one
/// of `u32`/`u64`/`bool`, carried as a decimal `u64` in dump lines
/// (`bool` as `0`/`1`).
trait Field: Copy {
    fn into_raw(self) -> u64;
    fn from_raw(v: u64) -> Self;
}

impl Field for u64 {
    fn into_raw(self) -> u64 {
        self
    }
    fn from_raw(v: u64) -> Self {
        v
    }
}

impl Field for u32 {
    fn into_raw(self) -> u64 {
        u64::from(self)
    }
    fn from_raw(v: u64) -> Self {
        v as u32
    }
}

impl Field for bool {
    fn into_raw(self) -> u64 {
        u64::from(self)
    }
    fn from_raw(v: u64) -> Self {
        v != 0
    }
}

macro_rules! trace_events {
    ($(
        $(#[$meta:meta])*
        $variant:ident => $name:literal { $( $field:ident : $ty:ty ),* $(,)? },
    )*) => {
        /// One structured protocol event. See the variant docs for which
        /// handler records each; the kebab-case name after `=>` in the
        /// source is the wire name used in dump lines.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub enum TraceEvent {
            $( $(#[$meta])* $variant { $( $field: $ty ),* }, )*
        }

        impl TraceEvent {
            /// The wire name (kebab-case) of this event.
            pub fn name(&self) -> &'static str {
                match self {
                    $( TraceEvent::$variant { .. } => $name, )*
                }
            }

            /// The event's fields as `(key, raw value)` pairs, in
            /// declaration order (which is the dump-line order).
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                match *self {
                    $( TraceEvent::$variant { $( $field ),* } => {
                        vec![ $( (stringify!($field), Field::into_raw($field)) ),* ]
                    } )*
                }
            }

            /// Rebuilds an event from its wire name and `(key, value)`
            /// pairs; `None` if the name is unknown or a field is absent.
            pub fn from_parts(name: &str, fields: &[(String, u64)]) -> Option<TraceEvent> {
                let get = |key: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| k.as_str() == key)
                        .map(|&(_, v)| v)
                };
                match name {
                    $( $name => Some(TraceEvent::$variant {
                        $( $field: Field::from_raw(get(stringify!($field))?) ),*
                    }), )*
                    _ => None,
                }
            }
        }
    };
}

trace_events! {
    /// A forward-pass batch of viewer states sent to the ring successor
    /// (`second` = the redundant second-successor copy of §4.1.1).
    VsForward => "vs-forward" { dst: u32, count: u32, second: bool },
    /// First sighting of a viewer state: accepted into the schedule view.
    VsAccept => "vs-accept" { slot: u32, viewer: u64, inc: u32, play_seq: u32, position: u64 },
    /// A viewer state that arrived again (double-forwarding) and was
    /// dropped idempotently.
    VsDuplicate => "vs-duplicate" { slot: u32, viewer: u64, inc: u32, play_seq: u32 },
    /// A viewer state refused because a deschedule hold covers its slot.
    VsBlocked => "vs-blocked" { slot: u32, viewer: u64, inc: u32 },
    /// A viewer state retained as shadow state only (not locally served).
    VsShadow => "vs-shadow" { slot: u32, viewer: u64, inc: u32 },
    /// A viewer state refused because another instance owns the slot.
    VsConflict => "vs-conflict" { slot: u32, viewer: u64, inc: u32 },
    /// A viewer state discarded as too old to be useful (outside the
    /// vstate lead window).
    VsLate => "vs-late" { slot: u32, viewer: u64, inc: u32, play_seq: u32 },
    /// A deschedule applied: `first` = first time this cub saw it,
    /// `killed` = active services it terminated, `hops_left` = remaining
    /// ring forwards.
    DeschedApply => "desched-apply" { slot: u32, viewer: u64, inc: u32, first: bool, killed: u32, hops_left: u32 },
    /// A deschedule hold aged out of the view (hold expiry, §4.1.2).
    DeschedExpire => "desched-expire" { slot: u32, viewer: u64, inc: u32 },
    /// An insert attempt that found a free owned slot and committed.
    InsertCommit => "insert-commit" { slot: u32, viewer: u64, inc: u32, disk: u32 },
    /// An insert attempt that found no free owned slot in its window.
    InsertMiss => "insert-miss" { viewer: u64, inc: u32, disk: u32 },
    /// A deadman ping sent to the ring successor.
    DeadmanPing => "deadman-ping" { to: u32 },
    /// A deadman check that declared the predecessor failed after
    /// `silence_ns` of silence (strictly greater than the timeout).
    DeadmanDeclare => "deadman-declare" { failed: u32, silence_ns: u64 },
    /// A failure notice received (or self-originated) for a cub.
    FailureNotice => "failure-notice" { failed: u32 },
    /// This cub, as acting successor, took over schedule ownership from
    /// a failed cub.
    MirrorTakeover => "mirror-takeover" { failed_cub: u32 },
    /// A mirror viewer state fabricated to cover a failed disk's slot.
    MirrorCreate => "mirror-create" { slot: u32, viewer: u64, inc: u32, failed_disk: u32 },
    /// A mirror viewer state accepted for service of a declustered piece.
    MirrorAccept => "mirror-accept" { slot: u32, viewer: u64, inc: u32, piece: u32 },
    /// Coded-backend repair: the acting successor re-drove a dead home's
    /// slot by choosing `k` surviving shard holders (any-k-of-2k decode
    /// replaces the fixed mirror-partner lookup).
    CodedRepair => "coded-repair" { slot: u32, viewer: u64, inc: u32, failed_disk: u32 },
    /// A coded shard served while the block's home cub is believed
    /// failed — the degraded-read path of the coded backend.
    DegradedPieceRead => "degraded-piece-read" { slot: u32, viewer: u64, inc: u32, shard: u32 },
    /// A block read issued to a disk.
    DiskIssue => "disk-issue" { slot: u32, viewer: u64, inc: u32, disk: u32 },
    /// A block read completed.
    DiskDone => "disk-done" { slot: u32, viewer: u64, inc: u32 },
    /// A network send came due (`ok` = the block was ready in buffer).
    SendDue => "send-due" { slot: u32, viewer: u64, inc: u32, ok: bool },
    /// A network send completed.
    SendDone => "send-done" { slot: u32, viewer: u64, inc: u32 },
    /// Controller routed a start request (`redundant` = `u32::MAX` when
    /// no second copy was sent).
    CtrlRouteStart => "ctrl-route-start" { viewer: u64, inc: u32, primary: u32, redundant: u32 },
    /// Controller launched a deschedule toward the owning cub.
    CtrlRouteDesched => "ctrl-route-desched" { viewer: u64, inc: u32, slot: u32, target: u32 },
    /// A cub was power-cut by the simulation (fault injection).
    PowerCut => "power-cut" { cub: u32 },
    /// Fault injection dropped a message on the `src -> dst` link
    /// (`partition` = a scheduled cut, not a probabilistic loss).
    NetDrop => "net-drop" { src: u32, dst: u32, partition: bool },
    /// Fault injection delayed a message by `extra_ns` beyond its sampled
    /// latency.
    NetDelay => "net-delay" { src: u32, dst: u32, extra_ns: u64 },
    /// Fault injection delivered a control message twice.
    NetDup => "net-dup" { src: u32, dst: u32 },
    /// Fault injection failed one disk read transiently (the disk stays
    /// alive; the block is covered by mirror/failover accounting).
    DiskTransient => "disk-transient" { slot: u32, viewer: u64, inc: u32, disk: u32 },
    /// Fault injection killed one disk for good — distinct from a cub
    /// power-cut: the cub keeps running and pinging.
    DiskDeath => "disk-death" { cub: u32, disk: u32 },
    /// Fault injection froze a cub: it processes nothing until resume.
    CubFreeze => "cub-freeze" { cub: u32 },
    /// A frozen cub resumed and works through its deferred events.
    CubResume => "cub-resume" { cub: u32 },
    /// A cub that learned it was declared dead while stalled fenced
    /// itself off (its streams are already covered by the successor).
    CubFenced => "cub-fenced" { cub: u32 },
    /// A windowed fault clause (link/partition/disk window) opened.
    FaultStart => "fault-start" { clause: u32 },
    /// A windowed fault clause closed (partitions heal here).
    FaultEnd => "fault-end" { clause: u32 },
    /// A failed/fenced cub restarted with empty schedule state and began
    /// the rejoin protocol.
    CubRestart => "cub-restart" { cub: u32 },
    /// A neighbor granted `count` schedule records to a rejoining cub
    /// (the bounded-view exchange of the rejoin protocol).
    RejoinGrant => "rejoin-grant" { to: u32, count: u32 },
    /// A rejoined cub sent its first primary block: its schedule slice is
    /// warm again and mirror catch-up may end.
    RejoinDone => "rejoin-done" { cub: u32 },
    /// A ring predecessor replayed `count` retired-log tail entries to a
    /// rejoining cub (`to`), advanced to their next due positions — the
    /// sub-interval rejoin path (§2.3 gap bridging applied to rejoin).
    RetiredReplay => "retired-replay" { to: u32, count: u32 },
    /// A live restripe began executing `moves` background block moves.
    RestripeStart => "restripe-start" { moves: u32 },
    /// A restripe pass found every remaining move blocked (dead or
    /// partitioned endpoints); `pending` moves wait for recovery.
    RestripeStall => "restripe-stall" { pending: u32 },
    /// All moves committed: the system cut over to the new stripe layout
    /// after moving `moved` blocks.
    RestripeCutover => "restripe-cutover" { moved: u32 },
    /// A shrink drain finished for one departing cub: all `moved` of its
    /// primary blocks have landed on survivors via the mirror lane.
    ShrinkDrain => "shrink-drain" { cub: u32, moved: u32 },
    /// A drained cub was fenced out of the stripe at shrink cut-over and
    /// returned to the spare pool.
    ShrinkFence => "shrink-fence" { cub: u32 },
    /// A registered spare finished absorbing all `count` shadow copies of
    /// one exposed decluster span — the mirror pieces of index `piece`
    /// homed on failed `disk` — and now serves that span as interim
    /// mirror capacity while awaiting cut-over. Traced per span, not per
    /// disk: spans whose surviving source died mid-copy park forever.
    SpareShadow => "spare-shadow" { spare: u32, disk: u32, piece: u32, count: u32 },
    /// A workload plan's flash crowd reached its onset: demand on `title`
    /// surges to `peak_x10`/10 × its base rate (recorded by the workload
    /// driver, not the system — a timeline marker for correlating churn).
    WorkgenBurst => "workgen-burst" { title: u32, peak_x10: u32 },
    /// A viewer's session machine restarted delivery: `kind` 1 = resume
    /// after a pause (at the high-water mark), 2 = seek. `to_block` is
    /// where the new incarnation `inc` starts.
    SessionTransition => "session-transition" { viewer: u64, inc: u32, kind: u32, to_block: u32 },
}

/// One recorded event: global ring sequence number, simulation time, and
/// the cub (or [`CTRL`]) that recorded it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic per-run sequence number (survives ring wraparound, so
    /// gaps in a dump reveal how many events were dropped).
    pub seq: u64,
    /// Simulation time of the event.
    pub at: SimTime,
    /// Recording cub, or [`CTRL`].
    pub cub: u32,
    /// The event itself.
    pub ev: TraceEvent,
}

impl TraceRecord {
    /// Renders the record as one dump line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{} {} ", self.seq, self.at.as_nanos());
        if self.cub == CTRL {
            s.push_str("ctrl");
        } else {
            let _ = write!(s, "c{}", self.cub);
        }
        let _ = write!(s, " {}", self.ev.name());
        for (k, v) in self.ev.fields() {
            let _ = write!(s, " {k}={v}");
        }
        s
    }

    /// Parses one dump line; `None` on any malformation.
    pub fn parse_line(line: &str) -> Option<TraceRecord> {
        let mut it = line.split_ascii_whitespace();
        let seq = it.next()?.parse().ok()?;
        let at = SimTime::from_nanos(it.next()?.parse().ok()?);
        let cub_tok = it.next()?;
        let cub = if cub_tok == "ctrl" {
            CTRL
        } else {
            cub_tok.strip_prefix('c')?.parse().ok()?
        };
        let name = it.next()?;
        let mut fields = Vec::new();
        for kv in it {
            let (k, v) = kv.split_once('=')?;
            fields.push((k.to_string(), v.parse().ok()?));
        }
        let ev = TraceEvent::from_parts(name, &fields)?;
        Some(TraceRecord { seq, at, cub, ev })
    }
}

/// Parses a whole dump (as produced by `Tracer::dump`), skipping blank
/// and `#`-comment lines. Errors name the first offending line.
pub fn parse_dump(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match TraceRecord::parse_line(line) {
            Some(rec) => out.push(rec),
            None => return Err(format!("unparseable trace line {}: {line:?}", i + 1)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<(u32, TraceEvent)> {
        vec![
            (
                0,
                TraceEvent::VsForward {
                    dst: 1,
                    count: 3,
                    second: false,
                },
            ),
            (
                1,
                TraceEvent::VsAccept {
                    slot: 7,
                    viewer: 4,
                    inc: 0,
                    play_seq: 2,
                    position: 19,
                },
            ),
            (
                1,
                TraceEvent::VsDuplicate {
                    slot: 7,
                    viewer: 4,
                    inc: 0,
                    play_seq: 2,
                },
            ),
            (
                1,
                TraceEvent::VsBlocked {
                    slot: 7,
                    viewer: 4,
                    inc: 1,
                },
            ),
            (
                2,
                TraceEvent::VsShadow {
                    slot: 9,
                    viewer: 5,
                    inc: 0,
                },
            ),
            (
                2,
                TraceEvent::VsConflict {
                    slot: 9,
                    viewer: 6,
                    inc: 0,
                },
            ),
            (
                2,
                TraceEvent::VsLate {
                    slot: 9,
                    viewer: 6,
                    inc: 0,
                    play_seq: 40,
                },
            ),
            (
                0,
                TraceEvent::DeschedApply {
                    slot: 3,
                    viewer: 4,
                    inc: 0,
                    first: true,
                    killed: 1,
                    hops_left: 5,
                },
            ),
            (
                0,
                TraceEvent::DeschedExpire {
                    slot: 3,
                    viewer: 4,
                    inc: 0,
                },
            ),
            (
                3,
                TraceEvent::InsertCommit {
                    slot: 11,
                    viewer: 8,
                    inc: 2,
                    disk: 6,
                },
            ),
            (
                3,
                TraceEvent::InsertMiss {
                    viewer: 8,
                    inc: 2,
                    disk: 6,
                },
            ),
            (0, TraceEvent::DeadmanPing { to: 1 }),
            (
                2,
                TraceEvent::DeadmanDeclare {
                    failed: 1,
                    silence_ns: 5_000_000_001,
                },
            ),
            (2, TraceEvent::FailureNotice { failed: 1 }),
            (2, TraceEvent::MirrorTakeover { failed_cub: 1 }),
            (
                2,
                TraceEvent::MirrorCreate {
                    slot: 5,
                    viewer: 4,
                    inc: 0,
                    failed_disk: 1,
                },
            ),
            (
                3,
                TraceEvent::MirrorAccept {
                    slot: 5,
                    viewer: 4,
                    inc: 0,
                    piece: 1,
                },
            ),
            (
                2,
                TraceEvent::CodedRepair {
                    slot: 5,
                    viewer: 4,
                    inc: 0,
                    failed_disk: 1,
                },
            ),
            (
                3,
                TraceEvent::DegradedPieceRead {
                    slot: 5,
                    viewer: 4,
                    inc: 0,
                    shard: 2,
                },
            ),
            (
                0,
                TraceEvent::DiskIssue {
                    slot: 2,
                    viewer: 4,
                    inc: 0,
                    disk: 0,
                },
            ),
            (
                0,
                TraceEvent::DiskDone {
                    slot: 2,
                    viewer: 4,
                    inc: 0,
                },
            ),
            (
                0,
                TraceEvent::SendDue {
                    slot: 2,
                    viewer: 4,
                    inc: 0,
                    ok: true,
                },
            ),
            (
                0,
                TraceEvent::SendDone {
                    slot: 2,
                    viewer: 4,
                    inc: 0,
                },
            ),
            (
                CTRL,
                TraceEvent::CtrlRouteStart {
                    viewer: 4,
                    inc: 0,
                    primary: 0,
                    redundant: u32::MAX,
                },
            ),
            (
                CTRL,
                TraceEvent::CtrlRouteDesched {
                    viewer: 4,
                    inc: 0,
                    slot: 2,
                    target: 0,
                },
            ),
            (CTRL, TraceEvent::PowerCut { cub: 1 }),
            (
                CTRL,
                TraceEvent::NetDrop {
                    src: 1,
                    dst: 3,
                    partition: true,
                },
            ),
            (
                CTRL,
                TraceEvent::NetDelay {
                    src: 1,
                    dst: 0,
                    extra_ns: 20_000_000,
                },
            ),
            (CTRL, TraceEvent::NetDup { src: 0, dst: 2 }),
            (
                2,
                TraceEvent::DiskTransient {
                    slot: 4,
                    viewer: 4,
                    inc: 0,
                    disk: 1,
                },
            ),
            (CTRL, TraceEvent::DiskDeath { cub: 2, disk: 1 }),
            (CTRL, TraceEvent::CubFreeze { cub: 0 }),
            (CTRL, TraceEvent::CubResume { cub: 0 }),
            (2, TraceEvent::CubFenced { cub: 2 }),
            (CTRL, TraceEvent::FaultStart { clause: 0 }),
            (CTRL, TraceEvent::FaultEnd { clause: 0 }),
            (CTRL, TraceEvent::CubRestart { cub: 1 }),
            (2, TraceEvent::RejoinGrant { to: 1, count: 12 }),
            (0, TraceEvent::RetiredReplay { to: 1, count: 5 }),
            (1, TraceEvent::RejoinDone { cub: 1 }),
            (CTRL, TraceEvent::RestripeStart { moves: 96 }),
            (CTRL, TraceEvent::RestripeStall { pending: 4 }),
            (CTRL, TraceEvent::RestripeCutover { moved: 96 }),
            (CTRL, TraceEvent::ShrinkDrain { cub: 5, moved: 48 }),
            (CTRL, TraceEvent::ShrinkFence { cub: 5 }),
            (
                CTRL,
                TraceEvent::SpareShadow {
                    spare: 6,
                    disk: 2,
                    piece: 1,
                    count: 24,
                },
            ),
            (
                CTRL,
                TraceEvent::WorkgenBurst {
                    title: 7,
                    peak_x10: 400,
                },
            ),
            (
                0,
                TraceEvent::SessionTransition {
                    viewer: 4,
                    inc: 1,
                    kind: 2,
                    to_block: 120,
                },
            ),
        ]
    }

    #[test]
    fn every_variant_round_trips_through_the_line_format() {
        for (i, (cub, ev)) in sample_events().into_iter().enumerate() {
            let rec = TraceRecord {
                seq: i as u64,
                at: SimTime::from_nanos(1_000_000 * i as u64),
                cub,
                ev,
            };
            let line = rec.to_line();
            let back = TraceRecord::parse_line(&line)
                .unwrap_or_else(|| panic!("line failed to parse: {line}"));
            assert_eq!(rec, back, "round-trip diverged for {line}");
        }
    }

    #[test]
    fn controller_events_render_as_ctrl() {
        let rec = TraceRecord {
            seq: 9,
            at: SimTime::from_nanos(500),
            cub: CTRL,
            ev: TraceEvent::PowerCut { cub: 2 },
        };
        assert_eq!(rec.to_line(), "9 500 ctrl power-cut cub=2");
    }

    #[test]
    fn parse_dump_skips_comments_and_rejects_garbage() {
        let good = "# header\n\n0 100 c0 deadman-ping to=1\n";
        let recs = parse_dump(good).expect("good dump parses");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ev, TraceEvent::DeadmanPing { to: 1 });

        assert!(parse_dump("0 100 c0 no-such-event x=1").is_err());
        assert!(
            parse_dump("0 100 c0 deadman-ping").is_err(),
            "missing field"
        );
        assert!(parse_dump("not a trace").is_err());
    }
}
