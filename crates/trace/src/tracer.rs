//! The ring-buffer tracer and its gating.
//!
//! Two gates, one per cost class:
//!
//! * **Runtime** — [`Tracer`] holds `Option<Box<Ring>>`; with tracing
//!   off every hook is a single null-pointer test (see the
//!   `trace_overhead` micro-bench). [`Tracer::from_env`] reads the
//!   `TIGER_TRACE*` knobs once at system construction.
//! * **Compile time** — the `noop` cargo feature replaces
//!   [`Tracer::record`] with an empty inline function and
//!   [`Tracer::on`] with a constant `false`, so every hook (including
//!   its event-construction arguments) dead-code-eliminates.
//!
//! Dropping an enabled tracer renders its ring and publishes the text to
//! a thread-local slot ([`take_last_trace`]) — that is how a trace
//! escapes a panicking property case: the unwind drops the system under
//! test (and its tracer) on the worker thread, and the failure hook
//! reads the slot on that same thread afterwards. If `TIGER_TRACE_FILE`
//! was set, the dump is also written there.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::path::PathBuf;

use tiger_sim::SimTime;

use crate::event::{TraceEvent, TraceRecord};

/// Default ring capacity (events) when `TIGER_TRACE_CAP` is unset.
pub const DEFAULT_CAP: usize = 65_536;

thread_local! {
    /// The rendered dump of the most recently dropped enabled tracer on
    /// this thread. See the module docs for why this is the publication
    /// channel for property-failure dumps.
    static LAST_TRACE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Takes (and clears) the dump published by the last enabled [`Tracer`]
/// dropped on this thread, if any.
pub fn take_last_trace() -> Option<String> {
    LAST_TRACE.with(|slot| slot.borrow_mut().take())
}

#[derive(Debug)]
struct Ring {
    cap: usize,
    buf: Vec<TraceRecord>,
    /// Total events ever recorded; also the next record's `seq`.
    next_seq: u64,
    /// Where to write the dump on drop (`TIGER_TRACE_FILE`).
    dump_path: Option<PathBuf>,
}

impl Ring {
    // Only `record` pushes, and `record` is empty under `noop` — but the
    // ring itself stays compiled so dumps of an (always empty) ring keep
    // working and the API surface doesn't change shape with the feature.
    #[cfg_attr(feature = "noop", allow(dead_code))]
    fn push(&mut self, at: SimTime, cub: u32, ev: TraceEvent) {
        let rec = TraceRecord {
            seq: self.next_seq,
            at,
            cub,
            ev,
        };
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            let idx = (self.next_seq % self.cap as u64) as usize;
            self.buf[idx] = rec;
        }
        self.next_seq += 1;
    }

    /// Renders the ring oldest-first with a comment header; lossless
    /// under [`crate::event::parse_dump`].
    fn render(&self) -> String {
        let dropped = self.next_seq - self.buf.len() as u64;
        let mut out = String::new();
        out.push_str("# tiger-trace v1\n");
        let _ = writeln!(
            out,
            "# recorded {} dropped {} cap {}",
            self.next_seq, dropped, self.cap
        );
        let n = self.buf.len();
        // After wraparound the oldest live record sits where the next
        // write would land.
        let start = if n == self.cap {
            (self.next_seq % self.cap as u64) as usize
        } else {
            0
        };
        for i in 0..n {
            let _ = writeln!(out, "{}", self.buf[(start + i) % n].to_line());
        }
        out
    }
}

/// The protocol event recorder threaded through `Shared`.
///
/// Disabled (`ring: None`) it records nothing and costs one pointer test
/// per hook; the `noop` feature removes even that. Construct with
/// [`Tracer::from_env`] in production paths and [`Tracer::enabled`] in
/// tests (tests must not set process-global environment variables — the
/// suite runs multithreaded).
#[derive(Debug, Default)]
pub struct Tracer {
    ring: Option<Box<Ring>>,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Tracer {
        Tracer { ring: None }
    }

    /// A tracer with a ring of `cap` events (min 1). Under the `noop`
    /// feature this is still [`Tracer::disabled`] — hooks compile away,
    /// so a ring could only ever stay empty.
    pub fn enabled(cap: usize) -> Tracer {
        if cfg!(feature = "noop") {
            return Tracer::disabled();
        }
        Tracer {
            ring: Some(Box::new(Ring {
                cap: cap.max(1),
                buf: Vec::new(),
                next_seq: 0,
                dump_path: None,
            })),
        }
    }

    /// Builds a tracer from the environment:
    ///
    /// * `TIGER_TRACE` — any value other than empty or `0` enables;
    /// * `TIGER_TRACE_FILE` — enables, and writes the dump there on drop;
    /// * `TIGER_PROP_REPLAY` — enables (a replayed failure should always
    ///   leave a trace);
    /// * `TIGER_TRACE_CAP` — ring capacity (default [`DEFAULT_CAP`]).
    pub fn from_env() -> Tracer {
        let flag = std::env::var("TIGER_TRACE").ok();
        let flag_on = flag.as_deref().is_some_and(|v| !v.is_empty() && v != "0");
        let file = std::env::var_os("TIGER_TRACE_FILE").map(PathBuf::from);
        let replay = std::env::var_os("TIGER_PROP_REPLAY").is_some();
        if !(flag_on || file.is_some() || replay) {
            return Tracer::disabled();
        }
        let cap = std::env::var("TIGER_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CAP);
        let mut t = Tracer::enabled(cap);
        if let Some(ring) = &mut t.ring {
            ring.dump_path = file;
        }
        t
    }

    /// Is tracing live? Call sites use this to skip *preparing* an event
    /// when preparation itself has a cost (e.g. walking expired holds);
    /// plain `record` calls don't need the check.
    #[cfg(not(feature = "noop"))]
    #[inline]
    pub fn on(&self) -> bool {
        self.ring.is_some()
    }

    /// `noop` build: constant `false`, so `if tracer.on() { ... }` blocks
    /// vanish entirely.
    #[cfg(feature = "noop")]
    #[inline(always)]
    pub const fn on(&self) -> bool {
        false
    }

    /// Records one event (no-op when disabled).
    #[cfg(not(feature = "noop"))]
    #[inline]
    pub fn record(&mut self, at: SimTime, cub: u32, ev: TraceEvent) {
        if let Some(ring) = &mut self.ring {
            ring.push(at, cub, ev);
        }
    }

    /// `noop` build: empty inline function — the argument construction at
    /// the call site is pure and dead-code-eliminates with it.
    #[cfg(feature = "noop")]
    #[inline(always)]
    pub fn record(&mut self, _at: SimTime, _cub: u32, _ev: TraceEvent) {}

    /// Total events recorded so far (including any the ring has since
    /// overwritten); 0 when disabled.
    pub fn recorded(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.next_seq)
    }

    /// Renders the current ring contents as a dump; `None` when
    /// disabled.
    pub fn dump(&self) -> Option<String> {
        self.ring.as_ref().map(|r| r.render())
    }

    /// The ring's live records, oldest first; empty when disabled.
    /// (Convenience for in-process assertions; file-based flows go
    /// through [`Tracer::dump`] / [`crate::event::parse_dump`].)
    pub fn records(&self) -> Vec<TraceRecord> {
        let Some(ring) = &self.ring else {
            return Vec::new();
        };
        let n = ring.buf.len();
        let start = if n == ring.cap {
            (ring.next_seq % ring.cap as u64) as usize
        } else {
            0
        };
        (0..n).map(|i| ring.buf[(start + i) % n]).collect()
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        let Some(ring) = &self.ring else { return };
        let dump = ring.render();
        if let Some(path) = &ring.dump_path {
            if let Err(e) = std::fs::write(path, &dump) {
                eprintln!("tiger-trace: failed to write {}: {e}", path.display());
            }
        }
        LAST_TRACE.with(|slot| *slot.borrow_mut() = Some(dump));
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use crate::event::parse_dump;

    fn ping(to: u32) -> TraceEvent {
        TraceEvent::DeadmanPing { to }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(SimTime::from_nanos(1), 0, ping(1));
        assert!(!t.on());
        assert_eq!(t.recorded(), 0);
        assert!(t.dump().is_none());
        assert!(t.records().is_empty());
    }

    #[test]
    fn ring_keeps_the_newest_cap_events() {
        let mut t = Tracer::enabled(4);
        for i in 0..10u32 {
            t.record(SimTime::from_nanos(u64::from(i)), 0, ping(i));
        }
        let recs = t.records();
        assert_eq!(recs.len(), 4);
        // Oldest-first, and only the last four survive.
        let seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(t.recorded(), 10);

        let dump = t.dump().expect("enabled tracer dumps");
        assert!(dump.contains("# recorded 10 dropped 6 cap 4"), "{dump}");
        let parsed = parse_dump(&dump).expect("dump parses");
        assert_eq!(parsed, recs);
    }

    #[test]
    fn drop_publishes_the_dump_to_the_thread_local() {
        let _ = take_last_trace(); // clear any leftover from other tests
        {
            let mut t = Tracer::enabled(8);
            t.record(SimTime::from_nanos(42), 3, ping(0));
        }
        let dump = take_last_trace().expect("drop published a dump");
        assert!(dump.contains("42 c3 deadman-ping to=0"), "{dump}");
        assert!(take_last_trace().is_none(), "take clears the slot");

        // Disabled tracers must not clobber the slot.
        {
            let mut t = Tracer::enabled(8);
            t.record(SimTime::from_nanos(7), 1, ping(2));
        }
        drop(Tracer::disabled());
        assert!(take_last_trace().is_some(), "disabled drop left dump alone");
    }
}
