//! `tiger-trace`: ring-buffer tracing of the coherent-hallucination
//! protocol.
//!
//! The paper's hardest claims (§4.1–§4.2) are about message-ordering
//! properties: idempotent double-forwarding of viewer states, deschedule
//! holds that outlive the viewer-state lead window, ownership-gated
//! insertion, deadman-driven mirror takeover. When the property harness
//! finds a violation, a seed and a diverged `Metrics` digest are not
//! enough to debug it — what happened is a *sequence of protocol events*,
//! and this crate records that sequence.
//!
//! # Design
//!
//! * [`TraceEvent`] is a closed set of structured protocol events —
//!   schedule-transfer send/receive outcomes, deschedule apply/expiry,
//!   insert hit/miss, deadman ping/declare, mirror takeover, disk and
//!   send lifecycle — each stamped with `(SimTime, cub, seq)` as a
//!   [`TraceRecord`].
//! * [`Tracer`] owns a fixed-capacity ring buffer: tracing a multi-hour
//!   simulated run costs bounded memory, and the ring's tail is exactly
//!   the window around a failure that debugging needs.
//! * Tracing is env-gated ([`Tracer::from_env`]: `TIGER_TRACE`,
//!   `TIGER_TRACE_CAP`, `TIGER_TRACE_FILE`, and auto-on under
//!   `TIGER_PROP_REPLAY`) and feature-gated (the `noop` feature compiles
//!   every hook away). With tracing off, recording never happens, so
//!   metrics and bench output are bit-identical to an untraced build —
//!   tracing observes the simulation and never feeds back into it.
//! * Dumps are plain text, one event per line ([`TraceRecord::to_line`]),
//!   and parse back losslessly ([`parse_dump`]), so the `trace_timeline`
//!   tool can render per-cub/per-slot timelines and diff two traces from
//!   different scheduler configurations on the same seed.
//!
//! # Property-failure dumps
//!
//! [`install_property_dump`] wires this crate into the
//! `tiger_sim::check` harness: when a property case fails (or a
//! `TIGER_PROP_REPLAY` run panics), the most recently dropped traced
//! system's ring is written to a file and the path is appended to the
//! failure report. Dropping a [`Tracer`] publishes its ring to a
//! thread-local slot precisely so the trace survives the unwind that
//! destroys the system under test.

pub mod event;
pub mod timeline;
pub mod tracer;

pub use event::{parse_dump, TraceEvent, TraceRecord, CTRL};
pub use timeline::{render_diff, render_timeline};
pub use tracer::{take_last_trace, Tracer};

/// Installs the property-failure dump hook into the `tiger_sim::check`
/// harness: a failing case whose run left a trace (see
/// [`take_last_trace`]) gets that trace written to
/// `$TIGER_TRACE_DIR` (default: the system temp dir) as
/// `tiger-trace-<case seed>.log`, and the failure report gains a
/// `trace dumped to: <path>` line.
///
/// Idempotent; call it at the top of any property test that drives a
/// traced system. Untraced runs are unaffected (the hook finds no trace
/// and adds nothing), so failure reports stay byte-identical at any
/// thread count whether or not the hook is installed.
pub fn install_property_dump() {
    tiger_sim::check::set_failure_hook(|case_seed| {
        let dump = take_last_trace()?;
        let dir = std::env::var_os("TIGER_TRACE_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let path = dir.join(format!("tiger-trace-{case_seed:#018x}.log"));
        std::fs::write(&path, dump).ok()?;
        Some(format!("trace dumped to: {}", path.display()))
    });
}
