//! Property tests on the schedule structures: the view's merge rules and
//! the network schedule's capacity invariant under arbitrary operation
//! sequences.
//!
//! Ported from `proptest` to the in-tree `tiger_sim::check` harness: each
//! property runs over many deterministically seeded cases, and failures
//! report a replayable case seed.

use tiger_layout::ids::ViewerInstance;
use tiger_layout::{BlockNum, FileId, ViewerId};
use tiger_sched::view::ViewApply;
use tiger_sched::{
    Deschedule, NetScheduleError, NetworkSchedule, ScheduleView, SlotId, StreamKind, ViewerState,
};
use tiger_sim::check::{check, vec_of};
use tiger_sim::{Bandwidth, SimDuration, SimRng, SimTime};

fn vs(slot: u32, viewer: u64, incarnation: u32, play_seq: u32) -> ViewerState {
    ViewerState {
        instance: ViewerInstance {
            viewer: ViewerId(viewer),
            incarnation,
        },
        client: 0,
        file: FileId(0),
        position: BlockNum(play_seq),
        slot: SlotId(slot),
        play_seq,
        bitrate: Bandwidth::from_mbit_per_sec(2),
        kind: StreamKind::Primary,
    }
}

/// One random operation against a view.
#[derive(Clone, Debug)]
enum Op {
    Apply {
        slot: u32,
        viewer: u64,
        incarnation: u32,
        play_seq: u32,
        at_ms: u64,
    },
    Deschedule {
        slot: u32,
        viewer: u64,
        incarnation: u32,
        at_ms: u64,
        hold_ms: u64,
    },
    Gc {
        at_ms: u64,
    },
}

fn arb_op(rng: &mut SimRng) -> Op {
    match rng.gen_range(0u32..3) {
        0 => Op::Apply {
            slot: rng.gen_range(0u32..6),
            viewer: rng.gen_range(0u64..4),
            incarnation: rng.gen_range(0u32..2),
            play_seq: rng.gen_range(0u32..30),
            at_ms: rng.gen_range(0u64..10_000),
        },
        1 => Op::Deschedule {
            slot: rng.gen_range(0u32..6),
            viewer: rng.gen_range(0u64..4),
            incarnation: rng.gen_range(0u32..2),
            at_ms: rng.gen_range(0u64..10_000),
            hold_ms: rng.gen_range(0u64..5_000),
        },
        _ => Op::Gc {
            at_ms: rng.gen_range(0u64..10_000),
        },
    }
}

/// Under any operation sequence: a slot never holds two distinct
/// primary instances, duplicates are ignored, and a held deschedule
/// blocks its target.
#[test]
fn view_invariants_hold_under_random_ops() {
    check("view_invariants_hold_under_random_ops", |rng| {
        let mut ops = vec_of(rng, 1..80, arb_op);
        let mut view = ScheduleView::new();
        // Monotonic clock: operations are applied in time order.
        ops.sort_by_key(|op| match op {
            Op::Apply { at_ms, .. } | Op::Deschedule { at_ms, .. } | Op::Gc { at_ms } => *at_ms,
        });
        for op in &ops {
            match *op {
                Op::Apply {
                    slot,
                    viewer,
                    incarnation,
                    play_seq,
                    at_ms,
                } => {
                    let record = vs(slot, viewer, incarnation, play_seq);
                    let now = SimTime::from_millis(at_ms);
                    let before = view.primary_entry(SlotId(slot)).copied();
                    let result = view.apply_viewer_state(record, now);
                    match result {
                        ViewApply::Inserted => {
                            assert!(before.is_none(), "insert into occupied slot");
                        }
                        ViewApply::Updated => {
                            let b = before.expect("update requires an entry");
                            assert_eq!(b.instance, record.instance);
                            assert!(record.play_seq > b.play_seq);
                        }
                        ViewApply::Duplicate => {
                            let b = before.expect("duplicate requires an entry");
                            assert!(b.play_seq >= record.play_seq);
                        }
                        ViewApply::Conflict => {
                            let b = before.expect("conflict requires an entry");
                            assert!(b.instance != record.instance);
                            // The existing entry is untouched.
                            assert_eq!(view.primary_entry(SlotId(slot)), Some(&b));
                        }
                        ViewApply::Blocked => {
                            let d = Deschedule {
                                instance: record.instance,
                                slot: record.slot,
                            };
                            assert!(view.holds_deschedule(&d));
                        }
                    }
                }
                Op::Deschedule {
                    slot,
                    viewer,
                    incarnation,
                    at_ms,
                    hold_ms,
                } => {
                    let d = Deschedule {
                        instance: ViewerInstance {
                            viewer: ViewerId(viewer),
                            incarnation,
                        },
                        slot: SlotId(slot),
                    };
                    let now = SimTime::from_millis(at_ms);
                    view.apply_deschedule(d, now, now + SimDuration::from_millis(hold_ms));
                    // Post: no matching entry survives.
                    for e in view.slot_entries(SlotId(slot)) {
                        assert!(!d.matches(e), "descheduled entry still present");
                    }
                }
                Op::Gc { at_ms } => view.gc(SimTime::from_millis(at_ms)),
            }
        }
        // Global invariant: one primary instance per slot.
        for slot in 0..6u32 {
            let primaries: Vec<_> = view
                .slot_entries(SlotId(slot))
                .iter()
                .filter(|e| e.kind == StreamKind::Primary)
                .collect();
            assert!(
                primaries.len() <= 1,
                "slot {} has {} primaries",
                slot,
                primaries.len()
            );
        }
    });
}

/// The network schedule never exceeds capacity at any ring position,
/// no matter what sequence of inserts/aborts/commits/removals runs.
#[test]
fn net_schedule_never_overcommits() {
    check("net_schedule_never_overcommits", |rng| {
        let ops = vec_of(rng, 1..120, |r| {
            (
                r.gen_range(0u64..14_000),
                r.gen_range(1u64..8),
                r.gen_range(0u8..4),
                r.gen_range(0u64..20),
            )
        });
        let capacity = Bandwidth::from_mbit_per_sec(20);
        let mut sched = NetworkSchedule::new(
            14,
            SimDuration::from_secs(1),
            capacity,
            Some(SimDuration::from_millis(250)),
        );
        let mut ids = Vec::new();
        for (start_ms, mbit, action, pick) in ops {
            match action {
                0 | 1 => {
                    let start = SimDuration::from_millis(start_ms / 250 * 250);
                    let inst = ViewerInstance {
                        viewer: ViewerId(start_ms ^ mbit),
                        incarnation: 0,
                    };
                    if let Ok(id) =
                        sched.insert(inst, start, Bandwidth::from_mbit_per_sec(mbit), action == 1)
                    {
                        ids.push(id);
                    }
                }
                2 => {
                    if !ids.is_empty() {
                        let id = ids[(pick as usize) % ids.len()];
                        let _ = sched.commit(id);
                    }
                }
                _ => {
                    if !ids.is_empty() {
                        let idx = (pick as usize) % ids.len();
                        let id = ids.swap_remove(idx);
                        let _ = sched.abort(id);
                    }
                }
            }
            // Invariant: load never exceeds capacity anywhere.
            let mut pos = SimDuration::ZERO;
            while pos < sched.len_duration() {
                assert!(sched.load_at(pos) <= capacity, "overcommitted at {:?}", pos);
                pos += SimDuration::from_millis(125);
            }
        }
    });
}

/// The pre-cache network schedule: a naive model that rescans every
/// entry on every query. This is exactly the semantics the cached
/// implementation must reproduce — the differential test below drives
/// both through the same operation sequences and demands identical
/// answers to every query at every step.
#[derive(Clone, Copy, Debug)]
struct RefEntry {
    instance: ViewerInstance,
    start: u64,
    rate: u64,
    tentative: bool,
    expires_at: Option<u64>,
}

struct RescanSchedule {
    len: u64,
    bpt: u64,
    capacity: u64,
    quantum: Option<u64>,
    entries: Vec<(u64, RefEntry)>,
    next_id: u64,
}

impl RescanSchedule {
    fn new(num_cubs: u64, bpt: u64, capacity: u64, quantum: Option<u64>) -> Self {
        RescanSchedule {
            len: bpt * num_cubs,
            bpt,
            capacity,
            quantum,
            entries: Vec::new(),
            next_id: 0,
        }
    }

    fn ring_dist(&self, from: u64, to: u64) -> u64 {
        (to + self.len - from) % self.len
    }

    fn load_at(&self, pos: u64) -> u64 {
        let pos = pos % self.len;
        self.entries
            .iter()
            .filter(|(_, e)| self.ring_dist(e.start, pos) < self.bpt)
            .fold(0u64, |a, (_, e)| a.saturating_add(e.rate))
    }

    fn max_load_in_entry_window(&self, start: u64) -> u64 {
        let start = start % self.len;
        let mut max = self.load_at(start);
        for (_, e) in &self.entries {
            if self.ring_dist(start, e.start) < self.bpt {
                max = max.max(self.load_at(e.start));
            }
        }
        max
    }

    fn fits(&self, start: u64, rate: u64) -> bool {
        self.max_load_in_entry_window(start).saturating_add(rate) <= self.capacity
    }

    fn insert(
        &mut self,
        instance: ViewerInstance,
        start: u64,
        rate: u64,
        tentative: bool,
        expires_at: Option<u64>,
    ) -> Result<u64, NetScheduleError> {
        if let Some(q) = self.quantum {
            if start % q != 0 {
                return Err(NetScheduleError::UnalignedStart);
            }
        }
        if !self.fits(start, rate) {
            return Err(NetScheduleError::Overflow);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push((
            id,
            RefEntry {
                instance,
                start: start % self.len,
                rate,
                tentative,
                expires_at: if tentative { expires_at } else { None },
            },
        ));
        Ok(id)
    }

    fn commit(&mut self, id: u64) -> bool {
        for (i, e) in self.entries.iter_mut() {
            if *i == id {
                e.tentative = false;
                e.expires_at = None;
                return true;
            }
        }
        false
    }

    fn abort(&mut self, id: u64) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(i, _)| *i != id);
        self.entries.len() != before
    }

    fn remove_instance(&mut self, instance: ViewerInstance) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(_, e)| e.instance != instance);
        before - self.entries.len()
    }

    fn has_instance(&self, instance: ViewerInstance) -> bool {
        self.entries.iter().any(|(_, e)| e.instance == instance)
    }

    fn expire(&mut self, now: u64) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|(_, e)| !(e.tentative && e.expires_at.is_some_and(|t| t <= now)));
        before - self.entries.len()
    }

    fn admissible_starts(&self, rate: u64, probe: u64) -> Vec<u64> {
        let step = self.quantum.unwrap_or(probe);
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < self.len {
            if self.fits(pos, rate) {
                out.push(pos);
            }
            pos += step;
        }
        out
    }

    fn mean_free_bandwidth(&self, probe: u64) -> u64 {
        let mut total: u128 = 0;
        let mut samples: u64 = 0;
        let mut pos = 0;
        while pos < self.len {
            total += u128::from(self.capacity.saturating_sub(self.load_at(pos)));
            samples += 1;
            pos += probe;
        }
        (total / u128::from(samples.max(1))) as u64
    }
}

/// Asserts that every observable query agrees between the cached
/// schedule and the rescan model, at randomly sampled positions plus
/// every entry boundary.
fn assert_schedules_agree(
    sched: &NetworkSchedule,
    model: &RescanSchedule,
    probe: u64,
    rng: &mut SimRng,
) {
    assert_eq!(sched.len(), model.entries.len(), "entry counts diverged");
    let mut positions = vec![0u64];
    for _ in 0..6 {
        positions.push(rng.gen_range(0..model.len));
    }
    for (_, e) in &model.entries {
        positions.push(e.start);
        positions.push((e.start + model.bpt) % model.len);
    }
    for &p in &positions {
        let pos = SimDuration::from_nanos(p);
        assert_eq!(
            sched.load_at(pos).bits_per_sec(),
            model.load_at(p),
            "load_at({p}) diverged"
        );
        assert_eq!(
            sched.max_load_in_entry_window(pos).bits_per_sec(),
            model.max_load_in_entry_window(p),
            "max_load_in_entry_window({p}) diverged"
        );
    }
    for rate_mbit in [2u64, 5, 19, 21] {
        let rate = Bandwidth::from_mbit_per_sec(rate_mbit);
        for &p in &positions {
            assert_eq!(
                sched.fits(SimDuration::from_nanos(p), rate),
                model.fits(p, rate.bits_per_sec()),
                "fits({p}, {rate_mbit} Mbit) diverged"
            );
        }
        let fast: Vec<u64> = sched
            .admissible_starts(rate, SimDuration::from_nanos(probe))
            .map(|d| d.as_nanos())
            .collect();
        assert_eq!(
            fast,
            model.admissible_starts(rate.bits_per_sec(), probe),
            "admissible_starts({rate_mbit} Mbit) diverged"
        );
    }
    assert_eq!(
        sched
            .mean_free_bandwidth(SimDuration::from_nanos(probe))
            .bits_per_sec(),
        model.mean_free_bandwidth(probe),
        "mean_free_bandwidth diverged"
    );
}

/// Drives the cached schedule and the rescan reference model through
/// one random operation sequence in the given configuration.
fn run_differential_case(rng: &mut SimRng, quantum: Option<u64>, num_cubs: u32) {
    let bpt = SimDuration::from_secs(1).as_nanos();
    let capacity = Bandwidth::from_mbit_per_sec(20);
    let mut sched = NetworkSchedule::new(
        num_cubs,
        SimDuration::from_nanos(bpt),
        capacity,
        quantum.map(SimDuration::from_nanos),
    );
    let mut model = RescanSchedule::new(u64::from(num_cubs), bpt, capacity.bits_per_sec(), quantum);
    let len = model.len;
    let probe = quantum.unwrap_or(bpt / 8);
    let mut ids: Vec<(u64, tiger_sched::NetEntryId)> = Vec::new();
    let mut used_starts = vec![0u64];
    let mut now = 0u64;
    let steps = rng.gen_range(10usize..50);
    for _ in 0..steps {
        now += rng.gen_range(0u64..500_000_000);
        match rng.gen_range(0u32..8) {
            // Insert (committed, tentative, or tentative-with-expiry);
            // sometimes at an already-used start, sometimes unaligned.
            0..=3 => {
                let start = if rng.gen_range(0u32..4) == 0 {
                    used_starts[rng.gen_range(0usize..used_starts.len())]
                } else {
                    let raw = rng.gen_range(0..len);
                    match quantum {
                        // Mostly aligned, occasionally deliberately not.
                        Some(q) if rng.gen_range(0u32..8) > 0 => raw / q * q,
                        _ => raw,
                    }
                };
                let rate = Bandwidth::from_mbit_per_sec(rng.gen_range(1u64..9));
                let tentative = rng.gen_range(0u32..2) == 0;
                let expires = if tentative && rng.gen_range(0u32..2) == 0 {
                    Some(now + rng.gen_range(0u64..2_000_000_000))
                } else {
                    None
                };
                let inst = ViewerInstance {
                    viewer: ViewerId(rng.gen_range(0u64..6)),
                    incarnation: 0,
                };
                let got = sched.insert_with_expiry(
                    inst,
                    SimDuration::from_nanos(start),
                    rate,
                    tentative,
                    expires.map(SimTime::from_nanos),
                );
                let want = model.insert(inst, start, rate.bits_per_sec(), tentative, expires);
                assert_eq!(got.is_ok(), want.is_ok(), "insert outcome diverged");
                match (got, want) {
                    (Ok(id), Ok(ref_id)) => {
                        ids.push((ref_id, id));
                        used_starts.push(start % len);
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "insert error diverged"),
                    _ => unreachable!(),
                }
            }
            4 => {
                if !ids.is_empty() {
                    let (ref_id, id) = ids[rng.gen_range(0usize..ids.len())];
                    assert_eq!(
                        sched.commit(id).is_ok(),
                        model.commit(ref_id),
                        "commit outcome diverged"
                    );
                }
            }
            5 => {
                if !ids.is_empty() {
                    let (ref_id, id) = ids.swap_remove(rng.gen_range(0usize..ids.len()));
                    assert_eq!(
                        sched.abort(id).is_ok(),
                        model.abort(ref_id),
                        "abort outcome diverged"
                    );
                }
            }
            6 => {
                let inst = ViewerInstance {
                    viewer: ViewerId(rng.gen_range(0u64..6)),
                    incarnation: 0,
                };
                assert_eq!(sched.has_instance(inst), model.has_instance(inst));
                assert_eq!(
                    sched.remove_instance(inst),
                    model.remove_instance(inst),
                    "remove_instance count diverged"
                );
            }
            _ => {
                assert_eq!(
                    sched.expire_reservations(SimTime::from_nanos(now)),
                    model.expire(now),
                    "expiry count diverged"
                );
            }
        }
        assert_schedules_agree(&sched, &model, probe, rng);
    }
}

/// The cached network schedule is observationally identical to a naive
/// full-rescan model under random insert/commit/abort/remove/expiry
/// sequences — quantized (grid index) configuration.
#[test]
fn cached_net_schedule_matches_rescan_model_quantized() {
    check(
        "cached_net_schedule_matches_rescan_model_quantized",
        |rng| {
            let quantum = SimDuration::from_millis(250).as_nanos();
            run_differential_case(rng, Some(quantum), 14);
        },
    );
}

/// Same differential property for arbitrary (unquantized) starts — the
/// sparse breakpoint index.
#[test]
fn cached_net_schedule_matches_rescan_model_unquantized() {
    check(
        "cached_net_schedule_matches_rescan_model_unquantized",
        |rng| {
            run_differential_case(rng, None, 5);
        },
    );
}

/// Deschedule + viewer-state interleavings: after a deschedule is
/// applied, no interleaving of late viewer states for that instance
/// (any play_seq) can resurrect it while the deschedule is held.
#[test]
fn no_spontaneous_reschedule() {
    check("no_spontaneous_reschedule", |rng| {
        let play_seqs = vec_of(rng, 1..20, |r| r.gen_range(0u32..50));
        let hold_ms = rng.gen_range(1_000u64..10_000);
        let mut view = ScheduleView::new();
        let record = vs(3, 7, 0, 0);
        view.apply_viewer_state(record, SimTime::ZERO);
        let d = Deschedule {
            instance: record.instance,
            slot: record.slot,
        };
        let now = SimTime::from_millis(100);
        view.apply_deschedule(d, now, now + SimDuration::from_millis(hold_ms));
        for (i, seq) in play_seqs.iter().enumerate() {
            let t = SimTime::from_millis(101 + i as u64);
            let late = vs(3, 7, 0, *seq);
            let r = view.apply_viewer_state(late, t);
            assert_eq!(r, ViewApply::Blocked, "late state resurrected the viewer");
        }
        assert!(view.believes_slot_free(SlotId(3)));
    });
}
