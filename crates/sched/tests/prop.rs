//! Property tests on the schedule structures: the view's merge rules and
//! the network schedule's capacity invariant under arbitrary operation
//! sequences.
//!
//! Ported from `proptest` to the in-tree `tiger_sim::check` harness: each
//! property runs over many deterministically seeded cases, and failures
//! report a replayable case seed.

use tiger_layout::ids::ViewerInstance;
use tiger_layout::{BlockNum, FileId, ViewerId};
use tiger_sched::view::ViewApply;
use tiger_sched::{Deschedule, NetworkSchedule, ScheduleView, SlotId, StreamKind, ViewerState};
use tiger_sim::check::{check, vec_of};
use tiger_sim::{Bandwidth, SimDuration, SimRng, SimTime};

fn vs(slot: u32, viewer: u64, incarnation: u32, play_seq: u32) -> ViewerState {
    ViewerState {
        instance: ViewerInstance {
            viewer: ViewerId(viewer),
            incarnation,
        },
        client: 0,
        file: FileId(0),
        position: BlockNum(play_seq),
        slot: SlotId(slot),
        play_seq,
        bitrate: Bandwidth::from_mbit_per_sec(2),
        kind: StreamKind::Primary,
    }
}

/// One random operation against a view.
#[derive(Clone, Debug)]
enum Op {
    Apply {
        slot: u32,
        viewer: u64,
        incarnation: u32,
        play_seq: u32,
        at_ms: u64,
    },
    Deschedule {
        slot: u32,
        viewer: u64,
        incarnation: u32,
        at_ms: u64,
        hold_ms: u64,
    },
    Gc {
        at_ms: u64,
    },
}

fn arb_op(rng: &mut SimRng) -> Op {
    match rng.gen_range(0u32..3) {
        0 => Op::Apply {
            slot: rng.gen_range(0u32..6),
            viewer: rng.gen_range(0u64..4),
            incarnation: rng.gen_range(0u32..2),
            play_seq: rng.gen_range(0u32..30),
            at_ms: rng.gen_range(0u64..10_000),
        },
        1 => Op::Deschedule {
            slot: rng.gen_range(0u32..6),
            viewer: rng.gen_range(0u64..4),
            incarnation: rng.gen_range(0u32..2),
            at_ms: rng.gen_range(0u64..10_000),
            hold_ms: rng.gen_range(0u64..5_000),
        },
        _ => Op::Gc {
            at_ms: rng.gen_range(0u64..10_000),
        },
    }
}

/// Under any operation sequence: a slot never holds two distinct
/// primary instances, duplicates are ignored, and a held deschedule
/// blocks its target.
#[test]
fn view_invariants_hold_under_random_ops() {
    check("view_invariants_hold_under_random_ops", |rng| {
        let mut ops = vec_of(rng, 1..80, arb_op);
        let mut view = ScheduleView::new();
        // Monotonic clock: operations are applied in time order.
        ops.sort_by_key(|op| match op {
            Op::Apply { at_ms, .. } | Op::Deschedule { at_ms, .. } | Op::Gc { at_ms } => *at_ms,
        });
        for op in &ops {
            match *op {
                Op::Apply {
                    slot,
                    viewer,
                    incarnation,
                    play_seq,
                    at_ms,
                } => {
                    let record = vs(slot, viewer, incarnation, play_seq);
                    let now = SimTime::from_millis(at_ms);
                    let before = view.primary_entry(SlotId(slot)).copied();
                    let result = view.apply_viewer_state(record, now);
                    match result {
                        ViewApply::Inserted => {
                            assert!(before.is_none(), "insert into occupied slot");
                        }
                        ViewApply::Updated => {
                            let b = before.expect("update requires an entry");
                            assert_eq!(b.instance, record.instance);
                            assert!(record.play_seq > b.play_seq);
                        }
                        ViewApply::Duplicate => {
                            let b = before.expect("duplicate requires an entry");
                            assert!(b.play_seq >= record.play_seq);
                        }
                        ViewApply::Conflict => {
                            let b = before.expect("conflict requires an entry");
                            assert!(b.instance != record.instance);
                            // The existing entry is untouched.
                            assert_eq!(view.primary_entry(SlotId(slot)), Some(&b));
                        }
                        ViewApply::Blocked => {
                            let d = Deschedule {
                                instance: record.instance,
                                slot: record.slot,
                            };
                            assert!(view.holds_deschedule(&d));
                        }
                    }
                }
                Op::Deschedule {
                    slot,
                    viewer,
                    incarnation,
                    at_ms,
                    hold_ms,
                } => {
                    let d = Deschedule {
                        instance: ViewerInstance {
                            viewer: ViewerId(viewer),
                            incarnation,
                        },
                        slot: SlotId(slot),
                    };
                    let now = SimTime::from_millis(at_ms);
                    view.apply_deschedule(d, now, now + SimDuration::from_millis(hold_ms));
                    // Post: no matching entry survives.
                    for e in view.slot_entries(SlotId(slot)) {
                        assert!(!d.matches(e), "descheduled entry still present");
                    }
                }
                Op::Gc { at_ms } => view.gc(SimTime::from_millis(at_ms)),
            }
        }
        // Global invariant: one primary instance per slot.
        for slot in 0..6u32 {
            let primaries: Vec<_> = view
                .slot_entries(SlotId(slot))
                .iter()
                .filter(|e| e.kind == StreamKind::Primary)
                .collect();
            assert!(
                primaries.len() <= 1,
                "slot {} has {} primaries",
                slot,
                primaries.len()
            );
        }
    });
}

/// The network schedule never exceeds capacity at any ring position,
/// no matter what sequence of inserts/aborts/commits/removals runs.
#[test]
fn net_schedule_never_overcommits() {
    check("net_schedule_never_overcommits", |rng| {
        let ops = vec_of(rng, 1..120, |r| {
            (
                r.gen_range(0u64..14_000),
                r.gen_range(1u64..8),
                r.gen_range(0u8..4),
                r.gen_range(0u64..20),
            )
        });
        let capacity = Bandwidth::from_mbit_per_sec(20);
        let mut sched = NetworkSchedule::new(
            14,
            SimDuration::from_secs(1),
            capacity,
            Some(SimDuration::from_millis(250)),
        );
        let mut ids = Vec::new();
        for (start_ms, mbit, action, pick) in ops {
            match action {
                0 | 1 => {
                    let start = SimDuration::from_millis(start_ms / 250 * 250);
                    let inst = ViewerInstance {
                        viewer: ViewerId(start_ms ^ mbit),
                        incarnation: 0,
                    };
                    if let Ok(id) =
                        sched.insert(inst, start, Bandwidth::from_mbit_per_sec(mbit), action == 1)
                    {
                        ids.push(id);
                    }
                }
                2 => {
                    if !ids.is_empty() {
                        let id = ids[(pick as usize) % ids.len()];
                        let _ = sched.commit(id);
                    }
                }
                _ => {
                    if !ids.is_empty() {
                        let idx = (pick as usize) % ids.len();
                        let id = ids.swap_remove(idx);
                        let _ = sched.abort(id);
                    }
                }
            }
            // Invariant: load never exceeds capacity anywhere.
            let mut pos = SimDuration::ZERO;
            while pos < sched.len_duration() {
                assert!(sched.load_at(pos) <= capacity, "overcommitted at {:?}", pos);
                pos += SimDuration::from_millis(125);
            }
        }
    });
}

/// Deschedule + viewer-state interleavings: after a deschedule is
/// applied, no interleaving of late viewer states for that instance
/// (any play_seq) can resurrect it while the deschedule is held.
#[test]
fn no_spontaneous_reschedule() {
    check("no_spontaneous_reschedule", |rng| {
        let play_seqs = vec_of(rng, 1..20, |r| r.gen_range(0u32..50));
        let hold_ms = rng.gen_range(1_000u64..10_000);
        let mut view = ScheduleView::new();
        let record = vs(3, 7, 0, 0);
        view.apply_viewer_state(record, SimTime::ZERO);
        let d = Deschedule {
            instance: record.instance,
            slot: record.slot,
        };
        let now = SimTime::from_millis(100);
        view.apply_deschedule(d, now, now + SimDuration::from_millis(hold_ms));
        for (i, seq) in play_seqs.iter().enumerate() {
            let t = SimTime::from_millis(101 + i as u64);
            let late = vs(3, 7, 0, *seq);
            let r = view.apply_viewer_state(late, t);
            assert_eq!(r, ViewApply::Blocked, "late state resurrected the viewer");
        }
        assert!(view.believes_slot_free(SlotId(3)));
    });
}
