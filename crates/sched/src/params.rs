//! Schedule arithmetic (paper §3.1): block service time, slots, pointers,
//! and slot ownership.
//!
//! "The disk schedule is an array of slots, with one slot for every stream
//! of system capacity. … each slot in the disk schedule is one block
//! service time long, and the entire schedule is the block play time times
//! the number of disks in the system. The schedule must be an integral
//! multiple of both the block play and block service times. If not, the
//! block service time is lengthened enough to make it so."
//!
//! All arithmetic is exact: slot boundaries are the rational partition
//! `slot_start(i) = floor(L * i / S)` of the schedule ring, computed in
//! `u128`, so the `S` slots exactly tile the `L`-nanosecond ring with no
//! cumulative drift.

use std::fmt;

use tiger_layout::{DiskId, StripeConfig};
use tiger_sim::{Bandwidth, ByteSize, SimDuration, SimTime};

/// A slot in the global disk schedule (0-based, `< capacity`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SlotId(pub u32);

impl SlotId {
    /// The raw slot number.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The slot number as a usize for indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A memory of recent slot removals, used by the omniscient checker to
/// permit legitimately in-flight sends shortly after a deschedule commits.
#[derive(Clone, Debug, Default)]
pub struct SlotGrace {
    span: tiger_sim::SimDuration,
    recent: std::collections::HashMap<(SlotId, tiger_layout::ids::ViewerInstance), SimTime>,
}

impl SlotGrace {
    /// Creates a grace tracker covering `span` after each removal.
    pub fn new(span: tiger_sim::SimDuration) -> Self {
        SlotGrace {
            span,
            recent: std::collections::HashMap::new(),
        }
    }

    /// Records that `(slot, instance)` was removed at `now`.
    pub fn record(
        &mut self,
        slot: SlotId,
        instance: tiger_layout::ids::ViewerInstance,
        now: SimTime,
    ) {
        self.recent.insert((slot, instance), now);
        // Opportunistic GC.
        let span = self.span;
        self.recent
            .retain(|_, &mut at| now.saturating_since(at) <= span);
    }

    /// Whether a send for `(slot, instance)` at `now` falls inside the
    /// grace window of its removal.
    pub fn covers(
        &self,
        slot: SlotId,
        instance: tiger_layout::ids::ViewerInstance,
        now: SimTime,
    ) -> bool {
        self.recent
            .get(&(slot, instance))
            .is_some_and(|&at| now.saturating_since(at) <= self.span)
    }
}

/// Derived schedule parameters for a Tiger system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleParams {
    stripe: StripeConfig,
    block_play_time: SimDuration,
    block_service_time: SimDuration,
    schedule_len: SimDuration,
    capacity: u32,
    scheduling_lead: SimDuration,
    ownership_duration: SimDuration,
}

impl ScheduleParams {
    /// Derives the schedule from hardware characteristics.
    ///
    /// * `disk_worst_read` — the worst-case time for one slot's disk work
    ///   (one primary read, plus one mirror-piece read if the system is
    ///   fault tolerant); obtained from the disk model.
    /// * `block_size`/`nic_capacity` — used for the network-side limit: a
    ///   cub's NIC can sustain at most `nic_capacity / stream_rate`
    ///   concurrent streams across its `disks_per_cub` disks.
    ///
    /// The block service time is the larger of the disk- and NIC-implied
    /// minima ("determined by either the speed of the disks or the capacity
    /// of the network interface, whichever is the bottleneck"), then
    /// lengthened so the schedule holds an integral number of slots.
    ///
    /// # Panics
    ///
    /// Panics if the hardware cannot sustain even one stream per disk.
    pub fn derive(
        stripe: StripeConfig,
        block_play_time: SimDuration,
        block_size: ByteSize,
        disk_worst_read: SimDuration,
        nic_capacity: Bandwidth,
    ) -> Self {
        assert!(
            !block_play_time.is_zero(),
            "block play time must be nonzero"
        );
        assert!(
            !disk_worst_read.is_zero(),
            "disk service time must be nonzero"
        );

        // NIC-implied minimum service time: each of the cub's disks may
        // have at most (streams_per_cub_nic / disks_per_cub) slots per
        // block play time. The per-block send occupies `stream_rate` for
        // one block play time, so streams_per_cub_nic = capacity / rate,
        // with rate = block_size / block_play_time.
        let stream_rate_bits =
            block_size.as_bytes() as u128 * 8 * 1_000_000_000 / block_play_time.as_nanos() as u128;
        let nic_streams_per_cub = (nic_capacity.bits_per_sec() as u128 * 1000)
            .checked_div(stream_rate_bits)
            .unwrap_or(u128::MAX); // scaled by 1000 for sub-stream precision
                                   // bst_net = bpt * disks_per_cub / streams_per_cub.
        let nic_min_service =
            (block_play_time.as_nanos() as u128 * stripe.disks_per_cub as u128 * 1000)
                .checked_div(nic_streams_per_cub)
                .map_or(SimDuration::MAX, |ns| SimDuration::from_nanos(ns as u64));

        let min_service = disk_worst_read.max(nic_min_service);
        let schedule_len = block_play_time.mul_u64(u64::from(stripe.num_disks()));
        let capacity_u64 = schedule_len.div_duration(min_service);
        assert!(
            capacity_u64 >= u64::from(stripe.num_disks()),
            "hardware cannot sustain one stream per disk"
        );
        let capacity = u32::try_from(capacity_u64).expect("capacity fits u32");
        // Lengthening rule: the effective service time is schedule_len /
        // capacity (kept implicitly by the rational slot partition).
        let block_service_time = schedule_len.div_u64_ceil(u64::from(capacity));

        // "The ownership period begins some time before the beginning of
        // the slot … the scheduling lead is always at least one block
        // service time. Typically, it is somewhat longer to allow for
        // variations in disk performance."
        let scheduling_lead = block_service_time.mul_u64(3);
        // "The time during which a cub owns a slot is small relative to the
        // block play time."
        let ownership_duration = block_play_time.div_u64(8);

        ScheduleParams {
            stripe,
            block_play_time,
            block_service_time,
            schedule_len,
            capacity,
            scheduling_lead,
            ownership_duration,
        }
    }

    /// Overrides the scheduling lead (tests and ablations).
    pub fn with_scheduling_lead(mut self, lead: SimDuration) -> Self {
        assert!(
            lead >= self.block_service_time,
            "lead must be >= one service time"
        );
        self.scheduling_lead = lead;
        self
    }

    /// Overrides the ownership window duration (tests and ablations).
    pub fn with_ownership_duration(mut self, d: SimDuration) -> Self {
        assert!(
            d <= self.block_play_time,
            "ownership window must fit between pointers"
        );
        assert!(!d.is_zero(), "ownership window must be nonzero");
        self.ownership_duration = d;
        self
    }

    /// The striping configuration.
    pub fn stripe(&self) -> StripeConfig {
        self.stripe
    }

    /// The block play time.
    pub fn block_play_time(&self) -> SimDuration {
        self.block_play_time
    }

    /// The (lengthened) block service time.
    pub fn block_service_time(&self) -> SimDuration {
        self.block_service_time
    }

    /// The schedule ring length: block play time × number of disks.
    pub fn schedule_len(&self) -> SimDuration {
        self.schedule_len
    }

    /// Total system capacity in streams (= number of slots).
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The scheduling lead: how far before a slot's start its disk read is
    /// issued (and its ownership window opens).
    pub fn scheduling_lead(&self) -> SimDuration {
        self.scheduling_lead
    }

    /// The slot-ownership window length.
    pub fn ownership_duration(&self) -> SimDuration {
        self.ownership_duration
    }

    // --- Exact slot geometry -------------------------------------------

    /// The start position of `slot` on the schedule ring, in nanoseconds
    /// from ring origin.
    pub fn slot_start(&self, slot: SlotId) -> SimDuration {
        debug_assert!(slot.raw() < self.capacity);
        SimDuration::from_nanos(
            (self.schedule_len.as_nanos() as u128 * slot.raw() as u128 / self.capacity as u128)
                as u64,
        )
    }

    /// The slot containing ring position `pos` (`pos < schedule_len`).
    ///
    /// Exact inverse of [`ScheduleParams::slot_start`]: the largest `s`
    /// with `slot_start(s) <= pos`, i.e. `floor(((pos+1)*S - 1) / L)`.
    pub fn slot_at(&self, pos: SimDuration) -> SlotId {
        debug_assert!(pos < self.schedule_len);
        let s = ((pos.as_nanos() as u128 + 1) * self.capacity as u128 - 1)
            / self.schedule_len.as_nanos() as u128;
        SlotId(s as u32)
    }

    /// The slot after `slot`, wrapping around the ring.
    pub fn next_slot(&self, slot: SlotId) -> SlotId {
        SlotId((slot.raw() + 1) % self.capacity)
    }

    // --- Disk pointers ---------------------------------------------------

    /// Disk `disk`'s pointer position on the ring at time `t`.
    ///
    /// "The pointer for each disk is one block play time behind the pointer
    /// for its predecessor": disk 0 is at `t mod L`, disk `d` lags it by
    /// `d` block play times.
    pub fn disk_position(&self, disk: DiskId, t: SimTime) -> SimDuration {
        let l = self.schedule_len.as_nanos();
        let lag = (self.block_play_time.as_nanos() as u128 * disk.raw() as u128 % l as u128) as u64;
        SimDuration::from_nanos(((t.as_nanos() % l) + l - lag) % l)
    }

    /// The slot disk `disk` is servicing at time `t`.
    pub fn slot_under_disk(&self, disk: DiskId, t: SimTime) -> SlotId {
        self.slot_at(self.disk_position(disk, t))
    }

    /// The earliest time `>= not_before` at which disk `disk`'s pointer is
    /// at ring position `pos`.
    pub fn time_disk_at_position(
        &self,
        disk: DiskId,
        pos: SimDuration,
        not_before: SimTime,
    ) -> SimTime {
        debug_assert!(pos < self.schedule_len);
        let l = self.schedule_len.as_nanos();
        let lag = (self.block_play_time.as_nanos() as u128 * disk.raw() as u128 % l as u128) as u64;
        // We need t with (t - lag) mod L == pos, i.e. t ≡ pos + lag (mod L).
        let target = (pos.as_nanos() + lag) % l;
        let nb = not_before.as_nanos();
        let base = nb - nb % l + target;
        let t = if base >= nb { base } else { base + l };
        SimTime::from_nanos(t)
    }

    /// The earliest time `>= not_before` at which disk `disk`'s pointer
    /// reaches the start of `slot` — the block's send time.
    pub fn slot_send_time(&self, disk: DiskId, slot: SlotId, not_before: SimTime) -> SimTime {
        self.time_disk_at_position(disk, self.slot_start(slot), not_before)
    }

    // --- Ownership (§4.1.3) ---------------------------------------------

    /// The ring position at which the ownership window for `slot` begins:
    /// one scheduling lead before the slot's start.
    fn ownership_start(&self, slot: SlotId) -> SimDuration {
        let l = self.schedule_len.as_nanos();
        let start = self.slot_start(slot).as_nanos();
        let lead = self.scheduling_lead.as_nanos() % l;
        SimDuration::from_nanos((start + l - lead) % l)
    }

    /// The disk (if any) whose pointer currently gives its cub ownership of
    /// `slot` at time `t`.
    ///
    /// Pointers are spaced one block play time apart and the window is
    /// shorter than that spacing, so at most one disk owns a slot at any
    /// instant; between windows the slot is unowned (Figure 6).
    pub fn owner_of_slot(&self, slot: SlotId, t: SimTime) -> Option<DiskId> {
        let l = self.schedule_len.as_nanos();
        let win = self.ownership_start(slot).as_nanos();
        let bpt = self.block_play_time.as_nanos();
        // Disk d's pointer is at (t - d*bpt) mod L; it is inside
        // [win, win + dur) iff (t - win - d*bpt) mod L < dur.
        let x = ((t.as_nanos() % l) + l - win) % l;
        let d = x / bpt;
        let into = x % bpt;
        (into < self.ownership_duration.as_nanos() && d < u64::from(self.stripe.num_disks()))
            .then_some(DiskId(d as u32))
    }

    /// All slots owned via disk `disk` at time `t` (zero or one slot).
    pub fn slot_owned_by_disk(&self, disk: DiskId, t: SimTime) -> Option<SlotId> {
        // The pointer is at position p; it grants ownership of slot s iff
        // p ∈ [ownership_start(s), +dur). ownership_start(s) = slot_start(s)
        // - lead, so slot_start(s) ∈ (p + lead - dur, p + lead].
        let l = self.schedule_len.as_nanos();
        let p = self.disk_position(disk, t).as_nanos();
        let hi = (p + self.scheduling_lead.as_nanos()) % l;
        // Find the unique slot whose start is in (hi - dur, hi]. Slot
        // starts are spaced one service time apart and dur < bpt, but dur
        // may exceed one service time, in which case several slot starts
        // fall in the window; ownership belongs to the *latest* window
        // opened, i.e. the largest slot start <= hi... each slot's window is
        // [start - lead, start - lead + dur). The pointer may be in several
        // overlapping windows when dur > service time. Tiger's window is
        // "small relative to the block play time" but may span several
        // slots; a cub may insert into ANY empty slot it owns. We return
        // the slot whose window most recently opened (largest start <= hi)
        // and expose the full range via `owned_slot_range`.
        let slot = self.slot_at(SimDuration::from_nanos(hi));
        let start = self.slot_start(slot).as_nanos();
        let dist_back = (hi + l - start) % l;
        if dist_back < self.ownership_duration.as_nanos() {
            Some(slot)
        } else {
            None
        }
    }

    /// All slots disk `disk` owns at time `t`, oldest window first.
    ///
    /// When the ownership duration exceeds one block service time a pointer
    /// can be inside several slots' windows simultaneously; the inserting
    /// cub may use any empty one.
    pub fn owned_slot_range(&self, disk: DiskId, t: SimTime) -> Vec<SlotId> {
        let l = self.schedule_len.as_nanos();
        let p = self.disk_position(disk, t).as_nanos();
        let hi = (p + self.scheduling_lead.as_nanos()) % l;
        let dur = self.ownership_duration.as_nanos();
        let mut out = Vec::new();
        // Slot starts in (hi - dur, hi], walking backwards from slot_at(hi).
        let mut slot = self.slot_at(SimDuration::from_nanos(hi));
        loop {
            let start = self.slot_start(slot).as_nanos();
            let dist_back = (hi + l - start) % l;
            if dist_back < dur {
                out.push(slot);
                slot = SlotId((slot.raw() + self.capacity - 1) % self.capacity);
                if out.len() as u32 >= self.capacity {
                    break; // Degenerate: window covers the whole ring.
                }
            } else {
                break;
            }
        }
        out.reverse();
        out
    }

    /// How long from `t` until disk `disk` next *gains* ownership of some
    /// slot (used to pace insertion retries).
    pub fn time_to_next_ownership(&self, disk: DiskId, t: SimTime) -> SimDuration {
        // Ownership windows open each time a slot start crosses position
        // p + lead. The next slot boundary after (p + lead) opens the next
        // window.
        let l = self.schedule_len.as_nanos();
        let p = self.disk_position(disk, t).as_nanos();
        let hi = (p + self.scheduling_lead.as_nanos()) % l;
        let slot = self.slot_at(SimDuration::from_nanos(hi));
        let next = self.next_slot(slot);
        let next_start = self.slot_start(next).as_nanos();
        SimDuration::from_nanos((next_start + l - hi) % l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §5 testbed parameters; the disk worst-case read is the value the
    /// calibrated `tiger-disk` profile produces (asserted equal there).
    fn sosp() -> ScheduleParams {
        ScheduleParams::derive(
            StripeConfig::new(14, 4, 4),
            SimDuration::from_secs(1),
            ByteSize::from_bytes(250_000),
            SimDuration::from_nanos(92_954_226), // tiger-disk sosp97 worst case
            Bandwidth::from_mbit_per_sec(135),
        )
    }

    #[test]
    fn sosp_capacity_is_602() {
        let p = sosp();
        assert_eq!(p.capacity(), 602);
        assert_eq!(p.schedule_len(), SimDuration::from_secs(56));
        // Disks are the bottleneck, not the NIC (§5).
        let spd = p.capacity() as f64 / 56.0;
        assert!((10.0..11.0).contains(&spd));
    }

    #[test]
    fn nic_limits_when_disks_are_fast() {
        // With an implausibly fast disk, the NIC becomes the bottleneck:
        // 135 Mbit/s / 2 Mbit/s = 67.5 streams per cub = ~16.9 per disk.
        let p = ScheduleParams::derive(
            StripeConfig::new(14, 4, 4),
            SimDuration::from_secs(1),
            ByteSize::from_bytes(250_000),
            SimDuration::from_millis(1),
            Bandwidth::from_mbit_per_sec(135),
        );
        let per_cub = p.capacity() as f64 / 14.0;
        assert!(per_cub <= 67.5 + 1e-9, "per-cub streams {per_cub}");
        assert!(per_cub > 66.0, "per-cub streams {per_cub}");
    }

    #[test]
    fn slots_tile_the_ring_exactly() {
        let p = sosp();
        // Every ring position maps to exactly one slot, boundaries agree.
        for i in 0..p.capacity() {
            let s = SlotId(i);
            let start = p.slot_start(s);
            assert_eq!(p.slot_at(start), s, "start of {s}");
            if !start.is_zero() {
                let just_before = SimDuration::from_nanos(start.as_nanos() - 1);
                assert_eq!(p.slot_at(just_before).raw(), i - 1);
            }
        }
        // The last slot reaches the end of the ring.
        let last = SimDuration::from_nanos(p.schedule_len().as_nanos() - 1);
        assert_eq!(p.slot_at(last).raw(), p.capacity() - 1);
    }

    #[test]
    fn slot_widths_differ_by_at_most_one_nano() {
        let p = sosp();
        let mut widths = Vec::new();
        for i in 0..p.capacity() {
            let start = p.slot_start(SlotId(i)).as_nanos();
            let end = if i + 1 == p.capacity() {
                p.schedule_len().as_nanos()
            } else {
                p.slot_start(SlotId(i + 1)).as_nanos()
            };
            widths.push(end - start);
        }
        let min = widths.iter().min().expect("nonempty");
        let max = widths.iter().max().expect("nonempty");
        assert!(max - min <= 1, "slot widths vary by {}", max - min);
        // And the width is the block service time (±1 ns).
        assert!((p.block_service_time().as_nanos() as i128 - *max as i128).abs() <= 1);
    }

    #[test]
    fn disk_pointers_lag_by_one_block_play_time() {
        let p = sosp();
        let t = SimTime::from_millis(12_345);
        for d in 1..p.stripe().num_disks() {
            let prev = p.disk_position(DiskId(d - 1), t);
            let cur = p.disk_position(DiskId(d), t);
            let l = p.schedule_len().as_nanos();
            let lag = (prev.as_nanos() + l - cur.as_nanos()) % l;
            assert_eq!(lag, p.block_play_time().as_nanos(), "disk {d}");
        }
        // The distance between the last and first disk is also one bpt.
        let first = p.disk_position(DiskId(0), t);
        let last = p.disk_position(DiskId(p.stripe().num_disks() - 1), t);
        let l = p.schedule_len().as_nanos();
        let gap = (last.as_nanos() + l - first.as_nanos()) % l;
        assert_eq!(gap, l - p.block_play_time().as_nanos() * 55);
    }

    #[test]
    fn time_disk_at_position_is_consistent() {
        let p = sosp();
        for d in [0u32, 1, 13, 55] {
            for pos_ms in [0u64, 1, 93, 999, 55_999] {
                let pos = SimDuration::from_millis(pos_ms);
                let nb = SimTime::from_secs(100);
                let t = p.time_disk_at_position(DiskId(d), pos, nb);
                assert!(t >= nb);
                assert_eq!(
                    p.disk_position(DiskId(d), t),
                    pos,
                    "disk {d} pos {pos_ms}ms"
                );
                assert!(t - nb < p.schedule_len() + SimDuration::from_nanos(1));
            }
        }
    }

    #[test]
    fn successive_sends_to_a_slot_are_one_bpt_apart() {
        // A viewer in slot s gets a block from each successive disk exactly
        // one block play time after the previous disk.
        let p = sosp();
        let s = SlotId(17);
        let t0 = p.slot_send_time(DiskId(5), s, SimTime::from_secs(10));
        let t1 = p.slot_send_time(DiskId(6), s, t0);
        assert_eq!(t1 - t0, p.block_play_time());
    }

    #[test]
    fn at_most_one_owner_and_windows_rotate() {
        let p = sosp();
        let slot = SlotId(100);
        let mut owners_seen = Vec::new();
        let mut owned_ns = 0u64;
        let step = SimDuration::from_millis(5);
        let total_steps = (p.schedule_len().as_nanos() / step.as_nanos()) as usize;
        let mut t = SimTime::from_secs(200);
        for _ in 0..total_steps {
            if let Some(d) = p.owner_of_slot(slot, t) {
                owned_ns += step.as_nanos();
                if owners_seen.last() != Some(&d) {
                    owners_seen.push(d);
                }
                // Cross-check both directions of the ownership math.
                assert!(
                    p.owned_slot_range(d, t).contains(&slot),
                    "owner {d} does not list {slot}"
                );
            }
            t += step;
        }
        // Over one full ring, every disk owned the slot exactly once (a
        // window straddling the sample boundary may count its disk twice).
        let n = p.stripe().num_disks() as usize;
        assert!(
            owners_seen.len() == n || owners_seen.len() == n + 1,
            "expected ~{n} ownership windows, saw {}",
            owners_seen.len()
        );
        // The slot was owned for roughly num_disks × ownership_duration.
        let expect = p.ownership_duration().as_nanos() * u64::from(p.stripe().num_disks());
        let ratio = owned_ns as f64 / expect as f64;
        assert!((0.8..1.2).contains(&ratio), "owned fraction off: {ratio}");
    }

    #[test]
    fn ownership_precedes_slot_start_by_scheduling_lead() {
        let p = sosp();
        let slot = SlotId(42);
        // Find a time when disk 7 owns the slot; the slot's send time for
        // disk 7 must then be within [0, lead] in the future (ownership
        // opens `lead` before the pointer reaches the slot start).
        let mut t = SimTime::from_secs(300);
        let step = SimDuration::from_millis(1);
        let mut found = false;
        for _ in 0..60_000 {
            if p.owner_of_slot(slot, t) == Some(DiskId(7)) {
                let send = p.slot_send_time(DiskId(7), slot, t);
                let until = send - t;
                assert!(until <= p.scheduling_lead(), "send due {until} away");
                found = true;
                break;
            }
            t += step;
        }
        assert!(found, "disk 7 never owned the slot in one ring period");
    }

    #[test]
    fn time_to_next_ownership_is_bounded_by_service_time() {
        let p = sosp();
        let t = SimTime::from_millis(777);
        let dt = p.time_to_next_ownership(DiskId(3), t);
        assert!(dt <= p.block_service_time() + SimDuration::from_nanos(1));
        // After waiting, a window is indeed open.
        let t2 = t + dt;
        assert!(!p.owned_slot_range(DiskId(3), t2).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot sustain")]
    fn impossible_hardware_rejected() {
        ScheduleParams::derive(
            StripeConfig::new(2, 1, 1),
            SimDuration::from_secs(1),
            ByteSize::from_bytes(250_000),
            SimDuration::from_secs(2), // disk slower than one block per bpt
            Bandwidth::from_mbit_per_sec(135),
        );
    }
}
