//! The materialized global disk schedule (§3.1).
//!
//! The distributed system never holds this object — that is the point of
//! the coherent hallucination. It exists in code for two purposes:
//!
//! 1. the **centralized baseline** of §3.3, where the controller tracks the
//!    entire schedule and streams per-block commands to the cubs; and
//! 2. the **omniscient checker** used by tests: an observer applies every
//!    committed operation to a real `DiskSchedule` and verifies that the
//!    cubs' independent actions are consistent with it (no double-booked
//!    slot, no send for an empty slot).

use tiger_layout::ids::ViewerInstance;
use tiger_sim::SimTime;

use crate::params::{ScheduleParams, SlotId};
use crate::records::{StreamKind, ViewerState};

/// An occupied slot in the global schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotEntry {
    /// The viewer state occupying the slot.
    pub state: ViewerState,
    /// When the entry was inserted (for diagnostics).
    pub inserted_at: SimTime,
}

/// Errors from schedule mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// Insert into an occupied slot — a resource conflict the system must
    /// never create ("Inserting a viewer into a slot that is already
    /// occupied would result in a loss of service").
    SlotOccupied(SlotId),
    /// The slot id is out of range.
    BadSlot(SlotId),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::SlotOccupied(s) => write!(f, "{s} is already occupied"),
            ScheduleError::BadSlot(s) => write!(f, "{s} out of range"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The single, global, centralized schedule.
#[derive(Clone, Debug)]
pub struct DiskSchedule {
    params: ScheduleParams,
    slots: Vec<Option<SlotEntry>>,
}

impl DiskSchedule {
    /// Creates an empty schedule for `params`.
    pub fn new(params: ScheduleParams) -> Self {
        let n = params.capacity() as usize;
        DiskSchedule {
            params,
            slots: vec![None; n],
        }
    }

    /// The schedule parameters.
    pub fn params(&self) -> &ScheduleParams {
        &self.params
    }

    /// Inserts `state` into its slot.
    pub fn insert(&mut self, state: ViewerState, now: SimTime) -> Result<(), ScheduleError> {
        let slot = state.slot;
        let cell = self
            .slots
            .get_mut(slot.index())
            .ok_or(ScheduleError::BadSlot(slot))?;
        if cell.is_some() {
            return Err(ScheduleError::SlotOccupied(slot));
        }
        *cell = Some(SlotEntry {
            state,
            inserted_at: now,
        });
        Ok(())
    }

    /// Removes the entry for `instance` from `slot` if present, returning
    /// it. Deschedule semantics: a non-matching instance is left alone.
    pub fn remove(&mut self, slot: SlotId, instance: ViewerInstance) -> Option<SlotEntry> {
        let cell = self.slots.get_mut(slot.index())?;
        if cell.as_ref().is_some_and(|e| e.state.instance == instance) {
            cell.take()
        } else {
            None
        }
    }

    /// The entry in `slot`, if any.
    pub fn get(&self, slot: SlotId) -> Option<&SlotEntry> {
        self.slots.get(slot.index())?.as_ref()
    }

    /// Advances the entry in `slot` by one block (a disk serviced it).
    /// Returns the state *before* advancing (the block to send), if any.
    pub fn service(&mut self, slot: SlotId) -> Option<ViewerState> {
        let cell = self.slots.get_mut(slot.index())?;
        let entry = cell.as_mut()?;
        let current = entry.state;
        entry.state = entry.state.advanced(1);
        Some(current)
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> u32 {
        self.slots.iter().filter(|s| s.is_some()).count() as u32
    }

    /// Occupied fraction of capacity.
    pub fn load_fraction(&self) -> f64 {
        f64::from(self.occupancy()) / f64::from(self.params.capacity())
    }

    /// The first free slot at or after `from`, scanning forward around the
    /// ring; `None` if the schedule is full.
    pub fn first_free_from(&self, from: SlotId) -> Option<SlotId> {
        let n = self.params.capacity();
        (0..n)
            .map(|i| SlotId((from.raw() + i) % n))
            .find(|s| self.slots[s.index()].is_none())
    }

    /// Iterates over occupied slots.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &SlotEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (SlotId(i as u32), e)))
    }

    /// Whether the schedule is completely full.
    pub fn is_full(&self) -> bool {
        self.occupancy() == self.params.capacity()
    }
}

/// An omniscient observer used by tests: replays committed distributed
/// operations against a real global schedule and reports any action that
/// the hallucination would not permit.
///
/// Removal is committed at the controller, but a block already read (or in
/// flight on a NIC) legitimately goes out for a short while afterwards —
/// the protocol only guarantees deschedules win within one propagation
/// round. Sends within `grace` of the removal are therefore permitted.
#[derive(Clone, Debug)]
pub struct Omniscient {
    schedule: DiskSchedule,
    violations: Vec<String>,
    grace: crate::params::SlotGrace,
}

impl Omniscient {
    /// Creates a checker over an empty schedule, with the default grace of
    /// one block play time plus 500 ms for deschedule propagation. Systems
    /// whose end-of-file notices run ahead of the final send (they travel
    /// with the viewer-state lead) should widen it with
    /// [`Omniscient::with_grace`].
    pub fn new(params: ScheduleParams) -> Self {
        let grace_span = params.block_play_time() + tiger_sim::SimDuration::from_millis(500);
        Omniscient {
            schedule: DiskSchedule::new(params),
            violations: Vec::new(),
            grace: crate::params::SlotGrace::new(grace_span),
        }
    }

    /// Overrides the in-flight grace window.
    pub fn with_grace(mut self, span: tiger_sim::SimDuration) -> Self {
        self.grace = crate::params::SlotGrace::new(span);
        self
    }

    /// Records a committed insertion.
    pub fn on_insert(&mut self, state: ViewerState, now: SimTime) {
        if state.kind != StreamKind::Primary {
            return; // Mirror entries shadow the primary; not double-booking.
        }
        if let Err(e) = self.schedule.insert(state, now) {
            self.violations
                .push(format!("insert of {} at {now}: {e}", state.instance));
        }
    }

    /// Records a committed removal at `now`.
    pub fn on_remove(&mut self, slot: SlotId, instance: ViewerInstance, now: SimTime) {
        self.schedule.remove(slot, instance);
        self.grace.record(slot, instance, now);
    }

    /// Records that a cub sent a block for `state` at `now`. A send for a
    /// slot the global schedule shows empty (or occupied by someone else)
    /// is a violation — unless the occupant was removed within the grace
    /// window (an in-flight block).
    pub fn on_send(&mut self, state: &ViewerState, now: SimTime) {
        match self.schedule.get(state.slot) {
            Some(entry) if entry.state.instance == state.instance => {}
            Some(entry) => {
                if !self.grace.covers(state.slot, state.instance, now) {
                    self.violations.push(format!(
                        "send for {} in {} which is held by {}",
                        state.instance, state.slot, entry.state.instance
                    ));
                }
            }
            None => {
                if !self.grace.covers(state.slot, state.instance, now) {
                    self.violations.push(format!(
                        "send for {} in empty {}",
                        state.instance, state.slot
                    ));
                }
            }
        }
    }

    /// The global schedule as accumulated.
    pub fn schedule(&self) -> &DiskSchedule {
        &self.schedule
    }

    /// All recorded violations.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_layout::{BlockNum, FileId, StripeConfig, ViewerId};
    use tiger_sim::{Bandwidth, ByteSize, SimDuration};

    fn params() -> ScheduleParams {
        ScheduleParams::derive(
            StripeConfig::new(4, 1, 2),
            SimDuration::from_secs(1),
            ByteSize::from_bytes(250_000),
            SimDuration::from_millis(100),
            Bandwidth::from_mbit_per_sec(135),
        )
    }

    fn vs(slot: u32, viewer: u64) -> ViewerState {
        ViewerState {
            instance: ViewerInstance {
                viewer: ViewerId(viewer),
                incarnation: 0,
            },
            client: 0,
            file: FileId(0),
            position: BlockNum(0),
            slot: SlotId(slot),
            play_seq: 0,
            bitrate: Bandwidth::from_mbit_per_sec(2),
            kind: StreamKind::Primary,
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = DiskSchedule::new(params());
        s.insert(vs(3, 1), SimTime::ZERO).expect("empty slot");
        assert_eq!(s.occupancy(), 1);
        assert!(s.get(SlotId(3)).is_some());
        let wrong = ViewerInstance {
            viewer: ViewerId(2),
            incarnation: 0,
        };
        assert!(
            s.remove(SlotId(3), wrong).is_none(),
            "wrong instance is a no-op"
        );
        let right = ViewerInstance {
            viewer: ViewerId(1),
            incarnation: 0,
        };
        assert!(s.remove(SlotId(3), right).is_some());
        assert_eq!(s.occupancy(), 0);
    }

    #[test]
    fn double_booking_rejected() {
        let mut s = DiskSchedule::new(params());
        s.insert(vs(3, 1), SimTime::ZERO).expect("empty slot");
        assert_eq!(
            s.insert(vs(3, 2), SimTime::ZERO),
            Err(ScheduleError::SlotOccupied(SlotId(3)))
        );
    }

    #[test]
    fn service_advances_position() {
        let mut s = DiskSchedule::new(params());
        s.insert(vs(3, 1), SimTime::ZERO).expect("empty slot");
        let sent = s.service(SlotId(3)).expect("occupied");
        assert_eq!(sent.position, BlockNum(0));
        let sent = s.service(SlotId(3)).expect("occupied");
        assert_eq!(sent.position, BlockNum(1));
        assert_eq!(s.get(SlotId(3)).expect("occupied").state.play_seq, 2);
    }

    #[test]
    fn first_free_wraps() {
        let p = params();
        let n = p.capacity();
        let mut s = DiskSchedule::new(p);
        for slot in 0..n {
            s.insert(vs(slot, u64::from(slot)), SimTime::ZERO)
                .expect("empty");
        }
        assert!(s.is_full());
        assert_eq!(s.first_free_from(SlotId(0)), None);
        let mid = n / 2;
        s.remove(
            SlotId(mid),
            ViewerInstance {
                viewer: ViewerId(u64::from(mid)),
                incarnation: 0,
            },
        );
        assert_eq!(
            s.first_free_from(SlotId(mid + 1)),
            Some(SlotId(mid)),
            "wraps around"
        );
    }

    #[test]
    fn omniscient_flags_bad_sends() {
        let mut o = Omniscient::new(params());
        o.on_insert(vs(3, 1), SimTime::ZERO);
        o.on_send(&vs(3, 1), SimTime::ZERO);
        assert!(o.violations().is_empty());
        o.on_send(&vs(4, 1), SimTime::ZERO); // empty slot
        o.on_send(&vs(3, 2), SimTime::ZERO); // held by someone else
        assert_eq!(o.violations().len(), 2);
    }

    #[test]
    fn omniscient_flags_double_insert() {
        let mut o = Omniscient::new(params());
        o.on_insert(vs(3, 1), SimTime::ZERO);
        o.on_insert(vs(3, 2), SimTime::ZERO);
        assert_eq!(o.violations().len(), 1);
        o.on_remove(
            SlotId(3),
            ViewerInstance {
                viewer: ViewerId(1),
                incarnation: 0,
            },
            SimTime::ZERO,
        );
        o.on_insert(vs(3, 2), SimTime::ZERO);
        assert_eq!(o.violations().len(), 1, "reuse after remove is fine");
    }
}
