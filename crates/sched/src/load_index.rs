//! Incrementally maintained residual-capacity index for the network
//! schedule (see docs/ADMISSION.md).
//!
//! The network schedule's load profile is a piecewise-constant function of
//! ring position: every entry contributes `+rate` at its start and `-rate`
//! one block play time later (mod the ring). The old implementation
//! rescanned every entry on every admission probe; this module keeps the
//! profile materialized and updates it in O(affected slots) on each
//! reservation change, so probes are O(window) reads.
//!
//! Two representations, chosen once at construction:
//!
//! * [`GridIndex`] — when starts are quantized (the paper's §3.2 fix),
//!   every breakpoint lies on the quantum grid, so the profile is constant
//!   per grid slot. A flat `Vec<u64>` of per-slot load plus a coarse
//!   per-group maximum (64 slots per group) lets `fits` and the
//!   admissible-start scan accept whole windows without touching slots.
//! * [`SparseIndex`] — when starts are arbitrary (the fragmentation
//!   ablation), breakpoints are kept in a `BTreeMap` keyed by start
//!   position; queries walk only the entries whose spans overlap the
//!   probed window instead of the whole schedule.
//!
//! Both produce bit-identical answers to the full rescan — the
//! differential property test in `tests/prop.rs` drives them against a
//! rescanning reference model through random operation sequences.

use std::collections::btree_map;
use std::collections::BTreeMap;
use std::ops::Bound::{Excluded, Included};

/// Slots per coarse summary group in [`GridIndex`].
pub(crate) const GROUP_SLOTS: usize = 64;

/// Per-quantum load buffer with a coarse per-group maximum.
#[derive(Clone, Debug)]
pub(crate) struct GridIndex {
    /// Slot width (the start-position quantum), nanoseconds.
    q: u64,
    /// Slots covered by one entry: block play time / quantum.
    k: usize,
    /// Instantaneous load per slot, bits/sec.
    load: Vec<u64>,
    /// Max slot load per group of [`GROUP_SLOTS`] slots.
    group_max: Vec<u64>,
}

impl GridIndex {
    pub(crate) fn new(len: u64, bpt: u64, q: u64) -> Self {
        let slots = (len / q) as usize;
        GridIndex {
            q,
            k: (bpt / q) as usize,
            load: vec![0; slots],
            group_max: vec![0; slots.div_ceil(GROUP_SLOTS)],
        }
    }

    fn slots(&self) -> usize {
        self.load.len()
    }

    fn slot_of(&self, pos: u64) -> usize {
        (pos / self.q) as usize % self.slots()
    }

    /// Adds an entry starting at (aligned) `start`. O(k).
    pub(crate) fn add(&mut self, start: u64, bits: u64) {
        let s = self.slots();
        let j = self.slot_of(start);
        for i in 0..self.k {
            let sl = (j + i) % s;
            self.load[sl] += bits;
            let g = sl / GROUP_SLOTS;
            if self.load[sl] > self.group_max[g] {
                self.group_max[g] = self.load[sl];
            }
        }
    }

    /// Removes an entry starting at `start`. O(k + touched groups).
    pub(crate) fn sub(&mut self, start: u64, bits: u64) {
        let s = self.slots();
        let j = self.slot_of(start);
        // A removal can only lower a group's maximum if it lowers a slot
        // that was *at* the maximum; recompute just those groups (each a
        // [`GROUP_SLOTS`]-slot scan).
        let mut cur_g = usize::MAX;
        let mut need = false;
        for i in 0..self.k {
            let sl = (j + i) % s;
            let g = sl / GROUP_SLOTS;
            if g != cur_g {
                if need {
                    self.recompute_group(cur_g);
                    need = false;
                }
                cur_g = g;
            }
            need |= self.load[sl] == self.group_max[g];
            self.load[sl] -= bits;
        }
        if need {
            self.recompute_group(cur_g);
        }
    }

    fn recompute_group(&mut self, g: usize) {
        let lo = g * GROUP_SLOTS;
        let hi = ((g + 1) * GROUP_SLOTS).min(self.slots());
        self.group_max[g] = self.load[lo..hi].iter().copied().max().unwrap_or(0);
    }

    /// Instantaneous load at `pos` (any ring position). O(1).
    pub(crate) fn load_at(&self, pos: u64) -> u64 {
        self.load[self.slot_of(pos)]
    }

    /// Slots covered by a window starting at `pos`: exactly `k` when the
    /// start is on the grid, `k + 1` (two partial slots) otherwise —
    /// capped at the ring size.
    fn span_of(&self, pos: u64) -> usize {
        (self.k + usize::from(!pos.is_multiple_of(self.q))).min(self.slots())
    }

    /// Max instantaneous load over `[pos, pos + bpt)`. O(span).
    pub(crate) fn max_in_entry_window(&self, pos: u64) -> u64 {
        let s = self.slots();
        let j = self.slot_of(pos);
        let mut max = 0;
        for i in 0..self.span_of(pos) {
            max = max.max(self.load[(j + i) % s]);
        }
        max
    }

    /// Whether a window starting at `pos` has `headroom` bits/sec free at
    /// every point: group quick-accept first, per-slot scan with early
    /// exit otherwise.
    pub(crate) fn window_has_headroom(&self, pos: u64, headroom: u64) -> bool {
        let s = self.slots();
        let j = self.slot_of(pos);
        let span = self.span_of(pos);
        if j + span <= s {
            let mut g = j / GROUP_SLOTS;
            let g_last = (j + span - 1) / GROUP_SLOTS;
            while g <= g_last && self.group_max[g] <= headroom {
                g += 1;
            }
            if g > g_last {
                return true;
            }
        }
        for i in 0..span {
            if self.load[(j + i) % s] > headroom {
                return false;
            }
        }
        true
    }

    /// Group-summary quick-accept for the admissible-start scan: if every
    /// group overlapping the windows of all [`GROUP_SLOTS`] starts in the
    /// group beginning at slot `first` has `headroom` free, every one of
    /// those starts is admissible. Returns the first slot past the
    /// accepted run, or `None` when the summary cannot decide.
    pub(crate) fn quick_accept_group(&self, first: usize, headroom: u64) -> Option<usize> {
        debug_assert!(first.is_multiple_of(GROUP_SLOTS));
        let s = self.slots();
        let run_end = (first + GROUP_SLOTS).min(s);
        // The last start in the run opens a window reaching this far:
        let reach = run_end - 1 + self.k - 1;
        if reach >= s {
            return None; // Wraps the ring; fall back to per-slot checks.
        }
        let mut g = first / GROUP_SLOTS;
        let g_last = reach / GROUP_SLOTS;
        while g <= g_last {
            if self.group_max[g] > headroom {
                return None;
            }
            g += 1;
        }
        Some(run_end)
    }

    /// The quantum, nanoseconds.
    pub(crate) fn quantum(&self) -> u64 {
        self.q
    }
}

/// Summed rate and entry count at one breakpoint position.
#[derive(Clone, Copy, Debug)]
struct Lane {
    bits: u64,
    count: u32,
}

/// Breakpoint index for arbitrary (unquantized) start positions.
#[derive(Clone, Debug)]
pub(crate) struct SparseIndex {
    /// start position (ns) → aggregate rate starting there.
    starts: BTreeMap<u64, Lane>,
    bpt: u64,
    len: u64,
}

impl SparseIndex {
    pub(crate) fn new(len: u64, bpt: u64) -> Self {
        SparseIndex {
            starts: BTreeMap::new(),
            bpt,
            len,
        }
    }

    pub(crate) fn add(&mut self, start: u64, bits: u64) {
        let lane = self
            .starts
            .entry(start % self.len)
            .or_insert(Lane { bits: 0, count: 0 });
        lane.bits += bits;
        lane.count += 1;
    }

    pub(crate) fn sub(&mut self, start: u64, bits: u64) {
        let key = start % self.len;
        let lane = self.starts.get_mut(&key).expect("entry was indexed");
        lane.bits -= bits;
        lane.count -= 1;
        if lane.count == 0 {
            self.starts.remove(&key);
        }
    }

    /// Sum of rates with start in the ring interval `(pos - bpt, pos]` —
    /// exactly the entries whose span covers `pos`. O(log n + overlap).
    pub(crate) fn load_at(&self, pos: u64) -> u64 {
        let pos = pos % self.len;
        let a = (pos + self.len - self.bpt) % self.len;
        let mut total = 0u64;
        if a < pos {
            for (_, lane) in self.starts.range((Excluded(a), Included(pos))) {
                total += lane.bits;
            }
        } else {
            // Wraps the ring end: (a, len) ∪ [0, pos].
            for (_, lane) in self.starts.range((Excluded(a), Excluded(self.len))) {
                total += lane.bits;
            }
            for (_, lane) in self.starts.range(..=pos) {
                total += lane.bits;
            }
        }
        total
    }

    /// Breakpoints in the open ring interval `(a, a + width)`, yielded as
    /// `(offset from a, rate)` in ascending offset order, without
    /// allocating.
    fn ring_range(&self, a: u64, width: u64) -> RingRange<'_> {
        let empty = || self.starts.range((Included(0), Excluded(0)));
        let (first, second) = if a + width <= self.len {
            (
                self.starts.range((Excluded(a), Excluded(a + width))),
                empty(),
            )
        } else {
            let tail = self.starts.range((Excluded(a), Excluded(self.len)));
            let head_end = a + width - self.len;
            let head = if head_end == 0 {
                empty()
            } else {
                self.starts.range((Included(0), Excluded(head_end)))
            };
            (tail, head)
        };
        RingRange {
            first,
            second,
            base: a,
            len: self.len,
            in_second: false,
        }
    }

    /// Max instantaneous load over `[pos, pos + bpt)`: start from
    /// `load_at(pos)` and sweep the breakpoints inside the window — rises
    /// from entry starts, falls from entry ends — in offset order.
    /// O(log n + entries near the window).
    pub(crate) fn max_in_entry_window(&self, pos: u64) -> u64 {
        let s = pos % self.len;
        let mut load = self.load_at(s) as i128;
        let mut max = load;
        // Rises: starts strictly inside (s, s + bpt), at their offset.
        let mut rises = self.ring_range(s, self.bpt).peekable();
        // Falls: entries ending inside the window started in (s - bpt, s);
        // an entry starting at offset d from (s - bpt) ends at offset d
        // from s.
        let fall_base = (s + self.len - self.bpt) % self.len;
        let mut falls = self.ring_range(fall_base, self.bpt).peekable();
        loop {
            let next_rise = rises.peek().map(|&(d, _)| d);
            let next_fall = falls.peek().map(|&(d, _)| d);
            let d = match (next_rise, next_fall) {
                (None, None) => break,
                (Some(r), None) => r,
                (None, Some(f)) => f,
                (Some(r), Some(f)) => r.min(f),
            };
            if next_rise == Some(d) {
                let (_, bits) = rises.next().expect("peeked");
                load += i128::from(bits);
            }
            if next_fall == Some(d) {
                let (_, bits) = falls.next().expect("peeked");
                load -= i128::from(bits);
            }
            max = max.max(load);
        }
        max as u64
    }
}

/// Iterator over breakpoints in an open ring interval; see
/// [`SparseIndex::ring_range`].
struct RingRange<'a> {
    first: btree_map::Range<'a, u64, Lane>,
    second: btree_map::Range<'a, u64, Lane>,
    base: u64,
    len: u64,
    in_second: bool,
}

impl Iterator for RingRange<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if !self.in_second {
            if let Some((&t, lane)) = self.first.next() {
                return Some((t - self.base, lane.bits));
            }
            self.in_second = true;
        }
        self.second
            .next()
            .map(|(&t, lane)| (t + self.len - self.base, lane.bits))
    }
}

/// The residual-capacity index behind [`crate::NetworkSchedule`].
#[derive(Clone, Debug)]
pub(crate) enum LoadIndex {
    Grid(GridIndex),
    Sparse(SparseIndex),
}

impl LoadIndex {
    pub(crate) fn new(len: u64, bpt: u64, quantum: Option<u64>) -> Self {
        match quantum {
            Some(q) => LoadIndex::Grid(GridIndex::new(len, bpt, q)),
            None => LoadIndex::Sparse(SparseIndex::new(len, bpt)),
        }
    }

    pub(crate) fn add(&mut self, start: u64, bits: u64) {
        match self {
            LoadIndex::Grid(g) => g.add(start, bits),
            LoadIndex::Sparse(s) => s.add(start, bits),
        }
    }

    pub(crate) fn sub(&mut self, start: u64, bits: u64) {
        match self {
            LoadIndex::Grid(g) => g.sub(start, bits),
            LoadIndex::Sparse(s) => s.sub(start, bits),
        }
    }

    pub(crate) fn load_at(&self, pos: u64) -> u64 {
        match self {
            LoadIndex::Grid(g) => g.load_at(pos),
            LoadIndex::Sparse(s) => s.load_at(pos),
        }
    }

    pub(crate) fn max_in_entry_window(&self, pos: u64) -> u64 {
        match self {
            LoadIndex::Grid(g) => g.max_in_entry_window(pos),
            LoadIndex::Sparse(s) => s.max_in_entry_window(pos),
        }
    }

    /// Whether every point of the window starting at `pos` has at least
    /// `headroom` bits/sec free.
    pub(crate) fn window_has_headroom(&self, pos: u64, headroom: u64) -> bool {
        match self {
            LoadIndex::Grid(g) => g.window_has_headroom(pos, headroom),
            LoadIndex::Sparse(s) => s.max_in_entry_window(pos) <= headroom,
        }
    }

    pub(crate) fn as_grid(&self) -> Option<&GridIndex> {
        match self {
            LoadIndex::Grid(g) => Some(g),
            LoadIndex::Sparse(_) => None,
        }
    }
}
