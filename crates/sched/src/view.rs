//! A cub's bounded, possibly out-of-date view of the schedule (§4.1).
//!
//! "Every cub maintains a view of the portion of the disk schedule near
//! each of its disks. … Views may be incomplete or out-of-date without
//! compromising the coherence of the underlying hallucination."
//!
//! The view enforces the paper's merge rules:
//!
//! * viewer states are idempotent — duplicates are ignored;
//! * a held deschedule blocks (re-)acceptance of the matching viewer state
//!   ("Before accepting a viewer state, a cub checks to see if it is
//!   holding a deschedule for that viewer in that slot");
//! * deschedules are held for a while after their slot has passed, to catch
//!   late viewer states;
//! * a primary entry never shares a slot with a different instance — an
//!   attempted conflicting insert is reported, because it would mean the
//!   ownership protocol was violated.

use tiger_sim::DetHashMap as HashMap;

use tiger_sim::SimTime;

use crate::params::SlotId;
use crate::records::{Deschedule, StreamKind, ViewerState};

/// Outcome of merging a viewer state into a view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewApply {
    /// The record was new and is now in the view.
    Inserted,
    /// The record refreshed/advanced an existing entry.
    Updated,
    /// The record is an exact or older duplicate; ignored.
    Duplicate,
    /// A held deschedule killed the record on arrival.
    Blocked,
    /// The slot already holds a *different* viewer instance of the same
    /// kind. The view keeps the existing entry; the caller should treat
    /// this as an ownership-protocol violation.
    Conflict,
}

/// A cub's window onto the global schedule.
#[derive(Clone, Debug, Default)]
pub struct ScheduleView {
    /// Live entries. A slot usually holds one primary entry; during failed
    /// mode it may also hold mirror entries (distinct `kind`s) for the same
    /// instance.
    entries: HashMap<SlotId, Vec<ViewerState>>,
    /// Held deschedules with their expiry times.
    deschedules: Vec<(Deschedule, SimTime)>,
}

impl ScheduleView {
    /// Creates an empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges a viewer state into the view at `now`.
    pub fn apply_viewer_state(&mut self, vs: ViewerState, now: SimTime) -> ViewApply {
        self.gc(now);
        if self.deschedules.iter().any(|(d, _)| d.matches(&vs)) {
            return ViewApply::Blocked;
        }
        let slot_entries = self.entries.entry(vs.slot).or_default();
        // Same-kind entry for this slot?
        if let Some(existing) = slot_entries.iter_mut().find(|e| same_kind(e, &vs)) {
            if existing.instance == vs.instance {
                if existing.play_seq >= vs.play_seq {
                    return ViewApply::Duplicate;
                }
                *existing = vs;
                return ViewApply::Updated;
            }
            return ViewApply::Conflict;
        }
        slot_entries.push(vs);
        ViewApply::Inserted
    }

    /// Applies a deschedule at `now`, holding it until `hold_until`.
    /// Returns `true` if it removed at least one live entry.
    ///
    /// Idempotent: re-applying an already-held deschedule extends its hold
    /// time but reports `false` (nothing newly removed) unless an entry
    /// re-appeared meanwhile.
    pub fn apply_deschedule(&mut self, d: Deschedule, now: SimTime, hold_until: SimTime) -> bool {
        self.gc(now);
        let mut removed = false;
        if let Some(slot_entries) = self.entries.get_mut(&d.slot) {
            let before = slot_entries.len();
            slot_entries.retain(|e| !d.matches(e));
            removed = slot_entries.len() != before;
            if slot_entries.is_empty() {
                self.entries.remove(&d.slot);
            }
        }
        match self.deschedules.iter_mut().find(|(held, _)| *held == d) {
            Some((_, expiry)) => *expiry = (*expiry).max(hold_until),
            None => self.deschedules.push((d, hold_until)),
        }
        removed
    }

    /// Whether a matching deschedule is currently held.
    pub fn holds_deschedule(&self, d: &Deschedule) -> bool {
        self.deschedules.iter().any(|(held, _)| held == d)
    }

    /// The primary entry in `slot`, if known.
    pub fn primary_entry(&self, slot: SlotId) -> Option<&ViewerState> {
        self.entries
            .get(&slot)?
            .iter()
            .find(|e| e.kind == StreamKind::Primary)
    }

    /// All entries in `slot` (primary and mirror).
    pub fn slot_entries(&self, slot: SlotId) -> &[ViewerState] {
        self.entries.get(&slot).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the view believes `slot` has no primary occupant.
    ///
    /// This is a *belief*, not a fact — "Just because a cub's local view of
    /// the schedule shows a particular slot as being empty, it cannot
    /// conclude that the slot is in fact empty." The ownership protocol is
    /// what makes acting on the belief safe.
    pub fn believes_slot_free(&self, slot: SlotId) -> bool {
        self.primary_entry(slot).is_none()
    }

    /// Removes one specific entry (after its work is done and forwarded).
    /// Returns the removed record.
    ///
    /// Matching includes `play_seq`: if the view has meanwhile been updated
    /// with a newer lap of the same slot (possible on small rings where the
    /// viewer-state lead approaches the ring length), retiring the older
    /// record must not evict the newer one.
    pub fn retire(&mut self, slot: SlotId, entry: &ViewerState) -> Option<ViewerState> {
        let slot_entries = self.entries.get_mut(&slot)?;
        let idx = slot_entries.iter().position(|e| {
            e.instance == entry.instance && same_kind(e, entry) && e.play_seq == entry.play_seq
        })?;
        let removed = slot_entries.swap_remove(idx);
        if slot_entries.is_empty() {
            self.entries.remove(&slot);
        }
        Some(removed)
    }

    /// Iterates over all `(slot, entry)` pairs in the view.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &ViewerState)> {
        self.entries
            .iter()
            .flat_map(|(slot, v)| v.iter().map(move |e| (*slot, e)))
    }

    /// Number of live entries (all kinds).
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// True if the view holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of held deschedules.
    pub fn held_deschedules(&self) -> usize {
        self.deschedules.len()
    }

    /// Drops expired deschedules.
    pub fn gc(&mut self, now: SimTime) {
        self.deschedules.retain(|&(_, expiry)| expiry > now);
    }

    /// [`ScheduleView::gc`], reporting each hold it drops. Used by traced
    /// runs to record hold expiries; behaviorally identical to `gc`.
    ///
    /// Expiry is thereby observed at the caller's granularity (the cub's
    /// periodic forward pass), not at the instant the hold lapses — the
    /// internal `gc` calls inside `apply_*` stay unreported, since a hold
    /// that expires mid-apply was already past its protocol relevance.
    pub fn gc_report(&mut self, now: SimTime, mut expired: impl FnMut(Deschedule)) {
        self.deschedules.retain(|&(d, expiry)| {
            let live = expiry > now;
            if !live {
                expired(d);
            }
            live
        });
    }
}

fn same_kind(a: &ViewerState, b: &ViewerState) -> bool {
    match (a.kind, b.kind) {
        (StreamKind::Primary, StreamKind::Primary) => true,
        (
            StreamKind::Mirror {
                piece: pa,
                failed_disk: fa,
            },
            StreamKind::Mirror {
                piece: pb,
                failed_disk: fb,
            },
        ) => pa == pb && fa == fb,
        (
            StreamKind::Coded {
                home_disk: ha,
                shard: sa,
            },
            StreamKind::Coded {
                home_disk: hb,
                shard: sb,
            },
        ) => ha == hb && sa == sb,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_layout::ids::ViewerInstance;
    use tiger_layout::{BlockNum, DiskId, FileId, ViewerId};
    use tiger_sim::{Bandwidth, SimDuration};

    fn vs(slot: u32, viewer: u64, play_seq: u32) -> ViewerState {
        ViewerState {
            instance: ViewerInstance {
                viewer: ViewerId(viewer),
                incarnation: 0,
            },
            client: 1,
            file: FileId(0),
            position: BlockNum(play_seq),
            slot: SlotId(slot),
            play_seq,
            bitrate: Bandwidth::from_mbit_per_sec(2),
            kind: StreamKind::Primary,
        }
    }

    const T0: SimTime = SimTime::ZERO;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn insert_then_duplicate_then_update() {
        let mut v = ScheduleView::new();
        assert_eq!(v.apply_viewer_state(vs(3, 1, 5), T0), ViewApply::Inserted);
        assert_eq!(v.apply_viewer_state(vs(3, 1, 5), T0), ViewApply::Duplicate);
        assert_eq!(v.apply_viewer_state(vs(3, 1, 4), T0), ViewApply::Duplicate);
        assert_eq!(v.apply_viewer_state(vs(3, 1, 6), T0), ViewApply::Updated);
        assert_eq!(v.primary_entry(SlotId(3)).map(|e| e.play_seq), Some(6));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn conflicting_instance_is_reported_and_rejected() {
        let mut v = ScheduleView::new();
        v.apply_viewer_state(vs(3, 1, 5), T0);
        assert_eq!(v.apply_viewer_state(vs(3, 2, 0), T0), ViewApply::Conflict);
        assert_eq!(
            v.primary_entry(SlotId(3)).map(|e| e.instance.viewer),
            Some(ViewerId(1))
        );
    }

    #[test]
    fn deschedule_removes_and_blocks() {
        let mut v = ScheduleView::new();
        let a = vs(3, 1, 5);
        v.apply_viewer_state(a, T0);
        let d = Deschedule {
            instance: a.instance,
            slot: a.slot,
        };
        assert!(v.apply_deschedule(d, T0, t(10)));
        assert!(v.believes_slot_free(SlotId(3)));
        // A late-arriving viewer state for the descheduled viewer is
        // blocked by the held deschedule.
        assert_eq!(
            v.apply_viewer_state(a.advanced(1), t(1)),
            ViewApply::Blocked
        );
        // A *new* viewer may take the slot.
        assert_eq!(v.apply_viewer_state(vs(3, 9, 0), t(1)), ViewApply::Inserted);
    }

    #[test]
    fn deschedule_is_idempotent_and_harmless_when_unmatched() {
        let mut v = ScheduleView::new();
        let d = Deschedule {
            instance: ViewerInstance {
                viewer: ViewerId(1),
                incarnation: 0,
            },
            slot: SlotId(3),
        };
        // "Having a deschedule request floating around after the slot has
        // been reallocated will not cause incorrect results."
        assert!(!v.apply_deschedule(d, T0, t(10)));
        assert!(!v.apply_deschedule(d, T0, t(12)));
        assert_eq!(v.held_deschedules(), 1);
        // A different instance in the same slot is untouched.
        let other = vs(3, 2, 0);
        v.apply_viewer_state(other, T0);
        assert!(!v.apply_deschedule(d, t(1), t(10)));
        assert!(v.primary_entry(SlotId(3)).is_some());
    }

    #[test]
    fn wrong_incarnation_survives_deschedule() {
        // §4.1.2: "instance corresponds to the particular start request
        // being descheduled" — a restarted viewer must not be killed by the
        // stale deschedule of its previous incarnation.
        let mut v = ScheduleView::new();
        let mut restarted = vs(3, 1, 0);
        restarted.instance.incarnation = 1;
        v.apply_viewer_state(restarted, T0);
        let stale = Deschedule {
            instance: ViewerInstance {
                viewer: ViewerId(1),
                incarnation: 0,
            },
            slot: SlotId(3),
        };
        assert!(!v.apply_deschedule(stale, T0, t(10)));
        assert!(v.primary_entry(SlotId(3)).is_some());
    }

    #[test]
    fn deschedules_expire() {
        let mut v = ScheduleView::new();
        let a = vs(3, 1, 5);
        let d = Deschedule {
            instance: a.instance,
            slot: a.slot,
        };
        v.apply_deschedule(d, T0, t(5));
        assert_eq!(v.apply_viewer_state(a, t(1)), ViewApply::Blocked);
        // After expiry the viewer state would be accepted again (the
        // protocol prevents this from happening in practice by discarding
        // states that arrive later than the deschedule hold time).
        assert_eq!(v.apply_viewer_state(a, t(6)), ViewApply::Inserted);
        assert_eq!(v.held_deschedules(), 0);
    }

    #[test]
    fn gc_report_names_each_expired_hold() {
        let mut v = ScheduleView::new();
        let d1 = Deschedule {
            instance: vs(3, 1, 0).instance,
            slot: SlotId(3),
        };
        let d2 = Deschedule {
            instance: vs(4, 2, 0).instance,
            slot: SlotId(4),
        };
        v.apply_deschedule(d1, T0, t(5));
        v.apply_deschedule(d2, T0, t(50));
        let mut dropped = Vec::new();
        v.gc_report(t(10), |d| dropped.push(d));
        assert_eq!(dropped, vec![d1], "only the lapsed hold is reported");
        assert_eq!(v.held_deschedules(), 1);
        // Identical end state to plain gc.
        let mut w = ScheduleView::new();
        w.apply_deschedule(d1, T0, t(5));
        w.apply_deschedule(d2, T0, t(50));
        w.gc(t(10));
        assert_eq!(w.held_deschedules(), v.held_deschedules());
    }

    #[test]
    fn reapplying_extends_hold() {
        let mut v = ScheduleView::new();
        let a = vs(3, 1, 5);
        let d = Deschedule {
            instance: a.instance,
            slot: a.slot,
        };
        v.apply_deschedule(d, T0, t(5));
        v.apply_deschedule(d, t(1), t(20));
        assert_eq!(v.apply_viewer_state(a, t(6)), ViewApply::Blocked);
    }

    #[test]
    fn mirror_entries_share_slot_with_primary() {
        let mut v = ScheduleView::new();
        let a = vs(3, 1, 5);
        v.apply_viewer_state(a, T0);
        let mut m0 = a;
        m0.kind = StreamKind::Mirror {
            failed_disk: DiskId(7),
            piece: 0,
        };
        let mut m1 = a;
        m1.kind = StreamKind::Mirror {
            failed_disk: DiskId(7),
            piece: 1,
        };
        assert_eq!(v.apply_viewer_state(m0, T0), ViewApply::Inserted);
        assert_eq!(v.apply_viewer_state(m1, T0), ViewApply::Inserted);
        assert_eq!(v.apply_viewer_state(m0, T0), ViewApply::Duplicate);
        assert_eq!(v.slot_entries(SlotId(3)).len(), 3);
        // Descheduling the viewer kills all derived entries.
        let d = Deschedule {
            instance: a.instance,
            slot: a.slot,
        };
        assert!(v.apply_deschedule(d, T0, t(10)));
        assert!(v.slot_entries(SlotId(3)).is_empty());
    }

    #[test]
    fn retire_removes_one_entry() {
        let mut v = ScheduleView::new();
        let a = vs(3, 1, 5);
        v.apply_viewer_state(a, T0);
        assert!(v.retire(SlotId(3), &a).is_some());
        assert!(v.retire(SlotId(3), &a).is_none());
        assert!(v.is_empty());
        let _ = SimDuration::ZERO;
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut v = ScheduleView::new();
        v.apply_viewer_state(vs(1, 1, 0), T0);
        v.apply_viewer_state(vs(2, 2, 0), T0);
        v.apply_viewer_state(vs(9, 3, 0), T0);
        let mut slots: Vec<u32> = v.iter().map(|(s, _)| s.raw()).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![1, 2, 9]);
    }
}
