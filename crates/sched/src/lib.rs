//! The Tiger schedule (paper §3 and §4): the "coherent hallucination".
//!
//! In the abstract, a Tiger system has a single global schedule with one
//! slot per stream of system capacity; disks move through it in lockstep,
//! one block play time apart. In practice no machine holds that schedule —
//! each cub keeps a bounded *view* of the part near its disks and forwards
//! viewer-state records around the ring. This crate implements both halves
//! of the abstraction as pure data structures:
//!
//! * [`params::ScheduleParams`] — block service time derivation, the
//!   integral-slot rounding rule, exact slot/pointer/ownership arithmetic
//!   (§3.1, §4.1.3);
//! * [`records`] — viewer states, mirror viewer states, and deschedule
//!   requests, with their idempotence and matching semantics (§4.1.1–2);
//! * [`disk_schedule::DiskSchedule`] — the materialized global schedule,
//!   used by the centralized baseline and as the omniscient checker that
//!   tests hold the distributed implementation against;
//! * [`view::ScheduleView`] — a cub's bounded, possibly out-of-date view
//!   with the deschedule-holding and late-arrival rules (§4.1);
//! * [`net_schedule::NetworkSchedule`] — the two-dimensional
//!   (time × bandwidth) schedule of the multiple-bitrate system, with
//!   reservations for two-phase insertion and fragmentation measurement
//!   (§3.2, §4.2).
//!
//! Everything here is deterministic, allocation-light, and heavily
//! property-tested; the distributed protocol that animates these structures
//! lives in `tiger-core`.

pub mod disk_schedule;
mod load_index;
pub mod net_schedule;
pub mod params;
pub mod records;
pub mod view;

pub use disk_schedule::{DiskSchedule, SlotEntry};
pub use net_schedule::{AdmissibleStarts, NetEntryId, NetScheduleError, NetworkSchedule};
pub use params::{ScheduleParams, SlotId};
pub use records::{Deschedule, StreamKind, ViewerState};
pub use view::{ScheduleView, ViewApply};
