//! The two-dimensional network schedule of the multiple-bitrate system
//! (§3.2, §4.2).
//!
//! "The x-axis is time and the y-axis bandwidth. The overall length of the
//! schedule is the block play time times the number of cubs, while the
//! height is the bandwidth of a cub's network interface cards. The length
//! of an entry in the network schedule is one block play time, and the
//! height is determined by the bitrate of the stream being serviced."
//!
//! Entries may be *tentative* (two-phase insertion, §4.2): a reservation
//! blocks capacity but does no work until committed; an abort releases it.
//! A reservation may carry an expiry deadline — [`NetworkSchedule::expire_reservations`]
//! sweeps overdue ones, so a lost release message cannot leak capacity
//! forever.
//!
//! Fragmentation (§3.2): free bandwidth can become unusable when gaps in
//! the time axis are shorter than one block play time. The paper's fix —
//! "viewers are forced to start at times that are integral multiples of
//! the block play time divided by the decluster factor" — is modelled by
//! the quantized-starts insertion mode, and
//! [`NetworkSchedule::fragmentation`] measures the waste either way.
//!
//! Admission probes are the hot path of the two-phase protocol, so load is
//! not recomputed per query: an incrementally maintained residual-capacity
//! index (see [`crate::load_index`] and docs/ADMISSION.md) is updated in
//! O(affected slots) on every reservation change and answers `fits` in
//! O(window). The index is a pure cache — every query returns exactly what
//! a full rescan of the entries would.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use tiger_layout::ids::ViewerInstance;
use tiger_sim::{Bandwidth, SimDuration, SimTime};

use crate::load_index::{LoadIndex, GROUP_SLOTS};

/// Identifier of a network-schedule entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NetEntryId(pub u64);

/// Errors from network-schedule operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetScheduleError {
    /// Admitting the entry would exceed NIC capacity somewhere in its span.
    Overflow,
    /// The start position is not on the required quantization grid.
    UnalignedStart,
    /// Unknown entry id.
    UnknownEntry(NetEntryId),
}

impl std::fmt::Display for NetScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetScheduleError::Overflow => write!(f, "insertion would exceed NIC capacity"),
            NetScheduleError::UnalignedStart => {
                write!(f, "start position not on the quantization grid")
            }
            NetScheduleError::UnknownEntry(id) => write!(f, "unknown entry {id:?}"),
        }
    }
}

impl std::error::Error for NetScheduleError {}

#[derive(Clone, Copy, Debug)]
struct NetEntry {
    instance: ViewerInstance,
    /// Ring position where the entry's block play time span begins.
    start: SimDuration,
    rate: Bandwidth,
    tentative: bool,
    /// Reservation deadline; tentative entries past it are removed by
    /// [`NetworkSchedule::expire_reservations`]. Cleared on commit.
    expires_at: Option<SimTime>,
}

/// One cub's picture of the network schedule ring.
#[derive(Clone, Debug)]
pub struct NetworkSchedule {
    /// Ring length: block play time × number of cubs.
    len: SimDuration,
    /// Entry duration: one block play time.
    bpt: SimDuration,
    /// NIC capacity (the schedule's height).
    capacity: Bandwidth,
    /// Start-position quantum; `None` allows arbitrary starts.
    quantum: Option<SimDuration>,
    entries: HashMap<NetEntryId, NetEntry>,
    /// Entry ids per viewer instance, for O(own entries) deschedule.
    by_instance: HashMap<ViewerInstance, Vec<NetEntryId>>,
    /// The incrementally maintained load profile.
    index: LoadIndex,
    /// Pending reservation deadlines (lazily pruned min-heap; entries that
    /// were committed or aborted first are skipped on pop).
    expiring: BinaryHeap<Reverse<(SimTime, NetEntryId)>>,
    next_id: u64,
}

impl NetworkSchedule {
    /// Creates an empty schedule ring.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or `bpt` does not divide `len`.
    pub fn new(
        num_cubs: u32,
        bpt: SimDuration,
        capacity: Bandwidth,
        quantum: Option<SimDuration>,
    ) -> Self {
        assert!(num_cubs > 0 && !bpt.is_zero() && !capacity.is_zero());
        if let Some(q) = quantum {
            assert!(
                !q.is_zero() && bpt.as_nanos().is_multiple_of(q.as_nanos()),
                "quantum must divide the block play time"
            );
        }
        let len = bpt.mul_u64(u64::from(num_cubs));
        NetworkSchedule {
            len,
            bpt,
            capacity,
            quantum,
            entries: HashMap::new(),
            by_instance: HashMap::new(),
            index: LoadIndex::new(
                len.as_nanos(),
                bpt.as_nanos(),
                quantum.map(SimDuration::as_nanos),
            ),
            expiring: BinaryHeap::new(),
            next_id: 0,
        }
    }

    /// Ring length.
    pub fn len_duration(&self) -> SimDuration {
        self.len
    }

    /// Entry duration: one block play time.
    pub fn block_play_time(&self) -> SimDuration {
        self.bpt
    }

    /// NIC capacity (schedule height).
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// The start-position quantum, if insertion is quantized.
    pub fn quantum(&self) -> Option<SimDuration> {
        self.quantum
    }

    /// Instantaneous load at ring position `pos`, counting tentative
    /// entries (a reservation blocks capacity).
    pub fn load_at(&self, pos: SimDuration) -> Bandwidth {
        Bandwidth::from_bits_per_sec(self.index.load_at(pos.as_nanos()))
    }

    /// The maximum instantaneous load in the window `[start, start+bpt)`.
    pub fn max_load_in_entry_window(&self, start: SimDuration) -> Bandwidth {
        Bandwidth::from_bits_per_sec(self.index.max_in_entry_window(start.as_nanos()))
    }

    /// Whether an entry of `rate` starting at `start` fits under capacity.
    pub fn fits(&self, start: SimDuration, rate: Bandwidth) -> bool {
        let Some(headroom) = self.capacity.checked_sub(rate) else {
            return false;
        };
        self.index
            .window_has_headroom(start.as_nanos(), headroom.bits_per_sec())
    }

    /// Validates a start against the quantization grid.
    fn check_alignment(&self, start: SimDuration) -> Result<(), NetScheduleError> {
        if let Some(q) = self.quantum {
            if !start.as_nanos().is_multiple_of(q.as_nanos()) {
                return Err(NetScheduleError::UnalignedStart);
            }
        }
        Ok(())
    }

    /// Inserts an entry; `tentative` marks a two-phase reservation.
    pub fn insert(
        &mut self,
        instance: ViewerInstance,
        start: SimDuration,
        rate: Bandwidth,
        tentative: bool,
    ) -> Result<NetEntryId, NetScheduleError> {
        self.insert_with_expiry(instance, start, rate, tentative, None)
    }

    /// Inserts an entry; a tentative entry with `expires_at` set is
    /// removed by [`Self::expire_reservations`] once that instant is
    /// reached, unless committed or aborted first.
    pub fn insert_with_expiry(
        &mut self,
        instance: ViewerInstance,
        start: SimDuration,
        rate: Bandwidth,
        tentative: bool,
        expires_at: Option<SimTime>,
    ) -> Result<NetEntryId, NetScheduleError> {
        debug_assert!(start < self.len);
        self.check_alignment(start)?;
        if !self.fits(start, rate) {
            return Err(NetScheduleError::Overflow);
        }
        let start = SimDuration::from_nanos(start.as_nanos() % self.len.as_nanos());
        let expires_at = if tentative { expires_at } else { None };
        let id = NetEntryId(self.next_id);
        self.next_id += 1;
        self.entries.insert(
            id,
            NetEntry {
                instance,
                start,
                rate,
                tentative,
                expires_at,
            },
        );
        self.by_instance.entry(instance).or_default().push(id);
        self.index.add(start.as_nanos(), rate.bits_per_sec());
        if let Some(at) = expires_at {
            self.expiring.push(Reverse((at, id)));
        }
        Ok(id)
    }

    /// Removes `id` from every structure. The lazily pruned expiry heap is
    /// left alone: a stale deadline is skipped when popped.
    fn remove_entry(&mut self, id: NetEntryId) -> Option<NetEntry> {
        let e = self.entries.remove(&id)?;
        self.index.sub(e.start.as_nanos(), e.rate.bits_per_sec());
        if let Some(ids) = self.by_instance.get_mut(&e.instance) {
            if let Some(pos) = ids.iter().position(|i| *i == id) {
                ids.swap_remove(pos);
            }
            if ids.is_empty() {
                self.by_instance.remove(&e.instance);
            }
        }
        Some(e)
    }

    /// Commits a tentative entry ("replace the reservation with a real
    /// schedule entry"). Committed entries never expire.
    pub fn commit(&mut self, id: NetEntryId) -> Result<(), NetScheduleError> {
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(NetScheduleError::UnknownEntry(id))?;
        e.tentative = false;
        e.expires_at = None;
        Ok(())
    }

    /// Aborts (removes) a tentative or committed entry.
    pub fn abort(&mut self, id: NetEntryId) -> Result<(), NetScheduleError> {
        self.remove_entry(id)
            .map(|_| ())
            .ok_or(NetScheduleError::UnknownEntry(id))
    }

    /// Removes every tentative entry whose expiry deadline has been
    /// reached (`expires_at <= now`). Returns how many were removed.
    ///
    /// A reservation that was committed at exactly its deadline stays (the
    /// commit cleared the deadline); one swept at exactly its deadline is
    /// gone, and a late commit gets [`NetScheduleError::UnknownEntry`].
    pub fn expire_reservations(&mut self, now: SimTime) -> usize {
        let mut removed = 0;
        while let Some(&Reverse((at, id))) = self.expiring.peek() {
            if at > now {
                break;
            }
            self.expiring.pop();
            // Skip stale heap entries: committed (deadline cleared) or
            // already aborted reservations.
            let live = self
                .entries
                .get(&id)
                .is_some_and(|e| e.tentative && e.expires_at == Some(at));
            if live {
                self.remove_entry(id);
                removed += 1;
            }
        }
        removed
    }

    /// The earliest pending reservation deadline, if any (prunes stale
    /// heap entries as a side effect).
    pub fn next_expiry(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((at, id))) = self.expiring.peek() {
            let live = self
                .entries
                .get(&id)
                .is_some_and(|e| e.tentative && e.expires_at == Some(at));
            if live {
                return Some(at);
            }
            self.expiring.pop();
        }
        None
    }

    /// Whether `id` names a live (committed or tentative) entry.
    pub fn contains_entry(&self, id: NetEntryId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Whether any entry (committed or tentative) exists for `instance`.
    pub fn has_instance(&self, instance: ViewerInstance) -> bool {
        self.by_instance.contains_key(&instance)
    }

    /// Removes all entries for `instance` (deschedule). Returns how many
    /// were removed.
    pub fn remove_instance(&mut self, instance: ViewerInstance) -> usize {
        let Some(ids) = self.by_instance.remove(&instance) else {
            return 0;
        };
        let removed = ids.len();
        for id in ids {
            let e = self.entries.remove(&id).expect("indexed entry exists");
            self.index.sub(e.start.as_nanos(), e.rate.bits_per_sec());
        }
        removed
    }

    /// Number of entries (committed + tentative).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the schedule holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All candidate start positions on the quantization grid (or on a
    /// `probe` grid when starts are unquantized) at which an entry of
    /// `rate` currently fits, as an allocation-free iterator in ring
    /// order.
    ///
    /// On a quantized schedule the scan early-outs over whole summary
    /// groups: when every group a run of windows can touch has headroom,
    /// the run is emitted without per-slot checks.
    pub fn admissible_starts(&self, rate: Bandwidth, probe: SimDuration) -> AdmissibleStarts<'_> {
        let step = self.quantum.unwrap_or(probe);
        assert!(!step.is_zero());
        AdmissibleStarts {
            sched: self,
            headroom: self.capacity.checked_sub(rate).map(Bandwidth::bits_per_sec),
            step: step.as_nanos(),
            pos: 0,
            fast_until: 0,
        }
    }

    /// Mean free bandwidth over the ring, sampled at `probe` resolution.
    pub fn mean_free_bandwidth(&self, probe: SimDuration) -> Bandwidth {
        assert!(!probe.is_zero());
        let mut total: u128 = 0;
        let mut samples: u64 = 0;
        let mut pos = SimDuration::ZERO;
        while pos < self.len {
            let load = self.load_at(pos);
            total += u128::from(
                self.capacity
                    .checked_sub(load)
                    .unwrap_or(Bandwidth::ZERO)
                    .bits_per_sec(),
            );
            samples += 1;
            pos += probe;
        }
        Bandwidth::from_bits_per_sec((total / u128::from(samples.max(1))) as u64)
    }

    /// The §3.2 fragmentation metric: the fraction of mean free bandwidth
    /// that cannot be used by streams of `rate`, because no admissible
    /// start window can carry them.
    ///
    /// 0.0 = all free bandwidth is reachable (or there is none); 1.0 = free
    /// bandwidth exists but no stream of `rate` can start at all.
    pub fn fragmentation(&self, rate: Bandwidth, probe: SimDuration) -> f64 {
        let free = self.mean_free_bandwidth(probe).bits_per_sec() as f64;
        if free == 0.0 {
            return 0.0; // Genuinely full, not fragmented.
        }
        // Greedily pack as many rate-streams as currently fit (each
        // admission changes the landscape, so simulate the packing).
        let mut trial = self.clone();
        let mut packed_bits = 0f64;
        while let Some(s) = trial.admissible_starts(rate, probe).next() {
            let inst = ViewerInstance::default();
            if trial.insert(inst, s, rate, false).is_err() {
                break;
            }
            packed_bits += rate.bits_per_sec() as f64;
            if packed_bits >= free {
                break;
            }
        }
        (1.0 - packed_bits / free).clamp(0.0, 1.0)
    }
}

/// Iterator over admissible start positions; see
/// [`NetworkSchedule::admissible_starts`].
pub struct AdmissibleStarts<'a> {
    sched: &'a NetworkSchedule,
    /// `capacity - rate`, or `None` when the rate alone exceeds capacity.
    headroom: Option<u64>,
    step: u64,
    pos: u64,
    /// Positions below this were group-accepted and need no slot checks.
    fast_until: u64,
}

impl Iterator for AdmissibleStarts<'_> {
    type Item = SimDuration;

    fn next(&mut self) -> Option<SimDuration> {
        let headroom = self.headroom?;
        let len = self.sched.len.as_nanos();
        while self.pos < len {
            let p = self.pos;
            self.pos += self.step;
            if p < self.fast_until {
                return Some(SimDuration::from_nanos(p));
            }
            // At a summary-group boundary, try to accept the whole group's
            // worth of start positions from the coarse maxima alone.
            if let Some(grid) = self.sched.index.as_grid() {
                let slot = (p / grid.quantum()) as usize;
                if slot.is_multiple_of(GROUP_SLOTS) {
                    if let Some(run_end) = grid.quick_accept_group(slot, headroom) {
                        self.fast_until = run_end as u64 * grid.quantum();
                        return Some(SimDuration::from_nanos(p));
                    }
                }
            }
            if self.sched.index.window_has_headroom(p, headroom) {
                return Some(SimDuration::from_nanos(p));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_layout::ViewerId;

    fn inst(v: u64) -> ViewerInstance {
        ViewerInstance {
            viewer: ViewerId(v),
            incarnation: 0,
        }
    }

    fn mbit(n: u64) -> Bandwidth {
        Bandwidth::from_mbit_per_sec(n)
    }

    fn sec(n: u64) -> SimDuration {
        SimDuration::from_secs(n)
    }

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// A 3-cub ring (3 s long), 6 Mbit/s NIC — the Figure 4 setting.
    fn fig4() -> NetworkSchedule {
        NetworkSchedule::new(3, sec(1), mbit(6), None)
    }

    #[test]
    fn load_accumulates_and_wraps() {
        let mut s = fig4();
        s.insert(inst(0), ms(0), mbit(2), false).expect("fits");
        s.insert(inst(1), ms(500), mbit(3), false).expect("fits");
        // Entry spanning the ring end.
        s.insert(inst(2), ms(2500), mbit(1), false).expect("fits");
        assert_eq!(s.load_at(ms(0)), mbit(3)); // viewer 0 + wrap of viewer 2
        assert_eq!(s.load_at(ms(600)), mbit(5));
        assert_eq!(s.load_at(ms(1200)), mbit(3));
        assert_eq!(s.load_at(ms(2600)), mbit(1));
    }

    #[test]
    fn capacity_is_enforced_across_the_window() {
        let mut s = fig4();
        s.insert(inst(0), ms(0), mbit(4), false).expect("fits");
        // A 3 Mbit/s entry at 500 would overlap the 4 Mbit/s one: 7 > 6.
        assert_eq!(
            s.insert(inst(1), ms(500), mbit(3), false),
            Err(NetScheduleError::Overflow)
        );
        // At 1000 (no overlap) it fits.
        s.insert(inst(1), ms(1000), mbit(3), false).expect("fits");
        // 2 Mbit/s overlapping the 4 fits exactly (6 = capacity).
        s.insert(inst(2), ms(500), mbit(2), false)
            .expect("fits at capacity");
    }

    #[test]
    fn fig4_fragmentation_example() {
        // §3.2: "The free bandwidth below the 6 Mbit/s level between when
        // viewer 4 finishes sending and when viewer 2 starts is unusable,
        // because any new entry would be one block play time long, and the
        // gap in the schedule is slightly too short."
        let mut s = fig4();
        // viewer 4: 2 Mbit/s at [0, 1); viewer 2 starts at 1.875 with the
        // rest of the band busy enough that the 2 Mbit/s lane is only free
        // in [1, 1.875).
        s.insert(inst(4), ms(0), mbit(2), false).expect("fits");
        s.insert(inst(2), ms(1875), mbit(2), false).expect("fits");
        // Fill the remaining 4 Mbit/s everywhere.
        s.insert(inst(10), ms(0), mbit(4), false).expect("fits");
        s.insert(inst(11), ms(1000), mbit(4), false).expect("fits");
        s.insert(inst(12), ms(2000), mbit(4), false).expect("fits");
        // The 2 Mbit/s lane gap [1.0, 1.875) is < 1 s: nothing fits there.
        for start_ms in [1000u64, 1100, 1500, 1800] {
            assert!(
                !s.fits(ms(start_ms), mbit(2)),
                "gap too short at {start_ms}"
            );
        }
        assert!(s.fragmentation(mbit(2), ms(125)) > 0.0);
    }

    #[test]
    fn quantized_starts_reject_unaligned() {
        // decluster 4 → quantum = bpt/4 = 250 ms.
        let mut s = NetworkSchedule::new(3, sec(1), mbit(6), Some(ms(250)));
        assert_eq!(
            s.insert(inst(0), ms(100), mbit(2), false),
            Err(NetScheduleError::UnalignedStart)
        );
        s.insert(inst(0), ms(250), mbit(2), false)
            .expect("aligned start fits");
    }

    #[test]
    fn tentative_entries_block_capacity_until_aborted() {
        let mut s = fig4();
        let id = s.insert(inst(0), ms(0), mbit(4), true).expect("fits");
        assert_eq!(
            s.insert(inst(1), ms(0), mbit(4), false),
            Err(NetScheduleError::Overflow),
            "reservation blocks capacity"
        );
        s.abort(id).expect("known id");
        s.insert(inst(1), ms(0), mbit(4), false)
            .expect("fits after abort");
    }

    #[test]
    fn commit_makes_reservation_permanent() {
        let mut s = fig4();
        let id = s.insert(inst(0), ms(0), mbit(4), true).expect("fits");
        s.commit(id).expect("known id");
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.commit(NetEntryId(99)),
            Err(NetScheduleError::UnknownEntry(NetEntryId(99)))
        );
    }

    #[test]
    fn remove_instance_clears_all_entries() {
        let mut s = fig4();
        s.insert(inst(7), ms(0), mbit(1), false).expect("fits");
        s.insert(inst(7), ms(1000), mbit(1), false).expect("fits");
        s.insert(inst(8), ms(0), mbit(1), false).expect("fits");
        assert_eq!(s.remove_instance(inst(7)), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn quantization_reduces_fragmentation_under_churn() {
        // Start/stop churn with arbitrary starts leaves odd-sized gaps;
        // with quantized starts the landscape stays packable. This is the
        // §3.2 claim in miniature.
        let run = |quantum: Option<SimDuration>| -> f64 {
            let mut s = NetworkSchedule::new(8, sec(1), mbit(6), quantum);
            // Deterministic churn pattern with awkward offsets.
            let offsets: &[u64] = &[
                0, 217, 733, 1250, 1901, 2500, 3333, 4250, 5111, 6000, 6777, 7500,
            ];
            let mut ids = Vec::new();
            for (i, &off) in offsets.iter().enumerate() {
                let start = match quantum {
                    Some(q) => ms(off).as_nanos() / q.as_nanos() * q.as_nanos(),
                    None => ms(off).as_nanos(),
                };
                if let Ok(id) = s.insert(
                    inst(i as u64),
                    SimDuration::from_nanos(start),
                    mbit(2),
                    false,
                ) {
                    ids.push(id);
                }
            }
            // Stop every other stream, leaving fragmented gaps.
            for id in ids.iter().step_by(2) {
                let _ = s.abort(*id);
            }
            s.fragmentation(mbit(2), ms(50))
        };
        let arbitrary = run(None);
        let quantized = run(Some(ms(250)));
        assert!(
            quantized <= arbitrary,
            "quantized {quantized} should not fragment more than arbitrary {arbitrary}"
        );
    }

    #[test]
    fn abort_after_commit_removes_the_entry() {
        // A commit makes the reservation permanent, but a later abort (a
        // deschedule addressed by entry id) still removes it and frees
        // the bandwidth.
        let mut s = fig4();
        let id = s.insert(inst(0), ms(0), mbit(6), true).expect("fits");
        s.commit(id).expect("known id");
        assert!(!s.fits(ms(0), mbit(1)), "committed entry holds capacity");
        s.abort(id).expect("committed entries can be aborted");
        assert_eq!(s.len(), 0);
        assert!(s.fits(ms(0), mbit(6)), "capacity freed");
        // A second abort of the same id is an error, not a double-free.
        assert_eq!(s.abort(id), Err(NetScheduleError::UnknownEntry(id)));
        assert!(!s.has_instance(inst(0)));
    }

    #[test]
    fn double_remove_of_instance_is_a_noop() {
        let mut s = fig4();
        s.insert(inst(3), ms(0), mbit(2), false).expect("fits");
        s.insert(inst(3), ms(1000), mbit(2), true).expect("fits");
        assert_eq!(s.remove_instance(inst(3)), 2);
        assert_eq!(s.remove_instance(inst(3)), 0, "second remove finds nothing");
        assert!(!s.has_instance(inst(3)));
        assert_eq!(s.load_at(ms(0)), Bandwidth::ZERO);
        assert_eq!(s.load_at(ms(1000)), Bandwidth::ZERO);
    }

    #[test]
    fn reservation_expiry_frees_capacity() {
        let mut s = fig4();
        let id = s
            .insert_with_expiry(
                inst(0),
                ms(0),
                mbit(6),
                true,
                Some(SimTime::from_millis(700)),
            )
            .expect("fits");
        assert_eq!(s.next_expiry(), Some(SimTime::from_millis(700)));
        // Before the deadline the reservation blocks capacity.
        assert_eq!(s.expire_reservations(SimTime::from_millis(699)), 0);
        assert!(!s.fits(ms(0), mbit(1)));
        // At the deadline it is swept and the bandwidth is free again.
        assert_eq!(s.expire_reservations(SimTime::from_millis(700)), 1);
        assert!(!s.contains_entry(id));
        assert!(s.fits(ms(0), mbit(6)));
        assert_eq!(s.next_expiry(), None);
    }

    #[test]
    fn expiry_racing_commit() {
        // Commit first: the reservation becomes permanent and the sweep
        // at (and past) the deadline leaves it alone.
        let deadline = SimTime::from_millis(500);
        let mut s = fig4();
        let id = s
            .insert_with_expiry(inst(0), ms(0), mbit(4), true, Some(deadline))
            .expect("fits");
        s.commit(id).expect("known id");
        assert_eq!(s.expire_reservations(deadline), 0);
        assert_eq!(s.expire_reservations(SimTime::from_secs(10)), 0);
        assert!(s.contains_entry(id));
        // Sweep first: a commit arriving at the same instant but after
        // the sweep ran has lost the race.
        let mut s2 = fig4();
        let id2 = s2
            .insert_with_expiry(inst(1), ms(0), mbit(4), true, Some(deadline))
            .expect("fits");
        assert_eq!(s2.expire_reservations(deadline), 1);
        assert_eq!(s2.commit(id2), Err(NetScheduleError::UnknownEntry(id2)));
    }

    #[test]
    fn committed_entries_never_expire() {
        // Non-tentative inserts ignore the expiry argument entirely.
        let mut s = fig4();
        let id = s
            .insert_with_expiry(
                inst(0),
                ms(0),
                mbit(2),
                false,
                Some(SimTime::from_millis(1)),
            )
            .expect("fits");
        assert_eq!(s.expire_reservations(SimTime::from_secs(100)), 0);
        assert!(s.contains_entry(id));
    }

    #[test]
    fn probes_at_exact_quantum_boundaries() {
        // decluster 4 on a 3 s ring: 12 slots of 250 ms. An entry's window
        // is [start, start + bpt) — half-open — so a probe at start + bpt
        // exactly does not see it, while start + bpt - 1ns does.
        let mut s = NetworkSchedule::new(3, sec(1), mbit(6), Some(ms(250)));
        s.insert(inst(0), ms(250), mbit(6), false).expect("fits");
        assert_eq!(s.load_at(ms(250)), mbit(6), "window start is inclusive");
        assert_eq!(
            s.load_at(SimDuration::from_nanos(ms(1250).as_nanos() - 1)),
            mbit(6),
            "last instant of the window"
        );
        assert_eq!(s.load_at(ms(1250)), Bandwidth::ZERO, "window end exclusive");
        assert!(!s.fits(ms(250), mbit(1)));
        assert!(
            !s.fits(ms(1000), mbit(1)),
            "a window starting at the last covered slot still overlaps"
        );
        assert!(s.fits(ms(1250), mbit(6)), "back-to-back windows fit");
        // The same boundaries hold for unaligned probes of a full window.
        assert!(!s.fits(SimDuration::from_nanos(ms(250).as_nanos() + 1), mbit(1)));
    }

    #[test]
    fn admissible_starts_iterator_matches_ring_order() {
        let mut s = NetworkSchedule::new(3, sec(1), mbit(6), Some(ms(250)));
        s.insert(inst(0), ms(0), mbit(6), false).expect("fits");
        s.insert(inst(1), ms(2000), mbit(5), false).expect("fits");
        let starts: Vec<SimDuration> = s.admissible_starts(mbit(2), ms(250)).collect();
        // Blocked: [0,1) by the 6 Mbit/s entry, [2,3) by the 5 Mbit/s one
        // (5 + 2 > 6), and the wrap of anything ending past 3 s is the
        // ring start again. Admissible windows must start in [1, 2).
        assert_eq!(starts, vec![ms(1000)]);
        // A rate above capacity is never admissible.
        assert_eq!(s.admissible_starts(mbit(7), ms(250)).count(), 0);
    }

    #[test]
    fn group_quick_accept_agrees_with_slot_scan() {
        // A ring big enough for several summary groups (decluster 8 on a
        // 64 s ring = 512 slots), loaded unevenly so some groups quick-
        // accept and others fall back to slot scans.
        let q = ms(125);
        let mut s = NetworkSchedule::new(64, sec(1), mbit(135), Some(q));
        for i in 0..300u64 {
            let start = SimDuration::from_nanos((i * 3) % 512 * q.as_nanos());
            let _ = s.insert(inst(i), start, mbit(2), false);
        }
        let fast: Vec<SimDuration> = s.admissible_starts(mbit(96), q).collect();
        let slow: Vec<SimDuration> = (0..512u64)
            .map(|i| SimDuration::from_nanos(i * q.as_nanos()))
            .filter(|&p| s.max_load_in_entry_window(p).saturating_add(mbit(96)) <= s.capacity())
            .collect();
        assert_eq!(fast, slow);
    }
}
