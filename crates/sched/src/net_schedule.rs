//! The two-dimensional network schedule of the multiple-bitrate system
//! (§3.2, §4.2).
//!
//! "The x-axis is time and the y-axis bandwidth. The overall length of the
//! schedule is the block play time times the number of cubs, while the
//! height is the bandwidth of a cub's network interface cards. The length
//! of an entry in the network schedule is one block play time, and the
//! height is determined by the bitrate of the stream being serviced."
//!
//! Entries may be *tentative* (two-phase insertion, §4.2): a reservation
//! blocks capacity but does no work until committed; an abort releases it.
//!
//! Fragmentation (§3.2): free bandwidth can become unusable when gaps in
//! the time axis are shorter than one block play time. The paper's fix —
//! "viewers are forced to start at times that are integral multiples of
//! the block play time divided by the decluster factor" — is modelled by
//! the quantized-starts insertion mode, and
//! [`NetworkSchedule::fragmentation`] measures the waste either way.

use std::collections::HashMap;

use tiger_layout::ids::ViewerInstance;
use tiger_sim::{Bandwidth, SimDuration};

/// Identifier of a network-schedule entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NetEntryId(pub u64);

/// Errors from network-schedule operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetScheduleError {
    /// Admitting the entry would exceed NIC capacity somewhere in its span.
    Overflow,
    /// The start position is not on the required quantization grid.
    UnalignedStart,
    /// Unknown entry id.
    UnknownEntry(NetEntryId),
}

impl std::fmt::Display for NetScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetScheduleError::Overflow => write!(f, "insertion would exceed NIC capacity"),
            NetScheduleError::UnalignedStart => {
                write!(f, "start position not on the quantization grid")
            }
            NetScheduleError::UnknownEntry(id) => write!(f, "unknown entry {id:?}"),
        }
    }
}

impl std::error::Error for NetScheduleError {}

#[derive(Clone, Copy, Debug)]
struct NetEntry {
    instance: ViewerInstance,
    /// Ring position where the entry's block play time span begins.
    start: SimDuration,
    rate: Bandwidth,
    tentative: bool,
}

/// One cub's picture of the network schedule ring.
#[derive(Clone, Debug)]
pub struct NetworkSchedule {
    /// Ring length: block play time × number of cubs.
    len: SimDuration,
    /// Entry duration: one block play time.
    bpt: SimDuration,
    /// NIC capacity (the schedule's height).
    capacity: Bandwidth,
    /// Start-position quantum; `None` allows arbitrary starts.
    quantum: Option<SimDuration>,
    entries: HashMap<NetEntryId, NetEntry>,
    next_id: u64,
}

impl NetworkSchedule {
    /// Creates an empty schedule ring.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or `bpt` does not divide `len`.
    pub fn new(
        num_cubs: u32,
        bpt: SimDuration,
        capacity: Bandwidth,
        quantum: Option<SimDuration>,
    ) -> Self {
        assert!(num_cubs > 0 && !bpt.is_zero() && !capacity.is_zero());
        if let Some(q) = quantum {
            assert!(
                !q.is_zero() && bpt.as_nanos().is_multiple_of(q.as_nanos()),
                "quantum must divide the block play time"
            );
        }
        NetworkSchedule {
            len: bpt.mul_u64(u64::from(num_cubs)),
            bpt,
            capacity,
            quantum,
            entries: HashMap::new(),
            next_id: 0,
        }
    }

    /// Ring length.
    pub fn len_duration(&self) -> SimDuration {
        self.len
    }

    /// NIC capacity (schedule height).
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// The start-position quantum, if insertion is quantized.
    pub fn quantum(&self) -> Option<SimDuration> {
        self.quantum
    }

    fn ring_dist(&self, from: SimDuration, to: SimDuration) -> SimDuration {
        let l = self.len.as_nanos();
        SimDuration::from_nanos((to.as_nanos() + l - from.as_nanos()) % l)
    }

    /// Instantaneous load at ring position `pos`, counting tentative
    /// entries (a reservation blocks capacity).
    pub fn load_at(&self, pos: SimDuration) -> Bandwidth {
        let mut total = Bandwidth::ZERO;
        for e in self.entries.values() {
            if self.ring_dist(e.start, pos) < self.bpt {
                total = total.saturating_add(e.rate);
            }
        }
        total
    }

    /// The maximum instantaneous load in the window `[start, start+bpt)`.
    pub fn max_load_in_entry_window(&self, start: SimDuration) -> Bandwidth {
        // Candidate maxima occur at the window start and at each entry
        // start inside the window.
        let mut max = self.load_at(start);
        for e in self.entries.values() {
            if self.ring_dist(start, e.start) < self.bpt {
                max = max.max(self.load_at(e.start));
            }
        }
        max
    }

    /// Whether an entry of `rate` starting at `start` fits under capacity.
    pub fn fits(&self, start: SimDuration, rate: Bandwidth) -> bool {
        self.max_load_in_entry_window(start).saturating_add(rate) <= self.capacity
    }

    /// Validates a start against the quantization grid.
    fn check_alignment(&self, start: SimDuration) -> Result<(), NetScheduleError> {
        if let Some(q) = self.quantum {
            if !start.as_nanos().is_multiple_of(q.as_nanos()) {
                return Err(NetScheduleError::UnalignedStart);
            }
        }
        Ok(())
    }

    /// Inserts an entry; `tentative` marks a two-phase reservation.
    pub fn insert(
        &mut self,
        instance: ViewerInstance,
        start: SimDuration,
        rate: Bandwidth,
        tentative: bool,
    ) -> Result<NetEntryId, NetScheduleError> {
        debug_assert!(start < self.len);
        self.check_alignment(start)?;
        if !self.fits(start, rate) {
            return Err(NetScheduleError::Overflow);
        }
        let id = NetEntryId(self.next_id);
        self.next_id += 1;
        self.entries.insert(
            id,
            NetEntry {
                instance,
                start,
                rate,
                tentative,
            },
        );
        Ok(id)
    }

    /// Commits a tentative entry ("replace the reservation with a real
    /// schedule entry").
    pub fn commit(&mut self, id: NetEntryId) -> Result<(), NetScheduleError> {
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(NetScheduleError::UnknownEntry(id))?;
        e.tentative = false;
        Ok(())
    }

    /// Aborts (removes) a tentative or committed entry.
    pub fn abort(&mut self, id: NetEntryId) -> Result<(), NetScheduleError> {
        self.entries
            .remove(&id)
            .map(|_| ())
            .ok_or(NetScheduleError::UnknownEntry(id))
    }

    /// Whether any entry (committed or tentative) exists for `instance`.
    pub fn has_instance(&self, instance: ViewerInstance) -> bool {
        self.entries.values().any(|e| e.instance == instance)
    }

    /// Removes all entries for `instance` (deschedule). Returns how many
    /// were removed.
    pub fn remove_instance(&mut self, instance: ViewerInstance) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.instance != instance);
        before - self.entries.len()
    }

    /// Number of entries (committed + tentative).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the schedule holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All candidate start positions on the quantization grid (or on a
    /// `probe` grid when starts are unquantized) at which an entry of
    /// `rate` currently fits.
    pub fn admissible_starts(&self, rate: Bandwidth, probe: SimDuration) -> Vec<SimDuration> {
        let step = self.quantum.unwrap_or(probe);
        assert!(!step.is_zero());
        let mut out = Vec::new();
        let mut pos = SimDuration::ZERO;
        while pos < self.len {
            if self.fits(pos, rate) {
                out.push(pos);
            }
            pos += step;
        }
        out
    }

    /// Mean free bandwidth over the ring, sampled at `probe` resolution.
    pub fn mean_free_bandwidth(&self, probe: SimDuration) -> Bandwidth {
        assert!(!probe.is_zero());
        let mut total: u128 = 0;
        let mut samples: u64 = 0;
        let mut pos = SimDuration::ZERO;
        while pos < self.len {
            let load = self.load_at(pos);
            total += u128::from(
                self.capacity
                    .checked_sub(load)
                    .unwrap_or(Bandwidth::ZERO)
                    .bits_per_sec(),
            );
            samples += 1;
            pos += probe;
        }
        Bandwidth::from_bits_per_sec((total / u128::from(samples.max(1))) as u64)
    }

    /// The §3.2 fragmentation metric: the fraction of mean free bandwidth
    /// that cannot be used by streams of `rate`, because no admissible
    /// start window can carry them.
    ///
    /// 0.0 = all free bandwidth is reachable (or there is none); 1.0 = free
    /// bandwidth exists but no stream of `rate` can start at all.
    pub fn fragmentation(&self, rate: Bandwidth, probe: SimDuration) -> f64 {
        let free = self.mean_free_bandwidth(probe).bits_per_sec() as f64;
        if free == 0.0 {
            return 0.0; // Genuinely full, not fragmented.
        }
        // Greedily pack as many rate-streams as currently fit (each
        // admission changes the landscape, so simulate the packing).
        let mut trial = self.clone();
        let mut packed_bits = 0f64;
        loop {
            let starts = trial.admissible_starts(rate, probe);
            let Some(&s) = starts.first() else { break };
            let inst = ViewerInstance::default();
            if trial.insert(inst, s, rate, false).is_err() {
                break;
            }
            packed_bits += rate.bits_per_sec() as f64;
            if packed_bits >= free {
                break;
            }
        }
        (1.0 - packed_bits / free).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_layout::ViewerId;

    fn inst(v: u64) -> ViewerInstance {
        ViewerInstance {
            viewer: ViewerId(v),
            incarnation: 0,
        }
    }

    fn mbit(n: u64) -> Bandwidth {
        Bandwidth::from_mbit_per_sec(n)
    }

    fn sec(n: u64) -> SimDuration {
        SimDuration::from_secs(n)
    }

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// A 3-cub ring (3 s long), 6 Mbit/s NIC — the Figure 4 setting.
    fn fig4() -> NetworkSchedule {
        NetworkSchedule::new(3, sec(1), mbit(6), None)
    }

    #[test]
    fn load_accumulates_and_wraps() {
        let mut s = fig4();
        s.insert(inst(0), ms(0), mbit(2), false).expect("fits");
        s.insert(inst(1), ms(500), mbit(3), false).expect("fits");
        // Entry spanning the ring end.
        s.insert(inst(2), ms(2500), mbit(1), false).expect("fits");
        assert_eq!(s.load_at(ms(0)), mbit(3)); // viewer 0 + wrap of viewer 2
        assert_eq!(s.load_at(ms(600)), mbit(5));
        assert_eq!(s.load_at(ms(1200)), mbit(3));
        assert_eq!(s.load_at(ms(2600)), mbit(1));
    }

    #[test]
    fn capacity_is_enforced_across_the_window() {
        let mut s = fig4();
        s.insert(inst(0), ms(0), mbit(4), false).expect("fits");
        // A 3 Mbit/s entry at 500 would overlap the 4 Mbit/s one: 7 > 6.
        assert_eq!(
            s.insert(inst(1), ms(500), mbit(3), false),
            Err(NetScheduleError::Overflow)
        );
        // At 1000 (no overlap) it fits.
        s.insert(inst(1), ms(1000), mbit(3), false).expect("fits");
        // 2 Mbit/s overlapping the 4 fits exactly (6 = capacity).
        s.insert(inst(2), ms(500), mbit(2), false)
            .expect("fits at capacity");
    }

    #[test]
    fn fig4_fragmentation_example() {
        // §3.2: "The free bandwidth below the 6 Mbit/s level between when
        // viewer 4 finishes sending and when viewer 2 starts is unusable,
        // because any new entry would be one block play time long, and the
        // gap in the schedule is slightly too short."
        let mut s = fig4();
        // viewer 4: 2 Mbit/s at [0, 1); viewer 2 starts at 1.875 with the
        // rest of the band busy enough that the 2 Mbit/s lane is only free
        // in [1, 1.875).
        s.insert(inst(4), ms(0), mbit(2), false).expect("fits");
        s.insert(inst(2), ms(1875), mbit(2), false).expect("fits");
        // Fill the remaining 4 Mbit/s everywhere.
        s.insert(inst(10), ms(0), mbit(4), false).expect("fits");
        s.insert(inst(11), ms(1000), mbit(4), false).expect("fits");
        s.insert(inst(12), ms(2000), mbit(4), false).expect("fits");
        // The 2 Mbit/s lane gap [1.0, 1.875) is < 1 s: nothing fits there.
        for start_ms in [1000u64, 1100, 1500, 1800] {
            assert!(
                !s.fits(ms(start_ms), mbit(2)),
                "gap too short at {start_ms}"
            );
        }
        assert!(s.fragmentation(mbit(2), ms(125)) > 0.0);
    }

    #[test]
    fn quantized_starts_reject_unaligned() {
        // decluster 4 → quantum = bpt/4 = 250 ms.
        let mut s = NetworkSchedule::new(3, sec(1), mbit(6), Some(ms(250)));
        assert_eq!(
            s.insert(inst(0), ms(100), mbit(2), false),
            Err(NetScheduleError::UnalignedStart)
        );
        s.insert(inst(0), ms(250), mbit(2), false)
            .expect("aligned start fits");
    }

    #[test]
    fn tentative_entries_block_capacity_until_aborted() {
        let mut s = fig4();
        let id = s.insert(inst(0), ms(0), mbit(4), true).expect("fits");
        assert_eq!(
            s.insert(inst(1), ms(0), mbit(4), false),
            Err(NetScheduleError::Overflow),
            "reservation blocks capacity"
        );
        s.abort(id).expect("known id");
        s.insert(inst(1), ms(0), mbit(4), false)
            .expect("fits after abort");
    }

    #[test]
    fn commit_makes_reservation_permanent() {
        let mut s = fig4();
        let id = s.insert(inst(0), ms(0), mbit(4), true).expect("fits");
        s.commit(id).expect("known id");
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.commit(NetEntryId(99)),
            Err(NetScheduleError::UnknownEntry(NetEntryId(99)))
        );
    }

    #[test]
    fn remove_instance_clears_all_entries() {
        let mut s = fig4();
        s.insert(inst(7), ms(0), mbit(1), false).expect("fits");
        s.insert(inst(7), ms(1000), mbit(1), false).expect("fits");
        s.insert(inst(8), ms(0), mbit(1), false).expect("fits");
        assert_eq!(s.remove_instance(inst(7)), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn quantization_reduces_fragmentation_under_churn() {
        // Start/stop churn with arbitrary starts leaves odd-sized gaps;
        // with quantized starts the landscape stays packable. This is the
        // §3.2 claim in miniature.
        let run = |quantum: Option<SimDuration>| -> f64 {
            let mut s = NetworkSchedule::new(8, sec(1), mbit(6), quantum);
            // Deterministic churn pattern with awkward offsets.
            let offsets: &[u64] = &[
                0, 217, 733, 1250, 1901, 2500, 3333, 4250, 5111, 6000, 6777, 7500,
            ];
            let mut ids = Vec::new();
            for (i, &off) in offsets.iter().enumerate() {
                let start = match quantum {
                    Some(q) => ms(off).as_nanos() / q.as_nanos() * q.as_nanos(),
                    None => ms(off).as_nanos(),
                };
                if let Ok(id) = s.insert(
                    inst(i as u64),
                    SimDuration::from_nanos(start),
                    mbit(2),
                    false,
                ) {
                    ids.push(id);
                }
            }
            // Stop every other stream, leaving fragmented gaps.
            for id in ids.iter().step_by(2) {
                let _ = s.abort(*id);
            }
            s.fragmentation(mbit(2), ms(50))
        };
        let arbitrary = run(None);
        let quantized = run(Some(ms(250)));
        assert!(
            quantized <= arbitrary,
            "quantized {quantized} should not fragment more than arbitrary {arbitrary}"
        );
    }
}
