//! Viewer-state and deschedule records (paper §4.1.1–§4.1.2).
//!
//! "A viewer state contains the address of the viewer, the file being
//! played, the viewer's position in the file, the schedule slot number, the
//! play sequence number (how far the viewer has gotten into the current
//! play request), and some other bookkeeping information."
//!
//! Receiving either record type is idempotent; a deschedule's semantics are
//! "If this instance of viewer is in this schedule slot, remove the
//! viewer."

use tiger_layout::ids::ViewerInstance;
use tiger_layout::{BlockNum, DiskId, FileId};
use tiger_sim::Bandwidth;

use crate::params::SlotId;

/// Whether a schedule entry describes primary service or failed-mode mirror
/// service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Normal service from primary copies.
    Primary,
    /// Mirror service: this entry describes sending piece `piece` of each
    /// block that the failed disk would have served (§4.1.1, mirror viewer
    /// states).
    Mirror {
        /// The failed disk being covered.
        failed_disk: DiskId,
        /// Which declustered piece this entry's holder sends.
        piece: u32,
    },
    /// Coded-shard service (the `tiger-coded` backend): this entry
    /// describes sending shard `shard` of each block homed on
    /// `home_disk`. Unlike mirror service, coded entries also appear in
    /// *healthy* operation — every block is assembled from `k` of its
    /// `2k` shards, and the home's coordinator picks the holders.
    Coded {
        /// The disk the block is homed on (shard 0's disk).
        home_disk: DiskId,
        /// Which coded shard this entry's holder sends (`1..2k`; shard 0
        /// is served by the home's own Primary entry).
        shard: u32,
    },
}

/// A viewer-state record: the unit of schedule information passed around
/// the ring of cubs.
///
/// The paper's record is ~100 bytes on the wire; [`ViewerState::WIRE_BYTES`]
/// is used by the network model for the control-traffic metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViewerState {
    /// The viewer play-request instance this entry serves.
    pub instance: ViewerInstance,
    /// Network node id of the viewer's client machine.
    pub client: u32,
    /// The file being played.
    pub file: FileId,
    /// The next block of the file to send.
    pub position: BlockNum,
    /// The schedule slot the viewer occupies.
    pub slot: SlotId,
    /// How many blocks of the current play request have been scheduled
    /// ("how far the viewer has gotten into the current play request").
    pub play_seq: u32,
    /// The stream's bitrate (equal to the system rate in a single-bitrate
    /// server).
    pub bitrate: Bandwidth,
    /// Primary or mirror service.
    pub kind: StreamKind,
}

impl ViewerState {
    /// Wire size of a viewer-state message (§3.3: "about the size of the
    /// comparable message sent from cub to cub … 100 bytes").
    pub const WIRE_BYTES: u64 = 100;

    /// Whether `self` carries the same or newer information than `other`
    /// for the same (slot, instance, kind) — the idempotence/duplicate
    /// test: "Receiving a viewer state is idempotent: Duplicates are
    /// ignored."
    pub fn supersedes(&self, other: &ViewerState) -> bool {
        self.slot == other.slot
            && self.instance == other.instance
            && self.kind == other.kind
            && self.play_seq >= other.play_seq
    }

    /// The record advanced by `n` blocks (as the next disks in the ring
    /// will see it).
    pub fn advanced(&self, n: u32) -> ViewerState {
        ViewerState {
            position: BlockNum(self.position.raw() + n),
            play_seq: self.play_seq + n,
            ..*self
        }
    }
}

/// A deschedule request (§4.1.2): "If this instance of viewer is in this
/// schedule slot, remove the viewer."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Deschedule {
    /// The viewer instance to remove.
    pub instance: ViewerInstance,
    /// The slot it is believed to occupy.
    pub slot: SlotId,
}

impl Deschedule {
    /// Wire size of a deschedule message.
    pub const WIRE_BYTES: u64 = 40;

    /// Whether this deschedule kills the given viewer state.
    ///
    /// A mirror viewer state derives from the same instance/slot, so the
    /// deschedule kills it too (when a viewer stops, failed-mode service
    /// for it must also stop).
    pub fn matches(&self, vs: &ViewerState) -> bool {
        self.instance == vs.instance && self.slot == vs.slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_layout::ViewerId;

    fn vs(slot: u32, viewer: u64, incarnation: u32, play_seq: u32) -> ViewerState {
        ViewerState {
            instance: ViewerInstance {
                viewer: ViewerId(viewer),
                incarnation,
            },
            client: 7,
            file: FileId(3),
            position: BlockNum(play_seq),
            slot: SlotId(slot),
            play_seq,
            bitrate: Bandwidth::from_mbit_per_sec(2),
            kind: StreamKind::Primary,
        }
    }

    #[test]
    fn supersedes_requires_same_identity() {
        let a = vs(5, 1, 0, 10);
        assert!(a.supersedes(&vs(5, 1, 0, 10)), "exact duplicate");
        assert!(a.supersedes(&vs(5, 1, 0, 9)), "newer play_seq");
        assert!(!a.supersedes(&vs(5, 1, 0, 11)), "older play_seq");
        assert!(!a.supersedes(&vs(6, 1, 0, 10)), "different slot");
        assert!(!a.supersedes(&vs(5, 2, 0, 10)), "different viewer");
        assert!(!a.supersedes(&vs(5, 1, 1, 10)), "different incarnation");
    }

    #[test]
    fn mirror_and_primary_records_are_distinct() {
        let a = vs(5, 1, 0, 10);
        let mut m = a;
        m.kind = StreamKind::Mirror {
            failed_disk: DiskId(9),
            piece: 2,
        };
        assert!(!a.supersedes(&m));
        assert!(!m.supersedes(&a));
        assert!(m.supersedes(&m.clone()));
    }

    #[test]
    fn advanced_moves_position_and_seq() {
        let a = vs(5, 1, 0, 10);
        let b = a.advanced(3);
        assert_eq!(b.position, BlockNum(13));
        assert_eq!(b.play_seq, 13);
        assert_eq!(b.slot, a.slot);
        assert!(b.supersedes(&a));
    }

    #[test]
    fn deschedule_matches_instance_and_slot_only() {
        let a = vs(5, 1, 0, 10);
        let d = Deschedule {
            instance: a.instance,
            slot: SlotId(5),
        };
        assert!(d.matches(&a));
        assert!(d.matches(&a.advanced(4)), "matches any play_seq");
        let mut m = a;
        m.kind = StreamKind::Mirror {
            failed_disk: DiskId(9),
            piece: 0,
        };
        assert!(d.matches(&m), "kills derived mirror entries too");
        assert!(!d.matches(&vs(6, 1, 0, 10)), "wrong slot");
        assert!(!d.matches(&vs(5, 1, 1, 10)), "wrong incarnation");
    }
}
