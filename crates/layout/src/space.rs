//! Per-disk space management: primary and secondary regions (paper §2.3).
//!
//! "Primaries are stored on the faster portion of a disk, and secondaries
//! are stored on the slower part." A disk is split at a configurable
//! fraction (half by default): extents allocated in the primary region grow
//! from offset 0 (the fast outer tracks), and extents in the secondary
//! region grow from the split point (the slow inner tracks).
//!
//! Tiger stores each block contiguously "in order to minimize seeks and to
//! have predictable block read performance", so allocation is a simple bump
//! allocator per region — there is no free-list because content is only
//! removed wholesale (restripe or file delete, which rewrites the disk).

use std::fmt;

use tiger_sim::ByteSize;

/// Alignment granule for extents, matching the 64-byte length unit of the
/// packed index entries.
pub const EXTENT_ALIGN: u64 = 64;

/// Which region of the disk an extent is placed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiskRegion {
    /// The fast (outer-track) half: primary copies.
    Primary,
    /// The slow (inner-track) half: declustered mirror pieces.
    Secondary,
}

/// Errors from space allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpaceError {
    /// The region has no room for the requested extent.
    RegionFull {
        /// The region that overflowed.
        region: DiskRegion,
        /// Bytes requested (after alignment).
        requested: u64,
        /// Bytes remaining in the region.
        available: u64,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::RegionFull {
                region,
                requested,
                available,
            } => write!(
                f,
                "{region:?} region full: requested {requested} bytes, {available} available"
            ),
        }
    }
}

impl std::error::Error for SpaceError {}

/// Bump allocator over one disk's primary and secondary regions.
#[derive(Clone, Debug)]
pub struct DiskSpace {
    capacity: ByteSize,
    split: u64,
    primary_next: u64,
    secondary_next: u64,
}

impl DiskSpace {
    /// Creates an allocator for a disk of `capacity` bytes, with the
    /// primary region occupying the first `primary_fraction` of the disk.
    ///
    /// # Panics
    ///
    /// Panics if `primary_fraction` is not in `(0, 1)` or capacity is zero.
    pub fn new(capacity: ByteSize, primary_fraction: f64) -> Self {
        assert!(capacity.as_bytes() > 0, "disk capacity must be nonzero");
        assert!(
            primary_fraction > 0.0 && primary_fraction < 1.0,
            "primary fraction must be in (0, 1)"
        );
        let split_unaligned = (capacity.as_bytes() as f64 * primary_fraction) as u64;
        let split = split_unaligned - split_unaligned % EXTENT_ALIGN;
        DiskSpace {
            capacity,
            split,
            primary_next: 0,
            secondary_next: split,
        }
    }

    /// Creates the standard half-and-half split (§2.3).
    pub fn half_split(capacity: ByteSize) -> Self {
        Self::new(capacity, 0.5)
    }

    /// The disk's total capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// The first byte offset of the secondary region.
    pub fn split_offset(&self) -> u64 {
        self.split
    }

    /// Allocates an extent of at least `size` bytes (rounded up to the
    /// 64-byte granule) in `region`, returning `(offset, aligned_size)`.
    pub fn allocate(
        &mut self,
        region: DiskRegion,
        size: ByteSize,
    ) -> Result<(u64, ByteSize), SpaceError> {
        let aligned = size.as_bytes().div_ceil(EXTENT_ALIGN) * EXTENT_ALIGN;
        let (next, limit) = match region {
            DiskRegion::Primary => (&mut self.primary_next, self.split),
            DiskRegion::Secondary => (&mut self.secondary_next, self.capacity.as_bytes()),
        };
        let available = limit - *next;
        if aligned > available {
            return Err(SpaceError::RegionFull {
                region,
                requested: aligned,
                available,
            });
        }
        let offset = *next;
        *next += aligned;
        Ok((offset, ByteSize::from_bytes(aligned)))
    }

    /// Bytes still free in `region`.
    pub fn free_in(&self, region: DiskRegion) -> ByteSize {
        match region {
            DiskRegion::Primary => ByteSize::from_bytes(self.split - self.primary_next),
            DiskRegion::Secondary => {
                ByteSize::from_bytes(self.capacity.as_bytes() - self.secondary_next)
            }
        }
    }

    /// Bytes used in `region`.
    pub fn used_in(&self, region: DiskRegion) -> ByteSize {
        match region {
            DiskRegion::Primary => ByteSize::from_bytes(self.primary_next),
            DiskRegion::Secondary => ByteSize::from_bytes(self.secondary_next - self.split),
        }
    }

    /// Fraction of the whole disk that is allocated (either region).
    pub fn fill_fraction(&self) -> f64 {
        let used = self.primary_next + (self.secondary_next - self.split);
        used as f64 / self.capacity.as_bytes() as f64
    }

    /// Whether a given byte offset falls in the (fast) primary region.
    pub fn offset_is_primary(&self, offset: u64) -> bool {
        offset < self.split
    }

    /// Releases everything (restripe support: the disk is rewritten).
    pub fn clear(&mut self) {
        self.primary_next = 0;
        self.secondary_next = self.split;
    }

    /// Releases only the secondary region (live-restripe cut-over: mirror
    /// pieces are re-laid for the new placement while the primary region —
    /// whose extents moved-away blocks leak by design in a bump allocator —
    /// keeps growing until an offline rewrite reclaims it).
    pub fn clear_secondary(&mut self) {
        self.secondary_next = self.split;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_grow_from_their_origins() {
        let mut s = DiskSpace::half_split(ByteSize::from_bytes(1_000_000));
        let (p0, _) = s
            .allocate(DiskRegion::Primary, ByteSize::from_bytes(100))
            .expect("fits");
        let (p1, _) = s
            .allocate(DiskRegion::Primary, ByteSize::from_bytes(100))
            .expect("fits");
        let (s0, _) = s
            .allocate(DiskRegion::Secondary, ByteSize::from_bytes(100))
            .expect("fits");
        assert_eq!(p0, 0);
        assert_eq!(p1, 128); // 100 rounds up to 128.
        assert_eq!(s0, s.split_offset());
        assert!(s.offset_is_primary(p1));
        assert!(!s.offset_is_primary(s0));
    }

    #[test]
    fn allocation_is_aligned() {
        let mut s = DiskSpace::half_split(ByteSize::from_bytes(1_000_000));
        // 250,000 (a 2 Mbit/s 1 s block) rounds up to a 64-byte multiple.
        let (_, sz) = s
            .allocate(DiskRegion::Primary, ByteSize::from_bytes(250_000))
            .expect("fits");
        assert_eq!(sz.as_bytes() % EXTENT_ALIGN, 0);
        assert!(sz.as_bytes() >= 250_000 && sz.as_bytes() < 250_000 + EXTENT_ALIGN);
    }

    #[test]
    fn regions_overflow_independently() {
        let mut s = DiskSpace::half_split(ByteSize::from_bytes(1_024));
        // Primary region is 512 bytes.
        s.allocate(DiskRegion::Primary, ByteSize::from_bytes(512))
            .expect("fits");
        let err = s
            .allocate(DiskRegion::Primary, ByteSize::from_bytes(64))
            .expect_err("primary is full");
        assert!(matches!(
            err,
            SpaceError::RegionFull {
                region: DiskRegion::Primary,
                ..
            }
        ));
        // Secondary still has room.
        s.allocate(DiskRegion::Secondary, ByteSize::from_bytes(512))
            .expect("fits");
    }

    #[test]
    fn accounting_tracks_usage() {
        let mut s = DiskSpace::half_split(ByteSize::from_bytes(10_000));
        assert_eq!(s.used_in(DiskRegion::Primary).as_bytes(), 0);
        s.allocate(DiskRegion::Primary, ByteSize::from_bytes(640))
            .expect("fits");
        assert_eq!(s.used_in(DiskRegion::Primary).as_bytes(), 640);
        assert!((s.fill_fraction() - 0.064).abs() < 1e-9);
        s.clear();
        assert_eq!(s.fill_fraction(), 0.0);
    }

    #[test]
    fn custom_split_fraction() {
        // Decluster 4: at most 1/(4+1) of reads come from the slow region,
        // so a system could bias the split; verify the knob works.
        let s = DiskSpace::new(ByteSize::from_bytes(100_000), 0.8);
        assert!(s.split_offset() >= 79_936 && s.split_offset() <= 80_000);
        assert_eq!(s.split_offset() % EXTENT_ALIGN, 0);
    }
}
