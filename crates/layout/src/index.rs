//! The per-cub in-memory block index (paper §4.1.1).
//!
//! "Each cub keeps track of the contents of the primary region of its
//! disks, indexed by file and block numbers. Index entries are 64 bits
//! long. Unlike traditional filesystems, the index is stored in the cub's
//! memory rather than on the data disks."
//!
//! We reproduce the 64-bit packing faithfully: 40 bits of byte offset
//! (1 TB addressable per disk — generous for 1997 disks) and 24 bits of
//! length in 64-byte units (1 GB max per extent). Packing is lossless for
//! all sizes the system produces, and the pack/unpack pair is
//! property-tested.

use std::collections::HashMap;
use std::fmt;

use tiger_sim::ByteSize;

use crate::ids::{BlockNum, DiskId, FileId};

/// Length granule for packed entries, in bytes.
const LENGTH_UNIT: u64 = 64;
/// Bits of byte offset in a packed entry.
const OFFSET_BITS: u32 = 40;
/// Bits of length (in `LENGTH_UNIT`s) in a packed entry.
const LENGTH_BITS: u32 = 24;

/// A packed 64-bit index entry: where an extent lives on its disk.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexEntry(u64);

/// Errors from index operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexError {
    /// The offset does not fit in 40 bits.
    OffsetTooLarge,
    /// The length does not fit in 24 bits of 64-byte units, or is not a
    /// multiple of the 64-byte granule.
    BadLength,
    /// An entry already exists for this key.
    Duplicate,
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::OffsetTooLarge => write!(f, "extent offset exceeds 40 bits"),
            IndexError::BadLength => {
                write!(f, "extent length not a representable multiple of 64 bytes")
            }
            IndexError::Duplicate => write!(f, "duplicate index entry"),
        }
    }
}

impl std::error::Error for IndexError {}

impl IndexEntry {
    /// Packs an extent `(offset, length)` into 64 bits.
    pub fn pack(offset: u64, length: ByteSize) -> Result<Self, IndexError> {
        if offset >= 1 << OFFSET_BITS {
            return Err(IndexError::OffsetTooLarge);
        }
        let len = length.as_bytes();
        if !len.is_multiple_of(LENGTH_UNIT) {
            return Err(IndexError::BadLength);
        }
        let units = len / LENGTH_UNIT;
        if units >= 1 << LENGTH_BITS {
            return Err(IndexError::BadLength);
        }
        Ok(IndexEntry(offset | (units << OFFSET_BITS)))
    }

    /// The extent's byte offset on its disk.
    pub fn offset(self) -> u64 {
        self.0 & ((1 << OFFSET_BITS) - 1)
    }

    /// The extent's length in bytes.
    pub fn length(self) -> ByteSize {
        ByteSize::from_bytes((self.0 >> OFFSET_BITS) * LENGTH_UNIT)
    }

    /// The raw 64-bit representation.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for IndexEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IndexEntry(off={}, len={})",
            self.offset(),
            self.length()
        )
    }
}

/// The in-memory index for all disks of one cub.
///
/// Primary extents are keyed by `(disk, file, block)`; mirror (secondary)
/// extents additionally carry the piece number.
#[derive(Clone, Debug, Default)]
pub struct BlockIndex {
    primary: HashMap<(DiskId, FileId, BlockNum), IndexEntry>,
    secondary: HashMap<(DiskId, FileId, BlockNum, u32), IndexEntry>,
}

impl BlockIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the primary extent of `(file, block)` on `disk`.
    pub fn insert_primary(
        &mut self,
        disk: DiskId,
        file: FileId,
        block: BlockNum,
        entry: IndexEntry,
    ) -> Result<(), IndexError> {
        match self.primary.entry((disk, file, block)) {
            std::collections::hash_map::Entry::Occupied(_) => Err(IndexError::Duplicate),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(entry);
                Ok(())
            }
        }
    }

    /// Records a mirror-piece extent.
    pub fn insert_secondary(
        &mut self,
        disk: DiskId,
        file: FileId,
        block: BlockNum,
        piece: u32,
        entry: IndexEntry,
    ) -> Result<(), IndexError> {
        match self.secondary.entry((disk, file, block, piece)) {
            std::collections::hash_map::Entry::Occupied(_) => Err(IndexError::Duplicate),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(entry);
                Ok(())
            }
        }
    }

    /// Looks up the primary extent of `(file, block)` on `disk`.
    pub fn lookup_primary(
        &self,
        disk: DiskId,
        file: FileId,
        block: BlockNum,
    ) -> Option<IndexEntry> {
        self.primary.get(&(disk, file, block)).copied()
    }

    /// Looks up a mirror-piece extent.
    pub fn lookup_secondary(
        &self,
        disk: DiskId,
        file: FileId,
        block: BlockNum,
        piece: u32,
    ) -> Option<IndexEntry> {
        self.secondary.get(&(disk, file, block, piece)).copied()
    }

    /// Number of primary extents indexed.
    pub fn primary_len(&self) -> usize {
        self.primary.len()
    }

    /// Number of secondary extents indexed.
    pub fn secondary_len(&self) -> usize {
        self.secondary.len()
    }

    /// Approximate resident size of the index in bytes (64-bit entries plus
    /// key overhead is ignored, matching the paper's "relatively little
    /// metadata" argument — this reports the 8 bytes per entry the paper
    /// counts).
    pub fn entry_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(8 * (self.primary.len() + self.secondary.len()) as u64)
    }

    /// Removes all extents for `disk` (used when a disk is re-formatted by
    /// the restriper).
    pub fn clear_disk(&mut self, disk: DiskId) {
        self.primary.retain(|&(d, _, _), _| d != disk);
        self.secondary.retain(|&(d, _, _, _), _| d != disk);
    }

    /// Removes the primary extent of `(file, block)` on `disk`, returning
    /// it if present (live-restripe cut-over: the block now lives on its
    /// new disk and the stale entry must stop answering lookups).
    pub fn remove_primary(
        &mut self,
        disk: DiskId,
        file: FileId,
        block: BlockNum,
    ) -> Option<IndexEntry> {
        self.primary.remove(&(disk, file, block))
    }

    /// Removes every secondary extent (live-restripe cut-over: mirror
    /// placement is re-derived wholesale for the new stripe).
    pub fn clear_all_secondary(&mut self) {
        self.secondary.clear();
    }

    /// Iterates the `(disk, file, block)` keys of every primary extent, in
    /// arbitrary order (callers that need determinism must sort — the
    /// layout digest does).
    pub fn primary_keys(&self) -> impl Iterator<Item = (DiskId, FileId, BlockNum)> + '_ {
        self.primary.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let e = IndexEntry::pack(123 * 64, ByteSize::from_bytes(262_144)).expect("packs");
        assert_eq!(e.offset(), 123 * 64);
        assert_eq!(e.length().as_bytes(), 262_144);
    }

    #[test]
    fn pack_rejects_out_of_range() {
        assert_eq!(
            IndexEntry::pack(1 << 40, ByteSize::from_bytes(64)),
            Err(IndexError::OffsetTooLarge)
        );
        assert_eq!(
            IndexEntry::pack(0, ByteSize::from_bytes(63)),
            Err(IndexError::BadLength)
        );
        assert_eq!(
            IndexEntry::pack(0, ByteSize::from_bytes(64 * (1 << 24))),
            Err(IndexError::BadLength)
        );
    }

    #[test]
    fn max_representable_values_roundtrip() {
        let off = (1u64 << 40) - 1;
        let len = ByteSize::from_bytes(64 * ((1 << 24) - 1));
        let e = IndexEntry::pack(off, len).expect("packs");
        assert_eq!(e.offset(), off);
        assert_eq!(e.length(), len);
    }

    #[test]
    fn index_insert_lookup_and_duplicate() {
        let mut ix = BlockIndex::new();
        let e = IndexEntry::pack(0, ByteSize::from_bytes(128)).expect("packs");
        ix.insert_primary(DiskId(1), FileId(2), BlockNum(3), e)
            .expect("inserts");
        assert_eq!(
            ix.lookup_primary(DiskId(1), FileId(2), BlockNum(3)),
            Some(e)
        );
        assert_eq!(ix.lookup_primary(DiskId(0), FileId(2), BlockNum(3)), None);
        assert_eq!(
            ix.insert_primary(DiskId(1), FileId(2), BlockNum(3), e),
            Err(IndexError::Duplicate)
        );
    }

    #[test]
    fn secondary_entries_keyed_by_piece() {
        let mut ix = BlockIndex::new();
        let e0 = IndexEntry::pack(0, ByteSize::from_bytes(64)).expect("packs");
        let e1 = IndexEntry::pack(64, ByteSize::from_bytes(64)).expect("packs");
        ix.insert_secondary(DiskId(1), FileId(2), BlockNum(3), 0, e0)
            .expect("inserts");
        ix.insert_secondary(DiskId(1), FileId(2), BlockNum(3), 1, e1)
            .expect("inserts");
        assert_eq!(
            ix.lookup_secondary(DiskId(1), FileId(2), BlockNum(3), 1),
            Some(e1)
        );
        assert_eq!(ix.secondary_len(), 2);
    }

    #[test]
    fn clear_disk_removes_only_that_disk() {
        let mut ix = BlockIndex::new();
        let e = IndexEntry::pack(0, ByteSize::from_bytes(64)).expect("packs");
        ix.insert_primary(DiskId(1), FileId(0), BlockNum(0), e)
            .expect("inserts");
        ix.insert_primary(DiskId(2), FileId(0), BlockNum(1), e)
            .expect("inserts");
        ix.clear_disk(DiskId(1));
        assert_eq!(ix.lookup_primary(DiskId(1), FileId(0), BlockNum(0)), None);
        assert!(ix
            .lookup_primary(DiskId(2), FileId(0), BlockNum(1))
            .is_some());
    }

    #[test]
    fn entry_bytes_counts_8_per_entry() {
        let mut ix = BlockIndex::new();
        let e = IndexEntry::pack(0, ByteSize::from_bytes(64)).expect("packs");
        ix.insert_primary(DiskId(1), FileId(0), BlockNum(0), e)
            .expect("inserts");
        ix.insert_secondary(DiskId(1), FileId(0), BlockNum(0), 0, e)
            .expect("inserts");
        assert_eq!(ix.entry_bytes().as_bytes(), 16);
    }
}
