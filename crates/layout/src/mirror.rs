//! Declustered mirroring (paper §2.3).
//!
//! "For each block of primary data stored on a cub, its mirror (secondary)
//! copy is split into several pieces and spread across different disks and
//! machines. … Tiger always stores the secondary parts of a block on the
//! disks immediately following the disk holding the primary copy."
//!
//! Declustering trades reserved bandwidth against fault exposure: with a
//! decluster factor of `d`, only `1/(d+1)` of bandwidth is reserved for
//! failed-mode operation, but a second failure within `d` disks of an
//! existing failure loses data.

use tiger_sim::ByteSize;

use crate::ids::DiskId;
use crate::stripe::StripeConfig;

/// One piece of a block's declustered mirror copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MirrorPiece {
    /// Which piece of the block this is (0-based, `< decluster`).
    pub piece: u32,
    /// The disk holding this piece.
    pub disk: DiskId,
    /// Size of this piece in bytes.
    pub size: ByteSize,
}

/// Computes mirror placements for a striping configuration.
#[derive(Clone, Copy, Debug)]
pub struct MirrorPlacement {
    cfg: StripeConfig,
}

impl MirrorPlacement {
    /// Creates a placement helper for `cfg`.
    pub fn new(cfg: StripeConfig) -> Self {
        MirrorPlacement { cfg }
    }

    /// The underlying striping configuration.
    pub fn config(&self) -> StripeConfig {
        self.cfg
    }

    /// The mirror pieces for a block whose primary is on `primary_disk`.
    ///
    /// Piece `i` lands on the `(i+1)`-th disk after the primary. The final
    /// piece absorbs the remainder so the pieces sum exactly to
    /// `block_size`.
    pub fn pieces_for(&self, primary_disk: DiskId, block_size: ByteSize) -> Vec<MirrorPiece> {
        let d = self.cfg.decluster;
        let even = block_size.div_u64_ceil(u64::from(d));
        let mut remaining = block_size;
        (0..d)
            .map(|i| {
                let size = if remaining > even { even } else { remaining };
                remaining = remaining - size;
                MirrorPiece {
                    piece: i,
                    disk: self.cfg.disk_after(primary_disk, i + 1),
                    size,
                }
            })
            .collect()
    }

    /// The disks that hold mirror pieces for primaries on `failed_disk` —
    /// i.e. the disks that must "combine to do its work" when it fails.
    pub fn covering_disks(&self, failed_disk: DiskId) -> Vec<DiskId> {
        (1..=self.cfg.decluster)
            .map(|i| self.cfg.disk_after(failed_disk, i))
            .collect()
    }

    /// Whether `holder` stores any mirror piece for primaries on `primary`.
    pub fn covers(&self, holder: DiskId, primary: DiskId) -> bool {
        let dist = self.cfg.ring_distance(primary, holder);
        dist >= 1 && dist <= self.cfg.decluster
    }

    /// Which piece index `holder` stores for primaries on `primary`, if any.
    pub fn piece_index(&self, holder: DiskId, primary: DiskId) -> Option<u32> {
        let dist = self.cfg.ring_distance(primary, holder);
        (dist >= 1 && dist <= self.cfg.decluster).then(|| dist - 1)
    }

    /// The disks whose failure, *in addition to* `failed_disk`, would lose
    /// data (§2.3: "a second failure on any of 8 machines would result in
    /// the loss of data" for decluster 4).
    ///
    /// A second failure at `x` loses data iff some block has its primary and
    /// a mirror piece both unavailable, i.e. iff `x` is within `decluster`
    /// positions of `failed_disk` on either side.
    pub fn second_failure_exposure(&self, failed_disk: DiskId) -> Vec<DiskId> {
        let d = self.cfg.decluster;
        let mut out = Vec::with_capacity(2 * d as usize);
        for i in 1..=d {
            out.push(self.cfg.disk_before(failed_disk, i));
        }
        for i in 1..=d {
            out.push(self.cfg.disk_after(failed_disk, i));
        }
        out.sort_unstable();
        out.dedup();
        // Never count the failed disk itself (possible only in tiny rings).
        out.retain(|&x| x != failed_disk);
        out
    }

    /// The fraction of bandwidth that must be reserved for failed-mode
    /// operation: `1 / (decluster + 1)` (§2.3).
    pub fn reserved_bandwidth_fraction(&self) -> f64 {
        1.0 / (self.cfg.decluster as f64 + 1.0)
    }

    /// Whether data survives a given set of failed disks: no block may lose
    /// both its primary and any needed mirror piece. Since every disk holds
    /// primaries, this reduces to: no two failed disks within `decluster`
    /// ring positions of each other.
    pub fn survives(&self, failed: &[DiskId]) -> bool {
        for (i, &a) in failed.iter().enumerate() {
            for &b in &failed[i + 1..] {
                if a == b {
                    continue;
                }
                let fwd = self.cfg.ring_distance(a, b);
                let back = self.cfg.ring_distance(b, a);
                if fwd.min(back) <= self.cfg.decluster {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stripe::StripeConfig;

    fn place(cubs: u32, dpc: u32, d: u32) -> MirrorPlacement {
        MirrorPlacement::new(StripeConfig::new(cubs, dpc, d))
    }

    #[test]
    fn pieces_follow_primary_immediately() {
        let p = place(14, 4, 4);
        let pieces = p.pieces_for(DiskId(10), ByteSize::from_bytes(262_144));
        assert_eq!(pieces.len(), 4);
        for (i, piece) in pieces.iter().enumerate() {
            assert_eq!(piece.piece, i as u32);
            assert_eq!(piece.disk, DiskId(10 + 1 + i as u32));
        }
    }

    #[test]
    fn pieces_wrap_around_ring() {
        let p = place(3, 1, 2);
        let pieces = p.pieces_for(DiskId(2), ByteSize::from_bytes(100));
        assert_eq!(pieces[0].disk, DiskId(0));
        assert_eq!(pieces[1].disk, DiskId(1));
    }

    #[test]
    fn pieces_sum_to_block_size() {
        for size in [1u64, 100, 262_144, 262_145, 262_147] {
            for d in 1..=5 {
                let p = place(14, 4, d);
                let pieces = p.pieces_for(DiskId(0), ByteSize::from_bytes(size));
                let total: u64 = pieces.iter().map(|x| x.size.as_bytes()).sum();
                assert_eq!(total, size, "size {size} decluster {d}");
            }
        }
    }

    #[test]
    fn covering_disks_match_piece_holders() {
        let p = place(14, 4, 4);
        let cover = p.covering_disks(DiskId(54));
        assert_eq!(cover, vec![DiskId(55), DiskId(0), DiskId(1), DiskId(2)]);
        for c in &cover {
            assert!(p.covers(*c, DiskId(54)));
        }
        assert!(!p.covers(DiskId(3), DiskId(54)));
        assert_eq!(p.piece_index(DiskId(0), DiskId(54)), Some(1));
        assert_eq!(p.piece_index(DiskId(54), DiskId(54)), None);
    }

    #[test]
    fn second_failure_exposure_counts_match_paper() {
        // §2.3: decluster 4 exposes 8 machines; decluster 2 "can survive
        // failures more than two cubs away from any other failure".
        let p4 = place(14, 1, 4);
        assert_eq!(p4.second_failure_exposure(DiskId(6)).len(), 8);
        let p2 = place(14, 1, 2);
        assert_eq!(p2.second_failure_exposure(DiskId(6)).len(), 4);
    }

    #[test]
    fn reserved_bandwidth_fraction_matches_paper() {
        // "With a decluster factor of 4, only a fifth of total disk and
        // network bandwidth needs to be reserved … a decluster factor of 2
        // consumes a third of system bandwidth."
        assert!((place(14, 4, 4).reserved_bandwidth_fraction() - 0.2).abs() < 1e-12);
        assert!((place(14, 4, 2).reserved_bandwidth_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn survives_rules() {
        let p = place(14, 1, 4);
        assert!(p.survives(&[DiskId(0)]));
        assert!(p.survives(&[DiskId(0), DiskId(7)]));
        assert!(!p.survives(&[DiskId(0), DiskId(4)]));
        assert!(!p.survives(&[DiskId(0), DiskId(12)])); // 2 back around the ring
        assert!(p.survives(&[]));
    }

    #[test]
    fn loss_window_boundary_is_exactly_decluster() {
        // The §2.3 loss-window arithmetic, probed at its boundary over
        // random rings: a second failure exactly `decluster` positions
        // away loses data, one at `decluster + 1` survives — and both
        // directions around the ring agree.
        tiger_sim::check::check("mirror_loss_window_boundary", |rng| {
            let cubs = rng.gen_range(4u32..40);
            let dpc = rng.gen_range(1u32..5);
            let disks = cubs * dpc;
            // Keep the ring at least 2d + 2 disks so the disk "d + 1
            // ahead" is also more than d behind — otherwise the window
            // wraps and the survival claim is vacuous.
            let d = rng.gen_range(1u32..=(disks - 2) / 2);
            let p = MirrorPlacement::new(StripeConfig::new(cubs, dpc, d));
            let first = DiskId(rng.gen_range(0u32..disks));

            let at = p.config().disk_after(first, d);
            assert!(
                !p.survives(&[first, at]),
                "cubs {cubs} dpc {dpc} d {d}: failure exactly d away must lose data"
            );
            let behind = p.config().disk_before(first, d);
            assert!(
                !p.survives(&[first, behind]),
                "cubs {cubs} dpc {dpc} d {d}: the window extends backward too"
            );
            let past = p.config().disk_after(first, d + 1);
            assert!(
                p.survives(&[first, past]),
                "cubs {cubs} dpc {dpc} d {d}: failure d+1 away must survive"
            );
        });
    }

    #[test]
    fn exposure_window_matches_piece_placement() {
        // `second_failure_exposure` is exactly the set of disks holding a
        // piece relation with the failed disk (either direction), and
        // piece placement never leaves that window.
        tiger_sim::check::check("mirror_exposure_matches_pieces", |rng| {
            let cubs = rng.gen_range(3u32..30);
            let dpc = rng.gen_range(1u32..4);
            let disks = cubs * dpc;
            let d = rng.gen_range(1u32..(disks / 2).max(2));
            let p = MirrorPlacement::new(StripeConfig::new(cubs, dpc, d));
            let failed = DiskId(rng.gen_range(0u32..disks));

            let exposed = p.second_failure_exposure(failed);
            for piece in p.pieces_for(failed, ByteSize::from_bytes(262_144)) {
                assert!(
                    exposed.contains(&piece.disk),
                    "piece holder {:?} outside the exposure window",
                    piece.disk
                );
            }
            for disk in 0..disks {
                let other = DiskId(disk);
                if other == failed {
                    continue;
                }
                let related = p.covers(other, failed) || p.covers(failed, other);
                assert_eq!(
                    exposed.contains(&other),
                    related,
                    "cubs {cubs} dpc {dpc} d {d}: exposure of {other} disagrees \
                     with piece placement"
                );
            }
        });
    }

    #[test]
    fn exposure_disks_exactly_fail_survival() {
        let p = place(20, 2, 3);
        let f = DiskId(17);
        let exposed = p.second_failure_exposure(f);
        for d in 0..p.config().num_disks() {
            let other = DiskId(d);
            if other == f {
                continue;
            }
            let survives = p.survives(&[f, other]);
            assert_eq!(
                survives,
                !exposed.contains(&other),
                "disk {other} exposure mismatch"
            );
        }
    }
}
