//! The file catalog: per-file metadata and block geometry (paper §2.2).
//!
//! "Files are broken up into blocks, which are pieces of equal duration. …
//! The duration of a block is called the 'block play time' … The block play
//! time is the same for every file in a particular Tiger system."
//!
//! In a *single bitrate* server all blocks are the same size and slower
//! files suffer internal fragmentation; in a *multiple bitrate* server block
//! sizes are proportional to the file bitrate (§2.2).

use tiger_sim::{Bandwidth, ByteSize, SimDuration};

use crate::ids::{BlockNum, DiskId, FileId};
use crate::stripe::{BlockLocation, StripeConfig};

/// Metadata for one content file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// The file's id.
    pub id: FileId,
    /// The encoded bitrate of the content.
    pub bitrate: Bandwidth,
    /// Number of blocks in the file.
    pub num_blocks: u32,
    /// On-disk size of each block (includes internal fragmentation in a
    /// single-bitrate system).
    pub block_size: ByteSize,
    /// Bytes of each block that carry content (`<= block_size`).
    pub payload_size: ByteSize,
    /// Disk holding block 0.
    pub start_disk: DiskId,
}

impl FileMeta {
    /// Bytes wasted per block to internal fragmentation.
    pub fn fragmentation_per_block(&self) -> ByteSize {
        self.block_size - self.payload_size
    }

    /// Total on-disk primary bytes for this file.
    pub fn primary_bytes(&self) -> ByteSize {
        self.block_size.mul_u64(u64::from(self.num_blocks))
    }
}

/// Whether the server sizes blocks for one fixed bitrate or per-file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BitrateMode {
    /// All blocks sized for `max_bitrate`; slower files fragment internally.
    Single,
    /// Block sizes proportional to each file's bitrate.
    Multiple,
}

/// The system-wide file catalog.
///
/// The catalog is replicated metadata: every cub and the controller hold an
/// identical copy (it is small — one record per file — and changes only on
/// content add/remove, not per-viewer).
#[derive(Clone, Debug)]
pub struct FileCatalog {
    cfg: StripeConfig,
    block_play_time: SimDuration,
    max_bitrate: Bandwidth,
    mode: BitrateMode,
    files: Vec<FileMeta>,
}

impl FileCatalog {
    /// Creates an empty catalog.
    ///
    /// # Panics
    ///
    /// Panics if `block_play_time` is zero or `max_bitrate` is zero.
    pub fn new(
        cfg: StripeConfig,
        block_play_time: SimDuration,
        max_bitrate: Bandwidth,
        mode: BitrateMode,
    ) -> Self {
        assert!(
            !block_play_time.is_zero(),
            "block play time must be nonzero"
        );
        assert!(!max_bitrate.is_zero(), "max bitrate must be nonzero");
        FileCatalog {
            cfg,
            block_play_time,
            max_bitrate,
            mode,
            files: Vec::new(),
        }
    }

    /// The striping configuration this catalog lays files out for.
    pub fn stripe_config(&self) -> StripeConfig {
        self.cfg
    }

    /// The system block play time.
    pub fn block_play_time(&self) -> SimDuration {
        self.block_play_time
    }

    /// The configured maximum bitrate.
    pub fn max_bitrate(&self) -> Bandwidth {
        self.max_bitrate
    }

    /// The bitrate mode.
    pub fn mode(&self) -> BitrateMode {
        self.mode
    }

    /// Adds a file of the given bitrate and play duration; returns its id.
    ///
    /// The number of blocks is `ceil(duration / block_play_time)` (the last
    /// block may be partially filled). The starting disk is chosen by the
    /// stripe config's deterministic hash.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate` exceeds the configured maximum, or if the file is
    /// empty.
    pub fn add_file(&mut self, bitrate: Bandwidth, duration: SimDuration) -> FileId {
        assert!(
            bitrate <= self.max_bitrate,
            "file bitrate {bitrate} exceeds system maximum {}",
            self.max_bitrate
        );
        assert!(!bitrate.is_zero(), "file bitrate must be nonzero");
        assert!(!duration.is_zero(), "file duration must be nonzero");
        let id = FileId(self.files.len() as u32);
        let num_blocks = u32::try_from(
            duration
                .as_nanos()
                .div_ceil(self.block_play_time.as_nanos()),
        )
        .expect("file too long");
        let payload_size = bitrate.bytes_in(self.block_play_time);
        let block_size = match self.mode {
            BitrateMode::Single => self.max_bitrate.bytes_in(self.block_play_time),
            BitrateMode::Multiple => payload_size,
        };
        let meta = FileMeta {
            id,
            bitrate,
            num_blocks,
            block_size,
            payload_size,
            start_disk: self.cfg.starting_disk(id),
        };
        self.files.push(meta);
        id
    }

    /// Looks up a file's metadata.
    pub fn get(&self, file: FileId) -> Option<&FileMeta> {
        self.files.get(file.index())
    }

    /// All files in the catalog.
    pub fn files(&self) -> &[FileMeta] {
        &self.files
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if the catalog has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// The primary location of `block` of `file`, or `None` for an unknown
    /// file or out-of-range block.
    pub fn locate(&self, file: FileId, block: BlockNum) -> Option<BlockLocation> {
        let meta = self.get(file)?;
        (block.raw() < meta.num_blocks).then(|| self.cfg.block_location(meta.start_disk, block))
    }

    /// Re-derives every file's layout for a new stripe configuration (the
    /// cut-over step of a restripe). File ids, block counts, and block
    /// sizes are untouched; only the starting disks move — exactly the
    /// derivation `RestripePlan::plan` uses for its target layout, so the
    /// catalog after `restripe(new)` locates every block at the plan's
    /// `to` disk.
    pub fn restripe(&mut self, new: StripeConfig) {
        self.cfg = new;
        for meta in &mut self.files {
            meta.start_disk = new.starting_disk(meta.id);
        }
    }

    /// Total primary bytes across all files.
    pub fn total_primary_bytes(&self) -> ByteSize {
        self.files
            .iter()
            .fold(ByteSize::ZERO, |acc, f| acc + f.primary_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sosp_catalog(mode: BitrateMode) -> FileCatalog {
        FileCatalog::new(
            StripeConfig::new(14, 4, 4),
            SimDuration::from_secs(1),
            Bandwidth::from_mbit_per_sec(2),
            mode,
        )
    }

    #[test]
    fn one_hour_file_has_3600_blocks() {
        let mut c = sosp_catalog(BitrateMode::Single);
        let f = c.add_file(
            Bandwidth::from_mbit_per_sec(2),
            SimDuration::from_secs(3600),
        );
        let meta = c.get(f).expect("file exists");
        assert_eq!(meta.num_blocks, 3600);
        // 2 Mbit/s for 1 s = 250,000 bytes (decimal Mbit).
        assert_eq!(meta.block_size.as_bytes(), 250_000);
        assert_eq!(meta.fragmentation_per_block().as_bytes(), 0);
    }

    #[test]
    fn partial_trailing_block_rounds_up() {
        let mut c = sosp_catalog(BitrateMode::Single);
        let f = c.add_file(
            Bandwidth::from_mbit_per_sec(2),
            SimDuration::from_millis(2500),
        );
        assert_eq!(c.get(f).expect("exists").num_blocks, 3);
    }

    #[test]
    fn single_bitrate_fragments_slow_files() {
        let mut c = sosp_catalog(BitrateMode::Single);
        let f = c.add_file(Bandwidth::from_mbit_per_sec(1), SimDuration::from_secs(10));
        let meta = c.get(f).expect("exists");
        assert_eq!(meta.block_size.as_bytes(), 250_000);
        assert_eq!(meta.payload_size.as_bytes(), 125_000);
        assert_eq!(meta.fragmentation_per_block().as_bytes(), 125_000);
    }

    #[test]
    fn multiple_bitrate_sizes_blocks_proportionally() {
        let mut c = sosp_catalog(BitrateMode::Multiple);
        let f1 = c.add_file(Bandwidth::from_mbit_per_sec(1), SimDuration::from_secs(10));
        let f2 = c.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(10));
        let b1 = c.get(f1).expect("exists").block_size.as_bytes();
        let b2 = c.get(f2).expect("exists").block_size.as_bytes();
        assert_eq!(b2, 2 * b1);
        assert_eq!(
            c.get(f1)
                .expect("exists")
                .fragmentation_per_block()
                .as_bytes(),
            0
        );
    }

    #[test]
    fn locate_walks_the_stripe() {
        let mut c = sosp_catalog(BitrateMode::Single);
        let f = c.add_file(
            Bandwidth::from_mbit_per_sec(2),
            SimDuration::from_secs(3600),
        );
        let start = c.get(f).expect("exists").start_disk;
        let loc0 = c.locate(f, BlockNum(0)).expect("in range");
        let loc1 = c.locate(f, BlockNum(1)).expect("in range");
        assert_eq!(loc0.disk, start);
        assert_eq!(loc1.disk, c.stripe_config().disk_after(start, 1));
        assert_eq!(c.locate(f, BlockNum(3600)), None);
        assert_eq!(c.locate(FileId(99), BlockNum(0)), None);
    }

    #[test]
    fn sosp_capacity_sixtyfour_hours() {
        // §5: "capable of storing slightly more than 64 hours of content at
        // 2 Mbit/s" on 56 × 2.5 GB disks (primaries use half of each disk).
        let mut c = sosp_catalog(BitrateMode::Single);
        for _ in 0..64 {
            c.add_file(
                Bandwidth::from_mbit_per_sec(2),
                SimDuration::from_secs(3600),
            );
        }
        let total = c.total_primary_bytes();
        // 64 h at 2 Mbit/s = 57.6 GB of primary content, which fits in half
        // of 56 × 2.5 GB = 70 GB with mirrors in the other half.
        assert_eq!(total.as_bytes(), 64 * 3600 * 250_000);
        assert!(total.as_bytes() <= 56 * 2_500_000_000 / 2 * 10 / 10);
    }

    #[test]
    #[should_panic(expected = "exceeds system maximum")]
    fn overfast_file_rejected() {
        let mut c = sosp_catalog(BitrateMode::Single);
        c.add_file(Bandwidth::from_mbit_per_sec(3), SimDuration::from_secs(10));
    }
}
