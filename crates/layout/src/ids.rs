//! Identifier newtypes shared across the Tiger reproduction.
//!
//! These are deliberately plain `u32`/`u64` wrappers: they exist to stop a
//! disk number from being passed where a cub number is expected, which is a
//! real hazard in a codebase where both advance around the same ring.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $raw:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $raw);

        impl $name {
            /// The raw numeric value.
            pub const fn raw(self) -> $raw {
                self.0
            }

            /// The value as a `usize` for indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }

        impl From<$raw> for $name {
            fn from(v: $raw) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A disk, numbered in cub-minor order across the whole system (§2.2).
    DiskId, u32, "disk"
);
id_type!(
    /// A cub (content machine).
    CubId, u32, "cub"
);
id_type!(
    /// A content file.
    FileId, u32, "file"
);
id_type!(
    /// A block number within a file (block 0 is the first block).
    BlockNum, u32, "blk"
);
id_type!(
    /// A viewer (client stream). Each *instance* of a play request gets a
    /// distinct viewer instance number; see
    /// [`crate::ids::ViewerInstance`].
    ViewerId, u64, "viewer"
);

/// A specific play-request instance of a viewer.
///
/// §4.1.2: the semantics of a deschedule are "if this *instance* of viewer
/// is in this schedule slot, remove the viewer" — a viewer that stops and
/// immediately restarts must not have its new schedule entry killed by the
/// old deschedule, so the instance number participates in matching.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ViewerInstance {
    /// The viewer.
    pub viewer: ViewerId,
    /// Monotonic per-viewer play-request number.
    pub incarnation: u32,
}

impl fmt::Display for ViewerInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.viewer, self.incarnation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefixes() {
        assert_eq!(format!("{}", DiskId(3)), "disk3");
        assert_eq!(format!("{}", CubId(0)), "cub0");
        assert_eq!(format!("{:?}", FileId(12)), "file12");
        assert_eq!(
            format!(
                "{}",
                ViewerInstance {
                    viewer: ViewerId(5),
                    incarnation: 2
                }
            ),
            "viewer5#2"
        );
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(DiskId(1) < DiskId(2));
        assert_eq!(DiskId(7).index(), 7usize);
        assert_eq!(BlockNum::from(9u32).raw(), 9);
    }

    #[test]
    fn viewer_instances_distinguish_incarnations() {
        let a = ViewerInstance {
            viewer: ViewerId(1),
            incarnation: 0,
        };
        let b = ViewerInstance {
            viewer: ViewerId(1),
            incarnation: 1,
        };
        assert_ne!(a, b);
    }
}
