//! The pluggable redundancy backend: what a block's secondary data is,
//! where it lives, and which failure sets lose data.
//!
//! The paper's Tiger has exactly one scheme — declustered mirroring
//! (§2.3, [`crate::mirror::MirrorPlacement`]) — where each degraded read
//! is pinned to the single disk holding the right mirror piece. The
//! [`Redundancy`] trait abstracts the three questions the rest of the
//! system asks of a scheme so a network-coded backend (`tiger-coded`)
//! can answer them differently:
//!
//! 1. how many bytes of the block live in the *primary* region of the
//!    home disk ([`Redundancy::primary_size`]),
//! 2. which extra pieces live in *secondary* regions of which disks
//!    ([`Redundancy::secondary_pieces`]), and
//! 3. which sets of simultaneous disk failures still leave every block
//!    recoverable ([`Redundancy::survives`]).
//!
//! Both backends cost the same storage — `2 × block_size` per block
//! ([`Redundancy::bytes_per_block`] asserts it in tests) — which is what
//! makes the coded-vs-mirrored blocking-probability ablation an
//! equal-overhead comparison.

use tiger_sim::ByteSize;

use crate::ids::DiskId;
use crate::mirror::{MirrorPiece, MirrorPlacement};
use crate::stripe::StripeConfig;

/// Which redundancy backend a Tiger system runs.
///
/// The mode is part of the system configuration (like the decluster
/// factor): every cub derives the same layout from it, nothing about it
/// is negotiated at run time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RedundancyMode {
    /// Declustered mirroring (paper §2.3): one full secondary copy, split
    /// into `decluster` pieces on the disks after the primary.
    #[default]
    Mirrored,
    /// Systematic MDS network coding (`tiger-coded`): the block becomes
    /// `2k` shards (`k = decluster`) of `ceil(block/k)` bytes, any `k` of
    /// which reconstruct it, spread over the `2k` disks starting at the
    /// home disk.
    Coded,
}

impl RedundancyMode {
    /// Stable lowercase name, used in reports and config dumps.
    pub fn name(self) -> &'static str {
        match self {
            RedundancyMode::Mirrored => "mirrored",
            RedundancyMode::Coded => "coded",
        }
    }
}

/// A redundancy backend's answers to the layout-level questions.
///
/// Implementations must be pure functions of `(StripeConfig, block_size)`
/// — every cub computes placement independently and they must agree.
pub trait Redundancy {
    /// Which backend this is.
    fn mode(&self) -> RedundancyMode;

    /// Bytes of the block stored in the home disk's *primary* region.
    ///
    /// Mirroring stores the whole block there; the coded backend stores
    /// only the first (systematic) shard.
    fn primary_size(&self, block_size: ByteSize) -> ByteSize;

    /// The pieces stored beyond the primary extent, in piece order.
    ///
    /// `piece` numbers are backend-local: mirror pieces `0..decluster` on
    /// the disks after the home; coded shards `1..2k` (shard 0 *is* the
    /// primary extent).
    fn secondary_pieces(&self, home: DiskId, block_size: ByteSize) -> Vec<MirrorPiece>;

    /// Whether every block survives this set of simultaneous disk
    /// failures (i.e. remains reconstructable from surviving pieces).
    fn survives(&self, failed: &[DiskId]) -> bool;

    /// Total stored bytes per block: primary extent plus all secondary
    /// pieces. Both in-tree backends come to exactly `2 × block_size`.
    fn bytes_per_block(&self, block_size: ByteSize) -> ByteSize {
        let secondary: u64 = self
            .secondary_pieces(DiskId(0), block_size)
            .iter()
            .map(|p| p.size.as_bytes())
            .sum();
        ByteSize::from_bytes(self.primary_size(block_size).as_bytes() + secondary)
    }
}

/// The paper's declustered-mirroring backend, wrapping
/// [`MirrorPlacement`].
#[derive(Clone, Copy, Debug)]
pub struct Mirrored {
    placement: MirrorPlacement,
}

impl Mirrored {
    /// Creates the mirrored backend for `cfg`.
    pub fn new(cfg: StripeConfig) -> Self {
        Mirrored {
            placement: MirrorPlacement::new(cfg),
        }
    }

    /// The underlying placement helper.
    pub fn placement(&self) -> &MirrorPlacement {
        &self.placement
    }
}

impl Redundancy for Mirrored {
    fn mode(&self) -> RedundancyMode {
        RedundancyMode::Mirrored
    }

    fn primary_size(&self, block_size: ByteSize) -> ByteSize {
        block_size
    }

    fn secondary_pieces(&self, home: DiskId, block_size: ByteSize) -> Vec<MirrorPiece> {
        self.placement.pieces_for(home, block_size)
    }

    fn survives(&self, failed: &[DiskId]) -> bool {
        self.placement.survives(failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrored_backend_matches_mirror_placement() {
        let cfg = StripeConfig::new(14, 4, 4);
        let m = Mirrored::new(cfg);
        assert_eq!(m.mode(), RedundancyMode::Mirrored);
        let b = ByteSize::from_bytes(250_000);
        assert_eq!(m.primary_size(b), b);
        assert_eq!(
            m.secondary_pieces(DiskId(10), b),
            MirrorPlacement::new(cfg).pieces_for(DiskId(10), b)
        );
        assert!(m.survives(&[DiskId(0), DiskId(7)]));
        assert!(!m.survives(&[DiskId(0), DiskId(4)]));
    }

    #[test]
    fn mirrored_overhead_is_exactly_two_blocks() {
        for size in [1u64, 100, 250_000, 250_001] {
            let m = Mirrored::new(StripeConfig::new(14, 4, 4));
            let b = ByteSize::from_bytes(size);
            assert_eq!(m.bytes_per_block(b).as_bytes(), 2 * size, "size {size}");
        }
    }

    #[test]
    fn mode_names_are_stable() {
        assert_eq!(RedundancyMode::Mirrored.name(), "mirrored");
        assert_eq!(RedundancyMode::Coded.name(), "coded");
        assert_eq!(RedundancyMode::default(), RedundancyMode::Mirrored);
    }
}
