//! File data layout for the Tiger reproduction (paper §2.2–§2.3).
//!
//! Every Tiger file is striped across every disk and every cub. Disks are
//! numbered in *cub-minor* order (disk 0 on cub 0, disk 1 on cub 1, …), a
//! file's blocks advance one disk per block, and each block's mirror copy is
//! declustered into `decluster` pieces stored on the disks immediately
//! following the primary. This crate implements that layout as pure,
//! exhaustively-tested functions, plus the per-cub in-memory block index
//! (§4.1.1), the primary/secondary disk-region allocator (§2.3's
//! outer-track optimization), and the restriper (§2.2).

pub mod catalog;
pub mod ids;
pub mod index;
pub mod mirror;
pub mod redundancy;
pub mod restripe;
pub mod space;
pub mod stripe;

pub use catalog::{FileCatalog, FileMeta};
pub use ids::{BlockNum, CubId, DiskId, FileId, ViewerId};
pub use index::{BlockIndex, IndexEntry, IndexError};
pub use mirror::{MirrorPiece, MirrorPlacement};
pub use redundancy::{Mirrored, Redundancy, RedundancyMode};
pub use restripe::{RestripePlan, RestripeStats};
pub use space::{DiskRegion, DiskSpace, SpaceError};
pub use stripe::{BlockLocation, StripeConfig};
