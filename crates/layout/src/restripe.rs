//! Restriping: moving content when cubs or disks are added/removed
//! (paper §2.2).
//!
//! "One disadvantage of striping across all disks is that changing the
//! system configuration … requires changing the layout of all of the files
//! and all of the disks. Tiger includes software to update (or 're-stripe')
//! from one configuration to another. Because of the switched network
//! between the cubs, the time to restripe a system does not depend on the
//! size of the system, but only on the size and speed of the cubs and their
//! disks."
//!
//! The planner computes, for every block of every file, its primary disk in
//! the old and new configurations, and emits the minimal set of moves. The
//! estimator then exposes the paper's scaling property: estimated restripe
//! time is governed by the *per-disk* byte volume, which is invariant in
//! system size for a proportionally scaled catalog.

use std::collections::HashMap;

use tiger_sim::{Bandwidth, ByteSize, SimDuration};

use crate::catalog::FileCatalog;
use crate::ids::{BlockNum, DiskId, FileId};
use crate::stripe::StripeConfig;

/// One block that must move between disks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMove {
    /// The file being moved.
    pub file: FileId,
    /// The block within the file.
    pub block: BlockNum,
    /// Where the primary lives in the old configuration.
    pub from: DiskId,
    /// Where the primary lives in the new configuration.
    pub to: DiskId,
    /// Block size in bytes.
    pub size: ByteSize,
}

/// A full restriping plan between two configurations.
#[derive(Clone, Debug)]
pub struct RestripePlan {
    old: StripeConfig,
    new: StripeConfig,
    moves: Vec<BlockMove>,
    stationary_blocks: u64,
    total_blocks: u64,
}

/// Aggregate statistics for a restriping plan.
#[derive(Clone, Debug, PartialEq)]
pub struct RestripeStats {
    /// Blocks that change disks.
    pub moved_blocks: u64,
    /// Blocks that stay put.
    pub stationary_blocks: u64,
    /// Total bytes read from source disks.
    pub bytes_moved: ByteSize,
    /// The largest per-disk byte volume (read + write) any single disk must
    /// handle; this, not system size, bounds restripe time.
    pub max_disk_bytes: ByteSize,
    /// The largest per-cub byte volume crossing any cub's NIC.
    pub max_cub_nic_bytes: ByteSize,
}

impl RestripePlan {
    /// Plans the restripe of every file in `catalog` from `old` to `new`.
    ///
    /// New starting disks are re-derived with the new configuration's hash,
    /// as the real restriper re-lays-out every file.
    pub fn plan(catalog: &FileCatalog, old: StripeConfig, new: StripeConfig) -> Self {
        let mut moves = Vec::new();
        let mut stationary = 0u64;
        let mut total = 0u64;
        for meta in catalog.files() {
            let old_start = meta.start_disk;
            let new_start = new.starting_disk(meta.id);
            for b in 0..meta.num_blocks {
                total += 1;
                let from = old.block_location(old_start, BlockNum(b)).disk;
                let to = new.block_location(new_start, BlockNum(b)).disk;
                if from == to {
                    stationary += 1;
                } else {
                    moves.push(BlockMove {
                        file: meta.id,
                        block: BlockNum(b),
                        from,
                        to,
                        size: meta.block_size,
                    });
                }
            }
        }
        RestripePlan {
            old,
            new,
            moves,
            stationary_blocks: stationary,
            total_blocks: total,
        }
    }

    /// The individual moves.
    pub fn moves(&self) -> &[BlockMove] {
        &self.moves
    }

    /// The old configuration.
    pub fn old_config(&self) -> StripeConfig {
        self.old
    }

    /// The new configuration.
    pub fn new_config(&self) -> StripeConfig {
        self.new
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> RestripeStats {
        let mut disk_bytes: HashMap<DiskId, u64> = HashMap::new();
        let mut cub_bytes: HashMap<(bool, u32), u64> = HashMap::new();
        let mut moved = ByteSize::ZERO;
        for m in &self.moves {
            moved += m.size;
            *disk_bytes.entry(m.from).or_insert(0) += m.size.as_bytes();
            *disk_bytes.entry(m.to).or_insert(0) += m.size.as_bytes();
            // NIC traffic: reads leave the old cub, writes enter the new cub.
            // Old and new configurations may have different cub counts, so
            // key by (is_new, cub id).
            let src_cub = self.old.cub_of(m.from);
            let dst_cub = self.new.cub_of(m.to);
            *cub_bytes.entry((false, src_cub.raw())).or_insert(0) += m.size.as_bytes();
            *cub_bytes.entry((true, dst_cub.raw())).or_insert(0) += m.size.as_bytes();
        }
        RestripeStats {
            moved_blocks: self.moves.len() as u64,
            stationary_blocks: self.stationary_blocks,
            bytes_moved: moved,
            max_disk_bytes: ByteSize::from_bytes(disk_bytes.values().copied().max().unwrap_or(0)),
            max_cub_nic_bytes: ByteSize::from_bytes(cub_bytes.values().copied().max().unwrap_or(0)),
        }
    }

    /// Total blocks considered.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Estimates the wall time of the restripe: every disk streams its
    /// moved bytes at `disk_bandwidth` and every cub NIC its crossing bytes
    /// at `nic_bandwidth`, all in parallel. The bottleneck resource sets
    /// the duration — which is why restripe time does not grow with system
    /// size (§2.2).
    pub fn estimate_duration(
        &self,
        disk_bandwidth: Bandwidth,
        nic_bandwidth: Bandwidth,
    ) -> SimDuration {
        let stats = self.stats();
        let disk_time = disk_bandwidth.time_to_move(stats.max_disk_bytes);
        let nic_time = nic_bandwidth.time_to_move(stats.max_cub_nic_bytes);
        disk_time.max(nic_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::BitrateMode;
    use tiger_sim::SimDuration;

    fn catalog_for(cfg: StripeConfig, files: u32, secs: u64) -> FileCatalog {
        let mut c = FileCatalog::new(
            cfg,
            SimDuration::from_secs(1),
            Bandwidth::from_mbit_per_sec(2),
            BitrateMode::Single,
        );
        for _ in 0..files {
            c.add_file(
                Bandwidth::from_mbit_per_sec(2),
                SimDuration::from_secs(secs),
            );
        }
        c
    }

    #[test]
    fn identity_restripe_moves_little() {
        let cfg = StripeConfig::new(4, 2, 2);
        let catalog = catalog_for(cfg, 4, 64);
        let plan = RestripePlan::plan(&catalog, cfg, cfg);
        // Same config and same hash: starting disks are identical, so no
        // block moves at all.
        assert_eq!(plan.stats().moved_blocks, 0);
        assert_eq!(plan.stats().stationary_blocks, plan.total_blocks());
    }

    #[test]
    fn adding_a_cub_moves_most_blocks() {
        let old = StripeConfig::new(4, 2, 2);
        let new = StripeConfig::new(5, 2, 2);
        let catalog = catalog_for(old, 4, 64);
        let plan = RestripePlan::plan(&catalog, old, new);
        let stats = plan.stats();
        // Changing the ring size remaps most blocks (empirically ~77% for
        // this 8-disk → 10-disk case; small rings have frequent accidental
        // coincidences between the two modular walks).
        assert!(stats.moved_blocks > plan.total_blocks() * 6 / 10);
        assert_eq!(
            stats.moved_blocks + stats.stationary_blocks,
            plan.total_blocks()
        );
        assert_eq!(stats.bytes_moved.as_bytes(), stats.moved_blocks * 250_000);
    }

    #[test]
    fn per_disk_volume_is_size_invariant() {
        // The paper's claim: restripe time depends on per-cub content, not
        // system size. Doubling cubs *and* files (same per-disk content)
        // keeps the per-disk byte volume in the same band.
        let small_old = StripeConfig::new(4, 2, 2);
        let small_new = StripeConfig::new(5, 2, 2);
        let big_old = StripeConfig::new(8, 2, 2);
        let big_new = StripeConfig::new(10, 2, 2);
        let small_plan = RestripePlan::plan(&catalog_for(small_old, 8, 64), small_old, small_new);
        let big_plan = RestripePlan::plan(&catalog_for(big_old, 16, 64), big_old, big_new);
        let small_disk = small_plan.stats().max_disk_bytes.as_bytes() as f64;
        let big_disk = big_plan.stats().max_disk_bytes.as_bytes() as f64;
        let ratio = big_disk / small_disk;
        assert!(
            (0.5..2.0).contains(&ratio),
            "per-disk volume should not scale with system size: ratio {ratio}"
        );
    }

    #[test]
    fn duration_estimate_uses_bottleneck() {
        let old = StripeConfig::new(4, 2, 2);
        let new = StripeConfig::new(5, 2, 2);
        let catalog = catalog_for(old, 4, 64);
        let plan = RestripePlan::plan(&catalog, old, new);
        let slow_disk = plan.estimate_duration(
            Bandwidth::from_mbit_per_sec(10),
            Bandwidth::from_mbit_per_sec(1000),
        );
        let slow_nic = plan.estimate_duration(
            Bandwidth::from_mbit_per_sec(1000),
            Bandwidth::from_mbit_per_sec(10),
        );
        let fast = plan.estimate_duration(
            Bandwidth::from_mbit_per_sec(1000),
            Bandwidth::from_mbit_per_sec(1000),
        );
        assert!(slow_disk > fast);
        assert!(slow_nic > fast);
    }
}
