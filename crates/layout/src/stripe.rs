//! Cub-minor striping (paper §2.2).
//!
//! "Tiger numbers its disks in cub-minor order: Disk 0 is on cub 0, disk 1
//! is on cub 1, disk n is on cub 0, disk n+1 is on cub 1 and so forth,
//! assuming that there are n cubs in the system. … For each file, a
//! starting disk is selected in some manner, the first block of the file is
//! placed on that disk, the next block is placed on the succeeding disk and
//! so on."

use crate::ids::{BlockNum, CubId, DiskId, FileId};

/// The static striping configuration of a Tiger system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeConfig {
    /// Number of cubs (content machines).
    pub num_cubs: u32,
    /// Number of disks attached to each cub.
    pub disks_per_cub: u32,
    /// Decluster factor: how many pieces each block's mirror is split into
    /// (§2.3).
    pub decluster: u32,
}

/// Where one block of one file lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockLocation {
    /// The disk holding the primary copy.
    pub disk: DiskId,
    /// The cub hosting that disk.
    pub cub: CubId,
}

impl StripeConfig {
    /// Creates a configuration, validating basic sanity.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, or if the decluster factor is not
    /// smaller than the number of disks (a mirror piece must never land back
    /// on the primary's disk).
    pub fn new(num_cubs: u32, disks_per_cub: u32, decluster: u32) -> Self {
        assert!(num_cubs > 0, "need at least one cub");
        assert!(disks_per_cub > 0, "need at least one disk per cub");
        assert!(decluster > 0, "decluster factor must be at least 1");
        let cfg = StripeConfig {
            num_cubs,
            disks_per_cub,
            decluster,
        };
        assert!(
            decluster < cfg.num_disks(),
            "decluster factor {} must be < total disks {}",
            decluster,
            cfg.num_disks()
        );
        cfg
    }

    /// Total number of disks in the system.
    pub fn num_disks(&self) -> u32 {
        self.num_cubs * self.disks_per_cub
    }

    /// The cub hosting `disk` (cub-minor numbering).
    pub fn cub_of(&self, disk: DiskId) -> CubId {
        debug_assert!(disk.raw() < self.num_disks());
        CubId(disk.raw() % self.num_cubs)
    }

    /// The ordinal of `disk` among its cub's local disks (0-based).
    pub fn local_index_of(&self, disk: DiskId) -> u32 {
        debug_assert!(disk.raw() < self.num_disks());
        disk.raw() / self.num_cubs
    }

    /// The system-wide disk id of the cub's `local`-th disk.
    pub fn disk_of(&self, cub: CubId, local: u32) -> DiskId {
        debug_assert!(cub.raw() < self.num_cubs && local < self.disks_per_cub);
        DiskId(local * self.num_cubs + cub.raw())
    }

    /// All disks hosted by `cub`, in local order.
    pub fn disks_of_cub(&self, cub: CubId) -> impl Iterator<Item = DiskId> + '_ {
        let cub = cub.raw();
        (0..self.disks_per_cub).map(move |l| DiskId(l * self.num_cubs + cub))
    }

    /// The disk `steps` positions after `disk` around the striping ring.
    pub fn disk_after(&self, disk: DiskId, steps: u32) -> DiskId {
        debug_assert!(disk.raw() < self.num_disks());
        DiskId((disk.raw() + steps) % self.num_disks())
    }

    /// The disk `steps` positions before `disk` around the striping ring.
    pub fn disk_before(&self, disk: DiskId, steps: u32) -> DiskId {
        debug_assert!(disk.raw() < self.num_disks());
        let n = self.num_disks();
        DiskId((disk.raw() + n - steps % n) % n)
    }

    /// The cub `steps` positions after `cub` around the cub ring.
    pub fn cub_after(&self, cub: CubId, steps: u32) -> CubId {
        debug_assert!(cub.raw() < self.num_cubs);
        CubId((cub.raw() + steps) % self.num_cubs)
    }

    /// The cub `steps` positions before `cub` around the cub ring.
    pub fn cub_before(&self, cub: CubId, steps: u32) -> CubId {
        debug_assert!(cub.raw() < self.num_cubs);
        let n = self.num_cubs;
        CubId((cub.raw() + n - steps % n) % n)
    }

    /// The primary location of block `block` of a file whose first block is
    /// on `start_disk`.
    pub fn block_location(&self, start_disk: DiskId, block: BlockNum) -> BlockLocation {
        debug_assert!(start_disk.raw() < self.num_disks());
        let disk = DiskId(
            ((start_disk.raw() as u64 + block.raw() as u64) % self.num_disks() as u64) as u32,
        );
        BlockLocation {
            disk,
            cub: self.cub_of(disk),
        }
    }

    /// The ring distance from `from` to `to` measured forward (in disks).
    pub fn ring_distance(&self, from: DiskId, to: DiskId) -> u32 {
        let n = self.num_disks();
        (to.raw() + n - from.raw()) % n
    }

    /// A deterministic starting disk for a new file, chosen by a simple
    /// multiplicative hash of the file id ("a starting disk is selected in
    /// some manner").
    pub fn starting_disk(&self, file: FileId) -> DiskId {
        let h = (file.raw() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        DiskId((h % self.num_disks() as u64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sosp() -> StripeConfig {
        // The §5 testbed: 14 cubs, 4 disks each, decluster 4.
        StripeConfig::new(14, 4, 4)
    }

    #[test]
    fn cub_minor_numbering_matches_paper() {
        let cfg = StripeConfig::new(3, 2, 1);
        // Disk 0 on cub 0, disk 1 on cub 1, disk 2 on cub 2, disk 3 (=n) on
        // cub 0 again.
        assert_eq!(cfg.cub_of(DiskId(0)), CubId(0));
        assert_eq!(cfg.cub_of(DiskId(1)), CubId(1));
        assert_eq!(cfg.cub_of(DiskId(3)), CubId(0));
        assert_eq!(cfg.local_index_of(DiskId(3)), 1);
        assert_eq!(cfg.disk_of(CubId(0), 1), DiskId(3));
    }

    #[test]
    fn disks_of_cub_roundtrip() {
        let cfg = sosp();
        for cub in 0..cfg.num_cubs {
            for disk in cfg.disks_of_cub(CubId(cub)) {
                assert_eq!(cfg.cub_of(disk), CubId(cub));
            }
        }
        // Every disk appears exactly once across all cubs.
        let mut seen = vec![false; cfg.num_disks() as usize];
        for cub in 0..cfg.num_cubs {
            for disk in cfg.disks_of_cub(CubId(cub)) {
                assert!(!seen[disk.index()], "duplicate {disk}");
                seen[disk.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn blocks_advance_one_disk_per_block_and_wrap() {
        let cfg = sosp();
        let start = DiskId(54);
        let n = cfg.num_disks();
        for b in 0..3 * n {
            let loc = cfg.block_location(start, BlockNum(b));
            assert_eq!(loc.disk.raw(), (54 + b) % n);
            assert_eq!(loc.cub, cfg.cub_of(loc.disk));
        }
    }

    #[test]
    fn successive_blocks_visit_every_disk_once_per_lap() {
        let cfg = sosp();
        let start = cfg.starting_disk(FileId(9));
        let n = cfg.num_disks();
        let mut seen = vec![0u32; n as usize];
        for b in 0..n {
            seen[cfg.block_location(start, BlockNum(b)).disk.index()] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "one block per disk per lap");
    }

    #[test]
    fn ring_math_is_inverse() {
        let cfg = sosp();
        for d in 0..cfg.num_disks() {
            for s in 0..cfg.num_disks() * 2 {
                let fwd = cfg.disk_after(DiskId(d), s);
                assert_eq!(cfg.disk_before(fwd, s), DiskId(d));
            }
        }
        assert_eq!(cfg.ring_distance(DiskId(55), DiskId(1)), 2);
        assert_eq!(cfg.cub_before(CubId(0), 1), CubId(13));
    }

    #[test]
    fn starting_disks_spread_out() {
        let cfg = sosp();
        let mut counts = vec![0u32; cfg.num_disks() as usize];
        for f in 0..560 {
            counts[cfg.starting_disk(FileId(f)).index()] += 1;
        }
        // With 560 files over 56 disks a perfectly even spread is 10 each;
        // the multiplicative hash should stay within a loose band.
        assert!(counts.iter().all(|&c| c >= 2 && c <= 30), "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "decluster factor")]
    fn decluster_must_fit_ring() {
        StripeConfig::new(2, 1, 2);
    }
}
