//! Micro-benchmarks for the schedule-management primitives.
//!
//! §5's premise: "The amount of work done to implement the Tiger schedule
//! is small relative to the work needed to move megabytes of data per
//! second from the disk to the network. … the speed of the schedule
//! management operations is of little consequence." These benches put
//! numbers on that: every operation is sub-microsecond to a few
//! microseconds, vastly cheaper than a 40+ ms disk read.
//!
//! Runs under the in-tree `tiger_bench::runner` (criterion replaced in-tree
//! so the workspace builds offline): a human table on stderr, a JSON
//! document on stdout for the `BENCH_*.json` trajectory. Filter by
//! substring: `cargo bench --bench micro -- view`.

use tiger_bench::runner::{black_box, Runner};

use tiger_layout::ids::ViewerInstance;
use tiger_layout::{BlockNum, DiskId, FileId, MirrorPlacement, StripeConfig, ViewerId};
use tiger_sched::{
    Deschedule, NetworkSchedule, ScheduleParams, ScheduleView, SlotId, StreamKind, ViewerState,
};
use tiger_sim::EventQueue;
use tiger_sim::{Bandwidth, ByteSize, SimDuration, SimTime};

fn sosp_params() -> ScheduleParams {
    ScheduleParams::derive(
        StripeConfig::new(14, 4, 4),
        SimDuration::from_secs(1),
        ByteSize::from_bytes(250_000),
        SimDuration::from_nanos(92_954_226),
        Bandwidth::from_mbit_per_sec(135),
    )
}

fn vs(slot: u32, viewer: u64, play_seq: u32) -> ViewerState {
    ViewerState {
        instance: ViewerInstance {
            viewer: ViewerId(viewer),
            incarnation: 0,
        },
        client: 1,
        file: FileId(3),
        position: BlockNum(play_seq),
        slot: SlotId(slot),
        play_seq,
        bitrate: Bandwidth::from_mbit_per_sec(2),
        kind: StreamKind::Primary,
    }
}

fn bench_slot_math(c: &mut Runner) {
    let p = sosp_params();
    c.bench_function("slot_math/slot_send_time", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % p.capacity();
            black_box(p.slot_send_time(DiskId(i % 56), SlotId(i), SimTime::from_secs(1_000)))
        })
    });
    c.bench_function("slot_math/owner_of_slot", |b| {
        let mut t = SimTime::from_secs(500);
        b.iter(|| {
            t += SimDuration::from_micros(37);
            black_box(p.owner_of_slot(SlotId(301), t))
        })
    });
    c.bench_function("slot_math/owned_slot_range", |b| {
        let mut t = SimTime::from_secs(500);
        b.iter(|| {
            t += SimDuration::from_micros(37);
            black_box(p.owned_slot_range(DiskId(7), t))
        })
    });
}

fn bench_view_ops(c: &mut Runner) {
    c.bench_function("view/apply_viewer_state_fresh", |b| {
        let mut view = ScheduleView::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let record = vs((i % 602) as u32, i, 0);
            black_box(view.apply_viewer_state(record, SimTime::ZERO));
            view.retire(record.slot, &record);
        })
    });
    c.bench_function("view/apply_duplicate", |b| {
        let mut view = ScheduleView::new();
        // Populate a realistic window of ~40 slots.
        for s in 0..40 {
            view.apply_viewer_state(vs(s, u64::from(s), 5), SimTime::ZERO);
        }
        let dup = vs(17, 17, 5);
        b.iter(|| black_box(view.apply_viewer_state(dup, SimTime::ZERO)))
    });
    c.bench_function("view/apply_deschedule", |b| {
        let mut view = ScheduleView::new();
        let d = Deschedule {
            instance: ViewerInstance {
                viewer: ViewerId(9),
                incarnation: 0,
            },
            slot: SlotId(9),
        };
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(view.apply_deschedule(
                d,
                SimTime::from_millis(t),
                SimTime::from_millis(t + 3_000),
            ))
        })
    });
}

fn bench_rejoin(c: &mut Runner) {
    // A rejoined cub restarts with an empty schedule view and re-learns
    // its slots from the hand-back batch its ring neighbors and covering
    // successor relay — one §4.1.3 ownership insertion per state. This
    // is the whole CPU cost of a rejoin re-plan: a schedule's worth of
    // fresh insertions into an empty view.
    c.bench_function("recovery/rejoin_replan", |b| {
        let states: Vec<ViewerState> = (0..60u64)
            .map(|i| vs(((i * 10) % 602) as u32, i, 3))
            .collect();
        b.iter(|| {
            let mut view = ScheduleView::new();
            for s in &states {
                black_box(view.apply_viewer_state(*s, SimTime::ZERO));
            }
            view.len()
        })
    });
    // The predecessor's side of the sub-interval rejoin: reduce a full
    // retained window of the retired log (several sightings per viewer)
    // to the replay batch — newest-sighting dedup, gap-bridge skip
    // arithmetic, and the ownership filter per entry. Paid once per
    // rejoin, against the whole log, so it is the one retired-log path
    // that is O(log) rather than O(1).
    c.bench_function("recovery/retired_replay", |b| {
        let bpt = SimDuration::from_secs(1);
        // ~7 s of service history for 60 viewers on a 14-cub ring: one
        // sighting per viewer per second, in service order.
        let retired: Vec<(SimTime, ViewerState)> = (0..420u64)
            .map(|i| {
                let at = SimTime::from_millis(i * 1_000 / 60);
                (at, vs(((i * 10) % 602) as u32, i % 60, (i / 60) as u32))
            })
            .collect();
        let now = SimTime::from_secs(9);
        let horizon = SimDuration::from_secs(2);
        b.iter(|| {
            black_box(tiger_core::recovery::replay_batch(
                &retired,
                now,
                bpt,
                horizon,
                14,
                |_, pos| (pos.raw() < 10_000).then(|| tiger_layout::CubId(pos.raw() % 14)),
                |_| false,
                tiger_layout::CubId(3),
            ))
        })
    });
}

fn bench_layout(c: &mut Runner) {
    let cfg = StripeConfig::new(14, 4, 4);
    let placement = MirrorPlacement::new(cfg);
    c.bench_function("layout/block_location", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(cfg.block_location(DiskId(i % 56), BlockNum(i)))
        })
    });
    c.bench_function("layout/mirror_pieces", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(placement.pieces_for(DiskId(i % 56), ByteSize::from_bytes(250_000)))
        })
    });
}

fn bench_net_schedule(c: &mut Runner) {
    c.bench_function("net_schedule/fits_under_load", |b| {
        let mut s = NetworkSchedule::new(
            14,
            SimDuration::from_secs(1),
            Bandwidth::from_mbit_per_sec(135),
            Some(SimDuration::from_millis(250)),
        );
        // ~60 concurrent entries, a realistic per-cub view.
        for i in 0..60u64 {
            let inst = ViewerInstance {
                viewer: ViewerId(i),
                incarnation: 0,
            };
            let start = SimDuration::from_millis((i * 250) % 14_000);
            let _ = s.insert(inst, start, Bandwidth::from_mbit_per_sec(2), false);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let start = SimDuration::from_millis((i * 250) % 14_000);
            black_box(s.fits(start, Bandwidth::from_mbit_per_sec(2)))
        })
    });
    c.bench_function("net_schedule/admissible_starts", |b| {
        // The phase-0 local check: scan the whole ring for candidate
        // starts. Same 60-entry view as fits_under_load.
        let mut s = NetworkSchedule::new(
            14,
            SimDuration::from_secs(1),
            Bandwidth::from_mbit_per_sec(135),
            Some(SimDuration::from_millis(250)),
        );
        for i in 0..60u64 {
            let inst = ViewerInstance {
                viewer: ViewerId(i),
                incarnation: 0,
            };
            let start = SimDuration::from_millis((i * 250) % 14_000);
            let _ = s.insert(inst, start, Bandwidth::from_mbit_per_sec(2), false);
        }
        b.iter(|| {
            black_box(
                s.admissible_starts(
                    Bandwidth::from_mbit_per_sec(2),
                    SimDuration::from_millis(250),
                )
                .count(),
            )
        })
    });
    c.bench_function("net_schedule/insert_abort", |b| {
        let mut s = NetworkSchedule::new(
            14,
            SimDuration::from_secs(1),
            Bandwidth::from_mbit_per_sec(135),
            Some(SimDuration::from_millis(250)),
        );
        let inst = ViewerInstance {
            viewer: ViewerId(1),
            incarnation: 0,
        };
        b.iter(|| {
            let id = s
                .insert(
                    inst,
                    SimDuration::from_millis(250),
                    Bandwidth::from_mbit_per_sec(2),
                    true,
                )
                .expect("fits");
            s.abort(id).expect("exists");
        })
    });
}

fn bench_admission_storm(c: &mut Runner) {
    // A flash crowd against a production-scale ring: 64 cubs, decluster 8
    // (125 ms quantum, 512 slots), NIC nearly full of 2 Mbit/s streams.
    // This is the regime the ROADMAP's 1M-viewer experiments live in —
    // thousands of probes against a near-full schedule, where the old
    // rescan paid O(entries) per probe.
    let build = || {
        let mut s = NetworkSchedule::new(
            64,
            SimDuration::from_secs(1),
            Bandwidth::from_mbit_per_sec(135),
            Some(SimDuration::from_millis(125)),
        );
        // Pack ~60 of the 67 per-window stream capacity everywhere:
        // 512 slots / 8 per entry = 64 positions × 60 lanes.
        let mut v = 0u64;
        for lane in 0..60u64 {
            for pos in 0..64u64 {
                let inst = ViewerInstance {
                    viewer: ViewerId(v),
                    incarnation: 0,
                };
                v += 1;
                let start = SimDuration::from_millis(pos * 1_000 + (lane % 8) * 125);
                let _ = s.insert(inst, start, Bandwidth::from_mbit_per_sec(2), false);
            }
        }
        (s, v)
    };
    c.bench_function("admission_storm/probe_near_full", |b| {
        let (s, _) = build();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let start = SimDuration::from_millis((i * 125) % 64_000);
            black_box(s.fits(start, Bandwidth::from_mbit_per_sec(2)))
        })
    });
    c.bench_function("admission_storm/first_fit_near_full", |b| {
        let (s, _) = build();
        b.iter(|| {
            black_box(
                s.admissible_starts(
                    Bandwidth::from_mbit_per_sec(2),
                    SimDuration::from_millis(125),
                )
                .next(),
            )
        })
    });
    c.bench_function("admission_storm/churn_near_full", |b| {
        let (mut s, next_viewer) = build();
        let mut i = 0u64;
        b.iter(|| {
            let inst = ViewerInstance {
                viewer: ViewerId(next_viewer + i),
                incarnation: 0,
            };
            i += 1;
            let start = SimDuration::from_millis((i * 125) % 64_000);
            if let Ok(id) = s.insert(inst, start, Bandwidth::from_mbit_per_sec(2), true) {
                s.abort(id).expect("exists");
            }
            black_box(s.len())
        })
    });
}

fn bench_event_queue(c: &mut Runner) {
    // Steady-state heap churn at a realistic pending-event population (a
    // full §5 ramp keeps thousands of events in flight): pop the head,
    // schedule a replacement a fixed delay out.
    c.bench_function("event_queue/churn_4k", |b| {
        let mut q = EventQueue::new();
        for i in 0..4096u64 {
            q.schedule(SimTime::from_nanos(i * 1_000), i);
        }
        b.iter(|| {
            let (_, e) = q.pop().expect("queue never drains");
            q.schedule_in(SimDuration::from_millis(5), e);
            black_box(e)
        })
    });
    // The hottest dispatch pattern: a handler pops an event and immediately
    // schedules a follow-up at (or just after) the instant it is running
    // at, ahead of everything else pending.
    c.bench_function("event_queue/pop_then_schedule_head", |b| {
        let mut q = EventQueue::new();
        for i in 0..4096u64 {
            q.schedule(SimTime::from_secs(1_000 + i), i);
        }
        b.iter(|| {
            let (now, e) = q.pop().expect("queue never drains");
            // Follow-up lands before the rest of the backlog.
            q.schedule(now + SimDuration::from_nanos(1), e);
            black_box(e)
        })
    });
    // Cold fill: how much does building up a fresh queue cost, including
    // heap regrowth (the per-run setup path).
    c.bench_function("event_queue/fill_1k_fresh", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1024u64 {
                q.schedule(SimTime::from_nanos(i ^ 0x5555), i);
            }
            black_box(q.len())
        })
    });
}

fn bench_trace(c: &mut Runner) {
    use tiger_trace::{TraceEvent, Tracer};
    // The trace hooks sit on the protocol hot paths (accept, forward,
    // disk issue/done, send due/done), so the disabled path must cost
    // essentially nothing — it is one pointer test. The enabled path is a
    // ring-slot write; both are far below the cheapest schedule op above.
    let ev = |i: u32| TraceEvent::SendDone {
        slot: i % 602,
        viewer: u64::from(i),
        inc: 0,
    };
    c.bench_function("trace_overhead/record_off", |b| {
        let mut t = Tracer::disabled();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            t.record(SimTime::from_nanos(u64::from(i)), i % 14, ev(i));
            black_box(&mut t);
        })
    });
    c.bench_function("trace_overhead/record_on", |b| {
        let mut t = Tracer::enabled(4096);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            t.record(SimTime::from_nanos(u64::from(i)), i % 14, ev(i));
            black_box(&mut t);
        })
    });
}

fn bench_fault_check(c: &mut Runner) {
    use tiger_faults::{FaultPlan, NetFaults, NodeSel, Topology};
    use tiger_sim::RngTree;
    // The fault hooks guard every network send, disk submit, and cub
    // dispatch. Like the trace hooks, the disabled path is one pointer
    // test — the no-faults system must not pay for the subsystem's
    // existence. The enabled path is a window scan plus an RNG draw.
    let topo = Topology {
        num_cubs: 14,
        num_clients: 14,
        backup_controller: false,
    };
    c.bench_function("fault_check_off", |b| {
        let mut f = NetFaults::disabled();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            if f.active() {
                black_box(f.verdict(SimTime::from_nanos(u64::from(i)), i % 14, (i + 1) % 14));
            }
            black_box(&mut f);
        })
    });
    c.bench_function("fault_check_on", |b| {
        let plan = FaultPlan::new().drop_msgs(
            NodeSel::Any,
            NodeSel::Any,
            0.5,
            SimTime::ZERO,
            SimTime::MAX,
        );
        let mut f = NetFaults::compile(
            &plan,
            topo,
            RngTree::new(7).subtree("faults", 0).fork("net", 0),
        );
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            if f.active() {
                black_box(f.verdict(SimTime::from_nanos(u64::from(i)), i % 14, (i + 1) % 14));
            }
            black_box(&mut f);
        })
    });
}

fn bench_proto_step(c: &mut Runner) {
    use tiger_proto::insert::AttemptDecision;
    use tiger_proto::{InsertMachine, PendingStart, RingConfig, RingMachine};
    // One step of each sans-io machine, as both drivers pay it (the DES
    // per event, the socket driver per datagram/poll). These sit inside
    // the protocol hot loops, so like the trace and fault hooks they
    // must stay trivially cheap next to a disk read.
    let cfg = RingConfig {
        deadman_timeout: SimDuration::from_secs(20),
        deadman_interval: SimDuration::from_secs(5),
        min_vstate_lead: SimDuration::from_secs(4),
    };
    c.bench_function("proto_step/ring_ping", |b| {
        let mut ring = RingMachine::new(tiger_layout::CubId(3), 14);
        let pred = ring
            .prev_living(tiger_layout::CubId(3))
            .expect("ring of 14");
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_millis(5_000);
            black_box(ring.on_ping(pred, t))
        })
    });
    c.bench_function("proto_step/ring_check_quiet", |b| {
        // The common case: every predecessor heartbeat arrived, the poll
        // returns no verdict.
        let mut ring = RingMachine::new(tiger_layout::CubId(3), 14);
        let pred = ring
            .prev_living(tiger_layout::CubId(3))
            .expect("ring of 14");
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_millis(5_000);
            ring.on_ping(pred, t);
            black_box(ring.poll_check(t, &cfg))
        })
    });
    c.bench_function("proto_step/insert_route_commit", |b| {
        // Enqueue one routed start and drive the attempt to a commit —
        // the full machine-side cost of a §4.1.3 insertion.
        let mut ins = InsertMachine::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let p = PendingStart {
                instance: ViewerInstance {
                    viewer: ViewerId(i),
                    incarnation: 0,
                },
                client: 1,
                file: FileId(3),
                from_block: BlockNum(0),
                requested_at: SimTime::from_nanos(i),
            };
            ins.on_routed_start(p, false, false);
            ins.attempt_due();
            black_box(ins.attempt(|_| AttemptDecision::Commit))
        })
    });
}

fn bench_workgen(c: &mut Runner) {
    use tiger_sim::RngTree;
    use tiger_workgen::{SessionMachine, SessionSpec, WorkloadPlan};
    // The workload generators run once per arrival / per session op — a
    // handful of draws against the whole simulated lifetime of a viewer —
    // so they must be noise next to even the cheapest schedule op. The
    // named trio measure the steady-state paths (alias-table draw, plain
    // Poisson gap, one competing-risks transition); arrival_next_thinning
    // is the worst case, with diurnal modulation and a flash crowd both
    // active so every candidate pays the λ(t) evaluation.
    let plain = WorkloadPlan::new().zipf(1.1, 256).arrival_rate(5.0);
    let surged = plain
        .clone()
        .flashcrowd(7, SimTime::from_secs(120), 40.0, SimDuration::from_secs(60))
        .diurnal(SimDuration::from_secs(600), 0.2);
    c.bench_function("workgen/popularity_sample", |b| {
        let mut w = plain.compile(&RngTree::new(11).subtree("workgen", 0));
        b.iter(|| black_box(w.popularity.sample(SimTime::from_secs(120), &mut w.chooser)))
    });
    c.bench_function("workgen/arrival_next", |b| {
        let mut w = plain.compile(&RngTree::new(11).subtree("workgen", 0));
        b.iter(|| black_box(w.arrivals.next_arrival()))
    });
    c.bench_function("workgen/arrival_next_thinning", |b| {
        let mut w = surged.compile(&RngTree::new(11).subtree("workgen", 0));
        b.iter(|| black_box(w.arrivals.next_arrival()))
    });
    c.bench_function("workgen/session_step", |b| {
        let spec = SessionSpec {
            interactive: 1.0,
            pause_rate: 0.05,
            dwell_mean: SimDuration::from_secs(10),
            seek_rate: 0.03,
            abandon_rate: 0.008,
        };
        let tree = RngTree::new(11).subtree("workgen", 0).subtree("session", 0);
        let mut m = SessionMachine::new(spec, SimTime::ZERO, 4_000, tree.fork("viewer", 0));
        let mut v = 0u64;
        b.iter(|| {
            let ev = m.step();
            if ev.is_none() {
                // Machine reached Done; restart on the next viewer stream.
                v += 1;
                m = SessionMachine::new(spec, SimTime::ZERO, 4_000, tree.fork("viewer", v));
            }
            black_box(ev)
        })
    });
}

fn bench_disk_model(c: &mut Runner) {
    use tiger_disk::{Disk, DiskProfile, DiskRequest, RequestKind};
    use tiger_sim::RngTree;
    c.bench_function("disk/submit_complete", |b| {
        let mut d = Disk::new(DiskProfile::sosp97(), RngTree::new(3).fork("bench", 0));
        let mut now = SimTime::ZERO;
        let mut offset = 0u64;
        b.iter(|| {
            offset = (offset + 250_000) % 1_000_000_000;
            let done = d
                .submit(
                    now,
                    DiskRequest {
                        offset,
                        len: ByteSize::from_bytes(250_000),
                        kind: RequestKind::Primary,
                    },
                )
                .expect("accepts");
            d.complete(done);
            now = done;
            black_box(done)
        })
    });
}

fn bench_coded(c: &mut Runner) {
    use tiger_coded::{gf256, ReedSolomon};
    c.bench_function("coded/gf256_mul", |b| {
        let mut x = 1u8;
        b.iter(|| {
            x = gf256::mul(x, 29).wrapping_add(1);
            black_box(x)
        })
    });
    c.bench_function("coded/gf256_mul_acc_4k", |b| {
        let src: Vec<u8> = (0..4096u32).map(|i| (i * 37 + 11) as u8).collect();
        let mut dst = vec![0u8; 4096];
        b.iter(|| {
            gf256::mul_acc(&mut dst, &src, 0x53);
            black_box(dst[0])
        })
    });
    // The service-path geometry: the small-test backend's k = 2 of
    // n = 4 code over one 250 kB Tiger block.
    let rs = ReedSolomon::new(2, 4).expect("2-of-4 is a valid code");
    let block: Vec<u8> = (0..250_000u32).map(|i| (i * 31 + 7) as u8).collect();
    let shards = rs.encode(&block);
    c.bench_function("coded/encode_250k_k2n4", |b| {
        b.iter(|| black_box(rs.encode(&block).len()))
    });
    c.bench_function("coded/decode_parity_250k_k2n4", |b| {
        // Worst case: no systematic shard survives — both survivors are
        // parity, so decoding solves the full k x k system.
        let have: Vec<(u32, &[u8])> = vec![(2, &shards[2][..]), (3, &shards[3][..])];
        b.iter(|| {
            let out = rs.decode(&have, block.len()).expect("any k decode");
            black_box(out.len())
        })
    });
}

fn main() {
    let mut c = Runner::from_args();
    bench_slot_math(&mut c);
    bench_view_ops(&mut c);
    bench_rejoin(&mut c);
    bench_layout(&mut c);
    bench_net_schedule(&mut c);
    bench_admission_storm(&mut c);
    bench_event_queue(&mut c);
    bench_trace(&mut c);
    bench_fault_check(&mut c);
    bench_proto_step(&mut c);
    bench_workgen(&mut c);
    bench_disk_model(&mut c);
    bench_coded(&mut c);
    c.finish();
}
