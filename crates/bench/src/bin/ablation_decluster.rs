//! §2.3 ablation: the decluster-factor tradeoff.
//!
//! "With a decluster factor of 4, only a fifth of total disk and network
//! bandwidth needs to be reserved for failed mode operation, but a second
//! failure on any of 8 machines would result in the loss of data.
//! Conversely, a decluster factor of 2 consumes a third of system bandwidth
//! for fault tolerance, but can survive failures more than two cubs away
//! from any other failure."

use tiger_bench::header;
use tiger_layout::{DiskId, MirrorPlacement, StripeConfig};
use tiger_sched::ScheduleParams;
use tiger_sim::{Bandwidth, ByteSize, SimDuration};

fn main() {
    header(
        "Ablation: decluster factor (§2.3 tradeoff)",
        "reserved bandwidth = 1/(d+1); second-failure exposure = 2d machines",
    );
    println!("decluster  reserved_bw%  exposure(disks)  capacity(56 disks)  svc_time");
    let disk = tiger_disk::DiskProfile::sosp97();
    for d in [1u32, 2, 4, 8] {
        let stripe = StripeConfig::new(14, 4, d);
        let placement = MirrorPlacement::new(stripe);
        let worst = disk.worst_case_read(ByteSize::from_bytes(250_000), d, true);
        let params = ScheduleParams::derive(
            stripe,
            SimDuration::from_secs(1),
            ByteSize::from_bytes(250_000),
            worst,
            Bandwidth::from_mbit_per_sec(135),
        );
        println!(
            "{d:>9}  {:>11.1}  {:>15}  {:>18}  {:?}",
            placement.reserved_bandwidth_fraction() * 100.0,
            placement.second_failure_exposure(DiskId(20)).len(),
            params.capacity(),
            params.block_service_time(),
        );
    }
    println!();
    println!(
        "shape: higher decluster -> less reserved bandwidth (higher capacity) \
         but wider two-failure exposure."
    );
}
