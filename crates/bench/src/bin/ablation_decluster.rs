//! §2.3 ablation: the decluster-factor tradeoff.
//!
//! "With a decluster factor of 4, only a fifth of total disk and network
//! bandwidth needs to be reserved for failed mode operation, but a second
//! failure on any of 8 machines would result in the loss of data.
//! Conversely, a decluster factor of 2 consumes a third of system bandwidth
//! for fault tolerance, but can survive failures more than two cubs away
//! from any other failure."
//!
//! Analytic (no simulation); the body lives in `tiger_bench::fleet` so the
//! `fleet` bin reports it alongside the measured experiments.

use tiger_bench::fleet::{decluster_report, threads_from_env, Scale};
use tiger_bench::header;

fn main() {
    header(
        "Ablation: decluster factor (§2.3 tradeoff)",
        "reserved bandwidth = 1/(d+1); second-failure exposure = 2d machines",
    );
    let report = decluster_report(Scale::Full, threads_from_env());
    print!("{}", report.output);
}
