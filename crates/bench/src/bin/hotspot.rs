//! §2.2's striping motivation: demand imbalance cannot hotspot a disk.
//!
//! "Tiger uses this striping layout in order to handle imbalances in
//! demand for particular files. Because each file has blocks on every disk
//! and every server, over the course of playing a file the load is
//! distributed among all of the system components. Thus, the system will
//! not overload even if all of the viewers request the same file, assuming
//! that they are equitemporally spaced."
//!
//! This bench plays the *same* file to hundreds of viewers and compares
//! per-disk load spread (and losses) against the same population spread
//! over a 64-file catalog. The slot mechanism provides the equitemporal
//! spacing automatically.
//!
//! ```text
//! hotspot [--plan FILE] [--scale quick|full]
//! ```
//!
//! With `--plan` (or `TIGER_WORKLOAD_PLAN`), demand comes from a
//! declarative `tiger-workgen` plan file instead of the two hardcoded
//! populations: the same per-disk-spread measurement, any demand shape
//! the plan grammar can express. Without a plan the output is unchanged.

use std::process::exit;

use tiger_bench::fleet::Scale;
use tiger_bench::{header, sosp_tiger};
use tiger_core::{TigerConfig, TigerSystem};
use tiger_layout::CubId;
use tiger_sim::{RngTree, SimDuration, SimTime};
use tiger_workgen::WorkloadPlan;
use tiger_workload::{drive_plan, populate_catalog, CatalogSpec};

struct Outcome {
    streams: u32,
    min_disk: f64,
    max_disk: f64,
    mean_disk: f64,
    server_missed: u64,
    client_missing: u64,
}

fn run(single_file: bool, target: u32) -> Outcome {
    let tiger = sosp_tiger();
    let mut sys = TigerSystem::new(tiger);
    let files = populate_catalog(
        &mut sys,
        &CatalogSpec::sized_for(SimDuration::from_secs(400), 64),
    );
    let mut chooser = RngTree::new(5).fork("hotspot", 0);
    let mut t = SimTime::from_millis(100);
    for _ in 0..target {
        let client = sys.add_client();
        let file = if single_file {
            files[0]
        } else {
            files[chooser.gen_range(0..files.len())]
        };
        sys.request_start(t, client, file);
        // Arrivals ~1.2 s apart; Tiger's slots enforce the equitemporal
        // spacing regardless.
        t += SimDuration::from_millis(1_200);
    }
    // Settle, then measure one 60 s window.
    let settle = t + SimDuration::from_secs(30);
    sys.run_until(settle);
    sys.sample_window(settle, CubId(0), None);
    let end = settle + SimDuration::from_secs(60);
    sys.run_until(end);

    let mut loads: Vec<f64> = Vec::new();
    for cub in sys.cubs() {
        for d in cub.disks() {
            loads.push(d.load_window(end));
        }
    }
    let report = sys.all_clients_report();
    Outcome {
        streams: sys.controller().active_streams(),
        min_disk: loads.iter().copied().fold(f64::INFINITY, f64::min),
        max_disk: loads.iter().copied().fold(0.0, f64::max),
        mean_disk: loads.iter().sum::<f64>() / loads.len() as f64,
        server_missed: sys.metrics().loss.server_missed,
        client_missing: report.blocks_missing,
    }
}

/// Plan-driven variant: demand comes from a `tiger-workgen` plan, the
/// measurement (per-disk load spread over a window after the arrival
/// horizon) stays the same.
fn run_plan(plan: &WorkloadPlan, scale: Scale) -> Outcome {
    let tiger = match scale {
        Scale::Full => sosp_tiger(),
        Scale::Quick => {
            let mut t = TigerConfig::small_test();
            t.disk = t.disk.without_blips();
            t
        }
    };
    let mut sys = TigerSystem::new(tiger);
    let files = populate_catalog(
        &mut sys,
        &CatalogSpec::sized_for(plan.horizon + SimDuration::from_secs(60), plan.titles()),
    );
    drive_plan(&mut sys, plan, &files);
    let settle = SimTime::ZERO + plan.horizon + SimDuration::from_secs(10);
    sys.run_until(settle);
    sys.sample_window(settle, CubId(0), None);
    let end = settle + SimDuration::from_secs(30);
    sys.run_until(end);

    let mut loads: Vec<f64> = Vec::new();
    for cub in sys.cubs() {
        for d in cub.disks() {
            loads.push(d.load_window(end));
        }
    }
    let report = sys.all_clients_report();
    Outcome {
        streams: sys.controller().active_streams(),
        min_disk: loads.iter().copied().fold(f64::INFINITY, f64::min),
        max_disk: loads.iter().copied().fold(0.0, f64::max),
        mean_disk: loads.iter().sum::<f64>() / loads.len() as f64,
        server_missed: sys.metrics().loss.server_missed,
        client_missing: report.blocks_missing,
    }
}

fn print_row(label: &str, o: &Outcome) {
    println!(
        "{label:<15} {:>7}   {:>5.1}% /{:>5.1}% /{:>5.1}%  {:>6}  {:>14}",
        o.streams,
        o.min_disk * 100.0,
        o.mean_disk * 100.0,
        o.max_disk * 100.0,
        o.server_missed,
        o.client_missing,
    );
}

fn usage(msg: &str) -> ! {
    eprintln!("hotspot: {msg}");
    eprintln!("usage: hotspot [--plan FILE] [--scale quick|full]");
    exit(2)
}

fn main() {
    let mut plan_path = std::env::var("TIGER_WORKLOAD_PLAN").ok();
    let mut scale = Scale::Full;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--plan" => {
                plan_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--plan needs a file path")),
                );
            }
            "--scale" => {
                scale = args
                    .next()
                    .as_deref()
                    .and_then(Scale::parse)
                    .unwrap_or_else(|| usage("--scale needs 'quick' or 'full'"));
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    if let Some(path) = plan_path {
        let plan = tiger_workgen::load_plan_file(&path).unwrap_or_else(|e| {
            eprintln!("hotspot: {e}");
            exit(2)
        });
        header(
            "Hotspot immunity (§2.2 striping motivation, plan-driven demand)",
            "whatever shape the workload plan declares, striping keeps the \
             per-disk load band tight",
        );
        println!("workload        streams  disk_load min/mean/max   missed  client_missing");
        print_row("plan-driven", &run_plan(&plan, scale));
        println!();
        println!("plan: {}", path);
        return;
    }

    header(
        "Hotspot immunity (§2.2 striping motivation)",
        "all viewers on ONE file load the disks as evenly as viewers spread \
         over 64 files — striping makes demand imbalance a non-event",
    );
    println!("workload        streams  disk_load min/mean/max   missed  client_missing");
    for (label, single) in [("64-file spread", false), ("single hot file", true)] {
        let o = run(single, 300);
        println!(
            "{label:<15} {:>7}   {:>5.1}% /{:>5.1}% /{:>5.1}%  {:>6}  {:>14}",
            o.streams,
            o.min_disk * 100.0,
            o.mean_disk * 100.0,
            o.max_disk * 100.0,
            o.server_missed,
            o.client_missing,
        );
    }
    println!();
    println!(
        "shape: the single-hot-file column shows the same per-disk load band \
         and zero overload losses — every disk holds a slice of the hot file, \
         and the slot schedule spaces its viewers equitemporally."
    );
}
