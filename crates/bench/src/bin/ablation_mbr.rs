//! §4.2 ablation: two-phase multiple-bitrate insertion.
//!
//! "Because the originating cub overlaps the disk I/O and communication
//! between cubs, there will almost always be time for the communication
//! with the succeeding cub without having to increase the scheduling lead
//! value."

use tiger_bench::header;
use tiger_core::{MbrConfig, MbrCoordinator, MbrOutcome, MbrSystem};
use tiger_net::LatencyModel;
use tiger_sim::{Bandwidth, RngTree, SimDuration, SimTime};

fn run(latency: LatencyModel, deadline_ms: u64) -> (usize, u64, f64) {
    let mut cfg = MbrConfig::default_ring();
    cfg.latency = latency;
    let mut coord = MbrCoordinator::new(cfg);
    let mut rng = RngTree::new(11).fork("mbr-bench", 0);
    let rates = [1u64, 2, 3, 4, 6];
    let mut committed = 0usize;
    for i in 0..600u64 {
        let origin = (i % 14) as u32;
        let rate = Bandwidth::from_mbit_per_sec(rates[rng.gen_range(0..rates.len())]);
        let out = coord.try_insert(
            SimTime::from_millis(i * 40),
            origin,
            rate,
            SimDuration::from_millis(deadline_ms),
        );
        match out {
            MbrOutcome::Committed { .. } => committed += 1,
            MbrOutcome::RejectedLocal => break,
            MbrOutcome::Aborted => {}
        }
    }
    (
        committed,
        coord.aborted_attempts(),
        coord.hidden_confirm_fraction(),
    )
}

fn main() {
    header(
        "Ablation: two-phase multiple-bitrate insertion (§4.2)",
        "the reserve round trip overlaps the speculative first-block disk \
         read, so confirmation latency is almost always hidden",
    );
    println!("latency model       deadline  committed  aborted  confirm_hidden%");
    for (label, latency, deadline) in [
        ("LAN 2-10 ms", LatencyModel::lan_default(), 700u64),
        (
            "slow 50 ms fixed",
            LatencyModel::fixed(SimDuration::from_millis(50)),
            700,
        ),
        (
            "WAN-ish 200 ms",
            LatencyModel::fixed(SimDuration::from_millis(200)),
            700,
        ),
        (
            "too slow 400 ms",
            LatencyModel::fixed(SimDuration::from_millis(400)),
            700,
        ),
    ] {
        let (committed, aborted, hidden) = run(latency, deadline);
        println!(
            "{label:<18}  {deadline:>6}ms  {committed:>9}  {aborted:>7}  {:>14.1}",
            hidden * 100.0
        );
    }
    println!();
    println!("-- full message-level protocol (MbrSystem over the simulated network) --");
    let mut dist = MbrSystem::new(MbrConfig::default_ring(), SimDuration::from_millis(700));
    let mut rng2 = RngTree::new(23).fork("mbr-dist-bench", 0);
    let rates = [1u64, 2, 3, 4, 6];
    for i in 0..600u64 {
        let rate = Bandwidth::from_mbit_per_sec(rates[rng2.gen_range(0..rates.len())]);
        dist.request_insert(SimTime::from_millis(i * 40), (i % 14) as u32, rate);
    }
    dist.run_until(SimTime::from_secs(60));
    let stats = dist.stats();
    println!(
        "committed {}  aborted {}  rejected-local {}  confirm hidden {:.1}%  \
         capacity violations {}",
        stats.committed,
        stats.aborted,
        stats.rejected_local,
        stats.hidden_confirms as f64 / stats.committed.max(1) as f64 * 100.0,
        stats.violations,
    );
    println!(
        "per-cub reserve/commit control bytes: {} (cub 0)",
        dist.control_bytes(0)
    );
    println!();
    println!(
        "shape: within a switched LAN the confirm round trip hides behind the \
         ~60 ms disk read; only when latency approaches the deadline do \
         insertions abort (and release their reservations)."
    );
}
