//! §4.2 ablation: two-phase multiple-bitrate insertion.
//!
//! "Because the originating cub overlaps the disk I/O and communication
//! between cubs, there will almost always be time for the communication
//! with the succeeding cub without having to increase the scheduling lead
//! value."
//!
//! The four latency-model runs are independent; the body lives in
//! `tiger_bench::fleet` and shards them across `TIGER_FLEET_THREADS`
//! workers (output is identical at any thread count).

use tiger_bench::fleet::{mbr_report, threads_from_env, Scale};
use tiger_bench::header;

fn main() {
    header(
        "Ablation: two-phase multiple-bitrate insertion (§4.2)",
        "the reserve round trip overlaps the speculative first-block disk \
         read, so confirmation latency is almost always hidden",
    );
    let report = mbr_report(Scale::Full, threads_from_env());
    print!("{}", report.output);
}
