//! §5 text: reconfiguration time after a cub power-cut.
//!
//! "We loaded the system to 50% of capacity and cut the power to a cub. We
//! inspected the clients' logs and found about 8 seconds between the
//! earliest and latest lost block."

use tiger_bench::{header, sosp_tiger};
use tiger_workload::{run_reconfig, ReconfigConfig};

fn main() {
    header(
        "Reconfiguration after cub power-cut (paper §5 text)",
        "~8 s between the earliest and latest lost block at 50% load",
    );
    let cfg = ReconfigConfig::sosp97(sosp_tiger());
    let result = run_reconfig(&cfg);
    println!("streams at cut:          {}", result.streams);
    println!(
        "deadman detection:       {:.2} s after the cut (timeout {:?})",
        result.detection_secs.unwrap_or(f64::NAN),
        cfg.tiger.deadman_timeout,
    );
    println!("blocks lost:             {}", result.blocks_lost);
    println!(
        "earliest lost block due: {:.2} s  latest: {:.2} s",
        result.earliest_loss.unwrap_or(f64::NAN),
        result.latest_loss.unwrap_or(f64::NAN),
    );
    println!(
        "loss window:             {:.2} s (paper: ~8 s)",
        result.loss_window_secs
    );
}
