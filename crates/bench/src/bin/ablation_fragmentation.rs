//! §3.2 ablation: network-schedule fragmentation vs start-time
//! quantization.
//!
//! "In general, fragmentation can become fairly severe if viewers are
//! started at arbitrary points. We have found that fragmentation is
//! reduced to an acceptable level when viewers are forced to start at
//! times that are integral multiples of the block play time divided by the
//! decluster factor."
//!
//! A viewer's entry position is dictated by *when it arrives* (the cubs
//! move through the schedule in real time), so arbitrary arrivals put
//! entries at arbitrary ring positions. With quantization, arrivals are
//! delayed (by at most one quantum) to the next grid point, so departures
//! leave grid-aligned gaps that later arrivals can actually reuse.
//!
//! The 4 policies × 5 seeds are twenty independent churn runs; the body
//! lives in `tiger_bench::fleet` and shards them across
//! `TIGER_FLEET_THREADS` workers (output is identical at any thread
//! count).

use tiger_bench::fleet::{fragmentation_report, threads_from_env, Scale};
use tiger_bench::header;

fn main() {
    header(
        "Ablation: network-schedule fragmentation (§3.2)",
        "arbitrary start times fragment the 2-D schedule; quantizing starts \
         to bpt/decluster keeps free bandwidth usable",
    );
    let report = fragmentation_report(Scale::Full, threads_from_env());
    print!("{}", report.output);
}
