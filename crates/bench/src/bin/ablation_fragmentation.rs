//! §3.2 ablation: network-schedule fragmentation vs start-time
//! quantization.
//!
//! "In general, fragmentation can become fairly severe if viewers are
//! started at arbitrary points. We have found that fragmentation is
//! reduced to an acceptable level when viewers are forced to start at
//! times that are integral multiples of the block play time divided by the
//! decluster factor."
//!
//! A viewer's entry position is dictated by *when it arrives* (the cubs
//! move through the schedule in real time), so arbitrary arrivals put
//! entries at arbitrary ring positions. With quantization, arrivals are
//! delayed (by at most one quantum) to the next grid point, so departures
//! leave grid-aligned gaps that later arrivals can actually reuse.

use tiger_bench::header;
use tiger_layout::ids::ViewerInstance;
use tiger_layout::ViewerId;
use tiger_sched::{NetEntryId, NetworkSchedule};
use tiger_sim::{Bandwidth, RngTree, SimDuration};

struct ChurnStats {
    /// Mean number of arrival opportunities a viewer waits before its
    /// entry fits (1 = admitted at its first position).
    mean_tries: f64,
    /// Arrivals that never fit within the retry budget.
    gave_up: u64,
    fragmentation: f64,
    steady_streams: usize,
}

fn churn(quantum: Option<SimDuration>, seed: u64) -> ChurnStats {
    let capacity = Bandwidth::from_mbit_per_sec(24);
    let bpt = SimDuration::from_secs(1);
    let mut sched = NetworkSchedule::new(14, bpt, capacity, quantum);
    let ring_ns = sched.len_duration().as_nanos();
    let mut rng = RngTree::new(seed).fork("frag", 0);
    let rate = Bandwidth::from_mbit_per_sec(2);
    let mut live: Vec<(ViewerInstance, NetEntryId)> = Vec::new();
    let mut next_viewer = 0u64;
    let mut total_tries = 0u64;
    let mut admissions = 0u64;
    let mut gave_up = 0u64;
    const RETRIES: u64 = 40;

    // An arrival attempts positions derived from successive arrival
    // instants until one fits (each retry models waiting for a later
    // opportunity).
    let mut admit = |sched: &mut NetworkSchedule,
                     rng: &mut tiger_sim::SimRng,
                     live: &mut Vec<(ViewerInstance, NetEntryId)>|
     -> bool {
        let inst = ViewerInstance {
            viewer: ViewerId(next_viewer),
            incarnation: 0,
        };
        next_viewer += 1;
        for attempt in 1..=RETRIES {
            let arrival = rng.gen_range(0..ring_ns);
            let start_ns = match quantum {
                Some(q) => arrival.div_ceil(q.as_nanos()) * q.as_nanos() % ring_ns,
                None => arrival,
            };
            if let Ok(id) = sched.insert(inst, SimDuration::from_nanos(start_ns), rate, false) {
                live.push((inst, id));
                total_tries += attempt;
                admissions += 1;
                return true;
            }
        }
        gave_up += 1;
        false
    };

    // Fill to a high watermark (~93% of the 168-stream ceiling), then churn:
    // one departure, one arrival, repeatedly. Fragmentation shows up as
    // arrivals failing to reuse the bandwidth departures freed.
    let mut rng_fill = RngTree::new(seed).fork("frag-fill", 0);
    while live.len() < 156 {
        if !admit(&mut sched, &mut rng_fill, &mut live) {
            break;
        }
    }
    for _ in 0..2_000 {
        let idx = rng.gen_range(0..live.len());
        let (inst, _) = live.swap_remove(idx);
        sched.remove_instance(inst);
        admit(&mut sched, &mut rng, &mut live);
    }
    ChurnStats {
        mean_tries: total_tries as f64 / admissions.max(1) as f64,
        gave_up,
        fragmentation: sched.fragmentation(rate, SimDuration::from_millis(25)),
        steady_streams: sched.len(),
    }
}

fn main() {
    header(
        "Ablation: network-schedule fragmentation (§3.2)",
        "arbitrary start times fragment the 2-D schedule; quantizing starts \
         to bpt/decluster keeps free bandwidth usable",
    );
    println!(
        "start policy        mean_tries  gave_up  fragmentation  steady_streams  (mean of 5 seeds)"
    );
    for (label, quantum) in [
        ("arbitrary", None),
        ("bpt/2 grid", Some(SimDuration::from_millis(500))),
        ("bpt/4 grid (paper)", Some(SimDuration::from_millis(250))),
        ("bpt/8 grid", Some(SimDuration::from_millis(125))),
    ] {
        let mut tries = 0.0;
        let mut gave_up = 0u64;
        let mut frag = 0.0;
        let mut steady = 0usize;
        const SEEDS: u64 = 5;
        for seed in 0..SEEDS {
            let s = churn(quantum, seed);
            tries += s.mean_tries;
            gave_up += s.gave_up;
            frag += s.fragmentation;
            steady += s.steady_streams;
        }
        println!(
            "{label:<18}  {:>10.2}  {:>7}  {:>13.3}  {:>14.1}",
            tries / SEEDS as f64,
            gave_up,
            frag / SEEDS as f64,
            steady as f64 / SEEDS as f64,
        );
    }
    println!();
    println!(
        "shape: under identical churn near saturation, arbitrary starts make \
         arrivals wait longer (more tries) and leave more free bandwidth \
         unusable than the bpt/decluster grid."
    );
}
