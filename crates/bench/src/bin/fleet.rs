//! The experiment fleet: every paper artifact in one parallel run.
//!
//! Shards the catalogue of independent experiments (`tiger_bench::fleet`)
//! across worker threads. Stdout is **bit-identical at any thread count**
//! (reports print in catalogue order, metrics merge in shard order); all
//! timing — per-job seconds, wall clock, speedup — goes to stderr.
//!
//! ```text
//! fleet [--threads N] [--scale quick|full] [--filter SUBSTR] [--list]
//! ```
//!
//! * `--threads N` — worker threads (default 1; sequential).
//! * `--scale quick|full` — job size (default quick: seconds-long smoke
//!   runs on the small-test configuration; full is paper §5 scale).
//! * `--filter SUBSTR` — run only jobs whose name contains the substring.
//! * `--list` — print job names and exit.

use std::process::exit;

use tiger_bench::fleet::{metrics_digest, run_fleet, standard_jobs, Scale};
use tiger_bench::header;

fn main() {
    let mut threads = 1usize;
    let mut scale = Scale::Quick;
    let mut filter: Option<String> = None;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .as_deref()
                    .and_then(Scale::parse)
                    .unwrap_or_else(|| usage("--scale needs 'quick' or 'full'"));
            }
            "--filter" => {
                filter = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--filter needs a substring")),
                );
            }
            "--list" => list = true,
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    let jobs: Vec<_> = standard_jobs()
        .into_iter()
        .filter(|j| filter.as_deref().is_none_or(|f| j.name.contains(f)))
        .collect();
    if list {
        for j in &jobs {
            println!("{}", j.name);
        }
        return;
    }
    if jobs.is_empty() {
        usage("filter matched no jobs");
    }

    header(
        "Experiment fleet (deterministic parallel shards)",
        "every experiment is a pure function of (config, workload, seed); \
         shards merge in order, so this output is identical at any --threads",
    );
    let result = run_fleet(&jobs, scale, threads);
    for report in &result.reports {
        println!("---- {} ----", report.name);
        print!("{}", report.output);
        println!();
    }
    println!("merged metrics: {}", metrics_digest(&result.merged));

    let serial: f64 = result.job_secs.iter().sum();
    for (job, secs) in jobs.iter().zip(&result.job_secs) {
        eprintln!("fleet: {:<24} {secs:>8.2}s", job.name);
    }
    eprintln!(
        "fleet: {} jobs in {:.2}s wall ({:.2}s serial, {:.2}x speedup at {} threads)",
        jobs.len(),
        result.wall_secs,
        serial,
        serial / result.wall_secs.max(1e-9),
        threads,
    );
}

fn usage(err: &str) -> ! {
    eprintln!("fleet: {err}");
    eprintln!("usage: fleet [--threads N] [--scale quick|full] [--filter SUBSTR] [--list]");
    exit(2);
}
