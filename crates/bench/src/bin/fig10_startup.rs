//! Figure 10: stream startup latency vs schedule load.
//!
//! Combines an unfailed and a failed run (as the paper did: "This graph
//! combines the stream starts from both the failed and non-failed tests").

use tiger_bench::{header, sosp_tiger};
use tiger_layout::CubId;
use tiger_workload::{format_startup_table, run_startup, StartupConfig, StartupResult};

fn main() {
    header(
        "Figure 10: stream startup latency vs schedule load",
        "min ~1.8 s; mean <5 s at 95% load; >20 s outliers near 100%; \
         worst cases approach the full 56 s schedule",
    );
    let mut unfailed = StartupConfig::fig10(sosp_tiger());
    unfailed.probes_per_load = 100;
    let mut failed = unfailed.clone();
    failed.failed_cub = Some(CubId(5));
    failed.tiger.seed = unfailed.tiger.seed + 1;

    let a = run_startup(&unfailed);
    let b = run_startup(&failed);
    let mut samples = a.samples;
    samples.extend(b.samples);
    let combined = StartupResult { samples };

    print!("{}", format_startup_table(&combined));
    println!();
    println!("total starts: {}", combined.samples.len());
    println!("min latency: {:.2} s (paper: ~1.8 s)", combined.min());
    println!(
        "max latency: {:.2} s (paper: some took ~the full 56 s schedule)",
        combined.max()
    );
    println!(
        "mean at 90-100% load: {:.2} s (paper: <5 s at 95%)",
        combined.mean_in(0.90, 1.01).unwrap_or(f64::NAN)
    );
    println!(">20 s outliers: {}", combined.count_above(20.0));
}
