//! §5 text: capacity derivation.
//!
//! "According to our measurements, in the worst case each of the disks is
//! capable of delivering about 10.75 primary streams while doing its part
//! in covering for a failed peer. Thus, the 56 disks in the system can
//! deliver at most 602 streams. … Each disk delivered 3.36 Mbytes/s when
//! running at load (10.75 0.25 Mbyte/s streams/disk, plus 25% for
//! mirroring). … the mirroring cubs were delivering 43 streams (plus 10.75
//! streams for the failed cub) at 2 Mbits/s, and so were sustaining a send
//! rate of over 13.4 Mbytes/s."
//!
//! The analytic derivation prints here; the measured failed-mode section
//! is the fleet's multi-seed capacity sweep (`tiger_bench::fleet`): one
//! full ramp per workload seed, sharded across `TIGER_FLEET_THREADS`
//! workers, to show the capacity figures are seed-independent.

use tiger_bench::fleet::{capacity_seeds_report, threads_from_env, Scale};
use tiger_bench::{header, sosp_tiger};
use tiger_layout::MirrorPlacement;
use tiger_sched::ScheduleParams;

fn main() {
    header(
        "Capacity derivation (paper §5 text)",
        "10.75 streams/disk worst case; 602 total; 3.36 MB/s/disk; \
         13.4 MB/s sends from a mirroring cub",
    );
    let tiger = sosp_tiger();
    let params = ScheduleParams::derive(
        tiger.stripe,
        tiger.block_play_time,
        tiger.block_size(),
        tiger.disk_worst_read(),
        tiger.nic_capacity,
    );
    let spd = tiger.disk.streams_per_disk(
        tiger.block_size(),
        tiger.block_play_time,
        tiger.stripe.decluster,
        true,
    );
    let placement = MirrorPlacement::new(tiger.stripe);
    println!(
        "worst-case block service work: {:?}",
        tiger.disk_worst_read()
    );
    println!("streams per disk (worst case): {spd:.2}  (paper: 10.75)");
    println!(
        "block service time (lengthened): {:?}",
        params.block_service_time()
    );
    println!(
        "schedule length: {:?}  (block play time x {} disks)",
        params.schedule_len(),
        tiger.stripe.num_disks()
    );
    println!(
        "system capacity: {} streams  (paper: 602)",
        params.capacity()
    );
    println!(
        "bandwidth reserved for failed mode: {:.1}%  (paper: a fifth at decluster 4)",
        placement.reserved_bandwidth_fraction() * 100.0
    );
    println!(
        "storage: 56 x 2.25 GB disks, half for primaries = {:.1} hours of 2 Mbit/s content \
         (paper: slightly more than 64 hours)",
        56.0 * 2.25e9 / 2.0 / 250_000.0 / 3600.0
    );

    println!();
    let report = capacity_seeds_report(Scale::Full, threads_from_env());
    print!("{}", report.output);
    println!(
        "(paper: mirroring-cub disks >95% duty cycle; >13.4 MB/s sends \
         at 135 Mbit/s NIC = >79% utilization)"
    );
}
