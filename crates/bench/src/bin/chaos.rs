//! Chaos campaigns: declarative fault plans swept over injection timing
//! and workload seed, every run checked against the Tiger invariants
//! (no double delivery, justified deadman declarations, bounded view
//! lead, bounded single-failure loss window).
//!
//! ```text
//! chaos [--threads N] [--scale quick|full]
//! ```
//!
//! Stdout is bit-identical at any `--threads` count (and at any
//! `TIGER_FLEET_THREADS`, which sets the default). Exits non-zero if any
//! campaign violates an invariant, so CI can gate on it.

use std::process::exit;

use tiger_bench::chaos::chaos_report;
use tiger_bench::fleet::{threads_from_env, Scale};
use tiger_bench::header;

fn main() {
    let mut threads = threads_from_env();
    let mut scale = Scale::Quick;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .as_deref()
                    .and_then(Scale::parse)
                    .unwrap_or_else(|| usage("--scale needs 'quick' or 'full'"));
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    header(
        "Chaos campaigns (fault plans vs the Tiger invariants)",
        "any single failure is survived; losses stay inside the detection window (§4, §5)",
    );
    let report = chaos_report(scale, threads);
    print!("{}", report.output);
    if report.output.contains("VIOLATION") {
        eprintln!("chaos: invariant violations found");
        exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("chaos: {msg}");
    eprintln!("usage: chaos [--threads N] [--scale quick|full]");
    exit(2)
}
