//! Figure 8: Tiger loads with no cubs failed.
//!
//! Ramp +30 streams per ≥50 s step to the full 602-stream capacity; report
//! mean cub CPU, controller CPU, mean disk load, and control traffic from
//! one cub to all others.
//!
//! The experiment body lives in `tiger_bench::fleet` (shared with the
//! `fleet` bin); this wrapper runs it at paper scale.

use tiger_bench::fleet::{fig8_report, threads_from_env, Scale};
use tiger_bench::header;

fn main() {
    header(
        "Figure 8: Tiger loads with no cubs failed",
        "cub CPU & disk load linear in streams; controller flat; \
         control traffic < ~21 KB/s at 602 streams",
    );
    let report = fig8_report(Scale::Full, threads_from_env());
    print!("{}", report.output);
}
