//! Figure 8: Tiger loads with no cubs failed.
//!
//! Ramp +30 streams per ≥50 s step to the full 602-stream capacity; report
//! mean cub CPU, controller CPU, mean disk load, and control traffic from
//! one cub to all others.

use tiger_bench::{header, settle, sosp_tiger};
use tiger_workload::{format_ramp_table, run_ramp, RampConfig};

fn main() {
    header(
        "Figure 8: Tiger loads with no cubs failed",
        "cub CPU & disk load linear in streams; controller flat; \
         control traffic < ~21 KB/s at 602 streams",
    );
    // A short hold at the top lets the final insertions land (insertions
    // near 100% load can take most of the 56 s schedule, §5).
    let cfg = RampConfig {
        hold_at_peak: tiger_sim::SimDuration::from_secs(100),
        ..RampConfig::fig8(sosp_tiger(), settle())
    };
    let result = run_ramp(&cfg);
    print!(
        "{}",
        format_ramp_table("Figure 8 (unfailed ramp to 602)", &result.windows)
    );
    println!();
    println!(
        "blocks scheduled: {}  sent: {}  server missed: {}  (1 in {})",
        result.loss.blocks_scheduled,
        result.loss.blocks_sent,
        result.loss.server_missed,
        result
            .loss
            .one_in()
            .map_or_else(|| "inf".to_string(), |n| n.to_string()),
    );
    println!(
        "client-observed missing: {}  received: {}",
        result.client_missing, result.client_received
    );
    println!(
        "peak read-ahead buffers: {:.1} MB (testbed cache: 20 MB/cub)",
        result.peak_buffers as f64 / 1e6
    );
}
