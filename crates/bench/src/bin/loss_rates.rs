//! §5 text: delivered-block loss rates.
//!
//! Paper: unfailed test sent >4.1 M blocks, losing 15 server-side (1 in
//! ~275,000) + 8 client-side; failed ramp lost 46 of 3.6 M (1 in 78,000);
//! the hour at full failed load lost 54 of 2.1 M (1 in ~40,000). Losses
//! were "spread over the entire test, rather than being clustered at the
//! highest load."

use tiger_bench::{header, settle, sosp_tiger};
use tiger_sim::SimDuration;
use tiger_workload::{run_ramp, RampConfig};

fn main() {
    header(
        "Loss rates (paper §5 text)",
        "unfailed ~1 in 275k; failed ramp ~1 in 78k; failed steady hour ~1 in 40k; \
         losses spread over the run",
    );

    // Unfailed: ramp + a long hold to accumulate a few million blocks.
    let unfailed = RampConfig {
        hold_at_peak: SimDuration::from_secs(5_400),
        ..RampConfig::fig8(sosp_tiger(), settle())
    };
    let u = run_ramp(&unfailed);
    println!(
        "unfailed: scheduled {}  missed {}  rate 1 in {}",
        u.loss.blocks_scheduled,
        u.loss.server_missed,
        u.loss
            .one_in()
            .map_or_else(|| "inf".to_string(), |n| n.to_string())
    );

    // Failed: ramp + the paper's hour at 602 streams.
    let failed = RampConfig {
        hold_at_peak: SimDuration::from_secs(3_600),
        ..RampConfig::fig9(sosp_tiger(), settle())
    };
    let f = run_ramp(&failed);
    println!(
        "failed:   scheduled {}  missed {} ({} mirror pieces)  rate 1 in {}",
        f.loss.blocks_scheduled,
        f.loss.server_missed,
        f.loss.mirror_missed,
        f.loss
            .one_in()
            .map_or_else(|| "inf".to_string(), |n| n.to_string())
    );
    println!();
    println!("shape check: failed-mode loss rate should exceed unfailed (paper: ~4-7x);");
    println!(
        "client-observed missing blocks — unfailed: {}  failed: {}",
        u.client_missing, f.client_missing
    );
    println!(
        "buffer-cache hit rate — unfailed: {:.4}%  failed: {:.4}%  (paper: <0.05%)",
        u.cache_hit_rate * 100.0,
        f.cache_hit_rate * 100.0
    );
}
