//! Admission-control ablation (§5).
//!
//! "However, there are a reasonable number of outliers that took over 20
//! seconds. For that reason, we do not recommend running Tiger systems at
//! greater than 90% load … Tiger contains code to prevent schedule
//! insertions beyond a certain level, which we disabled for this test."
//!
//! This bench re-enables that code: with an admission limit, late arrivals
//! are rejected outright instead of waiting out the saturated schedule, so
//! every admitted viewer starts quickly.

use tiger_bench::{header, sosp_tiger};
use tiger_sim::SimDuration;
use tiger_workload::{run_startup, CatalogSpec, StartupConfig};

fn run(limit: Option<f64>) -> (usize, f64, f64, usize) {
    let mut tiger = sosp_tiger();
    tiger.admission_limit = limit;
    let cfg = StartupConfig {
        catalog: CatalogSpec::sized_for(SimDuration::from_secs(2_000), 64),
        loads: vec![0.5, 0.8, 0.9, 0.95, 1.0],
        probes_per_load: 40,
        failed_cub: None,
        tiger,
    };
    let result = run_startup(&cfg);
    let n = result.samples.len();
    let mean_high = result.mean_in(0.85, 1.01).unwrap_or(f64::NAN);
    (n, result.max(), mean_high, result.count_above(20.0))
}

fn main() {
    header(
        "Ablation: admission control (§5's disabled safety valve)",
        "without a limit, starts near 100% load can wait out whole schedule \
         laps; a 90% limit rejects them instead, bounding admitted latency",
    );
    println!("admission   started  mean>85%load  max_latency  >20s_outliers");
    for (label, limit) in [("disabled (paper's test)", None), ("90% limit", Some(0.9))] {
        let (n, max, mean_high, outliers) = run(limit);
        println!("{label:<22} {n:>7}  {mean_high:>11.2}s {max:>11.2}s  {outliers:>13}",);
    }
    println!();
    println!(
        "shape: the limit trades availability (fewer admitted starts) for \
         bounded startup latency — the operational recommendation of §5."
    );
}
