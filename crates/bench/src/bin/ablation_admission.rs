//! Admission-control ablation (§5).
//!
//! "However, there are a reasonable number of outliers that took over 20
//! seconds. For that reason, we do not recommend running Tiger systems at
//! greater than 90% load … Tiger contains code to prevent schedule
//! insertions beyond a certain level, which we disabled for this test."
//!
//! This bench re-enables that code: with an admission limit, late arrivals
//! are rejected outright instead of waiting out the saturated schedule, so
//! every admitted viewer starts quickly.
//!
//! The two policy runs are independent; the body lives in
//! `tiger_bench::fleet` and shards them across `TIGER_FLEET_THREADS`
//! workers (output is identical at any thread count).

use tiger_bench::fleet::{admission_report, threads_from_env, Scale};
use tiger_bench::header;

fn main() {
    header(
        "Ablation: admission control (§5's disabled safety valve)",
        "without a limit, starts near 100% load can wait out whole schedule \
         laps; a 90% limit rejects them instead, bounding admitted latency",
    );
    let report = admission_report(Scale::Full, threads_from_env());
    print!("{}", report.output);
}
