//! Render tiger-trace dumps as human-readable timelines.
//!
//! Three modes:
//!
//! * `trace_timeline <dump>` — parse one dump (as written by
//!   `TIGER_TRACE_FILE` or a `TIGER_PROP_REPLAY` auto-dump) and print the
//!   per-cub / per-slot timeline.
//! * `trace_timeline --diff <a> <b>` — normalize two dumps and show the
//!   first divergence with context (e.g. the same seed run on two builds,
//!   or trace-on vs trace-off repro attempts).
//! * `trace_timeline --demo` — run a small deterministic scenario (four
//!   cubs, a handful of viewers, one stop, one power-cut) with tracing on
//!   and print its timeline. CI pins this output as a golden
//!   (`results/trace_timeline_demo.txt`).

use std::process::ExitCode;

use tiger_core::{TigerConfig, TigerSystem};
use tiger_layout::CubId;
use tiger_sim::{Bandwidth, SimDuration, SimTime};
use tiger_trace::{parse_dump, render_diff, render_timeline};

const USAGE: &str = "usage: trace_timeline <dump-file>
       trace_timeline --diff <dump-a> <dump-b>
       trace_timeline --demo
       trace_timeline --rejoin-demo
       trace_timeline --shrink-demo";

/// Lines of context shown around the first divergence in `--diff`.
const DIFF_CONTEXT: usize = 5;

fn load(path: &str) -> Result<Vec<tiger_trace::TraceRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_dump(&text).map_err(|e| format!("{path}: {e}"))
}

/// The deterministic demo scenario: small system, scripted workload, one
/// failure. Everything is fixed (no wall clock, no ambient entropy), so
/// the timeline is byte-stable and CI can diff it against a golden.
fn demo() -> String {
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    let mut sys = TigerSystem::new(cfg);
    sys.enable_trace(16_384);
    let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(20));
    let clients: Vec<u32> = (0..3).map(|_| sys.add_client()).collect();
    let mut viewers = Vec::new();
    for (i, &c) in clients.iter().enumerate() {
        let at = SimTime::from_millis(50 + 400 * i as u64);
        viewers.push(sys.request_start(at, c, film));
    }
    // One viewer stops early (exercises the controller deschedule route and
    // the hold-expiry path); one cub loses power mid-stream (deadman
    // declaration, failure notices, mirror takeover).
    sys.request_stop(SimTime::from_secs(6), viewers[1]);
    sys.fail_cub_at(SimTime::from_secs(9), CubId(2));
    sys.run_until(SimTime::from_secs(14));
    render_timeline(&sys.tracer().records())
}

/// The deterministic rejoin scenario: a cub loses power mid-stream, is
/// declared dead and covered by its mirrors, then restarts and re-learns
/// its slots through the rejoin hand-back. The timeline pins the whole
/// online-recovery arc — power-cut, deadman declaration, mirror
/// takeover, cub-restart, hand-back grant, and the first re-accepted
/// slot (`rejoin-done`) — as a golden
/// (`results/trace_rejoin_timeline.txt`).
fn rejoin_demo() -> String {
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    let mut sys = TigerSystem::new(cfg);
    sys.enable_trace(32_768);
    let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(30));
    let clients: Vec<u32> = (0..3).map(|_| sys.add_client()).collect();
    for (i, &c) in clients.iter().enumerate() {
        let at = SimTime::from_millis(50 + 400 * i as u64);
        sys.request_start(at, c, film);
    }
    sys.fail_cub_at(SimTime::from_secs(9), CubId(2));
    sys.restart_cub_at(SimTime::from_secs(16), CubId(2));
    sys.run_until(SimTime::from_secs(22));
    render_timeline(&sys.tracer().records())
}

/// The deterministic shrink scenario: a live `remove=1` restripe under
/// streaming load. The timeline pins the whole shrink arc — the queued
/// plan starting, the leaving cub's primaries draining to survivors
/// (`shrink-drain`), the fence (`shrink-fence`), and the cut-over — as
/// a golden (`results/trace_shrink_timeline.txt`).
fn shrink_demo() -> String {
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    let mut sys = TigerSystem::new(cfg);
    sys.enable_trace(65_536);
    let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(30));
    let clients: Vec<u32> = (0..3).map(|_| sys.add_client()).collect();
    for (i, &c) in clients.iter().enumerate() {
        let at = SimTime::from_millis(50 + 400 * i as u64);
        sys.request_start(at, c, film);
    }
    sys.request_restripe_remove(SimTime::from_secs(5), 1);
    sys.run_until(SimTime::from_secs(40));
    render_timeline(&sys.tracer().records())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag] if flag == "--demo" => {
            print!("{}", demo());
            Ok(())
        }
        [flag] if flag == "--rejoin-demo" => {
            print!("{}", rejoin_demo());
            Ok(())
        }
        [flag] if flag == "--shrink-demo" => {
            print!("{}", shrink_demo());
            Ok(())
        }
        [flag, a, b] if flag == "--diff" => {
            let (ra, rb) = (load(a)?, load(b)?);
            print!("{}", render_diff(&ra, &rb, DIFF_CONTEXT));
            Ok(())
        }
        [path] if !path.starts_with('-') => {
            let records = load(path)?;
            print!("{}", render_timeline(&records));
            Ok(())
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
