//! Redundancy ablation: declustered mirroring vs the `tiger-coded`
//! MDS-coded backend at equal (2x) storage overhead.
//!
//! ```text
//! ablation_coded [--threads N] [--scale quick|full]
//! ```
//!
//! Drives the canonical flash-crowd plan (blocking-probability curve,
//! side by side) and the flashcrowd-crash plan (chaos invariants 1–6)
//! against both backends. Stdout is bit-identical at any `--threads`
//! count. Exits non-zero if the coded peak exceeds the mirrored peak or
//! any chaos invariant is violated, so CI can gate on it.

use std::process::exit;

use tiger_bench::coded::ablation_coded_report;
use tiger_bench::fleet::{threads_from_env, Scale};
use tiger_bench::header;

fn main() {
    let mut threads = threads_from_env();
    let mut scale = Scale::Quick;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .as_deref()
                    .and_then(Scale::parse)
                    .unwrap_or_else(|| usage("--scale needs 'quick' or 'full'"));
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    header(
        "Ablation: mirrored vs coded redundancy (flash crowd, equal storage)",
        "declustered mirroring pins every degraded read to the fixed partner \
         set; an MDS code serves it from any k surviving shards, chosen \
         against the admission load index",
    );
    let report = ablation_coded_report(scale, threads);
    print!("{}", report.output);
    if report.output.contains("FAIL") || report.output.contains("VIOLATION") {
        eprintln!("ablation_coded: check failed");
        exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("ablation_coded: {msg}");
    eprintln!("usage: ablation_coded [--threads N] [--scale quick|full]");
    exit(2)
}
