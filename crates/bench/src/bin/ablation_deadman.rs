//! Deadman-timeout ablation: the loss window after a power-cut tracks the
//! detection latency.
//!
//! §5 measured "about 8 seconds between the earliest and latest lost
//! block" — the window is dominated by how long the deadman protocol waits
//! before declaring a silent neighbour dead, plus the mirror-state fill.
//! Shorter timeouts shrink the window but risk false positives under
//! latency jitter; this sweep quantifies the first half of that tradeoff.
//!
//! The per-timeout power-cut runs are independent; the body lives in
//! `tiger_bench::fleet` and shards them across `TIGER_FLEET_THREADS`
//! workers (output is identical at any thread count).

use tiger_bench::fleet::{deadman_report, threads_from_env, Scale};
use tiger_bench::header;

fn main() {
    header(
        "Ablation: deadman timeout vs reconfiguration loss window",
        "the ~8 s loss window of §5 is detection latency + takeover fill; \
         it scales with the deadman timeout",
    );
    let report = deadman_report(Scale::Full, threads_from_env());
    print!("{}", report.output);
}
