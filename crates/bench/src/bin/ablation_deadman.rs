//! Deadman-timeout ablation: the loss window after a power-cut tracks the
//! detection latency.
//!
//! §5 measured "about 8 seconds between the earliest and latest lost
//! block" — the window is dominated by how long the deadman protocol waits
//! before declaring a silent neighbour dead, plus the mirror-state fill.
//! Shorter timeouts shrink the window but risk false positives under
//! latency jitter; this sweep quantifies the first half of that tradeoff.

use tiger_bench::{header, sosp_tiger};
use tiger_layout::CubId;
use tiger_sim::{SimDuration, SimTime};
use tiger_workload::{run_reconfig, CatalogSpec, ReconfigConfig};

fn main() {
    header(
        "Ablation: deadman timeout vs reconfiguration loss window",
        "the ~8 s loss window of §5 is detection latency + takeover fill; \
         it scales with the deadman timeout",
    );
    println!("timeout  detection_s  loss_window_s  blocks_lost  (50% load, 301 streams)");
    for timeout_ms in [1_500u64, 3_000, 5_000, 8_000] {
        let mut tiger = sosp_tiger();
        tiger.deadman_timeout = SimDuration::from_millis(timeout_ms);
        let cfg = ReconfigConfig {
            catalog: CatalogSpec::sized_for(SimDuration::from_secs(260), 16),
            load: 0.5,
            victim: CubId(5),
            cut_at: SimTime::from_secs(120),
            observe: SimDuration::from_secs(120),
            tiger,
        };
        let r = run_reconfig(&cfg);
        println!(
            "{:>6.1}s {:>12.2} {:>14.2} {:>12}",
            timeout_ms as f64 / 1e3,
            r.detection_secs.unwrap_or(f64::NAN),
            r.loss_window_secs,
            r.blocks_lost,
        );
    }
    println!();
    println!(
        "shape: the loss window moves nearly one-for-one with the deadman \
         timeout; the §5 configuration (5 s timeout) lands near the paper's \
         ~8 s measurement."
    );
}
