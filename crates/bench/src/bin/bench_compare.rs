//! Compares two `BENCH_*.json` snapshots and flags median regressions.
//!
//! ```text
//! bench_compare BASELINE.json CANDIDATE.json
//! ```
//!
//! Prints one row per benchmark with the median delta. Exits 1 if any
//! benchmark present in both snapshots regressed by more than the
//! tolerance (10%, overridable via `TIGER_BENCH_TOL`, in percent).
//! Benchmarks present in only one snapshot are listed but never fatal, so
//! adding or retiring a micro-bench doesn't break the comparison stage.

use std::process::exit;

use tiger_bench::runner::{parse_snapshot, BenchResult};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, candidate_path] = args.as_slice() else {
        eprintln!("usage: bench_compare BASELINE.json CANDIDATE.json");
        exit(2);
    };
    let tolerance_pct: f64 = std::env::var("TIGER_BENCH_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);

    let baseline = load(baseline_path);
    let candidate = load(candidate_path);

    println!("benchmark                                base_median  cand_median    delta");
    let mut regressions = 0u32;
    for c in &candidate {
        let Some(b) = baseline.iter().find(|b| b.name == c.name) else {
            println!("{:<40} {:>11} {:>12.1}     new", c.name, "-", c.median_ns);
            continue;
        };
        let delta_pct = if b.median_ns > 0.0 {
            (c.median_ns - b.median_ns) / b.median_ns * 100.0
        } else {
            0.0
        };
        let flag = if delta_pct > tolerance_pct {
            regressions += 1;
            "  REGRESSION"
        } else {
            ""
        };
        println!(
            "{:<40} {:>11.1} {:>12.1} {:>+7.1}%{}",
            c.name, b.median_ns, c.median_ns, delta_pct, flag
        );
    }
    for b in &baseline {
        if !candidate.iter().any(|c| c.name == b.name) {
            println!("{:<40} {:>11.1} {:>12}  removed", b.name, b.median_ns, "-");
        }
    }

    if regressions > 0 {
        eprintln!(
            "bench_compare: {regressions} benchmark(s) regressed more than \
             {tolerance_pct}% on the median"
        );
        exit(1);
    }
    println!("no median regression above {tolerance_pct}%");
}

fn load(path: &str) -> Vec<BenchResult> {
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {path}: {e}");
        exit(2);
    });
    let results = parse_snapshot(&json);
    if results.is_empty() {
        eprintln!("bench_compare: no benchmarks found in {path}");
        exit(2);
    }
    results
}
