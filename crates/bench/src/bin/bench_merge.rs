//! Consolidates several micro-bench runs into one conservative snapshot.
//!
//! ```text
//! bench_merge RUN1.json RUN2.json ... > BENCH_micro.json
//! ```
//!
//! For every benchmark, emits the run with the **largest median** — the
//! pessimistic envelope. On a host with intermittent slow phases (shared
//! 1-vCPU VMs routinely have 1.5-2x stretches), snapshotting a single
//! lucky run makes every later `bench_compare` false-fire; taking the
//! max-median over six-plus spaced runs bakes the slow phases into the
//! baseline instead. Driven by `scripts/bench_snapshot.sh`.
//!
//! Exits non-zero if the runs don't all contain the same benchmark set,
//! so a filtered or crashed run can't silently shrink the snapshot.

use std::process::exit;

use tiger_bench::runner::{parse_snapshot, results_json, BenchResult};

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.len() < 2 {
        eprintln!("usage: bench_merge RUN1.json RUN2.json ... > BENCH_micro.json");
        exit(2);
    }
    let runs: Vec<Vec<BenchResult>> = paths
        .iter()
        .map(|p| {
            let json = std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("bench_merge: cannot read {p}: {e}");
                exit(2);
            });
            let results = parse_snapshot(&json);
            if results.is_empty() {
                eprintln!("bench_merge: no benchmarks found in {p}");
                exit(2);
            }
            results
        })
        .collect();

    // The first run fixes the benchmark set and order; every other run
    // must cover exactly the same names.
    let mut merged: Vec<BenchResult> = Vec::with_capacity(runs[0].len());
    for base in &runs[0] {
        let mut worst = base.clone();
        for (run, path) in runs.iter().zip(&paths).skip(1) {
            let Some(r) = run.iter().find(|r| r.name == base.name) else {
                eprintln!("bench_merge: {path} is missing benchmark '{}'", base.name);
                exit(1);
            };
            if r.median_ns > worst.median_ns {
                worst = r.clone();
            }
        }
        merged.push(worst);
    }
    for (run, path) in runs.iter().zip(&paths).skip(1) {
        for r in run {
            if !runs[0].iter().any(|b| b.name == r.name) {
                eprintln!(
                    "bench_merge: {path} has extra benchmark '{}' absent from {}",
                    r.name, paths[0]
                );
                exit(1);
            }
        }
    }

    eprintln!(
        "bench_merge: {} benchmarks, max-median over {} runs",
        merged.len(),
        runs.len()
    );
    print!("{}", results_json(&merged));
}
