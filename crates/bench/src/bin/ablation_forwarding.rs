//! §4.1.1 ablation: single vs double forwarding of viewer states.
//!
//! "We could have chosen to forward viewer states only once … Under the
//! single forwarding model any time a cub failed the other cubs would have
//! to go back, figure out what schedule information had been lost and
//! recreate it. Furthermore, between the failure and the detection, not
//! only would the data stored on the failed cub be lost, but so also would
//! the data from the subsequent cubs that never received the viewer
//! states."
//!
//! The three policy runs are independent simulations; the body lives in
//! `tiger_bench::fleet` and shards them across `TIGER_FLEET_THREADS`
//! workers (output is identical at any thread count).

use tiger_bench::fleet::{forwarding_report, threads_from_env, Scale};
use tiger_bench::header;

fn main() {
    header(
        "Ablation: single vs double forwarding (§4.1.1)",
        "single forwarding halves control traffic but loses schedule \
         information (and thus stream blocks) across a cub failure",
    );
    let report = forwarding_report(Scale::Full, threads_from_env());
    print!("{}", report.output);
}
