//! §4.1.1 ablation: single vs double forwarding of viewer states.
//!
//! "We could have chosen to forward viewer states only once … Under the
//! single forwarding model any time a cub failed the other cubs would have
//! to go back, figure out what schedule information had been lost and
//! recreate it. Furthermore, between the failure and the detection, not
//! only would the data stored on the failed cub be lost, but so also would
//! the data from the subsequent cubs that never received the viewer
//! states."

use tiger_bench::header;
use tiger_core::{ForwardingPolicy, TigerConfig, TigerSystem};
use tiger_layout::CubId;
use tiger_sim::{Bandwidth, SimDuration, SimTime};

struct Outcome {
    client_missing: u64,
    tail_starved: u64,
    control_bytes: u64,
}

fn run(policy: ForwardingPolicy, gap_recovery: bool) -> Outcome {
    let mut cfg = TigerConfig::sosp97();
    cfg.forwarding = policy;
    cfg.gap_recovery = gap_recovery;
    let mut sys = TigerSystem::new(cfg);
    let file = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(240));
    for i in 0..100u64 {
        let client = sys.add_client();
        sys.request_start(SimTime::from_millis(100 + i * 180), client, file);
    }
    sys.fail_cub_at(SimTime::from_secs(60), CubId(5));
    sys.run_until(SimTime::from_secs(260));
    let report = sys.all_clients_report();
    let tail: u64 = sys
        .clients()
        .iter()
        .flat_map(|c| c.viewers())
        .map(|(_, v)| u64::from(v.tail_missing()))
        .sum();
    let node = sys.shared().cub_node(CubId(0));
    Outcome {
        client_missing: report.blocks_missing,
        tail_starved: tail,
        control_bytes: sys.shared().net.total_control_bytes(node),
    }
}

fn main() {
    header(
        "Ablation: single vs double forwarding (§4.1.1)",
        "single forwarding halves control traffic but loses schedule \
         information (and thus stream blocks) across a cub failure",
    );
    let single_bare = run(ForwardingPolicy::Single, false);
    let single_rec = run(ForwardingPolicy::Single, true);
    let double = run(ForwardingPolicy::Double, true);
    println!("policy                 missing_blocks  starved_tail_blocks  cub0_control_bytes");
    println!(
        "single, no recovery    {:>14}  {:>19}  {:>18}",
        single_bare.client_missing, single_bare.tail_starved, single_bare.control_bytes
    );
    println!(
        "single + go-back       {:>14}  {:>19}  {:>18}",
        single_rec.client_missing, single_rec.tail_starved, single_rec.control_bytes
    );
    println!(
        "double (paper)         {:>14}  {:>19}  {:>18}",
        double.client_missing, double.tail_starved, double.control_bytes
    );
    println!();
    println!(
        "control-traffic ratio single/double: {:.2} (paper: single would have \
         halved viewer-state sends)",
        single_rec.control_bytes as f64 / double.control_bytes as f64
    );
    println!(
        "the paper's argument, quantified: bare single forwarding permanently \
         starves every stream whose record died with the cub; recovering them \
         requires the go-back machinery the paper deemed not worth building — \
         double forwarding gets the same resilience for ~2x viewer-state sends."
    );
}
