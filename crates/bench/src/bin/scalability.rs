//! §3.3: why schedule management is distributed.
//!
//! The centralized controller must push one ~100-byte command per stream
//! per block play time: 3-4 MB/s at 40,000 streams — "probably beyond the
//! capability of the class of personal computers used to construct a Tiger
//! system." The distributed design's per-cub control traffic stays constant
//! as the system grows.

use tiger_bench::{header, sosp_tiger};
use tiger_core::central::{central_control_send_rate, CentralSystem};
use tiger_core::TigerConfig;
use tiger_layout::{CubId, FileId, StripeConfig};
use tiger_sched::ScheduleParams;
use tiger_sim::{Bandwidth, SimDuration, SimTime};
use tiger_workload::{run_ramp, CatalogSpec, RampConfig};

fn distributed_per_cub_traffic(num_cubs: u32, target: Option<u32>) -> (u32, f64) {
    let mut tiger = TigerConfig::sosp97();
    tiger.stripe = StripeConfig::new(num_cubs, 4, 4);
    tiger.num_clients = (num_cubs * 3).max(8);
    let settle = SimDuration::from_secs(25);
    // Files must outlast the whole ramp so streams do not decay to EOF.
    let capacity_estimate = num_cubs * 4 * 11;
    let ramp_len = settle.mul_u64(u64::from(capacity_estimate / 30 + 2));
    let cfg = RampConfig {
        catalog: CatalogSpec::sized_for(ramp_len, 16),
        settle,
        target,
        ..RampConfig::fig8(tiger, settle)
    };
    let result = run_ramp(&cfg);
    let last = result.windows.last().expect("windows");
    (last.streams, last.control_bytes_per_sec)
}

fn main() {
    header(
        "Scalability: centralized vs distributed schedule management (§3.3)",
        "central controller send rate grows to MB/s; per-cub distributed \
         traffic stays roughly constant (<21 KB/s measured in §5)",
    );

    println!("-- centralized controller (analytic, 100 B commands + framing) --");
    for streams in [602u64, 4_000, 10_000, 40_000] {
        let rate = central_control_send_rate(streams, SimDuration::from_secs(1));
        println!(
            "{streams:>7} streams -> controller must send {:>10.2} MB/s",
            rate / 1e6
        );
    }

    println!();
    println!("-- centralized controller (simulated small system) --");
    let params = ScheduleParams::derive(
        StripeConfig::new(14, 4, 4),
        SimDuration::from_secs(1),
        tiger_sim::ByteSize::from_bytes(250_000),
        sosp_tiger().disk_worst_read(),
        Bandwidth::from_mbit_per_sec(135),
    );
    let mut central = CentralSystem::new(params);
    while central
        .start_viewer(FileId(0), Bandwidth::from_mbit_per_sec(2), SimTime::ZERO)
        .is_some()
    {}
    let stats = central.window_stats();
    println!(
        "{} streams -> {:.1} KB/s control sends, controller CPU {:.1}%",
        stats.streams,
        stats.ctrl_bytes_per_sec / 1e3,
        stats.ctrl_cpu * 100.0
    );

    println!();
    println!("-- distributed (measured per-cub viewer-state traffic) --");
    println!("cubs  streams  per-cub control B/s");
    for cubs in [7u32, 14, 28] {
        let (streams, rate) = distributed_per_cub_traffic(cubs, None);
        println!("{cubs:>4}  {streams:>7}  {rate:>12.0}");
    }
    println!();
    println!(
        "note: per-cub traffic tracks streams *per cub* (constant as the \
         system scales out), while the central controller's rate tracks \
         *total* streams."
    );
    let _ = CubId(0);
}
