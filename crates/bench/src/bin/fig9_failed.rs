//! Figure 9: Tiger loads with one cub failed.
//!
//! Same ramp as Figure 8 with cub 5 power-cut for the entire run, then an
//! hour of steady state at full load. Disk load and control traffic are
//! reported for mirroring cub 6 (the paper reports "one of the cubs that
//! was mirroring for the failed cub").
//!
//! The experiment body lives in `tiger_bench::fleet` (shared with the
//! `fleet` bin); this wrapper runs it at paper scale.

use tiger_bench::fleet::{fig9_report, threads_from_env, Scale};
use tiger_bench::header;

fn main() {
    header(
        "Figure 9: Tiger loads with one cub failed",
        "mirroring-cub disks >95% duty at 602 streams; cub CPU <=85%; \
         control traffic ~2x the unfailed case",
    );
    let report = fig9_report(Scale::Full, threads_from_env());
    print!("{}", report.output);
}
