//! Figure 9: Tiger loads with one cub failed.
//!
//! Same ramp as Figure 8 with cub 5 power-cut for the entire run, then an
//! hour of steady state at full load. Disk load and control traffic are
//! reported for mirroring cub 6 (the paper reports "one of the cubs that
//! was mirroring for the failed cub").

use tiger_bench::{header, settle, sosp_tiger};
use tiger_sim::SimDuration;
use tiger_workload::{format_ramp_table, run_ramp, RampConfig};

fn main() {
    header(
        "Figure 9: Tiger loads with one cub failed",
        "mirroring-cub disks >95% duty at 602 streams; cub CPU <=85%; \
         control traffic ~2x the unfailed case",
    );
    let cfg = RampConfig {
        hold_at_peak: SimDuration::from_secs(3_600),
        ..RampConfig::fig9(sosp_tiger(), settle())
    };
    let result = run_ramp(&cfg);
    print!(
        "{}",
        format_ramp_table(
            "Figure 9 (cub 5 failed; disk/control columns report mirroring cub 6)",
            &result.windows,
        )
    );
    println!();
    println!(
        "blocks scheduled: {}  sent (incl. mirror pieces): {}  server missed: {} \
         ({} of them mirror pieces)  (1 in {})",
        result.loss.blocks_scheduled,
        result.loss.blocks_sent,
        result.loss.server_missed,
        result.loss.mirror_missed,
        result
            .loss
            .one_in()
            .map_or_else(|| "inf".to_string(), |n| n.to_string()),
    );
    println!(
        "client-observed missing: {}  received: {}",
        result.client_missing, result.client_received
    );
    println!(
        "peak read-ahead buffers: {:.1} MB (testbed cache: 20 MB/cub)",
        result.peak_buffers as f64 / 1e6
    );
}
