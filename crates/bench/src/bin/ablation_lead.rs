//! §4.1.1 ablation: viewer-state lead-time sensitivity.
//!
//! "Maintaining a certain minimum lead time allows the cubs to tolerate
//! some variability in communication latency … Limiting the maximum lead
//! time to a constant guarantees that the amount of schedule information
//! that a cub needs to keep does not depend on the size of the system.
//! Having a gap in between them allows the cubs to group viewer states
//! together into a single network message before forwarding them, and so
//! reduce communications overhead."
//!
//! The gap between minVStateLead and maxVStateLead is the batching budget:
//! a cub may sit on eligible records for up to (max − min) before their
//! receiver falls below the minimum lead, so the forwarding pass runs at
//! that cadence. Narrow gaps force frequent, small messages; wide gaps
//! amortize framing over large batches. Too-small minimum leads squeeze
//! the read-ahead budget and turn disk blips into missed blocks.

use tiger_bench::header;
use tiger_core::{TigerConfig, TigerSystem};
use tiger_layout::CubId;
use tiger_sim::{Bandwidth, SimDuration, SimTime};

struct Outcome {
    missing: u64,
    msgs: u64,
    bytes: u64,
}

fn run(min_lead_ms: u64, max_lead_ms: u64) -> Outcome {
    let mut cfg = TigerConfig::sosp97();
    cfg.disk = cfg.disk.without_blips(); // isolate protocol-induced lateness
    cfg.min_vstate_lead = SimDuration::from_millis(min_lead_ms);
    cfg.max_vstate_lead = SimDuration::from_millis(max_lead_ms);
    // The batching cadence the lead gap affords (§4.1.1), floored at a
    // sane minimum.
    cfg.forward_interval = SimDuration::from_millis((max_lead_ms - min_lead_ms) / 2)
        .max(SimDuration::from_millis(100));
    let mut sys = TigerSystem::new(cfg);
    let file = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(240));
    for i in 0..200u64 {
        let client = sys.add_client();
        sys.request_start(SimTime::from_millis(100 + i * 90), client, file);
    }
    sys.run_until(SimTime::from_secs(260));
    let node = sys.shared().cub_node(CubId(0));
    Outcome {
        missing: sys.all_clients_report().blocks_missing,
        msgs: sys.shared().net.total_control_msgs(node),
        bytes: sys.shared().net.total_control_bytes(node),
    }
}

fn main() {
    header(
        "Ablation: viewer-state lead (minVStateLead/maxVStateLead, §4.1.1)",
        "a wide min/max gap batches many viewer states per message; \
         a tight minimum lead leaves little slack for disk variance",
    );
    println!("min_lead  max_lead  missing_blocks  cub0_msgs  cub0_bytes  bytes/msg");
    for (min_ms, max_ms) in [
        (800u64, 1_000u64), // barely above the scheduling lead, tiny gap
        (2_000, 3_000),
        (4_000, 9_000), // the paper's typical values
        (4_000, 20_000),
    ] {
        let o = run(min_ms, max_ms);
        println!(
            "{:>7.1}s {:>8.1}s {:>14} {:>10} {:>11} {:>10.1}",
            min_ms as f64 / 1e3,
            max_ms as f64 / 1e3,
            o.missing,
            o.msgs,
            o.bytes,
            o.bytes as f64 / o.msgs as f64,
        );
    }
    println!();
    println!(
        "shape: the paper's 4 s/9 s leads cut per-cub message counts several-fold \
         versus a tight gap, by amortizing framing over batched viewer states; \
         bytes/msg grows with the gap."
    );
}
