//! §4.1.1 ablation: viewer-state lead-time sensitivity.
//!
//! "Maintaining a certain minimum lead time allows the cubs to tolerate
//! some variability in communication latency … Limiting the maximum lead
//! time to a constant guarantees that the amount of schedule information
//! that a cub needs to keep does not depend on the size of the system.
//! Having a gap in between them allows the cubs to group viewer states
//! together into a single network message before forwarding them, and so
//! reduce communications overhead."
//!
//! The gap between minVStateLead and maxVStateLead is the batching budget:
//! a cub may sit on eligible records for up to (max − min) before their
//! receiver falls below the minimum lead, so the forwarding pass runs at
//! that cadence. Narrow gaps force frequent, small messages; wide gaps
//! amortize framing over large batches. Too-small minimum leads squeeze
//! the read-ahead budget and turn disk blips into missed blocks.
//!
//! The four lead-gap runs are independent simulations; the body lives in
//! `tiger_bench::fleet` and shards them across `TIGER_FLEET_THREADS`
//! workers (output is identical at any thread count).

use tiger_bench::fleet::{lead_report, threads_from_env, Scale};
use tiger_bench::header;

fn main() {
    header(
        "Ablation: viewer-state lead (minVStateLead/maxVStateLead, §4.1.1)",
        "a wide min/max gap batches many viewer states per message; \
         a tight minimum lead leaves little slack for disk variance",
    );
    let report = lead_report(Scale::Full, threads_from_env());
    print!("{}", report.output);
}
