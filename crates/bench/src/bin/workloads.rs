//! The canonical workload-plan sweep: declarative demand plans (Zipf
//! hotspot, flash crowd, VCR churn, diurnal load, flashcrowd+crash)
//! driven through the fleet, reduced to blocking-probability /
//! ownership-conflict / deschedule-churn digests.
//!
//! ```text
//! workloads [--threads N] [--scale quick|full] [--filter NAME]
//! ```
//!
//! Stdout is bit-identical at any `--threads` count (and at any
//! `TIGER_FLEET_THREADS`, which sets the default). Exits non-zero if any
//! run violates an invariant, so CI can gate on it.

use std::process::exit;

use tiger_bench::fleet::{threads_from_env, Scale};
use tiger_bench::header;
use tiger_bench::workloads::workloads_report;

fn main() {
    let mut threads = threads_from_env();
    let mut scale = Scale::Quick;
    let mut filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .as_deref()
                    .and_then(Scale::parse)
                    .unwrap_or_else(|| usage("--scale needs 'quick' or 'full'"));
            }
            "--filter" => {
                filter = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--filter needs a plan-name substring")),
                );
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    header(
        "Workload plans (tiger-workgen demand vs the Tiger schedule)",
        "skewed, bursty, interactive demand is what the §4 ownership machinery \
         exists to survive; striping keeps even a flash crowd a non-event (§2.2)",
    );
    let report = workloads_report(scale, threads, filter.as_deref());
    print!("{}", report.output);
    if report.output.contains("VIOLATION") {
        eprintln!("workloads: invariant violations found");
        exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("workloads: {msg}");
    eprintln!("usage: workloads [--threads N] [--scale quick|full] [--filter NAME]");
    exit(2)
}
