//! Chaos campaigns: fault scenarios swept over injection timing and
//! workload seed, every run checked against the Tiger invariants.
//!
//! Each sweep point is one [`tiger_workload::run_chaos`] campaign: the
//! small-test system loaded to 50%, a declarative fault plan applied, and
//! the outcome reduced to the one-line [`tiger_workload::chaos_digest`].
//! Scenarios are written in the `FaultPlan::parse` text format — the same
//! path an operator's scenario file takes — parameterized only by the
//! injection instant.
//!
//! Because every campaign is a pure function of `(scenario, t, seed)`, the
//! sweep shards through [`run_indexed`] like any other fleet job and its
//! report is bit-identical at any thread count. A digest line ending in
//! `violations 0` is a passing point; the `chaos` bin exits non-zero if
//! any point violates an invariant.

use std::fmt::Write as _;

use tiger_faults::FaultPlan;
use tiger_layout::StripeConfig;
use tiger_workload::{chaos_digest, run_chaos, ChaosConfig};

use crate::fleet::{run_indexed, ExpReport, Scale};

/// Which topology a scenario runs on. Most templates target the
/// small-test ring (cubs c0..c3, one disk each, 2 s deadman); scenarios
/// that kill two cubs need the wide 8-cub ring (on 4 cubs with
/// decluster 2 every pair overlaps a mirror group), and the spare-shield
/// scenario additionally provisions one spare for the shield to claim.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Topo {
    /// The 4-cub small-test ring.
    Small,
    /// The 8-cub wide ring.
    Wide,
    /// The 8-cub wide ring plus one provisioned spare.
    WideSpare,
}

/// One scenario template: a stable name, the plan text at injection
/// instant `t` (seconds), and the topology it needs.
type Scenario = (&'static str, fn(u64) -> String, Topo);

/// The scenario catalogue, in the fixed order the report prints.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        ("single-crash", |t| format!("crash c1 at={t}s"), Topo::Small),
        // One power-domain cut taking two cubs at once. Survivable only
        // when the victims sit in different mirror groups, which needs
        // the wide ring: on 4 cubs with decluster 2 every pair overlaps
        // a mirror group and the data is simply gone.
        (
            "power-domain",
            |t| format!("power-domain c1,c4 at={t}s"),
            Topo::Wide,
        ),
        // 6 s stall against a 2 s deadman: declared dead mid-freeze, then
        // resumes as a zombie and must fence itself.
        (
            "freeze-trip",
            |t| format!("freeze c2 from={t}s until={}s", t + 6),
            Topo::Small,
        ),
        // A 1 s stall leaves worst-case observed silence (stall + ping
        // interval + latency) under the 2 s timeout: the other side of
        // the deadman boundary, the run must stay declaration-free.
        (
            "freeze-blip",
            |t| format!("freeze c3 from={t}s until={}s", t + 1),
            Topo::Small,
        ),
        (
            "partition-heal",
            |t| format!("partition c0,c1|c2,c3 from={t}s heal={}s", t + 3),
            Topo::Small,
        ),
        (
            "disk-brownout",
            |t| {
                format!(
                    "disk-transient c1:0 prob=0.5 from={t}s until={u}s\n\
                     disk-degraded c2:0 factor=3 from={t}s until={u}s",
                    u = t + 8
                )
            },
            Topo::Small,
        ),
        (
            "lossy-control",
            |t| {
                format!(
                    "drop ctrl>* prob=0.2 from={t}s until={u}s\n\
                     delay c1>* extra=5ms jitter=5ms from={t}s until={u}s\n\
                     dup *>ctrl prob=0.2 from={t}s until={u}s",
                    u = t + 10
                )
            },
            Topo::Small,
        ),
        // Crash, then rejoin 10 s later: the restarted cub must re-learn
        // its slots from the covering successor within the convergence
        // bound, and the fresh monitoring baseline must keep it from
        // being re-declared dead.
        (
            "crash-rejoin",
            |t| format!("crash c1 at={t}s\nrestart c1 at={}s", t + 10),
            Topo::Small,
        ),
        // The covering partner dies 400 ms into its hand-back window —
        // mid-catch-up. Loss must stay bounded (two covered single
        // failures), with no block double-served.
        (
            "double-fail-catchup",
            |t| {
                format!(
                    "crash c1 at={t}s\nrestart c1 at={r}s\ncrash c2 at={m}ms",
                    r = t + 10,
                    m = (t + 10) * 1000 + 400
                )
            },
            Topo::Small,
        ),
        // A fault-free live restripe widening the ring by two spares:
        // held to the §6.4 duration budget and the byte-level layout
        // invariants, with streams riding across the cut-over.
        (
            "restripe-quiet",
            |t| format!("restripe at={t}s add=2"),
            Topo::Small,
        ),
        // A source cub dies with restripe moves in flight and rejoins
        // 10 s later: the plan parks, resumes, and still cuts over.
        (
            "restripe-rejoin",
            |t| {
                format!(
                    "restripe at={t}s add=2\ncrash c1 at={}s\nrestart c1 at={}s",
                    t + 2,
                    t + 12
                )
            },
            Topo::Small,
        ),
        // Crash, then rejoin only 3 s later — inside the deschedule hold.
        // The predecessor's retired-log tail is still fresh, so the
        // sub-interval replay carries nearly every in-flight record and
        // the convergence invariant is held to its tightest case.
        (
            "fast-rejoin",
            |t| format!("crash c1 at={t}s\nrestart c1 at={}s", t + 3),
            Topo::Small,
        ),
        // A live *shrink* under streaming load: one cub drains, fences,
        // and leaves the ring mid-play. Injected early (the drain copies
        // a quarter of the catalogue at background pace) so the cut-over
        // lands inside the 90 s campaign at every sweep instant.
        (
            "shrink-load",
            |t| format!("restripe at={}s remove=1", 5 + t / 3),
            Topo::Small,
        ),
        // Two non-adjacent cubs die 30 s apart with a spare provisioned:
        // the shield copies the first victim's exposed decluster spans to
        // the spare, which then serves as interim mirror capacity through
        // the second failure. Needs the wide ring (double failure) and
        // victims in different mirror groups so the span sources survive.
        (
            "spare-shield",
            |t| format!("crash c1 at={t}s\ncrash c3 at={}s", t + 30),
            Topo::WideSpare,
        ),
    ]
}

/// The chaos sweep: scenario × injection instant × seed.
pub fn chaos_report(scale: Scale, threads: usize) -> ExpReport {
    let scenarios = scenarios();
    let (times, seeds): (&[u64], &[u64]) = match scale {
        Scale::Full => (&[20, 30, 45], &[1997, 42]),
        Scale::Quick => (&[30], &[1997]),
    };
    let points: Vec<(usize, u64, u64)> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(s, _)| {
            times
                .iter()
                .flat_map(move |&t| seeds.iter().map(move |&seed| (s, t, seed)))
        })
        .collect();
    let outcomes = run_indexed(points.len(), threads, |i| {
        let (s, t, seed) = points[i];
        let plan = FaultPlan::parse(&(scenarios[s].1)(t)).expect("scenario template parses");
        let mut cfg = ChaosConfig::quick(plan);
        cfg.tiger.seed = seed;
        match scenarios[s].2 {
            Topo::Small => {}
            Topo::Wide | Topo::WideSpare => {
                cfg.tiger.stripe = StripeConfig::new(8, 1, 2);
                cfg.tiger.num_clients = 8;
                if scenarios[s].2 == Topo::WideSpare {
                    cfg.tiger.spare_cubs = 1;
                }
            }
        }
        run_chaos(&cfg)
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario        t    seed  outcome ({} campaigns, small-test system, 50% load)",
        points.len()
    );
    let mut bad = 0usize;
    for (&(s, t, seed), o) in points.iter().zip(&outcomes) {
        let _ = writeln!(
            out,
            "{:<14} {t:>3}s {seed:>6}  {}",
            scenarios[s].0,
            chaos_digest(o)
        );
        for v in &o.violations {
            bad += 1;
            let _ = writeln!(out, "  VIOLATION: {v}");
        }
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "invariants: no double delivery, every deadman declaration justified \
         (partitioned rings modeled), view lead bounded, single-failure loss \
         window bounded, rejoin convergence bounded (sub-interval with \
         retired replay), restripe/shrink within the §6.4 duration budget. \
         violations: {bad}."
    );
    ExpReport {
        name: "chaos",
        output: out,
        metrics: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_template_parses_at_any_instant() {
        for (name, tmpl, _) in scenarios() {
            for t in [5, 30, 45] {
                let plan = FaultPlan::parse(&tmpl(t))
                    .unwrap_or_else(|e| panic!("scenario {name} at t={t}: {e}"));
                assert!(!plan.is_empty(), "scenario {name} is empty");
            }
        }
    }

    #[test]
    fn chaos_report_is_thread_count_invariant() {
        let one = chaos_report(Scale::Quick, 1);
        let four = chaos_report(Scale::Quick, 4);
        assert_eq!(one.output, four.output);
        assert!(one.output.contains("violations: 0"));
    }
}
