//! An in-tree micro-benchmark runner (the criterion replacement).
//!
//! Keeps the parts of criterion this repo used — `bench_function` with a
//! calibrated `Bencher::iter` loop — and adds what criterion made awkward:
//! machine-readable JSON on stdout-adjacent channels so the BENCH_*.json
//! trajectory can be tracked across PRs without any registry dependency.
//!
//! Protocol per benchmark:
//!
//! 1. *Calibrate*: starting at one iteration, double the batch size until
//!    one batch takes ≥ [`Runner::MIN_BATCH`].
//! 2. *Warm up*: run one calibrated batch, discarded.
//! 3. *Sample*: time [`Runner::SAMPLES`] batches; report per-iteration
//!    nanoseconds as min / median / mean.
//!
//! The human-readable table goes to stderr; the JSON document goes to
//! stdout (and to the path in `TIGER_BENCH_OUT`, if set), so
//! `cargo bench --bench micro > BENCH_micro.json` does the obvious thing.
//! A single CLI argument filters benchmarks by substring, and the
//! libtest-style `--bench` flag cargo passes is ignored.

use std::time::Instant;

/// Re-export of the standard optimizer barrier, so benchmark files need no
/// direct `std::hint` import churn relative to the criterion version.
pub use std::hint::black_box;

/// Times one calibrated batch of the benchmarked operation.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `f` for the batch's iteration count and records the elapsed
    /// wall-clock time. Call exactly once from the benchmark closure.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// One benchmark's aggregated result.
///
/// Serialized with a *stable field order* (the order of the fields below)
/// so `BENCH_*.json` snapshots diff cleanly across PRs and the
/// `bench_compare` tool can treat missing fields as "older schema".
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchResult {
    /// Benchmark name (`group/function`).
    pub name: String,
    /// Iterations per timed batch after calibration.
    pub iters_per_sample: u64,
    /// Discarded warm-up batches run before sampling (each of
    /// `iters_per_sample` iterations).
    pub warmup_batches: u64,
    /// Timed batches.
    pub samples: u64,
    /// Threads the runner timed on (always 1 today — batches are timed
    /// sequentially — recorded so snapshots stay comparable if that
    /// ever changes).
    pub threads: u64,
    /// Fastest observed per-iteration time, nanoseconds.
    pub min_ns: f64,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: f64,
}

/// Collects and reports benchmark results.
pub struct Runner {
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_args()
    }
}

impl Runner {
    /// Minimum time one calibrated batch must take, nanoseconds.
    const MIN_BATCH: u128 = 5_000_000;
    /// Timed batches per benchmark.
    const SAMPLES: usize = 25;
    /// Warm-up batches run (and discarded) before sampling.
    const WARMUP_BATCHES: u64 = 1;

    /// Builds a runner from CLI args: the first argument that is not a
    /// `--flag` (cargo passes `--bench`) is a substring filter.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Runner {
            filter,
            results: Vec::new(),
        }
    }

    /// Calibrates, warms up, samples, and records one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Calibrate: double the batch until it runs long enough to time.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            f(&mut b);
            assert!(
                b.elapsed_ns > 0 || iters > 1,
                "benchmark '{name}' never called iter()"
            );
            if b.elapsed_ns >= Self::MIN_BATCH || iters >= 1 << 30 {
                break;
            }
            iters *= 2;
        }
        // Warm-up batch, discarded.
        let mut warm = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut warm);
        // Timed samples.
        let mut per_iter: Vec<f64> = (0..Self::SAMPLES)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed_ns: 0,
                };
                f(&mut b);
                b.elapsed_ns as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min_ns = per_iter[0];
        let median_ns = per_iter[per_iter.len() / 2];
        let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        eprintln!(
            "{name:<40} {min_ns:>12.1} ns/iter (min)  {median_ns:>12.1} (median)  \
             {mean_ns:>12.1} (mean)  [{iters} iters x {} samples]",
            Self::SAMPLES
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            iters_per_sample: iters,
            warmup_batches: Self::WARMUP_BATCHES,
            samples: Self::SAMPLES as u64,
            threads: 1,
            min_ns,
            median_ns,
            mean_ns,
        });
    }

    /// The JSON document for the collected results. Field order is stable
    /// (see [`BenchResult`]) so snapshots diff line-by-line across PRs.
    pub fn to_json(&self) -> String {
        results_json(&self.results)
    }

    /// Prints the JSON document to stdout and, if `TIGER_BENCH_OUT` is
    /// set, writes it there too.
    pub fn finish(self) {
        let json = self.to_json();
        print!("{json}");
        if let Ok(path) = std::env::var("TIGER_BENCH_OUT") {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }
}

/// Serializes results to the `BENCH_*.json` snapshot format (the inverse
/// of [`parse_snapshot`]); shared by the live [`Runner`] and the
/// `bench_merge` snapshot consolidator.
pub fn results_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": {}, \"iters_per_sample\": {}, \"warmup_batches\": {}, \
             \"samples\": {}, \"threads\": {}, \
             \"min_ns\": {:.2}, \"median_ns\": {:.2}, \"mean_ns\": {:.2}}}{}\n",
            json_string(&r.name),
            r.iters_per_sample,
            r.warmup_batches,
            r.samples,
            r.threads,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `BENCH_*.json` snapshot produced by [`Runner::to_json`].
///
/// This is the inverse of the emitter, not a general JSON parser: it
/// understands exactly the one-object-per-line shape the runner writes
/// (names contain no unescaped quotes beyond `\"` handled below). Fields
/// absent from older snapshots (`warmup_batches`, `threads`) default to
/// zero, so `bench_compare` can diff across the schema change.
pub fn parse_snapshot(json: &str) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"name\"") {
            continue;
        }
        let Some(name) = str_field(line, "name") else {
            continue;
        };
        out.push(BenchResult {
            name,
            iters_per_sample: num_field(line, "iters_per_sample") as u64,
            warmup_batches: num_field(line, "warmup_batches") as u64,
            samples: num_field(line, "samples") as u64,
            threads: num_field(line, "threads") as u64,
            min_ns: num_field(line, "min_ns"),
            median_ns: num_field(line, "median_ns"),
            mean_ns: num_field(line, "mean_ns"),
        });
    }
    out
}

/// Extracts the string value of `"key": "..."` from one snapshot line,
/// undoing the escapes [`json_string`] applies.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"key": <number>` from one snapshot
/// line; 0.0 when the key is absent (older schema).
fn num_field(line: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\": ");
    let Some(start) = line.find(&pat).map(|i| i + pat.len()) else {
        return 0.0;
    };
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap_or(0.0)
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a/b"), "\"a/b\"");
        assert_eq!(json_string("q\"x\\"), "\"q\\\"x\\\\\"");
        assert_eq!(json_string("\n"), "\"\\n\"");
    }

    #[test]
    fn results_serialize_to_valid_shape() {
        let mut r = Runner {
            filter: None,
            results: Vec::new(),
        };
        r.results.push(BenchResult {
            name: "group/fn".into(),
            iters_per_sample: 1024,
            warmup_batches: 1,
            samples: 25,
            threads: 1,
            min_ns: 12.5,
            median_ns: 13.0,
            mean_ns: 13.2,
        });
        let json = r.to_json();
        assert!(json.contains("\"benchmarks\": ["));
        assert!(json.contains("\"name\": \"group/fn\""));
        assert!(json.contains("\"min_ns\": 12.50"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Stable field order: iters/warmup/samples/threads before timings.
        let line = json.lines().find(|l| l.contains("group/fn")).unwrap();
        let order = [
            "name",
            "iters_per_sample",
            "warmup_batches",
            "samples",
            "threads",
            "min_ns",
        ];
        let positions: Vec<usize> = order
            .iter()
            .map(|k| line.find(&format!("\"{k}\"")).expect(k))
            .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "field order drifted"
        );
    }

    #[test]
    fn snapshot_roundtrips_through_parser() {
        let mut r = Runner {
            filter: None,
            results: Vec::new(),
        };
        r.results.push(BenchResult {
            name: "event_queue/churn \"4k\"".into(),
            iters_per_sample: 2048,
            warmup_batches: 1,
            samples: 25,
            threads: 1,
            min_ns: 53.79,
            median_ns: 54.44,
            mean_ns: 56.23,
        });
        let parsed = parse_snapshot(&r.to_json());
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "event_queue/churn \"4k\"");
        assert_eq!(parsed[0].iters_per_sample, 2048);
        assert_eq!(parsed[0].threads, 1);
        assert!((parsed[0].median_ns - 54.44).abs() < 1e-9);
    }

    #[test]
    fn parser_tolerates_older_schema() {
        // Pre-schema snapshots lack warmup_batches/threads; they parse with
        // those fields zeroed rather than failing the comparison.
        let old = "{\n  \"benchmarks\": [\n    \
                   {\"name\": \"a/b\", \"iters_per_sample\": 64, \"samples\": 25, \
                   \"min_ns\": 1.00, \"median_ns\": 2.00, \"mean_ns\": 3.00}\n  ]\n}\n";
        let parsed = parse_snapshot(old);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].warmup_batches, 0);
        assert_eq!(parsed[0].threads, 0);
        assert!((parsed[0].median_ns - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bench_function_measures_and_filters() {
        let mut r = Runner {
            filter: Some("keep".into()),
            results: Vec::new(),
        };
        r.bench_function("keep/this", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(1));
                x
            })
        });
        r.bench_function("skip/this", |b| b.iter(|| 1u64));
        assert_eq!(r.results.len(), 1);
        assert_eq!(r.results[0].name, "keep/this");
        assert!(r.results[0].min_ns >= 0.0);
        assert!(r.results[0].mean_ns >= r.results[0].min_ns);
    }
}
