//! An in-tree micro-benchmark runner (the criterion replacement).
//!
//! Keeps the parts of criterion this repo used — `bench_function` with a
//! calibrated `Bencher::iter` loop — and adds what criterion made awkward:
//! machine-readable JSON on stdout-adjacent channels so the BENCH_*.json
//! trajectory can be tracked across PRs without any registry dependency.
//!
//! Protocol per benchmark:
//!
//! 1. *Calibrate*: starting at one iteration, double the batch size until
//!    one batch takes ≥ [`Runner::MIN_BATCH`].
//! 2. *Warm up*: run one calibrated batch, discarded.
//! 3. *Sample*: time [`Runner::SAMPLES`] batches; report per-iteration
//!    nanoseconds as min / median / mean.
//!
//! The human-readable table goes to stderr; the JSON document goes to
//! stdout (and to the path in `TIGER_BENCH_OUT`, if set), so
//! `cargo bench --bench micro > BENCH_micro.json` does the obvious thing.
//! A single CLI argument filters benchmarks by substring, and the
//! libtest-style `--bench` flag cargo passes is ignored.

use std::time::Instant;

/// Re-export of the standard optimizer barrier, so benchmark files need no
/// direct `std::hint` import churn relative to the criterion version.
pub use std::hint::black_box;

/// Times one calibrated batch of the benchmarked operation.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `f` for the batch's iteration count and records the elapsed
    /// wall-clock time. Call exactly once from the benchmark closure.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// One benchmark's aggregated result.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name (`group/function`).
    pub name: String,
    /// Iterations per timed batch after calibration.
    pub iters_per_sample: u64,
    /// Timed batches.
    pub samples: u64,
    /// Fastest observed per-iteration time, nanoseconds.
    pub min_ns: f64,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: f64,
}

/// Collects and reports benchmark results.
pub struct Runner {
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_args()
    }
}

impl Runner {
    /// Minimum time one calibrated batch must take, nanoseconds.
    const MIN_BATCH: u128 = 5_000_000;
    /// Timed batches per benchmark.
    const SAMPLES: usize = 25;

    /// Builds a runner from CLI args: the first argument that is not a
    /// `--flag` (cargo passes `--bench`) is a substring filter.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Runner {
            filter,
            results: Vec::new(),
        }
    }

    /// Calibrates, warms up, samples, and records one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Calibrate: double the batch until it runs long enough to time.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            f(&mut b);
            assert!(
                b.elapsed_ns > 0 || iters > 1,
                "benchmark '{name}' never called iter()"
            );
            if b.elapsed_ns >= Self::MIN_BATCH || iters >= 1 << 30 {
                break;
            }
            iters *= 2;
        }
        // Warm-up batch, discarded.
        let mut warm = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut warm);
        // Timed samples.
        let mut per_iter: Vec<f64> = (0..Self::SAMPLES)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed_ns: 0,
                };
                f(&mut b);
                b.elapsed_ns as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min_ns = per_iter[0];
        let median_ns = per_iter[per_iter.len() / 2];
        let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        eprintln!(
            "{name:<40} {min_ns:>12.1} ns/iter (min)  {median_ns:>12.1} (median)  \
             {mean_ns:>12.1} (mean)  [{iters} iters x {} samples]",
            Self::SAMPLES
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            iters_per_sample: iters,
            samples: Self::SAMPLES as u64,
            min_ns,
            median_ns,
            mean_ns,
        });
    }

    /// The JSON document for the collected results.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"iters_per_sample\": {}, \"samples\": {}, \
                 \"min_ns\": {:.2}, \"median_ns\": {:.2}, \"mean_ns\": {:.2}}}{}\n",
                json_string(&r.name),
                r.iters_per_sample,
                r.samples,
                r.min_ns,
                r.median_ns,
                r.mean_ns,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Prints the JSON document to stdout and, if `TIGER_BENCH_OUT` is
    /// set, writes it there too.
    pub fn finish(self) {
        let json = self.to_json();
        print!("{json}");
        if let Ok(path) = std::env::var("TIGER_BENCH_OUT") {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a/b"), "\"a/b\"");
        assert_eq!(json_string("q\"x\\"), "\"q\\\"x\\\\\"");
        assert_eq!(json_string("\n"), "\"\\n\"");
    }

    #[test]
    fn results_serialize_to_valid_shape() {
        let mut r = Runner {
            filter: None,
            results: Vec::new(),
        };
        r.results.push(BenchResult {
            name: "group/fn".into(),
            iters_per_sample: 1024,
            samples: 25,
            min_ns: 12.5,
            median_ns: 13.0,
            mean_ns: 13.2,
        });
        let json = r.to_json();
        assert!(json.contains("\"benchmarks\": ["));
        assert!(json.contains("\"name\": \"group/fn\""));
        assert!(json.contains("\"min_ns\": 12.50"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn bench_function_measures_and_filters() {
        let mut r = Runner {
            filter: Some("keep".into()),
            results: Vec::new(),
        };
        r.bench_function("keep/this", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(1));
                x
            })
        });
        r.bench_function("skip/this", |b| b.iter(|| 1u64));
        assert_eq!(r.results.len(), 1);
        assert_eq!(r.results[0].name, "keep/this");
        assert!(r.results[0].min_ns >= 0.0);
        assert!(r.results[0].mean_ns >= r.results[0].min_ns);
    }
}
