//! The canonical workload-plan sweep: declarative `tiger-workgen` plans
//! (skewed popularity, flash crowds, VCR churn, diurnal load, and a
//! flash-crowd composed with a cub crash) driven through the fleet.
//!
//! Each point runs one plan at one seed. Demand-only plans go through
//! [`tiger_workload::run_workgen`] and reduce to blocking-probability /
//! ownership-conflict / deschedule-churn digests; the composed
//! flashcrowd-crash plan goes through [`tiger_workload::run_chaos`] with
//! the plan as the load phase, so the full chaos invariant set (1–6) is
//! enforced under the surge. The flash-crowd plan also emits its
//! blocking-probability curve — the §2.2 quantity the coded-storage
//! comparison (PAPERS.md) optimizes.
//!
//! Every point is a pure function of `(plan, seed)`, so the sweep shards
//! through [`run_indexed`] and its report is bit-identical at any thread
//! count. Digest lines ending in `violations 0` pass; the `workloads` bin
//! exits non-zero on any `VIOLATION` line.

use std::fmt::Write as _;

use tiger_sim::{SimDuration, SimTime};
use tiger_workgen::WorkloadPlan;
use tiger_workload::{
    chaos_digest, run_chaos, run_workgen, workgen_digest, CatalogSpec, ChaosConfig, WorkgenConfig,
};

use crate::fleet::{run_indexed, ExpReport, Scale};

/// One plan template: a stable name and the plan text at a given scale.
type PlanTemplate = (&'static str, fn(Scale) -> String);

/// The canonical plan catalogue, in the fixed order the report prints.
pub fn plans() -> Vec<PlanTemplate> {
    vec![
        // Zipf-skewed demand near capacity: the head titles concentrate
        // load; striping must keep it a non-event (§2.2).
        ("zipf-hotspot", |s| match s {
            Scale::Quick => "zipf s=1.1 titles=16\narrivals rate=0.45/s\n\
                             viewers max=40\nhorizon t=60s"
                .into(),
            Scale::Full => "zipf s=1.1 titles=32\narrivals rate=0.6/s\n\
                            viewers max=200\nhorizon t=180s"
                .into(),
        }),
        // Correlated point-to-multipoint surge on one title — the
        // worst case for declustered mirroring in the coded-storage
        // comparison; blocking probability is the figure of merit.
        ("flash-crowd", |s| match s {
            Scale::Quick => "zipf s=1.1 titles=16\n\
                             flashcrowd title=t0 at=30s peak=40x decay=15s\n\
                             arrivals rate=0.3/s\nviewers max=150\nhorizon t=60s"
                .into(),
            Scale::Full => "zipf s=1.1 titles=32\n\
                            flashcrowd title=t0 at=60s peak=50x decay=30s\n\
                            arrivals rate=0.4/s\nviewers max=400\nhorizon t=180s"
                .into(),
        }),
        // Heavy VCR interactivity: the §4.1.2 instance/deschedule
        // machinery under constant pause/resume/seek churn.
        ("vcr-heavy", |s| {
            match s {
            Scale::Quick => "uniform titles=8\narrivals rate=0.3/s\n\
                             session interactive=0.6 pause=3/min dwell=8s seek=2/min abandon=0.5/min\n\
                             viewers max=30\nhorizon t=60s"
                .into(),
            Scale::Full => "uniform titles=16\narrivals rate=0.5/s\n\
                            session interactive=0.6 pause=3/min dwell=15s seek=2/min abandon=0.5/min\n\
                            viewers max=150\nhorizon t=180s"
                .into(),
        }
        }),
        // A compressed day: load swings between peak and trough through
        // two full periods; admission must track the swing cleanly.
        ("diurnal-endurance", |s| match s {
            Scale::Quick => "uniform titles=8\narrivals rate=0.5/s\n\
                             diurnal period=80s trough=0.2\n\
                             viewers max=60\nhorizon t=120s"
                .into(),
            Scale::Full => "uniform titles=16\narrivals rate=0.8/s\n\
                            diurnal period=120s trough=0.15\n\
                            viewers max=300\nhorizon t=240s"
                .into(),
        }),
        // Demand surge composed with a fault plan: a cub dies at the
        // crest of the flash crowd. Runs under the full chaos invariant
        // set (1–6); the single clean crash keeps the loss-window bound
        // (invariant 4) in force.
        ("flashcrowd-crash", |s| match s {
            Scale::Quick => "zipf s=1.1 titles=4\n\
                             flashcrowd title=t0 at=30s peak=20x decay=15s\n\
                             arrivals rate=0.2/s\nviewers max=60\nhorizon t=70s\n\
                             fault crash c1 at=40s"
                .into(),
            Scale::Full => "zipf s=1.1 titles=4\n\
                            flashcrowd title=t0 at=30s peak=30x decay=20s\n\
                            arrivals rate=0.3/s\nviewers max=120\nhorizon t=70s\n\
                            fault crash c1 at=40s"
                .into(),
        }),
    ]
}

/// One sweep point's reduced result.
struct PointResult {
    digest: String,
    violations: Vec<String>,
    /// Blocking-probability curve (flash-crowd points only).
    curve: Vec<(u64, u32, u32)>,
}

fn run_point(name: &str, text: &str, seed: u64) -> PointResult {
    let plan = WorkloadPlan::parse(text).expect("canonical plan parses");
    if plan.faults.is_empty() {
        let mut cfg = WorkgenConfig::quick(plan);
        cfg.tiger.seed = seed;
        let out = run_workgen(&cfg);
        PointResult {
            digest: workgen_digest(&out),
            violations: out.violations.clone(),
            curve: if name == "flash-crowd" {
                out.curve
                    .iter()
                    .map(|p| (p.t_secs, p.arrivals, p.blocked))
                    .collect()
            } else {
                Vec::new()
            },
        }
    } else {
        // Composed plan: the chaos runner drives the demand and enforces
        // invariants 1–6 against the embedded fault plan.
        let mut cfg = ChaosConfig::quick(plan.faults.clone());
        cfg.tiger.seed = seed;
        cfg.catalog = CatalogSpec::sized_for(SimDuration::from_secs(200), plan.titles());
        cfg.run_to = SimTime::ZERO + plan.horizon + SimDuration::from_secs(30);
        cfg.workload = Some(plan);
        let out = run_chaos(&cfg);
        PointResult {
            digest: chaos_digest(&out),
            violations: out.violations,
            curve: Vec::new(),
        }
    }
}

/// The workload sweep: plan × seed, optionally filtered to plans whose
/// name contains `filter`.
pub fn workloads_report(scale: Scale, threads: usize, filter: Option<&str>) -> ExpReport {
    let all = plans();
    let plans: Vec<&PlanTemplate> = all
        .iter()
        .filter(|(name, _)| filter.is_none_or(|f| name.contains(f)))
        .collect();
    let seeds: &[u64] = match scale {
        Scale::Full => &[1997, 42],
        Scale::Quick => &[1997],
    };
    let points: Vec<(usize, u64)> = plans
        .iter()
        .enumerate()
        .flat_map(|(p, _)| seeds.iter().map(move |&s| (p, s)))
        .collect();
    let results = run_indexed(points.len(), threads, |i| {
        let (p, seed) = points[i];
        let (name, tmpl) = plans[p];
        run_point(name, &tmpl(scale), seed)
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan                seed  outcome ({} runs, small-test system)",
        points.len()
    );
    let mut bad = 0usize;
    for (&(p, seed), r) in points.iter().zip(&results) {
        let _ = writeln!(out, "{:<18} {seed:>6}  {}", plans[p].0, r.digest);
        for v in &r.violations {
            bad += 1;
            let _ = writeln!(out, "  VIOLATION: {v}");
        }
    }
    // The flash-crowd blocking-probability curve (first seed): arrivals
    // and blocked per bucket, the series plotted against the
    // coded-storage yardstick.
    if let Some((&(p, seed), r)) = points
        .iter()
        .zip(&results)
        .find(|(&(p, _), r)| plans[p].0 == "flash-crowd" && !r.curve.is_empty())
    {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "flash-crowd blocking-probability curve (plan {}, seed {seed}):",
            plans[p].0
        );
        let _ = writeln!(out, "  t_bucket  arrivals  blocked  p_block");
        for &(t, arrivals, blocked) in &r.curve {
            let _ = writeln!(
                out,
                "  {t:>5}s  {arrivals:>8}  {blocked:>7}  {:>7.4}",
                if arrivals > 0 {
                    f64::from(blocked) / f64::from(arrivals)
                } else {
                    0.0
                }
            );
        }
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "figures of merit: blocking probability (admitted, never served), \
         ownership conflicts (vs-conflict), deschedule churn (desched-apply); \
         the composed flashcrowd-crash plan runs under chaos invariants 1-6. \
         violations: {bad}."
    );
    ExpReport {
        name: "workloads",
        output: out,
        metrics: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_canonical_plan_parses_at_both_scales() {
        for (name, tmpl) in plans() {
            for scale in [Scale::Quick, Scale::Full] {
                let plan = WorkloadPlan::parse(&tmpl(scale))
                    .unwrap_or_else(|e| panic!("plan {name} at {scale:?}: {e}"));
                assert!(plan.max_viewers > 0, "plan {name} admits nobody");
            }
        }
        // The composed plan must actually embed a fault.
        let composed = plans()
            .into_iter()
            .find(|(n, _)| *n == "flashcrowd-crash")
            .expect("catalogue has the composed plan");
        let plan = WorkloadPlan::parse(&(composed.1)(Scale::Quick)).unwrap();
        assert!(!plan.faults.is_empty(), "composed plan lost its crash");
    }

    #[test]
    fn workloads_report_is_thread_count_invariant() {
        let one = workloads_report(Scale::Quick, 1, None);
        let three = workloads_report(Scale::Quick, 3, None);
        assert_eq!(one.output, three.output);
        assert!(one.output.contains("violations: 0"), "{}", one.output);
        assert!(
            one.output.contains("blocking-probability curve"),
            "flash-crowd curve missing:\n{}",
            one.output
        );
    }

    #[test]
    fn filter_narrows_the_sweep() {
        let only = workloads_report(Scale::Quick, 1, Some("diurnal"));
        assert!(only.output.contains("diurnal-endurance"));
        assert!(!only.output.contains("vcr-heavy"));
    }
}
