//! The coded-vs-mirrored redundancy ablation (PAPERS.md, coded-storage
//! comparison; docs/CODED.md).
//!
//! Both backends spend exactly 2x storage per block — mirroring stores a
//! full secondary copy in `decluster` pieces, the coded backend stores
//! `2k` shards of `B/k` bytes with any-`k` reconstruction — so the
//! comparison isolates the *placement and service* policy at equal
//! overhead. Two canonical plans (from [`crate::workloads::plans`])
//! drive each backend:
//!
//! * `flash-crowd` — the correlated single-title surge, reduced to the
//!   blocking-probability-vs-time curve (§2.2's figure of merit). The
//!   report prints both backends' curves side by side and checks that
//!   the coded peak does not exceed the mirrored peak (at the test
//!   system's `k = 2`, coded worst-case service time is lower, so the
//!   same hardware admits more of the surge).
//! * `flashcrowd-crash` — the same surge with a cub crash at the crest,
//!   run through the chaos harness so the full invariant set (1–6) is
//!   enforced on both backends under degraded service.
//!
//! Every point is a pure function of `(plan, backend, seed)`; the sweep
//! shards through [`run_indexed`] and is bit-identical at any thread
//! count.

use std::fmt::Write as _;

use tiger_core::RedundancyMode;
use tiger_sim::{SimDuration, SimTime};
use tiger_workgen::WorkloadPlan;
use tiger_workload::{
    chaos_digest, run_chaos, run_workgen, workgen_digest, CatalogSpec, ChaosConfig, WorkgenConfig,
};

use crate::fleet::{run_indexed, ExpReport, Scale};
use crate::workloads::plans;

/// One (plan, backend) point's reduced result.
struct CodedPoint {
    digest: String,
    violations: Vec<String>,
    /// `(t_secs, arrivals, blocked)` curve (flash-crowd points only).
    curve: Vec<(u64, u32, u32)>,
}

fn backend_label(mode: RedundancyMode) -> &'static str {
    match mode {
        RedundancyMode::Mirrored => "mirrored",
        RedundancyMode::Coded => "coded",
    }
}

fn run_point(plan_text: &str, mode: RedundancyMode, seed: u64) -> CodedPoint {
    let plan = WorkloadPlan::parse(plan_text).expect("canonical plan parses");
    if plan.faults.is_empty() {
        let mut cfg = WorkgenConfig::quick(plan);
        cfg.tiger.seed = seed;
        cfg.tiger.redundancy = mode;
        let out = run_workgen(&cfg);
        CodedPoint {
            digest: workgen_digest(&out),
            violations: out.violations.clone(),
            curve: out
                .curve
                .iter()
                .map(|p| (p.t_secs, p.arrivals, p.blocked))
                .collect(),
        }
    } else {
        let mut cfg = ChaosConfig::quick(plan.faults.clone());
        cfg.tiger.seed = seed;
        cfg.tiger.redundancy = mode;
        cfg.catalog = CatalogSpec::sized_for(SimDuration::from_secs(200), plan.titles());
        cfg.run_to = SimTime::ZERO + plan.horizon + SimDuration::from_secs(30);
        cfg.workload = Some(plan);
        let out = run_chaos(&cfg);
        CodedPoint {
            digest: chaos_digest(&out),
            violations: out.violations,
            curve: Vec::new(),
        }
    }
}

fn peak_p_block(curve: &[(u64, u32, u32)]) -> f64 {
    curve
        .iter()
        .map(|&(_, arrivals, blocked)| {
            if arrivals > 0 {
                f64::from(blocked) / f64::from(arrivals)
            } else {
                0.0
            }
        })
        .fold(0.0, f64::max)
}

/// The redundancy ablation: {flash-crowd, flashcrowd-crash} x
/// {mirrored, coded} at equal (2x) storage overhead.
pub fn ablation_coded_report(scale: Scale, threads: usize) -> ExpReport {
    let all = plans();
    let surge = all
        .iter()
        .find(|(n, _)| *n == "flash-crowd")
        .expect("catalogue has the flash-crowd plan");
    let crash = all
        .iter()
        .find(|(n, _)| *n == "flashcrowd-crash")
        .expect("catalogue has the composed plan");
    let seed = 1997u64;
    let points: Vec<(&str, String, RedundancyMode)> = [surge, crash]
        .iter()
        .flat_map(|(name, tmpl)| {
            [RedundancyMode::Mirrored, RedundancyMode::Coded]
                .into_iter()
                .map(move |mode| (*name, tmpl(scale), mode))
        })
        .collect();
    let results = run_indexed(points.len(), threads, |i| {
        run_point(&points[i].1, points[i].2, seed)
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan              backend   outcome (seed {seed}, small-test system, 2x storage both)"
    );
    let mut bad = 0usize;
    for ((name, _, mode), r) in points.iter().zip(&results) {
        let _ = writeln!(out, "{name:<17} {:<9} {}", backend_label(*mode), r.digest);
        for v in &r.violations {
            bad += 1;
            let _ = writeln!(out, "  VIOLATION: {v}");
        }
    }

    // Side-by-side blocking-probability curves for the surge. Both runs
    // see the identical arrival sequence (demand is a pure function of
    // the plan and seed); only admission differs.
    let mirrored = &results[0];
    let coded = &results[1];
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "flash-crowd blocking-probability curve (mirrored vs coded, seed {seed}):"
    );
    let _ = writeln!(
        out,
        "  t_bucket  arrivals  m_blocked  m_p_block  c_blocked  c_p_block"
    );
    let buckets = mirrored.curve.len().max(coded.curve.len());
    for i in 0..buckets {
        let m = mirrored.curve.get(i);
        let c = coded.curve.get(i);
        let t = m.or(c).map_or(0, |p| p.0);
        let p_of = |pt: Option<&(u64, u32, u32)>| -> (u32, f64) {
            match pt {
                Some(&(_, arrivals, blocked)) if arrivals > 0 => {
                    (blocked, f64::from(blocked) / f64::from(arrivals))
                }
                Some(&(_, _, blocked)) => (blocked, 0.0),
                None => (0, 0.0),
            }
        };
        let arrivals = m.or(c).map_or(0, |p| p.1);
        let (mb, mp) = p_of(m);
        let (cb, cp) = p_of(c);
        let _ = writeln!(
            out,
            "  {t:>5}s  {arrivals:>8}  {mb:>9}  {mp:>9.4}  {cb:>9}  {cp:>9.4}"
        );
    }

    let m_peak = peak_p_block(&mirrored.curve);
    let c_peak = peak_p_block(&coded.curve);
    let overall = |curve: &[(u64, u32, u32)]| -> f64 {
        let arrivals: u32 = curve.iter().map(|p| p.1).sum();
        let blocked: u32 = curve.iter().map(|p| p.2).sum();
        if arrivals > 0 {
            f64::from(blocked) / f64::from(arrivals)
        } else {
            0.0
        }
    };
    let (m_all, c_all) = (overall(&mirrored.curve), overall(&coded.curve));
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "blocking probability: mirrored peak {m_peak:.4} overall {m_all:.4}  \
         coded peak {c_peak:.4} overall {c_all:.4}"
    );
    let _ = writeln!(
        out,
        "check: coded blocking <= mirrored (peak and overall) at equal storage: {}",
        if c_peak <= m_peak && c_all <= m_all {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(
        out,
        "check: chaos invariants 1-6 on both backends under the crash: {}",
        if bad == 0 { "PASS" } else { "FAIL" }
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "shape: at k = 2 the coded backend's worst-case slot work (two \
         half-block shard reads) undercuts mirroring's full block + piece, \
         so the same disks admit more of the surge and the crash costs no \
         unrecoverable blocks (any k of 2k shards reconstruct). At k = 4 \
         the relation flips — see docs/CODED.md. violations: {bad}."
    );
    ExpReport {
        name: "ablation_coded",
        output: out,
        metrics: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_coded_report_is_thread_count_invariant() {
        let one = ablation_coded_report(Scale::Quick, 1);
        let three = ablation_coded_report(Scale::Quick, 3);
        assert_eq!(one.output, three.output);
        assert!(one.output.contains("violations: 0"), "{}", one.output);
        assert!(
            !one.output.contains("FAIL"),
            "ablation checks failed:\n{}",
            one.output
        );
    }

    #[test]
    fn coded_peak_does_not_exceed_mirrored_at_quick_scale() {
        let report = ablation_coded_report(Scale::Quick, 2);
        assert!(
            report
                .output
                .contains("coded blocking <= mirrored (peak and overall) at equal storage: PASS"),
            "{}",
            report.output
        );
    }
}
