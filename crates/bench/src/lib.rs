//! Benchmark harness for the Tiger reproduction.
//!
//! One binary per paper artifact (see `DESIGN.md` §4 for the index):
//!
//! | target | artifact |
//! |---|---|
//! | `fig8_unfailed` | Figure 8: loads with no cubs failed |
//! | `fig9_failed` | Figure 9: loads with one cub failed |
//! | `fig10_startup` | Figure 10: stream startup latency vs schedule load |
//! | `loss_rates` | §5 text: delivered-block loss rates |
//! | `reconfig` | §5 text: power-cut reconfiguration window |
//! | `scalability` | §3.3: centralized vs distributed control traffic |
//! | `capacity` | §5 text: capacity derivation (10.75 streams/disk → 602) |
//! | `ablation_decluster` | §2.3: decluster-factor tradeoff |
//! | `ablation_forwarding` | §4.1.1: single vs double forwarding |
//! | `ablation_lead` | §4.1.1: viewer-state lead sensitivity |
//! | `ablation_fragmentation` | §3.2: network-schedule fragmentation |
//! | `ablation_mbr` | §4.2: two-phase insertion latency hiding (call- and message-level) |
//! | `ablation_deadman` | §5: loss window vs deadman timeout |
//! | `ablation_admission` | §5: the disabled admission-control code, re-enabled |
//! | `ablation_coded` | coded vs mirrored redundancy under the flash crowd, equal storage (docs/CODED.md) |
//! | `hotspot` | §2.2: striping absorbs single-file demand spikes |
//! | `chaos` | fault-injection campaigns (tiger-faults) checked against the Tiger invariants |
//! | `workloads` | canonical tiger-workgen demand plans: blocking / conflict / churn under skew, surges, VCR churn, diurnal swing |
//!
//! Micro-benches for the schedule operations themselves live in `benches/`
//! (the §5 premise that schedule management cost is negligible next to
//! data movement), driven by the in-tree [`runner`] so the workspace needs
//! no registry crates and emits machine-readable JSON for the
//! `BENCH_*.json` trajectory.

pub mod chaos;
pub mod coded;
pub mod fleet;
pub mod runner;
pub mod workloads;

use tiger_core::TigerConfig;
use tiger_sim::SimDuration;

/// The full-scale §5 system configuration used by every figure bench.
pub fn sosp_tiger() -> TigerConfig {
    TigerConfig::sosp97()
}

/// The paper's settle time per ramp step.
pub fn settle() -> SimDuration {
    SimDuration::from_secs(50)
}

/// Prints a standard header naming the artifact being regenerated.
pub fn header(artifact: &str, paper_says: &str) {
    println!("==============================================================");
    println!("{artifact}");
    println!("paper: {paper_says}");
    println!("==============================================================");
}
