//! A deterministic parallel experiment fleet.
//!
//! Every experiment in this repo is a pure function of
//! `(TigerConfig, workload, seed)` (the determinism contract of
//! `tests/determinism.rs`), which makes the *experiments themselves*
//! embarrassingly parallel even though each simulation is single-threaded:
//! the Figure 8 and Figure 9 ramps, each ablation sweep point, and each
//! seed of a multi-seed capacity run share no state at all.
//!
//! This module shards such independent runs across `std::thread::scope`
//! workers and merges their results **in shard order**, so everything a
//! job reports — rendered tables on stdout, merged [`Metrics`] — is
//! bit-identical no matter how many threads ran it. Timing (which *is*
//! thread-count dependent) is segregated into [`FleetResult::job_secs`] /
//! [`FleetResult::wall_secs`] and printed on stderr by the `fleet` bin,
//! never mixed into a report.
//!
//! Layering:
//!
//! * [`run_indexed`] — the deterministic parallel map every sweep uses:
//!   workers claim indices from an atomic counter, results land in
//!   index-ordered slots.
//! * `*_report` functions — one per experiment, shared between the
//!   per-experiment bins (`ablation_forwarding`, `capacity`, …) and the
//!   `fleet` bin, each parametrized by [`Scale`] and a thread count.
//! * [`standard_jobs`] / [`run_fleet`] — the whole catalogue, run as one
//!   fleet with job-level parallelism.
//!
//! The related property-harness knob is `TIGER_PROP_THREADS`
//! (`tiger_sim::check`), which shards property *cases* the same way; the
//! bins read `TIGER_FLEET_THREADS` for their sweep-point parallelism.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tiger_core::{
    ForwardingPolicy, MbrConfig, MbrCoordinator, MbrOutcome, MbrSystem, Metrics, TigerConfig,
    TigerSystem,
};
use tiger_layout::ids::ViewerInstance;
use tiger_layout::{CubId, DiskId, MirrorPlacement, StripeConfig, ViewerId};
use tiger_net::LatencyModel;
use tiger_sched::{NetEntryId, NetworkSchedule, ScheduleParams};
use tiger_sim::{Bandwidth, ByteSize, RngTree, SimDuration, SimTime};
use tiger_workload::{
    format_ramp_table, run_ramp, run_reconfig, run_startup, CatalogSpec, RampConfig, RampResult,
    ReconfigConfig, StartupConfig,
};

/// How big an experiment to run.
///
/// `Quick` shrinks every job to seconds (small-test configuration, short
/// ramps, fewer sweep points) for CI smoke and the determinism goldens;
/// `Full` is the paper-scale configuration the standalone bins run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long jobs on `TigerConfig::small_test`.
    Quick,
    /// Paper-scale (§5) jobs on `TigerConfig::sosp97`.
    Full,
}

impl Scale {
    /// Parses a `--scale` argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// Worker threads the per-experiment bins use for their sweeps, from
/// `TIGER_FLEET_THREADS` (default 1 — plain sequential runs).
pub fn threads_from_env() -> usize {
    std::env::var("TIGER_FLEET_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Runs `f(0)…f(n-1)` across up to `threads` scoped workers and returns
/// the results **in index order**.
///
/// This is the primitive every fleet sweep is built on: because results
/// are slotted by index (not completion order), the caller observes the
/// exact sequence a sequential loop would produce — the thread count can
/// only change wall-clock time, never output. A panicking worker
/// propagates out of the enclosing `thread::scope`.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let value = f(i);
                *slots[i].lock().expect("fleet slot lock") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("fleet slot lock")
                .expect("every index was claimed and filled")
        })
        .collect()
}

/// Concatenates shard metrics **in the order given**, which is the whole
/// determinism story: callers pass shards in index order (as returned by
/// [`run_indexed`]), so the merged value is bit-identical at any thread
/// count. Windows, latency samples, detections, and violations append;
/// loss counters sum.
pub fn merge_metrics<'a>(shards: impl IntoIterator<Item = &'a Metrics>) -> Metrics {
    let mut out = Metrics::new();
    for m in shards {
        out.windows.extend(m.windows.iter().cloned());
        out.loss.blocks_scheduled += m.loss.blocks_scheduled;
        out.loss.server_missed += m.loss.server_missed;
        out.loss.mirror_missed += m.loss.mirror_missed;
        out.loss.failover_lost += m.loss.failover_lost;
        out.loss.blocks_sent += m.loss.blocks_sent;
        out.start_latencies
            .extend(m.start_latencies.iter().copied());
        out.failure_detections
            .extend(m.failure_detections.iter().copied());
        out.violations.extend(m.violations.iter().cloned());
    }
    out
}

/// One experiment's deterministic result.
pub struct ExpReport {
    /// Stable job name (`fig8`, `ablation_lead`, …).
    pub name: &'static str,
    /// The rendered report — everything the experiment prints on stdout.
    pub output: String,
    /// Metrics of the full-system runs this job performed, in shard order
    /// (empty for analytic or data-structure-only experiments).
    pub metrics: Vec<Metrics>,
}

/// One named experiment in the fleet catalogue.
pub struct Job {
    /// Stable job name, also the `--filter` target.
    pub name: &'static str,
    /// The experiment body: `(scale, inner sweep threads) -> report`.
    pub run: fn(Scale, usize) -> ExpReport,
}

/// The full experiment catalogue, in the fixed order the fleet reports.
pub fn standard_jobs() -> Vec<Job> {
    vec![
        Job {
            name: "fig8",
            run: fig8_report,
        },
        Job {
            name: "fig9",
            run: fig9_report,
        },
        Job {
            name: "ablation_decluster",
            run: decluster_report,
        },
        Job {
            name: "ablation_forwarding",
            run: forwarding_report,
        },
        Job {
            name: "ablation_lead",
            run: lead_report,
        },
        Job {
            name: "ablation_fragmentation",
            run: fragmentation_report,
        },
        Job {
            name: "ablation_mbr",
            run: mbr_report,
        },
        Job {
            name: "ablation_deadman",
            run: deadman_report,
        },
        Job {
            name: "ablation_admission",
            run: admission_report,
        },
        Job {
            name: "capacity_seeds",
            run: capacity_seeds_report,
        },
    ]
}

/// A whole fleet run's results.
pub struct FleetResult {
    /// One report per job, in catalogue order.
    pub reports: Vec<ExpReport>,
    /// All job metrics merged in catalogue/shard order (the golden-test
    /// quantity: identical at every thread count).
    pub merged: Metrics,
    /// Wall seconds each job took (thread-count dependent; stderr only).
    pub job_secs: Vec<f64>,
    /// Wall seconds for the whole fleet.
    pub wall_secs: f64,
}

/// Runs `jobs` with job-level parallelism across `threads` workers.
///
/// Jobs run their internal sweeps sequentially here (inner threads = 1):
/// the fleet already saturates its workers at job granularity, and
/// nesting would oversubscribe without changing any output.
pub fn run_fleet(jobs: &[Job], scale: Scale, threads: usize) -> FleetResult {
    let wall = Instant::now();
    let timed = run_indexed(jobs.len(), threads, |i| {
        let start = Instant::now();
        let report = (jobs[i].run)(scale, 1);
        (report, start.elapsed().as_secs_f64())
    });
    let mut reports = Vec::with_capacity(timed.len());
    let mut job_secs = Vec::with_capacity(timed.len());
    for (report, secs) in timed {
        reports.push(report);
        job_secs.push(secs);
    }
    let merged = merge_metrics(reports.iter().flat_map(|r| r.metrics.iter()));
    FleetResult {
        reports,
        merged,
        job_secs,
        wall_secs: wall.elapsed().as_secs_f64(),
    }
}

/// A one-line deterministic digest of merged fleet metrics, printed on
/// stdout by the `fleet` bin and compared by the determinism golden.
pub fn metrics_digest(m: &Metrics) -> String {
    format!(
        "windows {}  start_samples {}  scheduled {}  sent {}  server_missed {}  \
         failover_lost {}  detections {}  violations {}",
        m.windows.len(),
        m.start_latencies.len(),
        m.loss.blocks_scheduled,
        m.loss.blocks_sent,
        m.loss.server_missed,
        m.loss.failover_lost,
        m.failure_detections.len(),
        m.violations.len(),
    )
}

fn metrics_of(result: &RampResult) -> Metrics {
    Metrics {
        windows: result.windows.clone(),
        loss: result.loss.clone(),
        start_latencies: result.start_latencies.clone(),
        ..Metrics::default()
    }
}

fn ramp_summary(out: &mut String, result: &RampResult, failed: bool) {
    if failed {
        let _ = writeln!(
            out,
            "blocks scheduled: {}  sent (incl. mirror pieces): {}  server missed: {} \
             ({} of them mirror pieces)  (1 in {})",
            result.loss.blocks_scheduled,
            result.loss.blocks_sent,
            result.loss.server_missed,
            result.loss.mirror_missed,
            result
                .loss
                .one_in()
                .map_or_else(|| "inf".to_string(), |n| n.to_string()),
        );
    } else {
        let _ = writeln!(
            out,
            "blocks scheduled: {}  sent: {}  server missed: {}  (1 in {})",
            result.loss.blocks_scheduled,
            result.loss.blocks_sent,
            result.loss.server_missed,
            result
                .loss
                .one_in()
                .map_or_else(|| "inf".to_string(), |n| n.to_string()),
        );
    }
    let _ = writeln!(
        out,
        "client-observed missing: {}  received: {}",
        result.client_missing, result.client_received
    );
    let _ = writeln!(
        out,
        "peak read-ahead buffers: {:.1} MB (testbed cache: 20 MB/cub)",
        result.peak_buffers as f64 / 1e6
    );
}

/// Figure 8: the unfailed ramp (§5). One simulation — nothing to shard —
/// but part of the fleet so it runs concurrently with every other job.
pub fn fig8_report(scale: Scale, _threads: usize) -> ExpReport {
    let cfg = match scale {
        Scale::Full => RampConfig {
            // A short hold at the top lets the final insertions land
            // (insertions near 100% load can take most of the 56 s
            // schedule, §5).
            hold_at_peak: SimDuration::from_secs(100),
            ..RampConfig::fig8(TigerConfig::sosp97(), SimDuration::from_secs(50))
        },
        Scale::Quick => quick_ramp(RampConfig::fig8(
            TigerConfig::small_test(),
            SimDuration::from_secs(15),
        )),
    };
    let result = run_ramp(&cfg);
    let title = match scale {
        Scale::Full => "Figure 8 (unfailed ramp to 602)",
        Scale::Quick => "Figure 8 (unfailed ramp, quick scale)",
    };
    let mut out = format_ramp_table(title, &result.windows);
    out.push('\n');
    ramp_summary(&mut out, &result, false);
    ExpReport {
        name: "fig8",
        output: out,
        metrics: vec![metrics_of(&result)],
    }
}

/// Figure 9: the same ramp with one cub failed throughout (§5).
pub fn fig9_report(scale: Scale, _threads: usize) -> ExpReport {
    let cfg = match scale {
        Scale::Full => RampConfig {
            hold_at_peak: SimDuration::from_secs(3_600),
            ..RampConfig::fig9(TigerConfig::sosp97(), SimDuration::from_secs(50))
        },
        Scale::Quick => RampConfig {
            failed_cub: Some(CubId(2)),
            disk_report_cub: Some(CubId(3)),
            report_cub: CubId(3),
            target: Some(16),
            hold_at_peak: SimDuration::from_secs(30),
            ..quick_ramp(RampConfig::fig8(
                TigerConfig::small_test(),
                SimDuration::from_secs(15),
            ))
        },
    };
    let result = run_ramp(&cfg);
    let title = match scale {
        Scale::Full => "Figure 9 (cub 5 failed; disk/control columns report mirroring cub 6)",
        Scale::Quick => "Figure 9 (one failed cub, quick scale)",
    };
    let mut out = format_ramp_table(title, &result.windows);
    out.push('\n');
    ramp_summary(&mut out, &result, true);
    ExpReport {
        name: "fig9",
        output: out,
        metrics: vec![metrics_of(&result)],
    }
}

/// Shrinks a paper ramp to the unit-test scale used across the repo.
fn quick_ramp(base: RampConfig) -> RampConfig {
    RampConfig {
        catalog: CatalogSpec::sized_for(SimDuration::from_secs(120), 4),
        step: 8,
        settle: SimDuration::from_secs(15),
        target: Some(24),
        ..base
    }
}

/// §2.3 decluster-factor tradeoff. Analytic (no simulation), so scale
/// changes nothing; the four factors still shard across workers.
pub fn decluster_report(_scale: Scale, threads: usize) -> ExpReport {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "decluster  reserved_bw%  exposure(disks)  capacity(56 disks)  svc_time"
    );
    let disk = tiger_disk::DiskProfile::sosp97();
    let factors = [1u32, 2, 4, 8];
    let rows = run_indexed(factors.len(), threads, |i| {
        let d = factors[i];
        let stripe = StripeConfig::new(14, 4, d);
        let placement = MirrorPlacement::new(stripe);
        let worst = disk.worst_case_read(ByteSize::from_bytes(250_000), d, true);
        let params = ScheduleParams::derive(
            stripe,
            SimDuration::from_secs(1),
            ByteSize::from_bytes(250_000),
            worst,
            Bandwidth::from_mbit_per_sec(135),
        );
        format!(
            "{d:>9}  {:>11.1}  {:>15}  {:>18}  {:?}\n",
            placement.reserved_bandwidth_fraction() * 100.0,
            placement.second_failure_exposure(DiskId(20)).len(),
            params.capacity(),
            params.block_service_time(),
        )
    });
    out.extend(rows);
    out.push('\n');
    let _ = writeln!(
        out,
        "shape: higher decluster -> less reserved bandwidth (higher capacity) \
         but wider two-failure exposure."
    );
    ExpReport {
        name: "ablation_decluster",
        output: out,
        metrics: Vec::new(),
    }
}

struct ForwardingOutcome {
    client_missing: u64,
    tail_starved: u64,
    control_bytes: u64,
}

fn forwarding_run(scale: Scale, policy: ForwardingPolicy, gap_recovery: bool) -> ForwardingOutcome {
    let (mut cfg, viewers, spacing_ms, victim, fail_at, run_to, film) = match scale {
        Scale::Full => (
            TigerConfig::sosp97(),
            100u64,
            180u64,
            CubId(5),
            SimTime::from_secs(60),
            SimTime::from_secs(260),
            SimDuration::from_secs(240),
        ),
        Scale::Quick => (
            TigerConfig::small_test(),
            24,
            180,
            CubId(2),
            SimTime::from_secs(30),
            SimTime::from_secs(120),
            SimDuration::from_secs(100),
        ),
    };
    cfg.forwarding = policy;
    cfg.gap_recovery = gap_recovery;
    let mut sys = TigerSystem::new(cfg);
    let file = sys.add_file(Bandwidth::from_mbit_per_sec(2), film);
    for i in 0..viewers {
        let client = sys.add_client();
        sys.request_start(SimTime::from_millis(100 + i * spacing_ms), client, file);
    }
    sys.fail_cub_at(fail_at, victim);
    sys.run_until(run_to);
    let report = sys.all_clients_report();
    let tail: u64 = sys
        .clients()
        .iter()
        .flat_map(|c| c.viewers())
        .map(|(_, v)| u64::from(v.tail_missing()))
        .sum();
    let node = sys.shared().cub_node(CubId(0));
    ForwardingOutcome {
        client_missing: report.blocks_missing,
        tail_starved: tail,
        control_bytes: sys.shared().net.total_control_bytes(node),
    }
}

/// §4.1.1 single vs double forwarding: three independent failure runs.
pub fn forwarding_report(scale: Scale, threads: usize) -> ExpReport {
    let points = [
        ("single, no recovery", ForwardingPolicy::Single, false),
        ("single + go-back", ForwardingPolicy::Single, true),
        ("double (paper)", ForwardingPolicy::Double, true),
    ];
    let outcomes = run_indexed(points.len(), threads, |i| {
        forwarding_run(scale, points[i].1, points[i].2)
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "policy                 missing_blocks  starved_tail_blocks  cub0_control_bytes"
    );
    for ((label, _, _), o) in points.iter().zip(&outcomes) {
        let _ = writeln!(
            out,
            "{label:<22} {:>14}  {:>19}  {:>18}",
            o.client_missing, o.tail_starved, o.control_bytes
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "control-traffic ratio single/double: {:.2} (paper: single would have \
         halved viewer-state sends)",
        outcomes[1].control_bytes as f64 / outcomes[2].control_bytes as f64
    );
    let _ = writeln!(
        out,
        "the paper's argument, quantified: bare single forwarding permanently \
         starves every stream whose record died with the cub; recovering them \
         requires the go-back machinery the paper deemed not worth building — \
         double forwarding gets the same resilience for ~2x viewer-state sends."
    );
    ExpReport {
        name: "ablation_forwarding",
        output: out,
        metrics: Vec::new(),
    }
}

struct LeadOutcome {
    missing: u64,
    msgs: u64,
    bytes: u64,
}

fn lead_run(scale: Scale, min_lead_ms: u64, max_lead_ms: u64) -> LeadOutcome {
    let (mut cfg, viewers, spacing_ms, run_to, film) = match scale {
        Scale::Full => (
            TigerConfig::sosp97(),
            200u64,
            90u64,
            SimTime::from_secs(260),
            SimDuration::from_secs(240),
        ),
        Scale::Quick => (
            TigerConfig::small_test(),
            24,
            90,
            SimTime::from_secs(80),
            SimDuration::from_secs(60),
        ),
    };
    cfg.disk = cfg.disk.without_blips(); // isolate protocol-induced lateness
    cfg.min_vstate_lead = SimDuration::from_millis(min_lead_ms);
    cfg.max_vstate_lead = SimDuration::from_millis(max_lead_ms);
    // The batching cadence the lead gap affords (§4.1.1), floored at a
    // sane minimum.
    cfg.forward_interval = SimDuration::from_millis((max_lead_ms - min_lead_ms) / 2)
        .max(SimDuration::from_millis(100));
    let mut sys = TigerSystem::new(cfg);
    let file = sys.add_file(Bandwidth::from_mbit_per_sec(2), film);
    for i in 0..viewers {
        let client = sys.add_client();
        sys.request_start(SimTime::from_millis(100 + i * spacing_ms), client, file);
    }
    sys.run_until(run_to);
    let node = sys.shared().cub_node(CubId(0));
    LeadOutcome {
        missing: sys.all_clients_report().blocks_missing,
        msgs: sys.shared().net.total_control_msgs(node),
        bytes: sys.shared().net.total_control_bytes(node),
    }
}

/// §4.1.1 viewer-state lead sensitivity: four independent lead-gap runs.
pub fn lead_report(scale: Scale, threads: usize) -> ExpReport {
    let points = [
        (800u64, 1_000u64), // barely above the scheduling lead, tiny gap
        (2_000, 3_000),
        (4_000, 9_000), // the paper's typical values
        (4_000, 20_000),
    ];
    let outcomes = run_indexed(points.len(), threads, |i| {
        lead_run(scale, points[i].0, points[i].1)
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "min_lead  max_lead  missing_blocks  cub0_msgs  cub0_bytes  bytes/msg"
    );
    for (&(min_ms, max_ms), o) in points.iter().zip(&outcomes) {
        let _ = writeln!(
            out,
            "{:>7.1}s {:>8.1}s {:>14} {:>10} {:>11} {:>10.1}",
            min_ms as f64 / 1e3,
            max_ms as f64 / 1e3,
            o.missing,
            o.msgs,
            o.bytes,
            o.bytes as f64 / o.msgs as f64,
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "shape: the paper's 4 s/9 s leads cut per-cub message counts several-fold \
         versus a tight gap, by amortizing framing over batched viewer states; \
         bytes/msg grows several-fold from the tightest cadence to the paper's gap."
    );
    ExpReport {
        name: "ablation_lead",
        output: out,
        metrics: Vec::new(),
    }
}

struct ChurnStats {
    /// Mean number of arrival opportunities a viewer waits before its
    /// entry fits (1 = admitted at its first position).
    mean_tries: f64,
    /// Arrivals that never fit within the retry budget.
    gave_up: u64,
    fragmentation: f64,
    steady_streams: usize,
}

fn churn(quantum: Option<SimDuration>, seed: u64, churns: u32) -> ChurnStats {
    let capacity = Bandwidth::from_mbit_per_sec(24);
    let bpt = SimDuration::from_secs(1);
    let mut sched = NetworkSchedule::new(14, bpt, capacity, quantum);
    let ring_ns = sched.len_duration().as_nanos();
    let mut rng = RngTree::new(seed).fork("frag", 0);
    let rate = Bandwidth::from_mbit_per_sec(2);
    let mut live: Vec<(ViewerInstance, NetEntryId)> = Vec::new();
    let mut next_viewer = 0u64;
    let mut total_tries = 0u64;
    let mut admissions = 0u64;
    let mut gave_up = 0u64;
    const RETRIES: u64 = 40;

    // An arrival attempts positions derived from successive arrival
    // instants until one fits (each retry models waiting for a later
    // opportunity).
    let mut admit = |sched: &mut NetworkSchedule,
                     rng: &mut tiger_sim::SimRng,
                     live: &mut Vec<(ViewerInstance, NetEntryId)>|
     -> bool {
        let inst = ViewerInstance {
            viewer: ViewerId(next_viewer),
            incarnation: 0,
        };
        next_viewer += 1;
        for attempt in 1..=RETRIES {
            let arrival = rng.gen_range(0..ring_ns);
            let start_ns = match quantum {
                Some(q) => arrival.div_ceil(q.as_nanos()) * q.as_nanos() % ring_ns,
                None => arrival,
            };
            if let Ok(id) = sched.insert(inst, SimDuration::from_nanos(start_ns), rate, false) {
                live.push((inst, id));
                total_tries += attempt;
                admissions += 1;
                return true;
            }
        }
        gave_up += 1;
        false
    };

    // Fill to a high watermark (~93% of the 168-stream ceiling), then churn:
    // one departure, one arrival, repeatedly. Fragmentation shows up as
    // arrivals failing to reuse the bandwidth departures freed.
    let mut rng_fill = RngTree::new(seed).fork("frag-fill", 0);
    while live.len() < 156 {
        if !admit(&mut sched, &mut rng_fill, &mut live) {
            break;
        }
    }
    for _ in 0..churns {
        let idx = rng.gen_range(0..live.len());
        let (inst, _) = live.swap_remove(idx);
        sched.remove_instance(inst);
        admit(&mut sched, &mut rng, &mut live);
    }
    ChurnStats {
        mean_tries: total_tries as f64 / admissions.max(1) as f64,
        gave_up,
        fragmentation: sched.fragmentation(rate, SimDuration::from_millis(25)),
        steady_streams: sched.len(),
    }
}

/// §3.2 fragmentation vs start-time quantization: four policies × five
/// seeds = twenty independent churn runs, the widest shard fan-out in the
/// catalogue.
pub fn fragmentation_report(scale: Scale, threads: usize) -> ExpReport {
    let churns = match scale {
        Scale::Full => 2_000u32,
        Scale::Quick => 300,
    };
    let policies = [
        ("arbitrary", None),
        ("bpt/2 grid", Some(SimDuration::from_millis(500))),
        ("bpt/4 grid (paper)", Some(SimDuration::from_millis(250))),
        ("bpt/8 grid", Some(SimDuration::from_millis(125))),
    ];
    const SEEDS: u64 = 5;
    // Shard at (policy, seed) granularity; rows still aggregate per policy
    // in policy order, so output is independent of the shard interleaving.
    let stats = run_indexed(policies.len() * SEEDS as usize, threads, |i| {
        let (_, quantum) = policies[i / SEEDS as usize];
        churn(quantum, (i as u64) % SEEDS, churns)
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "start policy        mean_tries  gave_up  fragmentation  steady_streams  (mean of {SEEDS} seeds)"
    );
    for (p, (label, _)) in policies.iter().enumerate() {
        let per_policy = &stats[p * SEEDS as usize..(p + 1) * SEEDS as usize];
        let tries: f64 = per_policy.iter().map(|s| s.mean_tries).sum();
        let gave_up: u64 = per_policy.iter().map(|s| s.gave_up).sum();
        let frag: f64 = per_policy.iter().map(|s| s.fragmentation).sum();
        let steady: usize = per_policy.iter().map(|s| s.steady_streams).sum();
        let _ = writeln!(
            out,
            "{label:<18}  {:>10.2}  {:>7}  {:>13.3}  {:>14.1}",
            tries / SEEDS as f64,
            gave_up,
            frag / SEEDS as f64,
            steady as f64 / SEEDS as f64,
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "shape: under identical churn near saturation, arbitrary starts give up \
         most often and sustain the fewest steady streams; quantized start \
         positions recover most of the lost admissions."
    );
    ExpReport {
        name: "ablation_fragmentation",
        output: out,
        metrics: Vec::new(),
    }
}

fn mbr_run(latency: LatencyModel, deadline_ms: u64, inserts: u64) -> (usize, u64, f64) {
    let mut cfg = MbrConfig::default_ring();
    cfg.latency = latency;
    let mut coord = MbrCoordinator::new(cfg);
    let mut rng = RngTree::new(11).fork("mbr-bench", 0);
    let rates = [1u64, 2, 3, 4, 6];
    let mut committed = 0usize;
    for i in 0..inserts {
        let origin = (i % 14) as u32;
        let rate = Bandwidth::from_mbit_per_sec(rates[rng.gen_range(0..rates.len())]);
        let out = coord.try_insert(
            SimTime::from_millis(i * 40),
            origin,
            rate,
            SimDuration::from_millis(deadline_ms),
        );
        match out {
            MbrOutcome::Committed { .. } => committed += 1,
            MbrOutcome::RejectedLocal => break,
            MbrOutcome::Aborted => {}
        }
    }
    (
        committed,
        coord.aborted_attempts(),
        coord.hidden_confirm_fraction(),
    )
}

/// §4.2 two-phase multiple-bitrate insertion: four latency models in
/// parallel, then the message-level protocol run.
pub fn mbr_report(scale: Scale, threads: usize) -> ExpReport {
    let (inserts, horizon) = match scale {
        Scale::Full => (600u64, SimDuration::from_secs(60)),
        Scale::Quick => (150, SimDuration::from_secs(15)),
    };
    let points = [
        ("LAN 2-10 ms", LatencyModel::lan_default(), 700u64),
        (
            "slow 50 ms fixed",
            LatencyModel::fixed(SimDuration::from_millis(50)),
            700,
        ),
        (
            "WAN-ish 200 ms",
            LatencyModel::fixed(SimDuration::from_millis(200)),
            700,
        ),
        (
            "too slow 400 ms",
            LatencyModel::fixed(SimDuration::from_millis(400)),
            700,
        ),
    ];
    let outcomes = run_indexed(points.len(), threads, |i| {
        mbr_run(points[i].1, points[i].2, inserts)
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "latency model       deadline  committed  aborted  confirm_hidden%"
    );
    for ((label, _, deadline), (committed, aborted, hidden)) in points.iter().zip(&outcomes) {
        let _ = writeln!(
            out,
            "{label:<18}  {deadline:>6}ms  {committed:>9}  {aborted:>7}  {:>14.1}",
            hidden * 100.0
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "-- full message-level protocol (MbrSystem over the simulated network) --"
    );
    let mut dist = MbrSystem::new(MbrConfig::default_ring(), SimDuration::from_millis(700));
    let mut rng2 = RngTree::new(23).fork("mbr-dist-bench", 0);
    let rates = [1u64, 2, 3, 4, 6];
    for i in 0..inserts {
        let rate = Bandwidth::from_mbit_per_sec(rates[rng2.gen_range(0..rates.len())]);
        dist.request_insert(SimTime::from_millis(i * 40), (i % 14) as u32, rate);
    }
    dist.run_until(SimTime::ZERO + horizon);
    let stats = dist.stats();
    let _ = writeln!(
        out,
        "committed {}  aborted {}  rejected-local {}  confirm hidden {:.1}%  \
         capacity violations {}",
        stats.committed,
        stats.aborted,
        stats.rejected_local,
        stats.hidden_confirms as f64 / stats.committed.max(1) as f64 * 100.0,
        stats.violations,
    );
    let _ = writeln!(
        out,
        "per-cub reserve/commit control bytes: {} (cub 0)",
        dist.control_bytes(0)
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "shape: within a switched LAN the confirm round trip hides behind the \
         ~60 ms disk read; only when latency approaches the deadline do \
         insertions abort (and release their reservations)."
    );
    ExpReport {
        name: "ablation_mbr",
        output: out,
        metrics: Vec::new(),
    }
}

/// §5 deadman timeout vs reconfiguration loss window: one power-cut run
/// per timeout.
pub fn deadman_report(scale: Scale, threads: usize) -> ExpReport {
    let (timeouts, load_label): (&[u64], &str) = match scale {
        Scale::Full => (&[1_500, 3_000, 5_000, 8_000], "50% load, 301 streams"),
        Scale::Quick => (&[1_000, 2_000], "50% load, small test system"),
    };
    let results = run_indexed(timeouts.len(), threads, |i| {
        let timeout_ms = timeouts[i];
        let (mut tiger, victim, cut_at, observe, catalog) = match scale {
            Scale::Full => (
                TigerConfig::sosp97(),
                CubId(5),
                SimTime::from_secs(120),
                SimDuration::from_secs(120),
                CatalogSpec::sized_for(SimDuration::from_secs(260), 16),
            ),
            Scale::Quick => (
                TigerConfig::small_test(),
                CubId(2),
                SimTime::from_secs(40),
                SimDuration::from_secs(40),
                CatalogSpec::sized_for(SimDuration::from_secs(100), 4),
            ),
        };
        tiger.deadman_timeout = SimDuration::from_millis(timeout_ms);
        let cfg = ReconfigConfig {
            catalog,
            load: 0.5,
            victim,
            cut_at,
            observe,
            tiger,
        };
        run_reconfig(&cfg)
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeout  detection_s  loss_window_s  blocks_lost  ({load_label})"
    );
    for (&timeout_ms, r) in timeouts.iter().zip(&results) {
        let _ = writeln!(
            out,
            "{:>6.1}s {:>12.2} {:>14.2} {:>12}",
            timeout_ms as f64 / 1e3,
            r.detection_secs.unwrap_or(f64::NAN),
            r.loss_window_secs,
            r.blocks_lost,
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "shape: the loss window moves nearly one-for-one with the deadman \
         timeout; the §5 configuration (5 s timeout) lands near the paper's \
         ~8 s measurement."
    );
    ExpReport {
        name: "ablation_deadman",
        output: out,
        metrics: Vec::new(),
    }
}

/// §5 admission-control ablation: the disabled safety valve re-enabled,
/// one startup experiment per policy.
pub fn admission_report(scale: Scale, threads: usize) -> ExpReport {
    let policies = [("disabled (paper's test)", None), ("90% limit", Some(0.9))];
    let results = run_indexed(policies.len(), threads, |i| {
        let limit = policies[i].1;
        let (mut tiger, catalog, loads, probes) = match scale {
            Scale::Full => (
                TigerConfig::sosp97(),
                CatalogSpec::sized_for(SimDuration::from_secs(2_000), 64),
                vec![0.5, 0.8, 0.9, 0.95, 1.0],
                40,
            ),
            Scale::Quick => (
                TigerConfig::small_test(),
                CatalogSpec::sized_for(SimDuration::from_secs(300), 8),
                vec![0.5, 0.9],
                8,
            ),
        };
        tiger.admission_limit = limit;
        let cfg = StartupConfig {
            catalog,
            loads,
            probes_per_load: probes,
            failed_cub: None,
            tiger,
        };
        let result = run_startup(&cfg);
        let n = result.samples.len();
        let mean_high = result.mean_in(0.85, 1.01).unwrap_or(f64::NAN);
        (n, result.max(), mean_high, result.count_above(20.0))
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "admission   started  mean>85%load  max_latency  >20s_outliers"
    );
    for ((label, _), &(n, max, mean_high, outliers)) in policies.iter().zip(&results) {
        let _ = writeln!(
            out,
            "{label:<22} {n:>7}  {mean_high:>11.2}s {max:>11.2}s  {outliers:>13}",
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "shape: the limit trades availability (fewer admitted starts) for \
         bounded startup latency — the operational recommendation of §5."
    );
    ExpReport {
        name: "ablation_admission",
        output: out,
        metrics: Vec::new(),
    }
}

/// §5 capacity: the measured failed-mode section swept over several
/// workload seeds — one full ramp per seed, merged in seed order.
pub fn capacity_seeds_report(scale: Scale, threads: usize) -> ExpReport {
    let seeds: &[u64] = match scale {
        Scale::Full => &[1997, 42, 7],
        Scale::Quick => &[1997, 42],
    };
    let results = run_indexed(seeds.len(), threads, |i| {
        let cfg = match scale {
            Scale::Full => {
                let mut tiger = TigerConfig::sosp97();
                tiger.seed = seeds[i];
                RampConfig {
                    catalog: CatalogSpec::sized_for(SimDuration::from_secs(600), 16),
                    settle: SimDuration::from_secs(25),
                    hold_at_peak: SimDuration::from_secs(120),
                    ..RampConfig::fig9(tiger, SimDuration::from_secs(25))
                }
            }
            Scale::Quick => {
                let mut tiger = TigerConfig::small_test();
                tiger.seed = seeds[i];
                RampConfig {
                    failed_cub: Some(CubId(2)),
                    disk_report_cub: Some(CubId(3)),
                    report_cub: CubId(3),
                    target: Some(16),
                    hold_at_peak: SimDuration::from_secs(30),
                    ..quick_ramp(RampConfig::fig8(tiger, SimDuration::from_secs(15)))
                }
            }
        };
        run_ramp(&cfg)
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- measured at full failed-mode load (mirroring cub), per workload seed --"
    );
    let _ = writeln!(out, "seed   streams  mirror_disk_load%  mean_nic_util%");
    for (&seed, r) in seeds.iter().zip(&results) {
        let last = r.windows.last().expect("ramp produced windows");
        let _ = writeln!(
            out,
            "{seed:>5}  {:>7}  {:>17.1}  {:>14.1}",
            last.streams,
            last.disk_load * 100.0,
            last.nic_utilization * 100.0,
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "shape: the capacity figures are workload-seed independent — the \
         schedule admits the same stream count and the mirroring cub's duty \
         cycle stays in the same band across seeds."
    );
    ExpReport {
        name: "capacity_seeds",
        output: out,
        metrics: results.iter().map(metrics_of).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_index_order() {
        for threads in [1, 2, 5] {
            let got = run_indexed(17, threads, |i| i * i);
            let want: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_oversubscribed() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(2, 64, |i| i), vec![0, 1]);
    }

    #[test]
    fn merge_metrics_concatenates_in_given_order() {
        let mut a = Metrics::new();
        a.loss.blocks_scheduled = 10;
        a.loss.blocks_sent = 9;
        a.record_start(0.5, 1.0);
        let mut b = Metrics::new();
        b.loss.blocks_scheduled = 5;
        b.loss.server_missed = 1;
        b.record_start(0.9, 2.0);
        let ab = merge_metrics([&a, &b]);
        assert_eq!(ab.loss.blocks_scheduled, 15);
        assert_eq!(ab.loss.blocks_sent, 9);
        assert_eq!(ab.loss.server_missed, 1);
        assert_eq!(ab.start_latencies, vec![(0.5, 1.0), (0.9, 2.0)]);
        // Order matters — the merge is shard-ordered, not commutative on
        // the sequence fields.
        let ba = merge_metrics([&b, &a]);
        assert_ne!(ab.start_latencies, ba.start_latencies);
        assert_eq!(ab.loss, ba.loss);
    }

    #[test]
    fn decluster_report_is_thread_count_invariant() {
        let one = decluster_report(Scale::Quick, 1);
        let four = decluster_report(Scale::Quick, 4);
        assert_eq!(one.output, four.output);
        assert!(one.output.contains("decluster"));
    }

    #[test]
    fn fragmentation_report_is_thread_count_invariant() {
        let one = fragmentation_report(Scale::Quick, 1);
        let three = fragmentation_report(Scale::Quick, 3);
        assert_eq!(one.output, three.output);
    }
}
