//! DES-conformance gate for the real-transport driver.
//!
//! Runs the crash-rejoin scenario twice — once in the discrete-event
//! simulator (the oracle) and once over OS threads and loopback UDP
//! sockets — with the same ring configuration and the same script
//! (power-cut one cub, let the ring declare and take over, restart it,
//! let it rejoin). Both runs are reduced to their seq-normalized
//! protocol-decision lanes (see `tiger_rt::conformance`); any
//! divergence prints both sides and exits non-zero.
//!
//! CI runs this as the conformance gate: the sans-io machines are
//! shared code, so a divergence means one of the *drivers* interprets a
//! machine verdict differently — exactly the bug class this split is
//! meant to catch.
//!
//! The decision lanes now include the Recovery v2 acts: the rejoiner's
//! ring predecessor records `handback-replay` (compared across both
//! drivers in the crash-rejoin run), and a shrink cut-over records
//! `shrink-fence` on the drained cub's lane — exercised by a DES-only
//! shrink scenario below, pinned with the same extraction code, since
//! the control-plane driver carries no restripe executor.

use std::process::ExitCode;
use std::time::Duration;

use tiger_core::{TigerConfig, TigerSystem};
use tiger_layout::CubId;
use tiger_proto::RingConfig;
use tiger_rt::{render_decisions, run_crash_rejoin, CrashRejoinScript};
use tiger_sim::SimTime;
use tiger_trace::TraceRecord;

/// The scripted scenario, shared by both drivers (wall seconds for the
/// socket driver, virtual seconds for the DES).
const VICTIM: u32 = 1;
const CRASH_AT_MS: u64 = 2_000;
const RESTART_AT_MS: u64 = 8_000;
const END_AT_MS: u64 = 10_500;

/// The oracle: the same scenario under the DES driver, control-plane
/// only (no viewers — the socket driver carries no data plane, and the
/// protocol decisions must not depend on it).
fn des_oracle(cfg: &TigerConfig) -> Vec<TraceRecord> {
    let mut sys = TigerSystem::new(cfg.clone());
    sys.enable_trace(16_384);
    sys.fail_cub_at(SimTime::from_millis(CRASH_AT_MS), CubId(VICTIM));
    sys.restart_cub_at(SimTime::from_millis(RESTART_AT_MS), CubId(VICTIM));
    sys.run_until(SimTime::from_millis(END_AT_MS));
    sys.tracer().records()
}

/// The shrink lane: a live `remove=1` restripe under the DES, reduced
/// with the same extraction as the driver comparison. Returns the
/// rendered lanes so `main` can assert the drained cub was fenced.
fn des_shrink_lanes(cfg: &TigerConfig) -> String {
    let mut sys = TigerSystem::new(cfg.clone());
    sys.enable_trace(16_384);
    sys.request_restripe_remove(SimTime::from_secs(1), 1);
    sys.run_until(SimTime::from_secs(30));
    render_decisions(&sys.tracer().records())
}

fn main() -> ExitCode {
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    let ring_cfg = RingConfig {
        deadman_timeout: cfg.deadman_timeout,
        deadman_interval: cfg.deadman_interval,
        min_vstate_lead: cfg.min_vstate_lead,
    };
    let num_cubs = cfg.stripe.num_cubs;

    eprintln!("rt_conformance: DES oracle ({num_cubs} cubs, crash-rejoin)...");
    let des = render_decisions(&des_oracle(&cfg));

    eprintln!(
        "rt_conformance: socket driver ({} threads, loopback UDP, ~{:.1}s wall)...",
        num_cubs,
        END_AT_MS as f64 / 1e3
    );
    let script = CrashRejoinScript {
        victim: CubId(VICTIM),
        crash_at: Duration::from_millis(CRASH_AT_MS),
        restart_at: Duration::from_millis(RESTART_AT_MS),
        end_at: Duration::from_millis(END_AT_MS),
    };
    let records = match run_crash_rejoin(num_cubs, ring_cfg, script) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rt_conformance: socket driver failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rt = render_decisions(&records);

    if des == rt {
        eprintln!("rt_conformance: DES shrink lane (remove=1 cut-over)...");
        let shrink = des_shrink_lanes(&cfg);
        let drained = num_cubs - 1;
        if !shrink.contains(&format!("c{drained}: shrink-fence")) {
            eprintln!("conformance FAILED: shrink lane missing c{drained} fence");
            eprint!("{shrink}");
            return ExitCode::FAILURE;
        }
        println!(
            "conformance OK: {} decisions, both drivers agree; shrink lane fences c{drained}",
            des.lines().count()
        );
        print!("{des}");
        ExitCode::SUCCESS
    } else {
        eprintln!("conformance FAILED: protocol-decision lanes diverge");
        eprintln!("--- DES oracle ---");
        eprint!("{des}");
        eprintln!("--- socket driver ---");
        eprint!("{rt}");
        ExitCode::FAILURE
    }
}
