//! Real-transport driver: the sans-io protocol machines over OS threads
//! and loopback sockets.
//!
//! The DES in `tiger-core` is one driver for the `tiger-proto` state
//! machines; this crate is the second. Each cub becomes an OS thread
//! owning a loopback UDP socket, messages travel as the lossless text
//! wire format from [`tiger_proto::wire`], and timers are wall-clock
//! deadlines measured from a shared epoch `Instant`. The machines —
//! [`tiger_proto::RingMachine`] and friends — are byte-for-byte the same
//! code the simulator runs, which is the point: any divergence between
//! the two drivers is a driver bug, not a protocol ambiguity.
//!
//! The DES stays the oracle. [`conformance`] reduces a trace from either
//! driver to its *protocol decisions* — failure declarations, belief
//! adoptions, takeovers, fences, hand-back grants — normalized per ring
//! lane with sequence numbers and timestamps dropped (wall clocks and
//! virtual clocks measure different silences; the decisions must still
//! agree). `scripts/ci.sh` runs the crash-rejoin scenario under both
//! drivers and fails on any decision divergence.

pub mod conformance;
pub mod driver;

pub use conformance::{decision_lanes, render_decisions};
pub use driver::{run_crash_rejoin, CrashRejoinScript};
