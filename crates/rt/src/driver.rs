//! The thread/socket driver: one OS thread per cub, loopback UDP, wall
//! clocks.
//!
//! Each cub thread owns a [`tiger_proto::RingMachine`] — the exact state
//! machine the DES runs — plus a UDP socket bound to `127.0.0.1:0`.
//! Control messages travel as [`tiger_proto::wire`] text lines, one
//! datagram per message. Time is wall-clock nanoseconds since a shared
//! epoch `Instant`, fed to the machine as [`SimTime`] values; the two
//! periodic timers (heartbeat ping, deadman check) are deadline checks
//! in the receive loop, whose `recv` timeout bounds the polling
//! latency.
//!
//! The harness script (crash, restart, shutdown) reaches each thread
//! through an atomic control word, emulating the DES's `fail_cub_at` /
//! `restart_cub_at` events: a crashed cub keeps draining its socket and
//! discarding everything — exactly what `net.fail_node` does to
//! messages addressed to a dead node — and a restarting cub resets its
//! machine and announces the rejoin, mirroring
//! `TigerSystem::restart_cub`.
//!
//! Every protocol decision is recorded as a [`TraceRecord`] so the
//! conformance gate can compare this driver's run against the DES
//! oracle with the same extraction code (see [`crate::conformance`]).

use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tiger_layout::CubId;
use tiger_proto::{wire, Message, RingConfig, RingMachine};
use tiger_sim::SimTime;
use tiger_trace::{TraceEvent, TraceRecord, CTRL};

/// Thread control words (the harness's side of the script).
const RUN: u8 = 0;
const CRASHED: u8 = 1;
const RESTARTING: u8 = 2;
const SHUTDOWN: u8 = 3;

/// How long a `recv` blocks before the loop re-checks timers and the
/// control word. Far below every protocol timer, so deadline slippage is
/// noise relative to the deadman margins.
const POLL: Duration = Duration::from_millis(2);

/// The scripted crash-rejoin scenario, in wall time since the epoch.
#[derive(Clone, Copy, Debug)]
pub struct CrashRejoinScript {
    /// The cub that loses power.
    pub victim: CubId,
    /// When the power cut happens.
    pub crash_at: Duration,
    /// When the cub restarts and rejoins.
    pub restart_at: Duration,
    /// When the whole run stops.
    pub end_at: Duration,
}

/// Runs the crash-rejoin scenario over real threads and loopback UDP:
/// `num_cubs` cub threads ping, declare, take over, and hand back using
/// the same ring machines the DES drives. Returns every recorded
/// protocol decision (harness records on the [`CTRL`] lane, cub records
/// on their own lanes), ready for [`crate::conformance`].
pub fn run_crash_rejoin(
    num_cubs: u32,
    cfg: RingConfig,
    script: CrashRejoinScript,
) -> std::io::Result<Vec<TraceRecord>> {
    let socks: Vec<UdpSocket> = (0..num_cubs)
        .map(|_| UdpSocket::bind(("127.0.0.1", 0)))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<SocketAddr> = socks
        .iter()
        .map(|s| s.local_addr())
        .collect::<Result<_, _>>()?;
    let controls: Vec<Arc<AtomicU8>> = (0..num_cubs)
        .map(|_| Arc::new(AtomicU8::new(RUN)))
        .collect();
    let epoch = Instant::now();

    let mut handles = Vec::new();
    for (i, sock) in socks.into_iter().enumerate() {
        sock.set_read_timeout(Some(POLL))?;
        let cub = CubThread {
            id: CubId(i as u32),
            ring: RingMachine::new(CubId(i as u32), num_cubs),
            cfg,
            sock,
            peers: addrs.clone(),
            control: controls[i].clone(),
            epoch,
            out: Vec::new(),
            fenced: false,
        };
        handles.push(std::thread::spawn(move || cub.run()));
    }

    // The harness is the DES's event queue: it fires the scripted
    // power-cut and restart and records them on the control lane, just
    // as `TigerSystem` does.
    let mut records = Vec::new();
    sleep_until(epoch, script.crash_at);
    controls[script.victim.index()].store(CRASHED, Ordering::SeqCst);
    records.push(harness_record(
        epoch,
        TraceEvent::PowerCut {
            cub: script.victim.raw(),
        },
    ));
    sleep_until(epoch, script.restart_at);
    controls[script.victim.index()].store(RESTARTING, Ordering::SeqCst);
    records.push(harness_record(
        epoch,
        TraceEvent::CubRestart {
            cub: script.victim.raw(),
        },
    ));
    sleep_until(epoch, script.end_at);
    for c in &controls {
        c.store(SHUTDOWN, Ordering::SeqCst);
    }
    for h in handles {
        let lane = h.join().expect("cub thread panicked");
        records.extend(lane);
    }
    Ok(records)
}

fn sleep_until(epoch: Instant, deadline: Duration) {
    let elapsed = epoch.elapsed();
    if elapsed < deadline {
        std::thread::sleep(deadline - elapsed);
    }
}

fn harness_record(epoch: Instant, ev: TraceEvent) -> TraceRecord {
    TraceRecord {
        seq: 0,
        at: SimTime::from_nanos(epoch.elapsed().as_nanos() as u64),
        cub: CTRL,
        ev,
    }
}

/// One cub: a ring machine, a socket, and the driver loop around them.
struct CubThread {
    id: CubId,
    ring: RingMachine,
    cfg: RingConfig,
    sock: UdpSocket,
    peers: Vec<SocketAddr>,
    control: Arc<AtomicU8>,
    epoch: Instant,
    out: Vec<TraceRecord>,
    fenced: bool,
}

impl CubThread {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn record(&mut self, now: SimTime, ev: TraceEvent) {
        self.out.push(TraceRecord {
            seq: 0,
            at: now,
            cub: self.id.raw(),
            ev,
        });
    }

    fn send(&self, to: CubId, msg: &Message) {
        // UDP on loopback: a failed send (e.g. during shutdown) is the
        // same as a lost datagram, which the protocol tolerates.
        let _ = self
            .sock
            .send_to(wire::encode(msg).as_bytes(), self.peers[to.index()]);
    }

    fn run(mut self) -> Vec<TraceRecord> {
        let interval = self.cfg.deadman_interval;
        let mut next_ping = SimTime::ZERO + interval;
        let mut next_check = SimTime::ZERO + interval;
        let mut buf = [0u8; 512];
        loop {
            match self.control.load(Ordering::SeqCst) {
                SHUTDOWN => break,
                CRASHED => {
                    // Dead node: messages addressed here are dropped.
                    let _ = self.sock.recv_from(&mut buf);
                    continue;
                }
                RESTARTING => {
                    // Mirror of `TigerSystem::restart_cub`: drain what
                    // arrived while dead, reset the machine to the
                    // knows-nothing state, announce the rejoin, and
                    // resume periodic work with the check one full
                    // timeout out (the fresh baseline can never declare
                    // a predecessor on stale silence).
                    while self.sock.recv_from(&mut buf).is_ok() {}
                    let now = self.now();
                    self.ring.restart(now, self.ring.num_cubs());
                    self.fenced = false;
                    let rejoin = Message::RejoinRequest { from: self.id };
                    for c in 0..self.ring.num_cubs() {
                        if CubId(c) != self.id {
                            self.send(CubId(c), &rejoin);
                        }
                    }
                    next_ping = now + interval;
                    next_check = now + self.cfg.deadman_timeout;
                    self.control.store(RUN, Ordering::SeqCst);
                    continue;
                }
                _ => {}
            }
            if self.fenced {
                // A fenced zombie stops participating until restarted.
                let _ = self.sock.recv_from(&mut buf);
                continue;
            }
            let now = self.now();
            if now >= next_ping {
                if let Some(succ) = self.ring.ping_target() {
                    self.send(succ, &Message::DeadmanPing { from: self.id });
                }
                next_ping += interval;
            }
            if now >= next_check {
                self.deadman_check(now);
                next_check += interval;
            }
            match self.sock.recv_from(&mut buf) {
                Ok((len, _)) => {
                    if let Some(msg) = std::str::from_utf8(&buf[..len]).ok().and_then(wire::decode)
                    {
                        let now = self.now();
                        self.on_message(now, msg);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => break,
            }
        }
        self.out
    }

    /// The timer half of the deadman protocol: poll the machine and turn
    /// a declaration verdict into the trace + notice fan-out the DES
    /// driver performs (`Cub::on_deadman_check`).
    fn deadman_check(&mut self, now: SimTime) {
        let Some((pred, silence)) = self.ring.poll_check(now, &self.cfg) else {
            return;
        };
        self.record(
            now,
            TraceEvent::DeadmanDeclare {
                failed: pred.raw(),
                silence_ns: silence.as_nanos(),
            },
        );
        self.declare_failed(now, pred);
        let notice = Message::FailureNotice { failed: pred };
        for c in 0..self.ring.num_cubs() {
            let target = CubId(c);
            if target != self.id && !self.ring.believes_failed(target) {
                self.send(target, &notice);
            }
        }
    }

    /// Belief adoption + acting-successor takeover, the control-plane
    /// half of `Cub::declare_failed` (this driver carries no streams, so
    /// the §2.3 redrive and shadow conversion have nothing to do).
    fn declare_failed(&mut self, now: SimTime, failed: CubId) {
        if self.ring.believes_failed(failed) || failed == self.id {
            return;
        }
        self.record(
            now,
            TraceEvent::FailureNotice {
                failed: failed.raw(),
            },
        );
        self.ring.declare_failed(failed, now);
        if self.ring.acting_successor_of(failed) {
            self.record(
                now,
                TraceEvent::MirrorTakeover {
                    failed_cub: failed.raw(),
                },
            );
        }
    }

    fn on_message(&mut self, now: SimTime, msg: Message) {
        match msg {
            // Zombie fencing: a ping from a believed-dead sender earns a
            // notice telling it to stop serving (its streams are covered).
            Message::DeadmanPing { from } if self.ring.on_ping(from, now) => {
                self.send(from, &Message::FailureNotice { failed: from });
            }
            Message::DeadmanPing { .. } => {}
            Message::FailureNotice { failed } => {
                if failed == self.id {
                    self.record(now, TraceEvent::CubFenced { cub: self.id.raw() });
                    self.fenced = true;
                    return;
                }
                self.declare_failed(now, failed);
            }
            Message::RejoinRequest { from } => {
                let Some(outcome) = self.ring.on_rejoin_request(from, now, &self.cfg) else {
                    return;
                };
                if outcome.should_ack {
                    let failed = self.ring.failed_ids();
                    self.send(
                        from,
                        &Message::RejoinAck {
                            from: self.id,
                            failed: failed.into(),
                        },
                    );
                }
                if outcome.should_replay {
                    // No data plane: the retired tail is empty, but the
                    // predecessor's *decision* to replay it is the
                    // conformance-relevant act (`Cub::replay_retired_tail`
                    // traces it unconditionally for the same reason).
                    self.record(
                        now,
                        TraceEvent::RetiredReplay {
                            to: from.raw(),
                            count: 0,
                        },
                    );
                }
                if outcome.was_covering {
                    // No data plane: the grant batch is always empty,
                    // but the *decision* to open the hand-back window is
                    // the conformance-relevant act.
                    self.record(
                        now,
                        TraceEvent::RejoinGrant {
                            to: from.raw(),
                            count: 0,
                        },
                    );
                    self.ring.open_handback(from, now, &self.cfg);
                }
            }
            Message::RejoinAck { from, failed } => {
                self.ring.heard_from(from, now);
                for &c in failed.iter() {
                    if c != self.id.raw() {
                        self.declare_failed(now, CubId(c));
                    }
                }
            }
            // Data-plane and controller-plane messages have no receiver
            // in this control-only driver.
            _ => {}
        }
    }
}
