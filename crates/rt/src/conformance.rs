//! Seq-normalized protocol-decision extraction.
//!
//! A raw trace is full of driver-specific detail: global sequence
//! numbers, timestamps, data-plane events, periodic pings. What the two
//! drivers must agree on is the *decision sequence* — per ring lane, in
//! order: who was declared failed, who adopted the belief, who took
//! over, who was fenced, who granted a hand-back, who replayed its
//! retired tail to a rejoiner, and who was fenced out of the stripe by
//! a shrink cut-over. This module reduces a `&[TraceRecord]` from
//! either driver to exactly that.
//!
//! Normalization rules:
//!
//! * Sequence numbers and timestamps are dropped. The DES measures
//!   silence on a virtual clock and the socket driver on a wall clock,
//!   so `silence_ns` is dropped from declarations too — the decision is
//!   *that* the predecessor was declared, and by whom.
//! * `power-cut` and `cub-restart` are harness actions and
//!   `shrink-fence` a cut-over action, all recorded on the control
//!   lane; both drivers remap them onto the affected cub's lane so each
//!   lane reads as that cub's complete protocol history.
//! * Periodic pings and data-plane events (`rejoin-done` fires on the
//!   first re-accepted *block*, which a control-plane-only driver never
//!   sends) are excluded.

use std::collections::BTreeMap;

use tiger_trace::{TraceEvent, TraceRecord};

/// The per-lane decision sequences, keyed by raw cub id.
pub fn decision_lanes(records: &[TraceRecord]) -> BTreeMap<u32, Vec<String>> {
    let mut lanes: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for r in records {
        let (lane, line) = match r.ev {
            TraceEvent::PowerCut { cub } => (cub, "power-cut".to_string()),
            TraceEvent::CubRestart { cub } => (cub, "restart".to_string()),
            TraceEvent::DeadmanDeclare { failed, .. } => {
                (r.cub, format!("declare failed={failed}"))
            }
            TraceEvent::FailureNotice { failed } => (r.cub, format!("believe failed={failed}")),
            TraceEvent::MirrorTakeover { failed_cub } => {
                (r.cub, format!("takeover failed={failed_cub}"))
            }
            TraceEvent::CubFenced { cub } => (cub, "fenced".to_string()),
            TraceEvent::RejoinGrant { to, count } => {
                (r.cub, format!("handback-grant to={to} count={count}"))
            }
            // The sub-interval rejoin: the ring predecessor's decision to
            // replay its retired tail. The batch size is data-plane
            // detail, but in a control-only run both drivers carry an
            // empty tail, so the count stays comparable.
            TraceEvent::RetiredReplay { to, count } => {
                (r.cub, format!("handback-replay to={to} count={count}"))
            }
            // A shrink cut-over fencing the drained cub out of the
            // stripe: recorded on the control lane by the executor,
            // remapped like the other harness actions.
            TraceEvent::ShrinkFence { cub } => (cub, "shrink-fence".to_string()),
            _ => continue,
        };
        lanes.entry(lane).or_default().push(line);
    }
    lanes
}

/// Renders the decision lanes as stable text, one `cN: decision` line per
/// decision, lanes in ascending id order. Two conformant runs render to
/// byte-equal strings.
pub fn render_decisions(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for (lane, decisions) in decision_lanes(records) {
        for d in decisions {
            out.push_str(&format!("c{lane}: {d}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_sim::SimTime;
    use tiger_trace::CTRL;

    fn rec(seq: u64, cub: u32, ev: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            at: SimTime::from_millis(seq),
            cub,
            ev,
        }
    }

    #[test]
    fn harness_events_remap_to_the_cub_lane() {
        let records = vec![
            rec(0, CTRL, TraceEvent::PowerCut { cub: 1 }),
            rec(
                1,
                2,
                TraceEvent::DeadmanDeclare {
                    failed: 1,
                    silence_ns: 2_100_000_000,
                },
            ),
            rec(2, 2, TraceEvent::FailureNotice { failed: 1 }),
            rec(3, 2, TraceEvent::MirrorTakeover { failed_cub: 1 }),
            rec(4, 0, TraceEvent::FailureNotice { failed: 1 }),
            rec(5, CTRL, TraceEvent::CubRestart { cub: 1 }),
            rec(6, 0, TraceEvent::RetiredReplay { to: 1, count: 3 }),
            rec(7, 2, TraceEvent::RejoinGrant { to: 1, count: 0 }),
            // Excluded: pings and data-plane rejoin completion.
            rec(8, 0, TraceEvent::DeadmanPing { to: 1 }),
            rec(9, 1, TraceEvent::RejoinDone { cub: 1 }),
            // A shrink cut-over fences the drained cub on its own lane.
            rec(10, CTRL, TraceEvent::ShrinkFence { cub: 3 }),
        ];
        let lanes = decision_lanes(&records);
        assert_eq!(lanes[&1], vec!["power-cut", "restart"]);
        assert_eq!(
            lanes[&2],
            vec![
                "declare failed=1",
                "believe failed=1",
                "takeover failed=1",
                "handback-grant to=1 count=0",
            ]
        );
        assert_eq!(
            lanes[&0],
            vec!["believe failed=1", "handback-replay to=1 count=3"]
        );
        assert_eq!(lanes[&3], vec!["shrink-fence"]);
    }

    #[test]
    fn rendering_is_timing_independent() {
        let a = vec![rec(
            0,
            2,
            TraceEvent::DeadmanDeclare {
                failed: 1,
                silence_ns: 2_100_000_000,
            },
        )];
        let b = vec![rec(
            99,
            2,
            TraceEvent::DeadmanDeclare {
                failed: 1,
                silence_ns: 2_430_517_211,
            },
        )];
        assert_eq!(render_decisions(&a), render_decisions(&b));
    }
}
