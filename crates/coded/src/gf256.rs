//! GF(2⁸) arithmetic over the AES-adjacent polynomial `x⁸+x⁴+x³+x²+1`
//! (0x11d), the field every byte-oriented Reed–Solomon code uses.
//!
//! The exp/log tables are built at *compile time* by a `const fn` — no
//! lazy statics, no external crates, and the cost of a multiply is two
//! table loads and one add, ~1 ns (see the `gf256/*` micro-benches).
//! Addition in a characteristic-2 field is XOR.

/// The field's generator polynomial (degree-8 term implied).
const POLY: u16 = 0x11d;

/// Builds the exponent table (512 entries so `exp[log a + log b]` never
/// needs a modular reduction) and the log table. `log[0]` is unused —
/// zero has no logarithm — and left as 0.
const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();
const EXP: [u8; 512] = TABLES.0;
const LOG: [u8; 256] = TABLES.1;

/// Field addition (= subtraction): XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via the log/exp tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Field division `a / b`. Panics on division by zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "GF(256) division by zero");
    if a == 0 {
        0
    } else {
        EXP[255 + LOG[a as usize] as usize - LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse. Panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "GF(256) inverse of zero");
    EXP[255 - LOG[a as usize] as usize]
}

/// `base^e` by exp/log (with `e` reduced mod 255, the group order).
#[inline]
pub fn pow(base: u8, e: u32) -> u8 {
    if base == 0 {
        return if e == 0 { 1 } else { 0 };
    }
    let l = u32::from(LOG[base as usize]) * e % 255;
    EXP[l as usize]
}

/// `dst[i] ^= c * src[i]` — the row-operation kernel encode and decode
/// are built from.
#[inline]
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
    if c == 0 {
        return;
    }
    let lc = LOG[c as usize] as usize;
    for (d, &s) in dst.iter_mut().zip(src) {
        if s != 0 {
            *d ^= EXP[lc + LOG[s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_sim::SimRng;

    fn nonzero(rng: &mut SimRng) -> u8 {
        loop {
            let v = rng.gen_range(0..256u64) as u8;
            if v != 0 {
                return v;
            }
        }
    }

    #[test]
    fn tables_are_consistent() {
        // exp is a permutation of 1..=255 over one period, and log is its
        // inverse on nonzero elements.
        let mut seen = [false; 256];
        for i in 0..255usize {
            let v = EXP[i];
            assert!(v != 0);
            assert!(!seen[v as usize], "exp repeats at {i}");
            seen[v as usize] = true;
            assert_eq!(LOG[v as usize] as usize, i);
        }
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less schoolbook multiply reduced by POLY, checked over
        // every pair — 65k cases, trivially fast.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let mut prod: u16 = 0;
                let mut aa = u16::from(a);
                let mut bb = b;
                while bb != 0 {
                    if bb & 1 != 0 {
                        prod ^= aa;
                    }
                    aa <<= 1;
                    if aa & 0x100 != 0 {
                        aa ^= POLY;
                    }
                    bb >>= 1;
                }
                assert_eq!(mul(a, b), prod as u8, "{a} * {b}");
            }
        }
    }

    #[test]
    fn field_axioms_hold() {
        tiger_sim::check::check("gf256_field_axioms", |rng: &mut SimRng| {
            let a = rng.gen_range(0..256u64) as u8;
            let b = rng.gen_range(0..256u64) as u8;
            let c = rng.gen_range(0..256u64) as u8;
            assert_eq!(mul(a, b), mul(b, a));
            assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c));
            assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
            assert_eq!(mul(a, 1), a);
            let nz = nonzero(rng);
            assert_eq!(mul(nz, inv(nz)), 1);
            assert_eq!(div(mul(a, nz), nz), a);
        });
    }

    #[test]
    fn pow_is_repeated_mul() {
        for base in [0u8, 1, 2, 3, 0x53, 0xff] {
            let mut acc = 1u8;
            for e in 0..20u32 {
                assert_eq!(pow(base, e), acc, "base {base} e {e}");
                acc = mul(acc, base);
            }
        }
    }

    #[test]
    fn mul_acc_is_fused_multiply_xor() {
        let src = [1u8, 2, 0, 0x80, 0xff];
        let mut dst = [9u8, 9, 9, 9, 9];
        let mut expect = dst;
        for (e, &s) in expect.iter_mut().zip(&src) {
            *e ^= mul(0x1d, s);
        }
        mul_acc(&mut dst, &src, 0x1d);
        assert_eq!(dst, expect);
        mul_acc(&mut dst, &src, 0);
        assert_eq!(dst, expect, "c=0 must be a no-op");
    }
}
